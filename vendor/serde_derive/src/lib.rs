//! No-op derive macros standing in for `serde_derive`.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors this minimal proc-macro crate. The derives accept the
//! same surface syntax as the real ones — including `#[serde(...)]` helper
//! attributes — but expand to nothing: no `Serialize`/`Deserialize` impls are
//! generated, which is fine because nothing in the workspace serializes yet.
//! Swapping the workspace `serde` dependency back to the real crate requires
//! no source changes.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
