//! Offline stand-in for the subset of `rand` 0.8 the workspace uses.
//!
//! Provides [`rngs::SmallRng`], [`SeedableRng`], and [`Rng::gen_range`] over
//! half-open and inclusive integer/float ranges. The generator is a
//! splitmix64 counter RNG: tiny, fully deterministic per seed, and easily
//! good enough for the statistical properties the data generators and their
//! tests rely on (uniformity at the percent level). Code written against the
//! real `rand` crate compiles unchanged; swap the workspace path dependency
//! for the real crate to switch back.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring the `rand::Rng` extension trait.
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (splitmix64 counter RNG).
    ///
    /// Not cryptographically secure — same contract as the real `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood): a Weyl sequence pushed
            // through a strong 64-bit mixer.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.gen_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen_range(0..u64::MAX)).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn integer_ranges_cover_and_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(1..=7);
            assert!((1..=7).contains(&v));
            seen[(v - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 1..=7 drawn");
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn integer_ranges_are_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_range(0..100i32) < 10).count();
        let fraction = hits as f64 / n as f64;
        assert!((fraction - 0.10).abs() < 0.01, "fraction {fraction}");
    }

    #[test]
    fn float_range_is_uniform_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
