//! Offline stand-in for the `serde` facade.
//!
//! Exposes the two trait names and the derive macros the workspace imports
//! (`use serde::{Deserialize, Serialize};`). The derives are no-ops (see
//! `vendor/serde_derive`), and the traits carry no methods; they exist so
//! that code written against real serde compiles unchanged while the build
//! environment has no registry access.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stand-in).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stand-in).
pub trait Deserialize<'de>: Sized {}
