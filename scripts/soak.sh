#!/usr/bin/env bash
# Nightly fault-injection soak: run the churn sweep at 10x the example's
# default horizon twice with the same seed and fail unless the two JSON
# reports are byte-identical. Catches any nondeterminism that creeps into
# the event kernel, the fault model, or the report serializer — the
# property every figure and baseline in this repo leans on.
#
# Usage: scripts/soak.sh [horizon-scale]   (default 10)
set -euo pipefail
cd "$(dirname "$0")/.."

scale="${1:-10}"
out_dir="soak"
mkdir -p "$out_dir"

cargo build --locked --release -p eedc --example fault_scenarios

run() {
  cargo run --locked --release -q -p eedc --example fault_scenarios -- \
    --horizon-scale "$scale" --out "$1"
}

echo "== soak pass 1 (horizon-scale $scale) =="
run "$out_dir/report_a.json"
echo "== soak pass 2 (horizon-scale $scale) =="
run "$out_dir/report_b.json"

if cmp -s "$out_dir/report_a.json" "$out_dir/report_b.json"; then
  echo "soak OK: reports are byte-identical ($(wc -c <"$out_dir/report_a.json") bytes)"
else
  echo "soak FAILED: same seed produced different reports" >&2
  diff "$out_dir/report_a.json" "$out_dir/report_b.json" | head -40 >&2 || true
  exit 1
fi
