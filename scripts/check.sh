#!/usr/bin/env bash
# Run the same three gates CI runs (lint / test / bench-check), in the same
# order, so a clean `scripts/check.sh` means a clean CI run. The nightly
# soak is separate — run `scripts/soak.sh` for that.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== lint: fmt + clippy + docs + eedc-lint =="
cargo fmt --all --check
cargo clippy --locked --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --locked --no-deps --workspace
cargo run --locked --release -p eedc-lint -- check

echo "== test: build + test + doctests + examples =="
cargo build --locked --release --workspace --all-targets
cargo test --locked -q --workspace
cargo test --locked --doc --workspace
for file in crates/eedc/examples/*.rs; do
  example="$(basename "$file" .rs)"
  cargo run --locked --release -p eedc --example "$example"
done

echo "== bench-check: suite vs committed baselines =="
cargo run --locked --release -p eedc-bench --bin bench_suite -- \
  --check crates/bench/baselines --threshold 200 --min-delta-ms 5
cargo run --locked --release -p eedc-bench --bin figures -- figures-data

echo "all gates passed"
