//! Data-skew study (the Section 4.1 "third bottleneck"): how Zipf-skewed
//! join keys unbalance hash partitioning across the cluster nodes.

use eedc::tpch::ZipfKeys;

fn main() {
    let partitions = 8;
    let domain = 100_000u64;
    println!(
        "hottest-partition load fraction over {partitions} partitions (uniform = {:.3})",
        1.0 / partitions as f64
    );
    for theta in [0.0, 0.5, 0.8, 1.0, 1.2] {
        let keys = ZipfKeys::new(domain, theta, 1);
        let fraction = keys.max_partition_fraction(partitions);
        println!(
            "  theta {theta:>3.1}: {fraction:.3} ({:.1}x the balanced share)",
            fraction * partitions as f64
        );
    }
}
