//! Design-advisor sketch (Section 6): among a family of cluster designs,
//! pick the most energy-efficient one that still meets a performance target.
//! The full analytical advisor lives in `eedc-core` (open item); this
//! example drives the selection rule with measured runtime points.

use eedc::pstore::{ClusterSpec, JoinQuerySpec, JoinStrategy, PStoreCluster, RunOptions};
use eedc::simkit::catalog::cluster_v_node;
use eedc::simkit::metrics::NormalizedSeries;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let query = JoinQuerySpec::q3_dual_shuffle();
    let mut measurements = Vec::new();
    for nodes in [16usize, 12, 10, 8, 6, 4] {
        let spec = ClusterSpec::homogeneous(cluster_v_node(), nodes)?;
        let cluster = PStoreCluster::load(spec, RunOptions::default())?;
        let execution = cluster.run(&query, JoinStrategy::DualShuffle)?;
        measurements.push((execution.cluster_label.clone(), execution.measurement()));
    }

    let reference = measurements[0].1;
    let series = NormalizedSeries::from_measurements(
        measurements[0].0.clone(),
        reference,
        measurements[1..].iter().cloned(),
    )?;

    for target in [0.9, 0.75, 0.5] {
        match series.best_meeting_target(target) {
            Some((label, point)) => {
                println!("target perf >= {target:.2}: pick {label} ({point})")
            }
            None => println!("target perf >= {target:.2}: no design qualifies"),
        }
    }
    Ok(())
}
