//! Heterogeneous execution (Section 5.2): when the build-side hash table no
//! longer fits the Wimpy nodes, they are demoted to scan-and-filter
//! producers feeding the Beefy nodes — compare against an all-Beefy cluster.

use eedc::pstore::{ClusterSpec, JoinQuerySpec, JoinStrategy, PStoreCluster, RunOptions};
use eedc::simkit::catalog::{cluster_v_node, laptop_b};
use eedc::tpch::ScaleFactor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 50%-selectivity broadcast build side at SF-1000 is a ~30 GB hash
    // table: it fits the 48 GB Beefy nodes but not the 8 GB Wimpy laptops.
    let options = RunOptions {
        nominal_scale: ScaleFactor::SF1000,
        ..RunOptions::default()
    };
    let query = JoinQuerySpec::new(0.5, 0.05);

    for spec in [
        ClusterSpec::homogeneous(cluster_v_node(), 4)?,
        ClusterSpec::heterogeneous(cluster_v_node(), 2, laptop_b(), 2)?,
    ] {
        let cluster = PStoreCluster::load(spec, options)?;
        let execution = cluster.run(&query, JoinStrategy::Broadcast)?;
        let measurement = execution.measurement();
        println!(
            "{:>5}: {} execution, {:.1} s, {:.1} kJ, EDP {:.0} J*s, {} rows",
            execution.cluster_label,
            execution.mode,
            measurement.response_time.value(),
            measurement.energy.as_kilojoules(),
            measurement.edp(),
            execution.output_rows,
        );
    }
    Ok(())
}
