//! Homogeneous cluster sizing (the Figure 1(a) shape): shrink a Cluster-V
//! cluster and plot each size as a normalized (performance, energy) point
//! against the largest configuration.

use eedc::pstore::{ClusterSpec, JoinQuerySpec, JoinStrategy, PStoreCluster, RunOptions};
use eedc::simkit::catalog::cluster_v_node;
use eedc::simkit::metrics::NormalizedSeries;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let query = JoinQuerySpec::q3_dual_shuffle();
    let sizes = [16usize, 12, 8, 4];

    let mut measurements = Vec::new();
    for &nodes in &sizes {
        let spec = ClusterSpec::homogeneous(cluster_v_node(), nodes)?;
        let cluster = PStoreCluster::load(spec, RunOptions::default())?;
        let execution = cluster.run(&query, JoinStrategy::DualShuffle)?;
        measurements.push((execution.cluster_label.clone(), execution.measurement()));
    }

    let reference = measurements[0].1;
    let series = NormalizedSeries::from_measurements(
        measurements[0].0.clone(),
        reference,
        measurements[1..].iter().cloned(),
    )?;
    println!(
        "normalized against {} ({reference})",
        series.reference_label
    );
    for (label, point) in series.points() {
        println!("  {label:>4}: {point}");
    }
    Ok(())
}
