//! Quickstart: generate a small TPC-H join, run it through `PStoreCluster`
//! with a dual-shuffle plan, and print response time, energy, and EDP.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use eedc::pstore::{ClusterSpec, JoinQuerySpec, JoinStrategy, PStoreCluster, RunOptions};
use eedc::simkit::catalog::cluster_v_node;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Eight Cluster-V nodes on a gigabit switch, loaded with deterministic
    // engine-scale TPC-H data; time and energy are modeled at SF-400.
    let spec = ClusterSpec::homogeneous(cluster_v_node(), 8)?;
    let options = RunOptions::default();
    let cluster = PStoreCluster::load(spec, options)?;

    // The paper's Q3-style join: 5% predicates on both ORDERS and LINEITEM,
    // executed with the dual-shuffle repartitioning plan of Section 4.3.1.
    let query = JoinQuerySpec::q3_dual_shuffle();
    let execution = cluster.run(&query, JoinStrategy::DualShuffle)?;

    println!(
        "{} join ({}) on {} [{} execution]",
        execution.strategy,
        query.label(),
        execution.cluster_label,
        execution.mode,
    );
    for phase in &execution.phases {
        println!(
            "  {:>5}: {:.2} s ({} bound; scan {:.2} s, network {:.2} s, compute {:.2} s), \
             {:.1} kJ, {:.0} MB over network",
            phase.label,
            phase.duration.value(),
            phase.bottleneck,
            phase.scan_time.value(),
            phase.network_time.value(),
            phase.compute_time.value(),
            phase.energy.as_kilojoules(),
            phase.bytes_over_network.value(),
        );
    }

    let measurement = execution.measurement();
    println!("response time: {:.2} s", measurement.response_time.value());
    println!(
        "energy:        {:.1} kJ",
        measurement.energy.as_kilojoules()
    );
    println!("EDP:           {:.0} J*s", measurement.edp());
    println!(
        "output rows:   {} (scalar reference: {})",
        execution.output_rows,
        cluster.reference_join_rows(&query)?,
    );
    Ok(())
}
