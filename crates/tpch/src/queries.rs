//! Query work profiles.
//!
//! The paper's analysis of the off-the-shelf DBMSs (Section 3) boils each
//! TPC-H query down to how its execution time splits between *node-local*
//! work (which speeds up linearly with more nodes) and *network-bound*
//! repartitioning or broadcast work (which does not). A [`QueryProfile`]
//! captures that split — plus the predicate selectivities and the tables
//! involved — and is the input to the behavioural DBMS simulators in
//! `eedc-dbmsim` and to the workload-level advisor in `eedc-core`.
//!
//! The published reference points (all measured on the eight-node Cluster-V
//! configuration):
//!
//! * **Q1** — scan + aggregate over LINEITEM only; no repartitioning at all.
//! * **Q21** — four-table join, but only 5.5% of the execution is spent on
//!   the LINEITEM ⋈ ORDERS repartition.
//! * **Q12** — a two-table LINEITEM ⋈ ORDERS join that spends 48% of its
//!   execution network-bound during repartitioning.
//! * **Q3** — the partition-incompatible LINEITEM ⋈ ORDERS join the P-store
//!   experiments exercise with 5% predicates on both inputs.

use crate::schema::TpchTable;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The TPC-H queries the paper studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryId {
    /// TPC-H Query 1: pricing summary report (scan + aggregate, no join).
    Q1,
    /// TPC-H Query 3: shipping priority (LINEITEM ⋈ ORDERS ⋈ CUSTOMER).
    Q3,
    /// TPC-H Query 12: shipping modes and order priority (LINEITEM ⋈ ORDERS).
    Q12,
    /// TPC-H Query 21: suppliers who kept orders waiting (4-table join).
    Q21,
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryId::Q1 => write!(f, "Q1"),
            QueryId::Q3 => write!(f, "Q3"),
            QueryId::Q12 => write!(f, "Q12"),
            QueryId::Q21 => write!(f, "Q21"),
        }
    }
}

/// How a query's execution divides between node-local work and network-bound
/// work, together with the workload parameters the paper reports for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryProfile {
    /// The query this profile describes.
    pub query: QueryId,
    /// Fraction of the (reference-cluster) execution time spent on node-local
    /// computation. Node-local work speeds up linearly with the cluster size.
    pub local_fraction: f64,
    /// Fraction of the execution time spent network-bound repartitioning
    /// (shuffling) data. This work is limited by per-node port bandwidth and
    /// does not speed up when nodes are added.
    pub repartition_fraction: f64,
    /// Fraction of the execution time spent broadcasting a table to all
    /// nodes. Broadcast time *grows* slightly with the cluster size (every
    /// node must receive almost the whole table).
    pub broadcast_fraction: f64,
    /// Tables read by the query.
    pub tables: Vec<TpchTable>,
    /// Selectivity of the predicate on the probe-side (LINEITEM) input.
    pub probe_selectivity: f64,
    /// Selectivity of the predicate on the build-side (ORDERS) input; 1.0 for
    /// queries without a join.
    pub build_selectivity: f64,
    /// Short description of what the query does.
    pub description: &'static str,
}

impl QueryProfile {
    /// The profile the paper reports for a query (measured at eight nodes on
    /// Cluster-V, Section 3.1).
    pub fn paper(query: QueryId) -> Self {
        match query {
            QueryId::Q1 => QueryProfile {
                query,
                local_fraction: 1.0,
                repartition_fraction: 0.0,
                broadcast_fraction: 0.0,
                tables: vec![TpchTable::Lineitem],
                probe_selectivity: 0.98,
                build_selectivity: 1.0,
                description: "scan + aggregate over LINEITEM; perfectly partitionable",
            },
            QueryId::Q3 => QueryProfile {
                query,
                local_fraction: 0.45,
                repartition_fraction: 0.55,
                broadcast_fraction: 0.0,
                tables: vec![TpchTable::Lineitem, TpchTable::Orders, TpchTable::Customer],
                probe_selectivity: 0.05,
                build_selectivity: 0.05,
                description: "partition-incompatible LINEITEM ⋈ ORDERS with 5% predicates",
            },
            QueryId::Q12 => QueryProfile {
                query,
                local_fraction: 0.52,
                repartition_fraction: 0.48,
                broadcast_fraction: 0.0,
                tables: vec![TpchTable::Lineitem, TpchTable::Orders],
                probe_selectivity: 0.01,
                build_selectivity: 1.0,
                description: "LINEITEM ⋈ ORDERS spending 48% of execution repartitioning",
            },
            QueryId::Q21 => QueryProfile {
                query,
                local_fraction: 0.945,
                repartition_fraction: 0.055,
                broadcast_fraction: 0.0,
                tables: vec![
                    TpchTable::Supplier,
                    TpchTable::Lineitem,
                    TpchTable::Orders,
                    TpchTable::Nation,
                ],
                probe_selectivity: 0.04,
                build_selectivity: 0.5,
                description: "4-table join with only 5.5% of execution spent repartitioning",
            },
        }
    }

    /// A custom profile for what-if studies. Fractions are normalised to sum
    /// to one (zero-total inputs become a fully local profile).
    pub fn custom(query: QueryId, local: f64, repartition: f64, broadcast: f64) -> Self {
        let local = local.max(0.0);
        let repartition = repartition.max(0.0);
        let broadcast = broadcast.max(0.0);
        let total = local + repartition + broadcast;
        let (local_fraction, repartition_fraction, broadcast_fraction) = if total <= f64::EPSILON {
            (1.0, 0.0, 0.0)
        } else {
            (local / total, repartition / total, broadcast / total)
        };
        let mut profile = QueryProfile::paper(query);
        profile.local_fraction = local_fraction;
        profile.repartition_fraction = repartition_fraction;
        profile.broadcast_fraction = broadcast_fraction;
        profile.description = "custom profile";
        profile
    }

    /// Fraction of the execution that is bound by the network in any form.
    pub fn network_fraction(&self) -> f64 {
        self.repartition_fraction + self.broadcast_fraction
    }

    /// Whether the paper would call the query "highly scalable": effectively
    /// all of its work is node-local (Figures 2(a), 2(b), 12(a)).
    pub fn is_highly_scalable(&self) -> bool {
        self.network_fraction() < 0.10
    }

    /// All four paper profiles.
    pub fn all_paper_profiles() -> Vec<QueryProfile> {
        [QueryId::Q1, QueryId::Q3, QueryId::Q12, QueryId::Q21]
            .into_iter()
            .map(QueryProfile::paper)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        for profile in QueryProfile::all_paper_profiles() {
            let total =
                profile.local_fraction + profile.repartition_fraction + profile.broadcast_fraction;
            assert!((total - 1.0).abs() < 1e-9, "{:?}", profile.query);
        }
    }

    #[test]
    fn paper_reference_points_are_encoded() {
        let q12 = QueryProfile::paper(QueryId::Q12);
        assert!((q12.repartition_fraction - 0.48).abs() < 1e-9);
        let q21 = QueryProfile::paper(QueryId::Q21);
        assert!((q21.repartition_fraction - 0.055).abs() < 1e-9);
        let q1 = QueryProfile::paper(QueryId::Q1);
        assert_eq!(q1.repartition_fraction, 0.0);
    }

    #[test]
    fn scalability_classification_matches_the_paper() {
        // Q1 and Q21 scale nearly linearly; Q12 and Q3 are network-bound.
        assert!(QueryProfile::paper(QueryId::Q1).is_highly_scalable());
        assert!(QueryProfile::paper(QueryId::Q21).is_highly_scalable());
        assert!(!QueryProfile::paper(QueryId::Q12).is_highly_scalable());
        assert!(!QueryProfile::paper(QueryId::Q3).is_highly_scalable());
    }

    #[test]
    fn custom_profiles_are_normalised() {
        let p = QueryProfile::custom(QueryId::Q12, 2.0, 1.0, 1.0);
        assert!((p.local_fraction - 0.5).abs() < 1e-12);
        assert!((p.network_fraction() - 0.5).abs() < 1e-12);
        let degenerate = QueryProfile::custom(QueryId::Q1, 0.0, 0.0, 0.0);
        assert_eq!(degenerate.local_fraction, 1.0);
        let negative = QueryProfile::custom(QueryId::Q1, -5.0, 1.0, 0.0);
        assert_eq!(negative.local_fraction, 0.0);
        assert_eq!(negative.repartition_fraction, 1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(QueryId::Q12.to_string(), "Q12");
        assert_eq!(QueryId::Q21.to_string(), "Q21");
    }

    #[test]
    fn q3_uses_the_pstore_selectivities() {
        let q3 = QueryProfile::paper(QueryId::Q3);
        assert!((q3.probe_selectivity - 0.05).abs() < 1e-12);
        assert!((q3.build_selectivity - 0.05).abs() < 1e-12);
        assert!(q3.tables.contains(&TpchTable::Lineitem));
        assert!(q3.tables.contains(&TpchTable::Orders));
    }
}
