//! Skewed key generation for the data-skew extension study.
//!
//! Section 4.1 of the paper identifies data skew as the third bottleneck
//! category ("even a small skew can cause an imbalance in the utilization of
//! the cluster nodes") but defers its investigation to future work. We
//! implement that extension: a Zipf-distributed key generator whose output
//! can replace the uniform join keys of the base generator, letting the
//! P-store experiments and the skew-ablation benchmark quantify the node
//! imbalance and its energy cost.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A Zipf-distributed generator over the key domain `1..=n`.
///
/// `theta = 0` degenerates to the uniform distribution; `theta ≈ 1` is the
/// classic heavy Zipf skew where the hottest key receives a large constant
/// fraction of all references.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZipfKeys {
    n: u64,
    theta: f64,
    /// Cumulative probabilities for the first `PREFIX` ranks; the tail is
    /// approximated by the continuous integral, which keeps construction O(1)
    /// in the domain size while staying accurate for the skewed head.
    harmonic: f64,
    #[serde(skip, default = "default_rng")]
    rng: SmallRng,
}

// Referenced only through the `#[serde(default = ...)]` field attribute, so
// the vendored no-op derive leaves it looking unused.
#[allow(dead_code)]
fn default_rng() -> SmallRng {
    SmallRng::seed_from_u64(0)
}

impl ZipfKeys {
    /// Create a generator over `1..=n` with skew parameter `theta`, seeded for
    /// reproducibility. `n` must be at least 1; `theta` is clamped to
    /// `[0, 5]`.
    pub fn new(n: u64, theta: f64, seed: u64) -> Self {
        let n = n.max(1);
        let theta = theta.clamp(0.0, 5.0);
        let harmonic = generalized_harmonic(n, theta);
        Self {
            n,
            theta,
            harmonic,
            rng: SmallRng::seed_from_u64(seed ^ 0x51CE_F00D),
        }
    }

    /// Domain size.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability of the key at `rank` (1-based; rank 1 is the hottest key).
    pub fn probability_of_rank(&self, rank: u64) -> f64 {
        if rank == 0 || rank > self.n {
            return 0.0;
        }
        (rank as f64).powf(-self.theta) / self.harmonic
    }

    /// Draw the next key (1-based, rank order: key `k` has rank `k`).
    pub fn next_key(&mut self) -> u64 {
        // Inverse-CDF sampling by bisection over ranks. The CDF is evaluated
        // with the closed-form generalized-harmonic approximation, which is
        // exact for theta = 0 and accurate to well under 1% otherwise.
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let target = u * self.harmonic;
        let mut lo = 1u64;
        let mut hi = self.n;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if generalized_harmonic(mid, self.theta) < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Generate `count` keys.
    pub fn take_keys(&mut self, count: usize) -> Vec<u64> {
        (0..count).map(|_| self.next_key()).collect()
    }

    /// The theoretical load fraction of the most loaded of `partitions` hash
    /// partitions when keys are assigned round-robin by rank. A perfectly
    /// uniform distribution yields `1 / partitions`; heavy skew approaches the
    /// probability of the single hottest key.
    pub fn max_partition_fraction(&self, partitions: usize) -> f64 {
        if partitions == 0 {
            return 1.0;
        }
        let mut load = vec![0.0_f64; partitions];
        // Ranks are assigned to partitions round-robin, mirroring hash
        // placement of distinct keys; summing the full domain is O(n) but the
        // domains used in experiments are modest.
        for rank in 1..=self.n {
            load[(rank - 1) as usize % partitions] += self.probability_of_rank(rank);
        }
        load.into_iter().fold(0.0, f64::max)
    }
}

/// Generalized harmonic number `H(n, theta) = Σ_{k=1..n} k^-theta`, computed
/// exactly for small `n` and with the Euler–Maclaurin integral approximation
/// for large `n` so that construction never scans billion-key domains.
fn generalized_harmonic(n: u64, theta: f64) -> f64 {
    const EXACT_LIMIT: u64 = 10_000;
    if n <= EXACT_LIMIT {
        return (1..=n).map(|k| (k as f64).powf(-theta)).sum();
    }
    let head: f64 = (1..=EXACT_LIMIT).map(|k| (k as f64).powf(-theta)).sum();
    let tail = if (theta - 1.0).abs() < 1e-9 {
        (n as f64 / EXACT_LIMIT as f64).ln()
    } else {
        ((n as f64).powf(1.0 - theta) - (EXACT_LIMIT as f64).powf(1.0 - theta)) / (1.0 - theta)
    };
    head + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_theta_is_uniform() {
        let mut gen = ZipfKeys::new(100, 0.0, 1);
        assert!((gen.probability_of_rank(1) - 0.01).abs() < 1e-9);
        assert!((gen.probability_of_rank(100) - 0.01).abs() < 1e-9);
        let keys = gen.take_keys(20_000);
        let hot = keys.iter().filter(|&&k| k == 1).count() as f64 / keys.len() as f64;
        assert!(hot < 0.03, "uniform hottest key fraction {hot}");
    }

    #[test]
    fn high_theta_concentrates_on_the_head() {
        let mut gen = ZipfKeys::new(1000, 1.0, 2);
        let keys = gen.take_keys(50_000);
        let head = keys.iter().filter(|&&k| k <= 10).count() as f64 / keys.len() as f64;
        // With theta=1 over 1000 keys, the top-10 ranks carry ~39% of the mass.
        assert!(head > 0.30, "head fraction {head}");
        let p1 = gen.probability_of_rank(1);
        let p100 = gen.probability_of_rank(100);
        assert!(p1 / p100 > 50.0);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let gen = ZipfKeys::new(500, 0.8, 3);
        let total: f64 = (1..=500).map(|r| gen.probability_of_rank(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(gen.probability_of_rank(0), 0.0);
        assert_eq!(gen.probability_of_rank(501), 0.0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = ZipfKeys::new(100, 0.9, 7).take_keys(100);
        let b = ZipfKeys::new(100, 0.9, 7).take_keys(100);
        let c = ZipfKeys::new(100, 0.9, 8).take_keys(100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn keys_stay_in_domain() {
        let mut gen = ZipfKeys::new(64, 1.2, 11);
        for key in gen.take_keys(10_000) {
            assert!((1..=64).contains(&key));
        }
    }

    #[test]
    fn partition_imbalance_grows_with_skew() {
        let uniform = ZipfKeys::new(10_000, 0.0, 1).max_partition_fraction(8);
        let skewed = ZipfKeys::new(10_000, 1.0, 1).max_partition_fraction(8);
        assert!((uniform - 0.125).abs() < 0.01, "uniform {uniform}");
        assert!(
            skewed > uniform * 1.5,
            "skewed {skewed} vs uniform {uniform}"
        );
        // Degenerate partition count.
        assert_eq!(ZipfKeys::new(10, 0.5, 1).max_partition_fraction(0), 1.0);
    }

    #[test]
    fn large_domains_use_the_tail_approximation() {
        // Construction must be fast and the head probabilities sensible even
        // for a billion-key domain.
        let gen = ZipfKeys::new(1_000_000_000, 0.99, 5);
        let p1 = gen.probability_of_rank(1);
        assert!(p1 > 0.0 && p1 < 1.0);
        let gen_uniform = ZipfKeys::new(1_000_000_000, 0.0, 5);
        let p = gen_uniform.probability_of_rank(123_456_789);
        assert!((p - 1e-9).abs() < 1e-10);
    }

    #[test]
    fn parameters_are_clamped() {
        let gen = ZipfKeys::new(0, -1.0, 1);
        assert_eq!(gen.domain(), 1);
        assert_eq!(gen.theta(), 0.0);
        let gen = ZipfKeys::new(10, 99.0, 1);
        assert_eq!(gen.theta(), 5.0);
    }
}
