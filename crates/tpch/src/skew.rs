//! Skewed key generation for the data-skew extension study.
//!
//! Section 4.1 of the paper identifies data skew as the third bottleneck
//! category ("even a small skew can cause an imbalance in the utilization of
//! the cluster nodes") but defers its investigation to future work. We
//! implement that extension: a Zipf-distributed key generator whose output
//! can replace the uniform join keys of the base generator, letting the
//! P-store experiments and the skew-ablation benchmark quantify the node
//! imbalance and its energy cost.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A Zipf-distributed generator over the key domain `1..=n`.
///
/// `theta = 0` degenerates to the uniform distribution; `theta ≈ 1` is the
/// classic heavy Zipf skew where the hottest key receives a large constant
/// fraction of all references.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZipfKeys {
    n: u64,
    theta: f64,
    /// Total probability mass `H(n, theta)`, the generalized harmonic number
    /// normalizing every rank probability.
    harmonic: f64,
    /// Cumulative mass `H(k, theta)` for the first `min(n, EXACT_LIMIT)`
    /// ranks, precomputed at construction. A draw bisects this table in
    /// O(log EXACT_LIMIT) and falls through to the closed-form tail
    /// inversion beyond it — the old implementation re-summed an up-to-10
    /// 000-term harmonic series at *every* bisection step, making each draw
    /// O(n log n). Fully derived from `(n, theta)`, so it is skipped during
    /// serialization and rebuilt lazily on the first draw after
    /// deserialization.
    #[serde(skip)]
    cumulative_head: Vec<f64>,
    #[serde(skip, default = "default_rng")]
    rng: SmallRng,
}

// Referenced only through the `#[serde(default = ...)]` field attribute, so
// the vendored no-op derive leaves it looking unused.
#[allow(dead_code)]
fn default_rng() -> SmallRng {
    SmallRng::seed_from_u64(0)
}

impl ZipfKeys {
    /// Create a generator over `1..=n` with skew parameter `theta`, seeded for
    /// reproducibility. `n` must be at least 1; `theta` is clamped to
    /// `[0, 5]`.
    pub fn new(n: u64, theta: f64, seed: u64) -> Self {
        let n = n.max(1);
        let theta = theta.clamp(0.0, 5.0);
        let cumulative_head = head_table(n, theta);
        let head_mass = *cumulative_head
            .last()
            .expect("domains have at least one rank");
        let harmonic = if n <= EXACT_LIMIT {
            head_mass
        } else {
            head_mass + tail_mass(EXACT_LIMIT, n, theta)
        };
        Self {
            n,
            theta,
            harmonic,
            cumulative_head,
            rng: SmallRng::seed_from_u64(seed ^ 0x51CE_F00D),
        }
    }

    /// Domain size.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability of the key at `rank` (1-based; rank 1 is the hottest key).
    pub fn probability_of_rank(&self, rank: u64) -> f64 {
        if rank == 0 || rank > self.n {
            return 0.0;
        }
        (rank as f64).powf(-self.theta) / self.harmonic
    }

    /// Draw the next key (1-based, rank order: key `k` has rank `k`).
    ///
    /// Inverse-CDF sampling: targets landing in the precomputed head table
    /// are resolved by bisection over it; targets beyond the head invert the
    /// continuous tail integral in closed form. Either way a draw costs
    /// O(log EXACT_LIMIT), independent of the domain size.
    pub fn next_key(&mut self) -> u64 {
        if self.cumulative_head.is_empty() {
            // The table is `#[serde(skip)]`ed (it is derived state);
            // deserialized generators rebuild it on their first draw.
            self.cumulative_head = head_table(self.n, self.theta);
        }
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let target = u * self.harmonic;
        let head_mass = *self
            .cumulative_head
            .last()
            .expect("head table has at least one rank");
        if target <= head_mass {
            // Smallest rank whose cumulative mass reaches the target.
            let idx = self.cumulative_head.partition_point(|&c| c < target);
            return (idx as u64 + 1).min(self.n);
        }
        // Invert `head_mass + tail_mass(EXACT_LIMIT, k) = target` for k. The
        // tail integral is strictly increasing in k, so the smallest integer
        // rank covering the target is the ceiling of the continuous solution.
        let excess = target - head_mass;
        let limit = EXACT_LIMIT as f64;
        let k = if (self.theta - 1.0).abs() < 1e-9 {
            limit * excess.exp()
        } else {
            let base = excess * (1.0 - self.theta) + limit.powf(1.0 - self.theta);
            if base <= 0.0 {
                return self.n;
            }
            base.powf(1.0 / (1.0 - self.theta))
        };
        (k.ceil() as u64).clamp(EXACT_LIMIT + 1, self.n)
    }

    /// Generate `count` keys.
    pub fn take_keys(&mut self, count: usize) -> Vec<u64> {
        (0..count).map(|_| self.next_key()).collect()
    }

    /// The theoretical load fraction of each of `partitions` hash partitions
    /// when keys are assigned round-robin by rank (mirroring hash placement
    /// of distinct keys). The fractions sum to 1; a perfectly uniform
    /// distribution yields `1 / partitions` everywhere, while skew
    /// concentrates mass on the partition holding rank 1.
    ///
    /// Like [`next_key`](Self::next_key), the cost is bounded by the exact
    /// head table: ranks up to `EXACT_LIMIT` are summed exactly, and the
    /// smoothly-decaying tail beyond it — whose ranks cycle round-robin over
    /// the partitions — splits uniformly via the closed-form tail integral,
    /// so billion-key domains stay O(EXACT_LIMIT), not O(n).
    pub fn partition_weights(&self, partitions: usize) -> Vec<f64> {
        if partitions == 0 {
            return Vec::new();
        }
        let mut load = vec![0.0_f64; partitions];
        for rank in 1..=self.n.min(EXACT_LIMIT) {
            load[(rank - 1) as usize % partitions] += self.probability_of_rank(rank);
        }
        if self.n > EXACT_LIMIT {
            let tail = tail_mass(EXACT_LIMIT, self.n, self.theta) / self.harmonic;
            for w in &mut load {
                *w += tail / partitions as f64;
            }
        }
        // Beyond the exact head table the normalizing harmonic is an integral
        // approximation, so renormalize to make the weights an exact
        // distribution.
        let total: f64 = load.iter().sum();
        if total > 0.0 {
            for w in &mut load {
                *w /= total;
            }
        }
        load
    }

    /// The theoretical load fraction of the most loaded of `partitions` hash
    /// partitions when keys are assigned round-robin by rank. A perfectly
    /// uniform distribution yields `1 / partitions`; heavy skew approaches the
    /// probability of the single hottest key.
    pub fn max_partition_fraction(&self, partitions: usize) -> f64 {
        if partitions == 0 {
            return 1.0;
        }
        self.partition_weights(partitions)
            .into_iter()
            .fold(0.0, f64::max)
    }
}

/// Number of head ranks whose probability mass is summed (and tabulated)
/// exactly; the tail beyond it uses the Euler–Maclaurin integral
/// approximation so that construction never scans billion-key domains.
const EXACT_LIMIT: u64 = 10_000;

/// Cumulative mass table `H(k, theta)` for ranks `k = 1..=min(n,
/// EXACT_LIMIT)`.
fn head_table(n: u64, theta: f64) -> Vec<f64> {
    let head_len = n.min(EXACT_LIMIT) as usize;
    let mut table = Vec::with_capacity(head_len);
    let mut running = 0.0;
    for k in 1..=head_len as u64 {
        running += (k as f64).powf(-theta);
        table.push(running);
    }
    table
}

/// Integral approximation of the probability mass of ranks in `(from, to]`:
/// `∫ x^-theta dx` over that interval. Strictly increasing in `to`, which is
/// what lets `next_key` invert it in closed form.
fn tail_mass(from: u64, to: u64, theta: f64) -> f64 {
    if (theta - 1.0).abs() < 1e-9 {
        (to as f64 / from as f64).ln()
    } else {
        ((to as f64).powf(1.0 - theta) - (from as f64).powf(1.0 - theta)) / (1.0 - theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_theta_is_uniform() {
        let mut gen = ZipfKeys::new(100, 0.0, 1);
        assert!((gen.probability_of_rank(1) - 0.01).abs() < 1e-9);
        assert!((gen.probability_of_rank(100) - 0.01).abs() < 1e-9);
        let keys = gen.take_keys(20_000);
        let hot = keys.iter().filter(|&&k| k == 1).count() as f64 / keys.len() as f64;
        assert!(hot < 0.03, "uniform hottest key fraction {hot}");
    }

    #[test]
    fn high_theta_concentrates_on_the_head() {
        let mut gen = ZipfKeys::new(1000, 1.0, 2);
        let keys = gen.take_keys(50_000);
        let head = keys.iter().filter(|&&k| k <= 10).count() as f64 / keys.len() as f64;
        // With theta=1 over 1000 keys, the top-10 ranks carry ~39% of the mass.
        assert!(head > 0.30, "head fraction {head}");
        let p1 = gen.probability_of_rank(1);
        let p100 = gen.probability_of_rank(100);
        assert!(p1 / p100 > 50.0);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let gen = ZipfKeys::new(500, 0.8, 3);
        let total: f64 = (1..=500).map(|r| gen.probability_of_rank(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(gen.probability_of_rank(0), 0.0);
        assert_eq!(gen.probability_of_rank(501), 0.0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = ZipfKeys::new(100, 0.9, 7).take_keys(100);
        let b = ZipfKeys::new(100, 0.9, 7).take_keys(100);
        let c = ZipfKeys::new(100, 0.9, 8).take_keys(100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn keys_stay_in_domain() {
        let mut gen = ZipfKeys::new(64, 1.2, 11);
        for key in gen.take_keys(10_000) {
            assert!((1..=64).contains(&key));
        }
    }

    #[test]
    fn partition_imbalance_grows_with_skew() {
        let uniform = ZipfKeys::new(10_000, 0.0, 1).max_partition_fraction(8);
        let skewed = ZipfKeys::new(10_000, 1.0, 1).max_partition_fraction(8);
        assert!((uniform - 0.125).abs() < 0.01, "uniform {uniform}");
        assert!(
            skewed > uniform * 1.5,
            "skewed {skewed} vs uniform {uniform}"
        );
        // Degenerate partition count.
        assert_eq!(ZipfKeys::new(10, 0.5, 1).max_partition_fraction(0), 1.0);
        assert!(ZipfKeys::new(10, 0.5, 1).partition_weights(0).is_empty());
    }

    #[test]
    fn partition_weights_sum_to_one_and_expose_the_hot_partition() {
        let gen = ZipfKeys::new(10_000, 1.0, 1);
        let weights = gen.partition_weights(8);
        assert_eq!(weights.len(), 8);
        let total: f64 = weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum {total}");
        // Rank 1 lands on partition 0, so partition 0 is the hottest, and
        // the maximum matches the dedicated helper.
        let max = weights.iter().copied().fold(0.0, f64::max);
        assert_eq!(max, weights[0]);
        assert_eq!(max, gen.max_partition_fraction(8));
        // Uniform distributions split evenly.
        for w in ZipfKeys::new(10_000, 0.0, 1).partition_weights(4) {
            assert!((w - 0.25).abs() < 1e-3, "uniform weight {w}");
        }
    }

    #[test]
    fn partition_weights_over_huge_domains_use_the_tail_approximation() {
        // A billion-key domain must evaluate in O(EXACT_LIMIT): the exact
        // head plus a uniformly-split closed-form tail. The result is still
        // a distribution with the hot partition above its uniform share.
        let gen = ZipfKeys::new(1_000_000_000, 1.0, 1);
        let weights = gen.partition_weights(8);
        let total: f64 = weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum {total}");
        assert!(weights[0] > 1.0 / 8.0, "hot weight {}", weights[0]);
        assert_eq!(gen.max_partition_fraction(8), weights[0]);
    }

    #[test]
    fn large_domains_use_the_tail_approximation() {
        // Construction must be fast and the head probabilities sensible even
        // for a billion-key domain.
        let gen = ZipfKeys::new(1_000_000_000, 0.99, 5);
        let p1 = gen.probability_of_rank(1);
        assert!(p1 > 0.0 && p1 < 1.0);
        let gen_uniform = ZipfKeys::new(1_000_000_000, 0.0, 5);
        let p = gen_uniform.probability_of_rank(123_456_789);
        assert!((p - 1e-9).abs() < 1e-10);
    }

    #[test]
    fn bulk_draws_over_huge_domains_are_cheap() {
        // 50k draws over a billion-key domain: each draw must be O(log) in
        // the head-table size — the old implementation re-summed a 10,000
        // term harmonic series per bisection step, which would take hours
        // here. The draws must also actually exercise the closed-form tail
        // inversion (ranks beyond the tabulated head).
        let mut gen = ZipfKeys::new(1_000_000_000, 0.9, 13);
        let keys = gen.take_keys(50_000);
        assert_eq!(keys.len(), 50_000);
        assert!(keys.iter().all(|&k| (1..=1_000_000_000).contains(&k)));
        let beyond_head = keys.iter().filter(|&&k| k > 10_000).count();
        assert!(beyond_head > 0, "no draw ever landed in the tail");
        // The skew concentrates vastly more mass on the 10k-rank head than
        // the uniform expectation of 10_000/10^9 = 0.001% of draws.
        let head = keys.iter().filter(|&&k| k <= 10_000).count();
        assert!(head > keys.len() / 10, "head draws {head}");
        // Determinism is preserved across the fast path.
        assert_eq!(
            ZipfKeys::new(1_000_000_000, 0.9, 13).take_keys(100),
            keys[..100]
        );
    }

    #[test]
    fn tail_inversion_matches_the_tabulated_distribution_shape() {
        // theta = 1 exercises the logarithmic branch of the tail inversion.
        let mut gen = ZipfKeys::new(10_000_000, 1.0, 21);
        let keys = gen.take_keys(30_000);
        let head = keys.iter().filter(|&&k| k <= 10_000).count() as f64 / keys.len() as f64;
        // With theta = 1, mass of the first 10k ranks ≈ H(10k)/H(10M) ≈
        // ln(10^4)/ln(10^7) ≈ 0.57.
        assert!((head - 0.57).abs() < 0.05, "head fraction {head}");
        assert!(keys.iter().all(|&k| (1..=10_000_000).contains(&k)));
    }

    #[test]
    fn deserialized_generators_rebuild_the_head_table() {
        let mut fresh = ZipfKeys::new(1000, 0.8, 5);
        let expected = fresh.take_keys(50);
        let mut thawed = ZipfKeys::new(1000, 0.8, 5);
        // A serde round-trip leaves the skipped derived table empty; draws
        // must rebuild it instead of panicking, with identical output.
        thawed.cumulative_head.clear();
        assert_eq!(thawed.take_keys(50), expected);
    }

    #[test]
    fn parameters_are_clamped() {
        let gen = ZipfKeys::new(0, -1.0, 1);
        assert_eq!(gen.domain(), 1);
        assert_eq!(gen.theta(), 0.0);
        let gen = ZipfKeys::new(10, 99.0, 1);
        assert_eq!(gen.theta(), 5.0);
    }
}
