//! # eedc-tpch
//!
//! TPC-H–shaped workload substrate: a deterministic data generator, scale
//! factor arithmetic, the query work profiles the paper reports, and skewed
//! key generators for the data-skew extension study.
//!
//! The paper runs its experiments against TPC-H at scale factors 1000 (the
//! Vertica / Cluster-V study), 400 (the heterogeneous prototype study) and a
//! modeled 700 GB ORDERS ⋈ 2.8 TB LINEITEM join (the Section 5.4 sweeps).
//! Reproducing those experiments does not require terabytes of bytes on disk:
//!
//! * the *engine-level* experiments (the P-store joins) need relationally
//!   correct data — join keys that match with the right cardinalities and
//!   predicates with controllable selectivity — which the [`gen`] module
//!   produces deterministically at laptop-scale scale factors;
//! * the *model-level* experiments only need table and working-set **sizes**,
//!   which [`scale`] computes for any scale factor using the published TPC-H
//!   cardinalities and the paper's 20-byte projected tuple layout.
//!
//! The [`queries`] module captures the per-query execution profiles that the
//! paper measured on Vertica (how much of the query is node-local work versus
//! network repartitioning), which drive the behavioural DBMS simulators in
//! `eedc-dbmsim`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod gen;
pub mod queries;
pub mod scale;
pub mod schema;
pub mod skew;

pub use gen::{LineitemGenerator, LineitemRow, OrdersGenerator, OrdersRow};
pub use queries::{QueryId, QueryProfile};
pub use scale::ScaleFactor;
pub use schema::{projected_tuple_bytes, TpchTable};
pub use skew::ZipfKeys;
