//! Scale factor arithmetic: cardinalities and byte sizes of the TPC-H tables.

use crate::schema::{projected_tuple_bytes, TpchTable};
use eedc_simkit::units::Megabytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A TPC-H scale factor.
///
/// Scale factor 1 corresponds to roughly 1 GB of raw data; the paper uses
/// scale factors 1000 (≈1 TB) and 400 (≈400 GB). Fractional scale factors are
/// allowed so that engine-level experiments can run on laptop-sized data while
/// preserving the tables' relative cardinalities.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct ScaleFactor(pub f64);

impl ScaleFactor {
    /// The SF-1000 configuration of the Vertica / Cluster-V experiments.
    pub const SF1000: ScaleFactor = ScaleFactor(1000.0);
    /// The SF-400 configuration of the heterogeneous prototype experiments.
    pub const SF400: ScaleFactor = ScaleFactor(400.0);

    /// Construct a scale factor; values must be positive and finite.
    pub fn new(sf: f64) -> Self {
        ScaleFactor(sf)
    }

    /// The raw scale value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Row count of a table at this scale factor, using the TPC-H
    /// specification cardinalities (NATION and REGION are fixed-size).
    pub fn cardinality(self, table: TpchTable) -> u64 {
        let base: f64 = match table {
            TpchTable::Lineitem => 6_000_000.0,
            TpchTable::Orders => 1_500_000.0,
            TpchTable::Customer => 150_000.0,
            TpchTable::PartSupp => 800_000.0,
            TpchTable::Part => 200_000.0,
            TpchTable::Supplier => 10_000.0,
            TpchTable::Nation => return 25,
            TpchTable::Region => return 5,
        };
        (base * self.0).round().max(0.0) as u64
    }

    /// Size of the *projected* working set of a table at this scale factor —
    /// the paper's P-store experiments store exactly four 20-byte column
    /// projections per tuple for both LINEITEM and ORDERS (Section 4.3).
    pub fn projected_size(self, table: TpchTable) -> Megabytes {
        Megabytes::from_bytes(self.cardinality(table) * u64::from(projected_tuple_bytes(table)))
    }

    /// Size of the full-width table at this scale factor, using the average
    /// row widths of the TPC-H specification. (The Section 5.4 model sweeps
    /// quote 700 GB ORDERS / 2.8 TB LINEITEM working sets; those are carried
    /// as explicit parameters in `eedc-core::params` rather than derived from
    /// a scale factor.)
    pub fn full_size(self, table: TpchTable) -> Megabytes {
        Megabytes::from_bytes(self.cardinality(table) * u64::from(table.average_row_bytes()))
    }

    /// Average number of LINEITEM rows per ORDERS row (4 in TPC-H).
    pub fn lineitems_per_order(self) -> f64 {
        let orders = self.cardinality(TpchTable::Orders);
        if orders == 0 {
            0.0
        } else {
            self.cardinality(TpchTable::Lineitem) as f64 / orders as f64
        }
    }
}

impl fmt::Display for ScaleFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SF{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sf1_cardinalities_match_the_specification() {
        let sf = ScaleFactor::new(1.0);
        assert_eq!(sf.cardinality(TpchTable::Lineitem), 6_000_000);
        assert_eq!(sf.cardinality(TpchTable::Orders), 1_500_000);
        assert_eq!(sf.cardinality(TpchTable::Customer), 150_000);
        assert_eq!(sf.cardinality(TpchTable::Supplier), 10_000);
        assert_eq!(sf.cardinality(TpchTable::Part), 200_000);
        assert_eq!(sf.cardinality(TpchTable::PartSupp), 800_000);
        assert_eq!(sf.cardinality(TpchTable::Nation), 25);
        assert_eq!(sf.cardinality(TpchTable::Region), 5);
    }

    #[test]
    fn fixed_tables_do_not_scale() {
        assert_eq!(ScaleFactor::SF1000.cardinality(TpchTable::Nation), 25);
        assert_eq!(ScaleFactor::SF400.cardinality(TpchTable::Region), 5);
    }

    #[test]
    fn sf400_projected_working_sets_match_section_5_2() {
        // "The working sets (after projection) for the LINEITEM and the ORDERS
        // tables are 48GB and 12GB respectively."
        let sf = ScaleFactor::SF400;
        let lineitem = sf.projected_size(TpchTable::Lineitem).as_gigabytes();
        let orders = sf.projected_size(TpchTable::Orders).as_gigabytes();
        assert!((lineitem - 48.0).abs() < 0.5, "lineitem {lineitem} GB");
        assert!((orders - 12.0).abs() < 0.2, "orders {orders} GB");
    }

    #[test]
    fn sf1000_full_sizes_are_roughly_a_terabyte() {
        // TPC-H at scale factor 1000 is "1TB (scale 1000)" in Table 1; the
        // LINEITEM table dominates the total size.
        let sf = ScaleFactor::SF1000;
        let total: f64 = [
            TpchTable::Lineitem,
            TpchTable::Orders,
            TpchTable::Customer,
            TpchTable::Part,
            TpchTable::PartSupp,
            TpchTable::Supplier,
            TpchTable::Nation,
            TpchTable::Region,
        ]
        .into_iter()
        .map(|t| sf.full_size(t).as_gigabytes())
        .sum();
        assert!(total > 700.0 && total < 1400.0, "total {total} GB");
        assert!(
            sf.full_size(TpchTable::Lineitem).value()
                > sf.full_size(TpchTable::Orders).value() * 3.0
        );
    }

    #[test]
    fn fractional_scale_factors_shrink_proportionally() {
        let sf = ScaleFactor::new(0.01);
        assert_eq!(sf.cardinality(TpchTable::Lineitem), 60_000);
        assert_eq!(sf.cardinality(TpchTable::Orders), 15_000);
        assert!((sf.lineitems_per_order() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ScaleFactor::SF1000.to_string(), "SF1000");
        assert_eq!(ScaleFactor::new(0.5).to_string(), "SF0.5");
    }
}
