//! Deterministic TPC-H–shaped data generation.
//!
//! The generators produce the *projected* tuples the paper's P-store
//! experiments operate on (Section 4.3): four columns per tuple for LINEITEM
//! and ORDERS. Generation is fully deterministic for a given scale factor and
//! seed, so tests and benchmarks are reproducible, and iterator-based so that
//! arbitrarily large tables can be streamed without materialising them.
//!
//! The value distributions follow the TPC-H specification where it matters to
//! the paper's experiments:
//!
//! * every ORDERS key has between 1 and 7 LINEITEM rows (4 on average),
//! * `L_SHIPDATE` and `O_ORDERDATE` are uniform over the 1992–1998 date range,
//!   so a date-range predicate of width `w` days has selectivity `w / 2405`,
//! * `O_CUSTKEY` is uniform over the CUSTOMER key domain, so an equality or
//!   range predicate on it has a predictable selectivity.

use crate::scale::ScaleFactor;
use crate::schema::TpchTable;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Number of distinct ship/order dates in the generated date domain
/// (1992-01-01 .. 1998-08-02, as in the TPC-H specification).
pub const DATE_DOMAIN_DAYS: i32 = 2405;

/// A projected LINEITEM tuple: the four columns used by the paper's joins,
/// 20 bytes of payload plus the row's line number for verification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LineitemRow {
    /// `L_ORDERKEY`: foreign key into ORDERS.
    pub orderkey: i64,
    /// `L_EXTENDEDPRICE` in cents.
    pub extendedprice: i64,
    /// `L_DISCOUNT` in basis points (0–1000).
    pub discount: i32,
    /// `L_SHIPDATE` as days since 1992-01-01.
    pub shipdate: i32,
}

/// A projected ORDERS tuple: the four columns used by the paper's joins.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrdersRow {
    /// `O_ORDERKEY`: primary key.
    pub orderkey: i64,
    /// `O_ORDERDATE` as days since 1992-01-01.
    pub orderdate: i32,
    /// `O_SHIPPRIORITY` (0–4).
    pub shippriority: i32,
    /// `O_CUSTKEY`: foreign key into CUSTOMER.
    pub custkey: i64,
}

/// Deterministic generator of ORDERS rows.
#[derive(Debug, Clone)]
pub struct OrdersGenerator {
    next_key: i64,
    last_key: i64,
    customers: i64,
    rng: SmallRng,
}

impl OrdersGenerator {
    /// Generator over the full ORDERS table at `scale`, seeded for
    /// reproducibility.
    pub fn new(scale: ScaleFactor, seed: u64) -> Self {
        let orders = scale.cardinality(TpchTable::Orders) as i64;
        let customers = (scale.cardinality(TpchTable::Customer) as i64).max(1);
        Self {
            next_key: 1,
            last_key: orders,
            customers,
            rng: SmallRng::seed_from_u64(seed ^ 0x00D5E55),
        }
    }

    /// Number of rows this generator will produce in total.
    pub fn total_rows(&self) -> u64 {
        (self.last_key.max(0)) as u64
    }
}

impl Iterator for OrdersGenerator {
    type Item = OrdersRow;

    fn next(&mut self) -> Option<OrdersRow> {
        if self.next_key > self.last_key {
            return None;
        }
        let orderkey = self.next_key;
        self.next_key += 1;
        Some(OrdersRow {
            orderkey,
            orderdate: self.rng.gen_range(0..DATE_DOMAIN_DAYS),
            shippriority: self.rng.gen_range(0..5),
            custkey: self.rng.gen_range(1..=self.customers),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.last_key - self.next_key + 1).max(0) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for OrdersGenerator {}

/// Deterministic generator of LINEITEM rows.
///
/// Every order key receives between 1 and 7 line items (drawn uniformly, 4 on
/// average as in the specification), so foreign-key joins against ORDERS have
/// the correct fan-out.
#[derive(Debug, Clone)]
pub struct LineitemGenerator {
    current_order: i64,
    last_order: i64,
    lines_left_in_order: u32,
    rng: SmallRng,
}

impl LineitemGenerator {
    /// Generator over the full LINEITEM table at `scale`, seeded for
    /// reproducibility.
    pub fn new(scale: ScaleFactor, seed: u64) -> Self {
        let orders = scale.cardinality(TpchTable::Orders) as i64;
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x11E17E);
        let first_lines = if orders > 0 { rng.gen_range(1..=7) } else { 0 };
        Self {
            current_order: 1,
            last_order: orders,
            lines_left_in_order: first_lines,
            rng,
        }
    }

    /// Expected number of rows (exact count varies with the per-order draw).
    pub fn expected_rows(scale: ScaleFactor) -> u64 {
        scale.cardinality(TpchTable::Lineitem)
    }
}

impl Iterator for LineitemGenerator {
    type Item = LineitemRow;

    fn next(&mut self) -> Option<LineitemRow> {
        while self.lines_left_in_order == 0 {
            self.current_order += 1;
            if self.current_order > self.last_order {
                return None;
            }
            self.lines_left_in_order = self.rng.gen_range(1..=7);
        }
        if self.current_order > self.last_order {
            return None;
        }
        self.lines_left_in_order -= 1;
        Some(LineitemRow {
            orderkey: self.current_order,
            extendedprice: self.rng.gen_range(10_000..=1_000_000),
            discount: self.rng.gen_range(0..=1000),
            shipdate: self.rng.gen_range(0..DATE_DOMAIN_DAYS),
        })
    }
}

/// The ship-date threshold (in days since 1992-01-01) below which a fraction
/// `selectivity` of uniformly distributed dates fall. Used to build predicates
/// with a target selectivity, mirroring how the paper dials the LINEITEM and
/// ORDERS predicates between 1% and 100%.
pub fn date_cutoff_for_selectivity(selectivity: f64) -> i32 {
    let s = selectivity.clamp(0.0, 1.0);
    (s * DATE_DOMAIN_DAYS as f64).round() as i32
}

/// The customer-key threshold below which a fraction `selectivity` of
/// uniformly distributed `O_CUSTKEY` values fall, for the ORDERS-side
/// predicate of the paper's Q3-style join.
pub fn custkey_cutoff_for_selectivity(scale: ScaleFactor, selectivity: f64) -> i64 {
    let customers = scale.cardinality(TpchTable::Customer) as f64;
    let s = selectivity.clamp(0.0, 1.0);
    (s * customers).round() as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: ScaleFactor = ScaleFactor(0.001);

    #[test]
    fn orders_generator_is_deterministic_and_complete() {
        let rows_a: Vec<OrdersRow> = OrdersGenerator::new(TINY, 7).collect();
        let rows_b: Vec<OrdersRow> = OrdersGenerator::new(TINY, 7).collect();
        assert_eq!(rows_a, rows_b);
        assert_eq!(rows_a.len(), 1500);
        // Keys are dense and unique: 1..=1500.
        let mut keys: Vec<i64> = rows_a.iter().map(|r| r.orderkey).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 1500);
        assert_eq!(keys.first().copied(), Some(1));
        assert_eq!(keys.last().copied(), Some(1500));
    }

    #[test]
    fn different_seeds_produce_different_attributes() {
        let a: Vec<OrdersRow> = OrdersGenerator::new(TINY, 7).collect();
        let b: Vec<OrdersRow> = OrdersGenerator::new(TINY, 8).collect();
        assert_ne!(a, b);
        // but the key domain is identical.
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn lineitem_fanout_averages_four() {
        let rows: Vec<LineitemRow> = LineitemGenerator::new(TINY, 3).collect();
        let orders = 1500.0;
        let fanout = rows.len() as f64 / orders;
        assert!(fanout > 3.5 && fanout < 4.5, "fanout {fanout}");
        // Every order key is within the ORDERS key domain.
        assert!(rows.iter().all(|r| r.orderkey >= 1 && r.orderkey <= 1500));
    }

    #[test]
    fn every_lineitem_order_key_exists_in_orders() {
        let order_keys: std::collections::HashSet<i64> =
            OrdersGenerator::new(TINY, 7).map(|r| r.orderkey).collect();
        for row in LineitemGenerator::new(TINY, 7) {
            assert!(order_keys.contains(&row.orderkey));
        }
    }

    #[test]
    fn date_predicate_selectivity_is_predictable() {
        let rows: Vec<LineitemRow> = LineitemGenerator::new(ScaleFactor(0.01), 5).collect();
        for target in [0.01, 0.05, 0.10, 0.50] {
            let cutoff = date_cutoff_for_selectivity(target);
            let hits = rows.iter().filter(|r| r.shipdate < cutoff).count();
            let observed = hits as f64 / rows.len() as f64;
            assert!(
                (observed - target).abs() < 0.02,
                "target {target}, observed {observed}"
            );
        }
    }

    #[test]
    fn custkey_predicate_selectivity_is_predictable() {
        let scale = ScaleFactor(0.01);
        let rows: Vec<OrdersRow> = OrdersGenerator::new(scale, 5).collect();
        for target in [0.01, 0.10, 0.50] {
            let cutoff = custkey_cutoff_for_selectivity(scale, target);
            let hits = rows.iter().filter(|r| r.custkey <= cutoff).count();
            let observed = hits as f64 / rows.len() as f64;
            assert!(
                (observed - target).abs() < 0.03,
                "target {target}, observed {observed}"
            );
        }
    }

    #[test]
    fn cutoffs_are_clamped() {
        assert_eq!(date_cutoff_for_selectivity(-1.0), 0);
        assert_eq!(date_cutoff_for_selectivity(2.0), DATE_DOMAIN_DAYS);
        assert_eq!(
            custkey_cutoff_for_selectivity(ScaleFactor(1.0), 2.0),
            150_000
        );
    }

    #[test]
    fn size_hint_matches_actual_count() {
        let generator = OrdersGenerator::new(TINY, 1);
        let (lo, hi) = generator.size_hint();
        let count = generator.count();
        assert_eq!(lo, count);
        assert_eq!(hi, Some(count));
    }
}
