//! The TPC-H schema: table identities, row widths, and the column projections
//! the paper's P-store experiments use.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The eight TPC-H base tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TpchTable {
    /// LINEITEM — the fact table (6 M rows per scale factor unit).
    Lineitem,
    /// ORDERS (1.5 M rows per scale factor unit).
    Orders,
    /// CUSTOMER (150 K rows per scale factor unit).
    Customer,
    /// PARTSUPP (800 K rows per scale factor unit).
    PartSupp,
    /// PART (200 K rows per scale factor unit).
    Part,
    /// SUPPLIER (10 K rows per scale factor unit).
    Supplier,
    /// NATION (fixed 25 rows).
    Nation,
    /// REGION (fixed 5 rows).
    Region,
}

impl TpchTable {
    /// All base tables, largest first.
    pub const ALL: [TpchTable; 8] = [
        TpchTable::Lineitem,
        TpchTable::PartSupp,
        TpchTable::Orders,
        TpchTable::Part,
        TpchTable::Customer,
        TpchTable::Supplier,
        TpchTable::Nation,
        TpchTable::Region,
    ];

    /// Average full-width row size in bytes (TPC-H specification estimates,
    /// uncompressed).
    pub fn average_row_bytes(self) -> u32 {
        match self {
            TpchTable::Lineitem => 112,
            TpchTable::Orders => 121,
            TpchTable::Customer => 179,
            TpchTable::PartSupp => 144,
            TpchTable::Part => 155,
            TpchTable::Supplier => 159,
            TpchTable::Nation => 128,
            TpchTable::Region => 124,
        }
    }

    /// The table name as it appears in the TPC-H specification.
    pub fn name(self) -> &'static str {
        match self {
            TpchTable::Lineitem => "LINEITEM",
            TpchTable::Orders => "ORDERS",
            TpchTable::Customer => "CUSTOMER",
            TpchTable::PartSupp => "PARTSUPP",
            TpchTable::Part => "PART",
            TpchTable::Supplier => "SUPPLIER",
            TpchTable::Nation => "NATION",
            TpchTable::Region => "REGION",
        }
    }
}

impl fmt::Display for TpchTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Size in bytes of the projected tuples used by the paper's P-store
/// experiments (Section 4.3): four columns, 20 bytes per tuple, for both
/// LINEITEM (`L_ORDERKEY, L_EXTENDEDPRICE, L_DISCOUNT, L_SHIPDATE`) and ORDERS
/// (`O_ORDERKEY, O_ORDERDATE, O_SHIPPRIORITY, O_CUSTKEY`). Other tables fall
/// back to their full row width.
pub fn projected_tuple_bytes(table: TpchTable) -> u32 {
    match table {
        TpchTable::Lineitem | TpchTable::Orders => 20,
        other => other.average_row_bytes(),
    }
}

/// Columns of the LINEITEM projection used throughout the paper's
/// experiments.
pub const LINEITEM_PROJECTION: [&str; 4] =
    ["L_ORDERKEY", "L_EXTENDEDPRICE", "L_DISCOUNT", "L_SHIPDATE"];

/// Columns of the ORDERS projection used throughout the paper's experiments.
pub const ORDERS_PROJECTION: [&str; 4] =
    ["O_ORDERKEY", "O_ORDERDATE", "O_SHIPPRIORITY", "O_CUSTKEY"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projected_tuples_are_20_bytes_for_the_join_tables() {
        assert_eq!(projected_tuple_bytes(TpchTable::Lineitem), 20);
        assert_eq!(projected_tuple_bytes(TpchTable::Orders), 20);
        assert_eq!(
            projected_tuple_bytes(TpchTable::Supplier),
            TpchTable::Supplier.average_row_bytes()
        );
    }

    #[test]
    fn projections_have_four_columns() {
        assert_eq!(LINEITEM_PROJECTION.len(), 4);
        assert_eq!(ORDERS_PROJECTION.len(), 4);
    }

    #[test]
    fn names_and_display_agree() {
        for table in TpchTable::ALL {
            assert_eq!(table.to_string(), table.name());
            assert!(table.average_row_bytes() > 0);
        }
        assert_eq!(TpchTable::Lineitem.name(), "LINEITEM");
    }

    #[test]
    fn all_lists_every_table_once() {
        let mut names: Vec<&str> = TpchTable::ALL.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}
