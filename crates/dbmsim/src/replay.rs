//! Trace replay: integrate a cluster trace through the node power models.
//!
//! This is the second half of the paper's Section 3 methodology. The first
//! half measures (or synthesizes) a per-node busy-share trace
//! ([`crate::trace`]); replay walks that trace phase by phase, maps each
//! node's CPU busy share to a utilization through the Section 3 model
//! (`u = G + busy · (1 − G)`), evaluates the node's published
//! utilization→power regression at that utilization, and integrates power
//! over the phase duration. The result is the same shape every other lens
//! produces — response time, total energy, per-node utilization and energy —
//! plus the per-phase series the figures plot.
//!
//! Replay is deliberately engine-agnostic: engine behaviour (disk staging,
//! mid-query restarts — the Section 3.2 DBMS-X story) is expressed as a
//! *trace transformation* in [`crate::engines`], so the same replay core
//! evaluates any engine.
//!
//! ```
//! use eedc_dbmsim::{replay, BusyShares, UtilizationTrace};
//! use eedc_simkit::catalog::cluster_v_node;
//! use eedc_simkit::units::Seconds;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two nodes, fully network-bound for 8 s, then CPU-saturated for 2 s.
//! let mut trace = UtilizationTrace::new("toy shuffle");
//! trace.push_phase("shuffle", Seconds(8.0), vec![BusyShares::new(0.0, 0.0, 1.0)?; 2])?;
//! trace.push_phase("probe", Seconds(2.0), vec![BusyShares::new(1.0, 0.0, 0.0)?; 2])?;
//!
//! let nodes = vec![cluster_v_node(); 2];
//! let result = replay(&trace, &nodes)?;
//! assert_eq!(result.response_time(), Seconds(10.0));
//! // While network-bound the nodes idle at the engine floor but keep
//! // drawing near-idle wall power — the energy-proportionality gap in
//! // miniature: 80% of the time contributes far more than 0% of the energy.
//! let stalled = result.phases[0].energy;
//! assert!(stalled.value() > 0.3 * result.energy().value());
//! # Ok(())
//! # }
//! ```

use crate::trace::{utilization_from_busy_share, UtilizationTrace};
use eedc_simkit::error::SimError;
use eedc_simkit::units::{Joules, Megabytes, Seconds};
use eedc_simkit::NodeSpec;
use serde::{Deserialize, Serialize};

/// One replayed phase: the trace phase's shape evaluated against concrete
/// node hardware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayPhase {
    /// Phase label, carried from the trace.
    pub label: String,
    /// Wall-clock duration of the phase.
    pub duration: Seconds,
    /// Cluster energy over the phase.
    pub energy: Joules,
    /// Per-node CPU utilization during the phase (floor + busy share of the
    /// headroom), in cluster node order.
    pub node_utilization: Vec<f64>,
    /// Per-node energy over the phase, in cluster node order; sums to
    /// `energy`.
    pub node_energy: Vec<Joules>,
    /// Longest per-node CPU busy time in the phase.
    pub cpu_time: Seconds,
    /// Longest per-node disk busy time in the phase.
    pub disk_time: Seconds,
    /// Longest per-node network busy time in the phase.
    pub network_time: Seconds,
    /// Port-volume estimate of the bytes that crossed the network during the
    /// phase: the sum over nodes of busy-share × port bandwidth × duration.
    /// For balanced transfer patterns (each port's ingress ≈ egress) this is
    /// the transferred volume; for lopsided patterns it overestimates by up
    /// to 2×.
    pub network_bytes: Megabytes,
}

/// The result of replaying a trace over concrete hardware: per-phase series
/// plus whole-run aggregates, mirroring what a measured run reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayResult {
    /// Label of the replayed trace.
    pub label: String,
    /// The replayed phases, in trace order.
    pub phases: Vec<ReplayPhase>,
}

impl ReplayResult {
    /// Total response time (phases are sequential).
    pub fn response_time(&self) -> Seconds {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// Total cluster energy over the run.
    pub fn energy(&self) -> Joules {
        self.phases.iter().map(|p| p.energy).sum()
    }

    /// Time-averaged per-node CPU utilization over the run, in cluster node
    /// order.
    pub fn node_utilization(&self) -> Vec<f64> {
        let total = self.response_time().value();
        let n = self.phases.first().map_or(0, |p| p.node_utilization.len());
        let mut averaged = vec![0.0; n];
        if total <= f64::EPSILON {
            return averaged;
        }
        for phase in &self.phases {
            for (acc, &u) in averaged.iter_mut().zip(&phase.node_utilization) {
                *acc += u * phase.duration.value();
            }
        }
        for u in &mut averaged {
            *u /= total;
        }
        averaged
    }

    /// Per-node energy over the run, in cluster node order; sums to
    /// [`energy`](Self::energy).
    pub fn node_energy(&self) -> Vec<Joules> {
        let n = self.phases.first().map_or(0, |p| p.node_energy.len());
        let mut totals = vec![Joules::zero(); n];
        for phase in &self.phases {
            for (acc, &e) in totals.iter_mut().zip(&phase.node_energy) {
                *acc += e;
            }
        }
        totals
    }

    /// The replayed phase with the given label, if present.
    pub fn phase(&self, label: &str) -> Option<&ReplayPhase> {
        self.phases.iter().find(|p| p.label == label)
    }
}

/// Replay `trace` over `nodes`: integrate every node's busy-share signal
/// through its utilization→power model, phase by phase.
///
/// The trace must be non-empty and describe exactly `nodes.len()` nodes.
pub fn replay(trace: &UtilizationTrace, nodes: &[NodeSpec]) -> Result<ReplayResult, SimError> {
    if trace.is_empty() {
        return Err(SimError::invalid(format!(
            "trace '{}' has no phases to replay",
            trace.label()
        )));
    }
    if trace.node_count() != nodes.len() {
        return Err(SimError::invalid(format!(
            "trace '{}' describes {} nodes but {} specs were supplied",
            trace.label(),
            trace.node_count(),
            nodes.len()
        )));
    }
    let mut phases = Vec::with_capacity(trace.len());
    for phase in trace.phases() {
        let mut energy = Joules::zero();
        let mut node_utilization = Vec::with_capacity(nodes.len());
        let mut node_energy = Vec::with_capacity(nodes.len());
        let mut cpu = 0.0_f64;
        let mut disk = 0.0_f64;
        let mut network = 0.0_f64;
        let mut network_bytes = Megabytes::zero();
        for (id, node) in nodes.iter().enumerate() {
            let shares = &phase.node_shares[id];
            let utilization = utilization_from_busy_share(shares.cpu, node.utilization_floor);
            node_utilization.push(utilization);
            let joules = node.power_at(utilization) * phase.duration;
            node_energy.push(joules);
            energy += joules;
            cpu = cpu.max(shares.cpu);
            disk = disk.max(shares.disk);
            network = network.max(shares.network);
            network_bytes += phase.node_network_bytes(id, node);
        }
        phases.push(ReplayPhase {
            label: phase.label.clone(),
            duration: phase.duration,
            energy,
            node_utilization,
            node_energy,
            cpu_time: phase.duration * cpu,
            disk_time: phase.duration * disk,
            network_time: phase.duration * network,
            network_bytes,
        });
    }
    Ok(ReplayResult {
        label: trace.label().to_string(),
        phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::BusyShares;
    use eedc_simkit::catalog::{cluster_v_node, laptop_b};

    fn shares(cpu: f64, disk: f64, network: f64) -> BusyShares {
        BusyShares::new(cpu, disk, network).unwrap()
    }

    fn two_phase_trace(n: usize) -> UtilizationTrace {
        let mut trace = UtilizationTrace::new("q");
        trace
            .push_phase("build", Seconds(2.0), vec![shares(0.5, 0.0, 1.0); n])
            .unwrap();
        trace
            .push_phase("probe", Seconds(8.0), vec![shares(0.9, 0.0, 1.0); n])
            .unwrap();
        trace
    }

    #[test]
    fn replay_matches_the_closed_form_integral() {
        let spec = cluster_v_node();
        let nodes = vec![spec.clone(); 4];
        let result = replay(&two_phase_trace(4), &nodes).unwrap();
        assert_eq!(result.response_time(), Seconds(10.0));
        assert_eq!(result.phases.len(), 2);
        // Per node: power at u(0.5) × 2 s + power at u(0.9) × 8 s.
        let u = |share: f64| utilization_from_busy_share(share, spec.utilization_floor);
        let expected_per_node =
            spec.power_at(u(0.5)) * Seconds(2.0) + spec.power_at(u(0.9)) * Seconds(8.0);
        let expected = expected_per_node.value() * 4.0;
        assert!((result.energy().value() - expected).abs() < 1e-9 * expected);
        // Per-node energies sum to the total and match the per-node signal
        // integration path.
        let node_total: f64 = result.node_energy().iter().map(|e| e.value()).sum();
        assert!((node_total - result.energy().value()).abs() < 1e-9 * node_total);
        let signal = two_phase_trace(4).node_cpu_trace(0, &spec).unwrap();
        let via_signal = signal.energy_with(&spec.power_model);
        assert!((via_signal.value() - expected_per_node.value()).abs() < 1e-9);
        // Time-averaged utilization interpolates the two phases.
        let avg = result.node_utilization()[0];
        assert!((avg - (u(0.5) * 0.2 + u(0.9) * 0.8)).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_nodes_draw_their_own_power() {
        let nodes = vec![cluster_v_node(), laptop_b()];
        let result = replay(&two_phase_trace(2), &nodes).unwrap();
        let energy = result.node_energy();
        // The Wimpy laptop burns roughly a tenth of the Beefy server.
        assert!(energy[1].value() < 0.2 * energy[0].value());
        // Different floors produce different utilizations for equal shares.
        assert!(
            result.phases[0].node_utilization[0] > result.phases[0].node_utilization[1],
            "Beefy floor (0.25) sits above the Wimpy floor"
        );
    }

    #[test]
    fn busy_time_and_port_volumes_are_reported() {
        let nodes = vec![cluster_v_node(); 2];
        let mut trace = UtilizationTrace::new("q");
        trace
            .push_phase("stage", Seconds(10.0), vec![shares(0.0, 0.6, 0.3); 2])
            .unwrap();
        let result = replay(&trace, &nodes).unwrap();
        let phase = result.phase("stage").unwrap();
        assert_eq!(phase.cpu_time, Seconds::zero());
        assert_eq!(phase.disk_time, Seconds(6.0));
        assert_eq!(phase.network_time, Seconds(3.0));
        let expected = nodes[0].network_bandwidth * Seconds(3.0) * 2.0;
        assert!((phase.network_bytes.value() - expected.value()).abs() < 1e-9);
        assert!(result.phase("missing").is_none());
    }

    #[test]
    fn degenerate_replays_are_rejected() {
        let nodes = vec![cluster_v_node(); 2];
        assert!(replay(&UtilizationTrace::new("empty"), &nodes).is_err());
        assert!(replay(&two_phase_trace(4), &nodes).is_err());
        // Empty-result aggregates stay well-defined.
        let empty = ReplayResult {
            label: "none".into(),
            phases: Vec::new(),
        };
        assert_eq!(empty.response_time(), Seconds::zero());
        assert!(empty.node_utilization().is_empty());
        assert!(empty.node_energy().is_empty());
    }
}
