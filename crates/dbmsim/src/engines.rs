//! Engine behaviour: how a DBMS shapes a query's utilization trace.
//!
//! Section 3.2 of the paper repeats the scale-down study on a second
//! commercial engine ("DBMS-X") and finds the energy story changes for
//! behavioural — not architectural — reasons: unlike the pipelined,
//! memory-resident P-store execution, DBMS-X *stages* repartitioned
//! intermediates through disk between execution phases, and a mid-query
//! fault or reconfiguration makes it *restart* the query, paying the
//! already-completed work again. Both behaviours stretch response time
//! while the CPUs sit at the engine utilization floor, so energy rises much
//! faster than time — the engine, not the hardware, wastes the joules.
//!
//! An [`EngineBehaviour`] captures exactly that as a *trace
//! transformation*: it takes the idealized execution trace (measured from a
//! `PStoreCluster` run or synthesized from the analytical model) and
//! returns the trace the engine would actually exhibit — extra disk-staging
//! phases after every network-bound phase, and redo prefixes for each
//! restart. [`crate::replay()`] then integrates either trace identically, so
//! engine what-ifs compose with every estimator lens.
//!
//! ```
//! use eedc_dbmsim::{replay, BusyShares, EngineBehaviour, UtilizationTrace};
//! use eedc_simkit::catalog::cluster_v_node;
//! use eedc_simkit::units::Seconds;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A shuffle-heavy trace: both phases keep the ports saturated.
//! let nodes = vec![cluster_v_node(); 4];
//! let mut trace = UtilizationTrace::new("Q3-style join");
//! trace.push_phase("build", Seconds(10.0), vec![BusyShares::new(0.3, 0.0, 1.0)?; 4])?;
//! trace.push_phase("probe", Seconds(40.0), vec![BusyShares::new(0.5, 0.0, 1.0)?; 4])?;
//!
//! let pstore = replay(&EngineBehaviour::pstore_like().apply(&trace, &nodes)?, &nodes)?;
//! let dbms_x = replay(&EngineBehaviour::dbms_x().apply(&trace, &nodes)?, &nodes)?;
//! // Disk staging and the mid-query restart strictly stretch both time and
//! // energy — the Section 3.2 observation.
//! assert!(dbms_x.response_time() > pstore.response_time());
//! assert!(dbms_x.energy() > pstore.energy());
//! // The staged run interleaves new disk-bound phases into the series.
//! assert!(dbms_x.phase("build/stage").is_some());
//! # Ok(())
//! # }
//! ```

use crate::trace::{BusyShares, UtilizationTrace};
use eedc_simkit::error::SimError;
use eedc_simkit::units::Seconds;
use eedc_simkit::NodeSpec;
use serde::{Deserialize, Serialize};

/// Mid-query restart behaviour: how often the engine aborts a run and how
/// much of the completed work each abort throws away.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RestartPolicy {
    /// Number of mid-query restarts over the run.
    pub restarts: usize,
    /// How far through the run (as a fraction of its total time) each abort
    /// strikes, in `[0, 1]` — the aborted prefix is re-executed from the
    /// start.
    pub redo_fraction: f64,
}

impl RestartPolicy {
    /// No restarts at all (the P-store behaviour).
    pub fn none() -> Self {
        Self {
            restarts: 0,
            redo_fraction: 0.0,
        }
    }

    /// A validated restart policy.
    pub fn new(restarts: usize, redo_fraction: f64) -> Result<Self, SimError> {
        let policy = Self {
            restarts,
            redo_fraction,
        };
        policy.validate()?;
        Ok(policy)
    }

    fn validate(&self) -> Result<(), SimError> {
        if !(0.0..=1.0).contains(&self.redo_fraction) {
            return Err(SimError::invalid(format!(
                "redo fraction {} outside [0, 1]",
                self.redo_fraction
            )));
        }
        Ok(())
    }
}

/// The behavioural profile of a database engine, expressed as a trace
/// transformation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineBehaviour {
    /// Engine name, used in labels and estimator/report columns.
    pub name: String,
    /// Whether repartitioned intermediates are staged through disk between
    /// phases (written after the producing phase, read back by the
    /// consuming side) instead of pipelined in memory.
    pub disk_staging: bool,
    /// Mid-query restart behaviour.
    pub restart: RestartPolicy,
}

impl EngineBehaviour {
    /// The P-store behaviour of Sections 4–5: shuffled intermediates are
    /// pipelined in memory and a query never restarts — the transformation
    /// is the identity.
    pub fn pstore_like() -> Self {
        Self {
            name: "p-store".into(),
            disk_staging: false,
            restart: RestartPolicy::none(),
        }
    }

    /// The Section 3.2 DBMS-X behaviour: disk-staged intermediates plus one
    /// representative mid-query restart that strikes halfway through the
    /// run. Tune the fields (or [`RestartPolicy`]) for engine what-ifs.
    pub fn dbms_x() -> Self {
        Self {
            name: "dbms-x".into(),
            disk_staging: true,
            restart: RestartPolicy {
                restarts: 1,
                redo_fraction: 0.5,
            },
        }
    }

    /// A custom engine behaviour.
    pub fn new(
        name: impl Into<String>,
        disk_staging: bool,
        restart: RestartPolicy,
    ) -> Result<Self, SimError> {
        restart.validate()?;
        Ok(Self {
            name: name.into(),
            disk_staging,
            restart,
        })
    }

    /// Shape `trace` the way this engine would execute it on `nodes`.
    ///
    /// Disk staging appends, after every phase with network activity, a
    /// staging phase in which each node writes the volume its port moved and
    /// reads it back at its disk bandwidth (CPUs idle at the engine floor —
    /// which is exactly why staging costs energy out of proportion to its
    /// time). Restarts then prepend `restarts` redo copies of the first
    /// `redo_fraction` of the staged trace: work the engine completed before
    /// each abort and had to repeat.
    pub fn apply(
        &self,
        trace: &UtilizationTrace,
        nodes: &[NodeSpec],
    ) -> Result<UtilizationTrace, SimError> {
        self.restart.validate()?;
        if trace.node_count() != nodes.len() {
            return Err(SimError::invalid(format!(
                "trace '{}' describes {} nodes but {} specs were supplied",
                trace.label(),
                trace.node_count(),
                nodes.len()
            )));
        }
        let mut staged = UtilizationTrace::new(format!("{} [{}]", trace.label(), self.name));
        for phase in trace.phases() {
            staged.push_phase(
                phase.label.clone(),
                phase.duration,
                phase.node_shares.clone(),
            )?;
            if !self.disk_staging {
                continue;
            }
            // Write + read the port-observed volume at each node's disk rate.
            let stage_times: Vec<Seconds> = nodes
                .iter()
                .enumerate()
                .map(|(id, node)| phase.node_network_bytes(id, node) * 2.0 / node.disk_bandwidth)
                .collect();
            let stage_duration = stage_times
                .iter()
                .copied()
                .fold(Seconds::zero(), Seconds::max);
            if stage_duration.value() <= 0.0 {
                continue;
            }
            let shares = stage_times
                .iter()
                .map(|t| BusyShares {
                    cpu: 0.0,
                    disk: (t.value() / stage_duration.value()).clamp(0.0, 1.0),
                    network: 0.0,
                })
                .collect();
            staged.push_phase(format!("{}/stage", phase.label), stage_duration, shares)?;
        }

        if self.restart.restarts == 0 || self.restart.redo_fraction <= 0.0 {
            return Ok(staged);
        }
        let redo = staged.prefix(staged.total_time() * self.restart.redo_fraction);
        let mut shaped = UtilizationTrace::new(staged.label().to_string());
        for attempt in 1..=self.restart.restarts {
            for phase in redo.phases() {
                shaped.push_phase(
                    format!("redo{attempt}/{}", phase.label),
                    phase.duration,
                    phase.node_shares.clone(),
                )?;
            }
        }
        for phase in staged.phases() {
            shaped.push_phase(
                phase.label.clone(),
                phase.duration,
                phase.node_shares.clone(),
            )?;
        }
        Ok(shaped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay;
    use eedc_simkit::catalog::cluster_v_node;

    fn shares(cpu: f64, disk: f64, network: f64) -> BusyShares {
        BusyShares::new(cpu, disk, network).unwrap()
    }

    fn shuffle_trace(n: usize) -> UtilizationTrace {
        let mut trace = UtilizationTrace::new("q");
        trace
            .push_phase("build", Seconds(10.0), vec![shares(0.3, 0.0, 1.0); n])
            .unwrap();
        trace
            .push_phase("probe", Seconds(40.0), vec![shares(0.5, 0.0, 1.0); n])
            .unwrap();
        trace
    }

    #[test]
    fn pstore_behaviour_is_the_identity_up_to_the_label() {
        let nodes = vec![cluster_v_node(); 4];
        let trace = shuffle_trace(4);
        let shaped = EngineBehaviour::pstore_like()
            .apply(&trace, &nodes)
            .unwrap();
        assert_eq!(shaped.phases(), trace.phases());
        assert!(shaped.label().contains("p-store"), "{}", shaped.label());
    }

    #[test]
    fn disk_staging_inserts_floor_power_phases() {
        let nodes = vec![cluster_v_node(); 4];
        let engine = EngineBehaviour::new("stager", true, RestartPolicy::none()).unwrap();
        let shaped = engine.apply(&shuffle_trace(4), &nodes).unwrap();
        // build, build/stage, probe, probe/stage.
        assert_eq!(shaped.len(), 4);
        assert_eq!(shaped.phases()[1].label, "build/stage");
        // The staging phase writes and reads the port volume at disk rate:
        // 10 s of saturated port at 100 MB/s = 1000 MB, x2 / 1200 MB/s.
        let node = cluster_v_node();
        let volume = node.network_bandwidth * Seconds(10.0);
        let expected = volume * 2.0 / node.disk_bandwidth;
        assert!((shaped.phases()[1].duration.value() - expected.value()).abs() < 1e-9);
        // Homogeneous cluster: every node's disk is equally busy, CPUs idle.
        for s in &shaped.phases()[1].node_shares {
            assert_eq!(s.cpu, 0.0);
            assert!((s.disk - 1.0).abs() < 1e-12);
            assert_eq!(s.network, 0.0);
        }
        // A network-free trace stages nothing.
        let mut local = UtilizationTrace::new("local");
        local
            .push_phase("scan", Seconds(5.0), vec![shares(1.0, 0.0, 0.0); 4])
            .unwrap();
        assert_eq!(engine.apply(&local, &nodes).unwrap().len(), 1);
    }

    #[test]
    fn restarts_prepend_redo_prefixes() {
        let nodes = vec![cluster_v_node(); 2];
        let engine =
            EngineBehaviour::new("restarter", false, RestartPolicy::new(2, 0.25).unwrap()).unwrap();
        let trace = shuffle_trace(2);
        let shaped = engine.apply(&trace, &nodes).unwrap();
        // Total time: 2 redo passes of 25% plus the full run.
        let expected = trace.total_time().value() * 1.5;
        assert!((shaped.total_time().value() - expected).abs() < 1e-9);
        assert!(shaped.phases()[0].label.starts_with("redo1/"));
        assert!(shaped
            .phases()
            .iter()
            .any(|p| p.label.starts_with("redo2/")));
        // The redo prefix is real work: replaying costs proportionally more.
        let base = replay(&trace, &nodes).unwrap().energy();
        let shaped_energy = replay(&shaped, &nodes).unwrap().energy();
        assert!(shaped_energy.value() > 1.4 * base.value());
    }

    #[test]
    fn dbms_x_strictly_dominates_pstore_on_shuffle_work() {
        let nodes = vec![cluster_v_node(); 4];
        let trace = shuffle_trace(4);
        let pstore = replay(
            &EngineBehaviour::pstore_like()
                .apply(&trace, &nodes)
                .unwrap(),
            &nodes,
        )
        .unwrap();
        let dbms_x = replay(
            &EngineBehaviour::dbms_x().apply(&trace, &nodes).unwrap(),
            &nodes,
        )
        .unwrap();
        assert!(dbms_x.response_time() > pstore.response_time());
        assert!(dbms_x.energy() > pstore.energy());
        // Staging burns floor power: the staged phases carry nonzero energy
        // at zero CPU busy share.
        let stage = dbms_x.phase("probe/stage").unwrap();
        assert!(stage.energy.value() > 0.0);
        assert_eq!(stage.cpu_time, Seconds::zero());
        assert!(stage.disk_time.value() > 0.0);
    }

    #[test]
    fn invalid_policies_and_mismatched_nodes_are_rejected() {
        assert!(RestartPolicy::new(1, 1.5).is_err());
        assert!(EngineBehaviour::new(
            "bad",
            false,
            RestartPolicy {
                restarts: 1,
                redo_fraction: -0.1,
            }
        )
        .is_err());
        let nodes = vec![cluster_v_node(); 2];
        assert!(EngineBehaviour::dbms_x()
            .apply(&shuffle_trace(4), &nodes)
            .is_err());
    }
}
