//! The first-order scaling law of Section 3.1.
//!
//! Node-local work speeds up linearly with the node count, repartitioning
//! work is pinned by the per-node port bandwidth, and broadcast work grows
//! slightly as nodes are added. It is exactly why Q1-style queries scale
//! while Q12-style queries flatten out — the origin of the paper's
//! energy-proportionality gap.
//!
//! Beyond the relative law, [`BehaviouralModel::predict`] produces *absolute*
//! `(response time, energy)` points for a cluster of [`NodeSpec`]s, anchored
//! at a reference response time: nodes run flat out during the node-local
//! share of the query and sit at the engine utilization floor while
//! network-bound, so the per-node wall power follows the paper's
//! utilization→power regressions. This is what drives the Vertica SF-1000
//! scale-down study (Figures 1–2) through the `Workload`/`Estimator`
//! experiment API in `eedc-core`. For the finer-grained, trace-driven
//! treatment of the same argument see [`crate::trace`] and
//! [`mod@crate::replay`].

use eedc_simkit::units::{Joules, Seconds};
use eedc_simkit::NodeSpec;
use eedc_tpch::QueryProfile;

/// First-order behavioural scaling model for one query profile.
#[derive(Debug, Clone, PartialEq)]
pub struct BehaviouralModel {
    /// The measured profile being extrapolated.
    pub profile: QueryProfile,
    /// Node count at which the profile's fractions were measured.
    pub reference_nodes: usize,
}

impl BehaviouralModel {
    /// A model extrapolating from the paper's eight-node Cluster-V
    /// measurements.
    pub fn from_paper(profile: QueryProfile) -> Self {
        Self {
            profile,
            reference_nodes: 8,
        }
    }

    /// A broadcast delivers (n-1)/n of the table to every node no matter how
    /// many participate, so the broadcast term grows gently with n.
    fn broadcast_shape(k: f64) -> f64 {
        if k <= 1.0 {
            0.0
        } else {
            (k - 1.0) / k
        }
    }

    /// Broadcast fraction rescaled by `shape / shape(reference)`; a
    /// single-node reference has no broadcast shape, so the fraction is
    /// carried through unscaled.
    fn broadcast_term(&self, shape: f64) -> f64 {
        let reference_shape = Self::broadcast_shape(self.reference_nodes.max(1) as f64);
        if reference_shape <= 0.0 {
            self.profile.broadcast_fraction
        } else {
            self.profile.broadcast_fraction * shape / reference_shape
        }
    }

    /// Predicted response time at `nodes` nodes, relative to the reference
    /// configuration (1.0 = as fast as the reference).
    pub fn relative_response_time(&self, nodes: usize) -> f64 {
        let n = nodes.max(1) as f64;
        let r = self.reference_nodes.max(1) as f64;
        let local = self.profile.local_fraction * r / n;
        let repartition = self.profile.repartition_fraction;
        local + repartition + self.broadcast_term(Self::broadcast_shape(n))
    }

    /// The response-time floor as the cluster grows without bound: the
    /// network-bound fractions never shrink.
    ///
    /// Computed as the exact closed-form limit of
    /// [`relative_response_time`](Self::relative_response_time): the local
    /// term vanishes, the repartition term is constant, and the broadcast
    /// shape `(n-1)/n` tends to 1, leaving
    /// `repartition + broadcast / shape(reference)`.
    pub fn scaling_floor(&self) -> f64 {
        // lim_{n→∞} broadcast_shape(n) = 1.
        self.profile.repartition_fraction + self.broadcast_term(1.0)
    }

    /// Fraction of the predicted execution at `nodes` nodes spent on
    /// node-local (CPU-busy) work; the remainder is network-bound stall.
    pub fn local_share(&self, nodes: usize) -> f64 {
        let rel = self.relative_response_time(nodes);
        if rel <= f64::EPSILON {
            return 1.0;
        }
        let n = nodes.max(1) as f64;
        let r = self.reference_nodes.max(1) as f64;
        ((self.profile.local_fraction * r / n) / rel).clamp(0.0, 1.0)
    }

    /// Absolute behavioural prediction for a cluster of `nodes`, anchored at
    /// `reference_time` — the measured (or assumed) response time of the
    /// query on the model's reference configuration.
    ///
    /// The energy model is deliberately first order, mirroring what the
    /// paper observed on Vertica: a node is CPU-saturated during the
    /// node-local share of the run and idles at the engine utilization floor
    /// while the query is network-bound, so its time-averaged utilization is
    /// `G + busy·(1 − G)` and its wall power follows the published
    /// utilization→power regression. As the cluster grows, the busy share
    /// shrinks while the stalled share does not — total energy stops falling
    /// long before response time does, which is the energy-proportionality
    /// gap of Figures 1–2.
    pub fn predict(&self, nodes: &[NodeSpec], reference_time: Seconds) -> BehaviouralPrediction {
        let count = nodes.len();
        let relative_response_time = self.relative_response_time(count);
        let response_time = reference_time * relative_response_time;
        let busy = self.local_share(count);
        let mut energy = Joules::zero();
        let mut node_utilization = Vec::with_capacity(count);
        let mut node_energy = Vec::with_capacity(count);
        for node in nodes {
            let utilization =
                (node.utilization_floor + busy * (1.0 - node.utilization_floor)).clamp(0.0, 1.0);
            node_utilization.push(utilization);
            let joules = node.power_at(utilization) * response_time;
            node_energy.push(joules);
            energy += joules;
        }
        BehaviouralPrediction {
            nodes: count,
            relative_response_time,
            response_time,
            energy,
            node_utilization,
            node_energy,
        }
    }
}

/// An absolute behavioural prediction: the first-order scaling law applied
/// to a concrete cluster, with the paper's utilization→power energy model.
#[derive(Debug, Clone, PartialEq)]
pub struct BehaviouralPrediction {
    /// Number of nodes in the predicted configuration.
    pub nodes: usize,
    /// Response time relative to the reference configuration (1.0 = as fast
    /// as the reference).
    pub relative_response_time: f64,
    /// Predicted absolute response time.
    pub response_time: Seconds,
    /// Predicted total cluster energy over the run.
    pub energy: Joules,
    /// Per-node time-averaged CPU utilization, in cluster node order.
    pub node_utilization: Vec<f64>,
    /// Per-node energy over the run, in cluster node order; sums to
    /// `energy`.
    pub node_energy: Vec<Joules>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use eedc_tpch::QueryId;

    #[test]
    fn perfectly_local_queries_scale_linearly() {
        let model = BehaviouralModel::from_paper(QueryProfile::paper(QueryId::Q1));
        let t8 = model.relative_response_time(8);
        let t16 = model.relative_response_time(16);
        assert!((t8 - 1.0).abs() < 1e-12);
        assert!((t16 - 0.5).abs() < 1e-12);
        // A perfectly local query has no network-bound work at all: its
        // closed-form floor is exactly zero, not merely small.
        assert_eq!(model.scaling_floor(), 0.0);
    }

    #[test]
    fn repartition_heavy_queries_flatten_out() {
        // Q12 spends 48% of its execution repartitioning: doubling the nodes
        // from 8 to 16 only removes half of the *local* 52%.
        let model = BehaviouralModel::from_paper(QueryProfile::paper(QueryId::Q12));
        let t16 = model.relative_response_time(16);
        assert!((t16 - (0.52 / 2.0 + 0.48)).abs() < 1e-12);
        // The closed-form floor is the repartition fraction itself — exactly
        // 0.48, with no float-rounding slack (the old implementation
        // evaluated the model at `usize::MAX / 2` and leaned on rounding).
        assert_eq!(model.scaling_floor(), 0.48);
        // Shrinking the cluster slows the query down.
        assert!(model.relative_response_time(4) > 1.0);
    }

    #[test]
    fn broadcast_fractions_raise_the_floor_above_the_repartition_share() {
        // A synthetic profile with broadcast work: at the 8-node reference the
        // broadcast shape is 7/8, and as n → ∞ the shape tends to 1, so the
        // floor is repartition + broadcast · 8/7 — *above* the naive
        // repartition + broadcast sum.
        let mut profile = QueryProfile::paper(QueryId::Q12);
        profile.local_fraction = 0.45;
        profile.repartition_fraction = 0.35;
        profile.broadcast_fraction = 0.20;
        let model = BehaviouralModel::from_paper(profile.clone());
        let floor = model.scaling_floor();
        assert!((floor - (0.35 + 0.20 * 8.0 / 7.0)).abs() < 1e-12);
        // The finite-n model approaches the closed form from above (the
        // vanishing local term dominates the broadcast-shape deficit here).
        let near = model.relative_response_time(1_000_000);
        assert!(near > floor);
        assert!((near - floor) < 1e-4);

        // Degenerate single-node reference: the broadcast term is carried
        // through unscaled, in both the model and its limit.
        let single = BehaviouralModel {
            profile,
            reference_nodes: 1,
        };
        assert!((single.scaling_floor() - (0.35 + 0.20)).abs() < 1e-12);
    }

    #[test]
    fn absolute_predictions_anchor_at_the_reference() {
        use eedc_simkit::catalog::cluster_v_node;
        let model = BehaviouralModel::from_paper(QueryProfile::paper(QueryId::Q12));
        let nodes = vec![cluster_v_node(); 8];
        let p = model.predict(&nodes, Seconds(100.0));
        assert_eq!(p.nodes, 8);
        assert!((p.relative_response_time - 1.0).abs() < 1e-9);
        assert!((p.response_time.value() - 100.0).abs() < 1e-6);
        assert_eq!(p.node_utilization.len(), 8);
        for &u in &p.node_utilization {
            assert!(u > cluster_v_node().utilization_floor - 1e-12 && u <= 1.0);
        }
        assert!(p.energy.value() > 0.0);
        // Per-node energies are carried explicitly and sum to the total.
        assert_eq!(p.node_energy.len(), 8);
        let total: f64 = p.node_energy.iter().map(|e| e.value()).sum();
        assert!((total - p.energy.value()).abs() < 1e-9 * total);
    }

    #[test]
    fn local_queries_scale_perfectly_in_time_and_energy() {
        use eedc_simkit::catalog::cluster_v_node;
        // Q1 is 100% node-local: every node is CPU-saturated the whole run,
        // so doubling the cluster halves the time at *constant* energy —
        // the one case with no energy-proportionality gap.
        let model = BehaviouralModel::from_paper(QueryProfile::paper(QueryId::Q1));
        let p8 = model.predict(&vec![cluster_v_node(); 8], Seconds(100.0));
        let p16 = model.predict(&vec![cluster_v_node(); 16], Seconds(100.0));
        assert!((p16.response_time.value() / p8.response_time.value() - 0.5).abs() < 1e-9);
        assert!((p16.energy.value() / p8.energy.value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn network_bound_queries_pay_the_energy_proportionality_gap() {
        use eedc_simkit::catalog::cluster_v_node;
        // Q12 spends 48% of its execution network-bound: the extra nodes of
        // a 16-node cluster mostly idle at the utilization floor, so the
        // speedup is sub-linear and total energy *rises*.
        let model = BehaviouralModel::from_paper(QueryProfile::paper(QueryId::Q12));
        let p8 = model.predict(&vec![cluster_v_node(); 8], Seconds(100.0));
        let p16 = model.predict(&vec![cluster_v_node(); 16], Seconds(100.0));
        assert!(p16.response_time < p8.response_time);
        assert!(p16.response_time.value() > p8.response_time.value() * 0.5);
        assert!(p16.energy > p8.energy, "no gap: {:?}", p16.energy);
        // The stalled share shows in utilization: nodes run cooler at 16.
        assert!(p16.node_utilization[0] < p8.node_utilization[0]);
        // local_share is the busy fraction behind those utilizations.
        assert!((model.local_share(8) - 0.52).abs() < 1e-9);
        assert!(model.local_share(16) < 0.52);
        assert!(
            (BehaviouralModel::from_paper(QueryProfile::paper(QueryId::Q1)).local_share(16) - 1.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn reference_configuration_is_the_unit_point() {
        for query in [QueryId::Q1, QueryId::Q3, QueryId::Q12, QueryId::Q21] {
            let model = BehaviouralModel::from_paper(QueryProfile::paper(query));
            let t = model.relative_response_time(8);
            assert!((t - 1.0).abs() < 1e-9, "{query}: {t}");
        }
    }
}
