//! # eedc-dbmsim
//!
//! Behavioural simulators of off-the-shelf DBMSs — the Vertica and DBMS-X
//! studies of Section 3 of the paper — at two levels of fidelity:
//!
//! * [`scaling`] — the **first-order scaling law** of Section 3.1
//!   ([`BehaviouralModel`]): extrapolate a measured
//!   [`QueryProfile`](eedc_tpch::QueryProfile) (node-local / repartition /
//!   broadcast split) across cluster sizes, with absolute time/energy
//!   points from the utilization→power regressions. Drives the Vertica
//!   SF-1000 scale-down study of Figures 1–2.
//! * [`trace`] + [`mod@replay`] + [`engines`] — the **trace-driven behavioural
//!   simulator**: a [`UtilizationTrace`] is a per-node, per-phase time
//!   series of CPU/disk/network busy shares (the simulated analogue of the
//!   paper's iLO2 / WattsUp measurement streams), exported from a measured
//!   `PStoreCluster` execution or synthesized from a workload plan;
//!   [`replay`](replay::replay) integrates it through the node power models
//!   into time/energy/per-node series; and an [`EngineBehaviour`] reshapes
//!   the trace the way a concrete engine would execute it — in particular
//!   the Section 3.2 **DBMS-X** behaviour of disk-staged intermediates and
//!   mid-query restarts ([`EngineBehaviour::dbms_x`]), versus the pipelined
//!   P-store behaviour ([`EngineBehaviour::pstore_like`]).
//! * [`serving`] — the **discrete-event serving simulator** on the
//!   `eedc-simkit` event kernel: open-loop arrivals under a pluggable
//!   [`ArrivalProcess`] (Poisson, recorded trace, diurnal ramp) with a
//!   Zipf-skewed template mix, concurrency-limited pools (dedicated M/M/c
//!   slots or processor sharing), bounded admission queues with
//!   drop/timeout accounting, and pluggable [`Scheduler`]s (FCFS,
//!   energy-aware Beefy-vs-Wimpy placement, join-shortest-queue,
//!   power-of-two-choices). Per-query costs are closed-form inputs; the
//!   module adds the queueing behaviour — latency percentiles, drops,
//!   saturation — that backs the fifth estimator lens (`Serving`), and is
//!   cross-validated against Erlang-C / M/M/1-PS closed forms in
//!   `tests/queueing_validation.rs`.
//!
//! In `eedc-core` the trace pipeline backs the fourth estimator lens
//! (`Traced`), next to the measured, analytical and behavioural lenses, so
//! engine-behaviour what-ifs run through the same `Workload × Estimator`
//! experiments, design advisor and figures pipeline as everything else.
//!
//! ```
//! use eedc_dbmsim::{replay, BusyShares, EngineBehaviour, UtilizationTrace};
//! use eedc_simkit::catalog::cluster_v_node;
//! use eedc_simkit::units::Seconds;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A hand-built trace: 4 nodes, a short CPU-heavy build phase, then a
//! // long network-bound probe phase (ports saturated, CPUs mostly stalled).
//! let nodes = vec![cluster_v_node(); 4];
//! let mut trace = UtilizationTrace::new("shuffle join");
//! trace.push_phase("build", Seconds(12.0), vec![BusyShares::new(0.9, 0.0, 0.4)?; 4])?;
//! trace.push_phase("probe", Seconds(48.0), vec![BusyShares::new(0.3, 0.0, 1.0)?; 4])?;
//!
//! // Replay through the utilization→power models: the stalled probe phase
//! // still burns most of the energy — the energy-proportionality gap.
//! let result = replay(&trace, &nodes)?;
//! assert_eq!(result.response_time(), Seconds(60.0));
//! assert!(result.phases[1].energy > result.phases[0].energy);
//!
//! // The same trace under the Section 3.2 DBMS-X behaviour (disk staging +
//! // a mid-query restart) costs strictly more time *and* energy.
//! let dbms_x = replay(&EngineBehaviour::dbms_x().apply(&trace, &nodes)?, &nodes)?;
//! assert!(dbms_x.response_time() > result.response_time());
//! assert!(dbms_x.energy() > result.energy());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engines;
pub mod faults;
pub mod replay;
pub mod scaling;
pub mod serving;
pub mod trace;

pub use engines::{EngineBehaviour, RestartPolicy};
pub use faults::{FaultModel, FaultOutage, RecoveryPolicy, ScalePolicy, TransitionCost};
pub use replay::{replay, ReplayPhase, ReplayResult};
pub use scaling::{BehaviouralModel, BehaviouralPrediction};
pub use serving::{
    simulate_serving, ArrivalProcess, EnergyAwareScheduler, FcfsScheduler, JoinShortestQueue,
    PoolView, PowerOfTwoChoices, RampSegment, RandomScheduler, Scheduler, ServiceDistribution,
    ServiceMode, ServiceProfile, ServingConfig, ServingResult, ServingServer,
};
pub use trace::{
    busy_share_from_utilization, utilization_from_busy_share, BusyShares, TracePhase,
    UtilizationTrace,
};
