//! # eedc-dbmsim
//!
//! Behavioural simulators of off-the-shelf DBMSs (the Vertica and DBMS-X
//! studies of Section 3), driven by the measured [`QueryProfile`]s in
//! `eedc-tpch`. The full simulators — per-query utilization traces, restart
//! behaviour, disk staging — are tracked as an open item in `ROADMAP.md`;
//! this skeleton provides the first-order scaling law the profiles imply.
//!
//! The law (Section 3.1): node-local work speeds up linearly with the node
//! count, repartitioning work is pinned by the per-node port bandwidth, and
//! broadcast work grows slightly as nodes are added. It is exactly why
//! Q1-style queries scale while Q12-style queries flatten out — the origin
//! of the paper's energy-proportionality gap.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use eedc_tpch::QueryProfile;

/// First-order behavioural scaling model for one query profile.
#[derive(Debug, Clone, PartialEq)]
pub struct BehaviouralModel {
    /// The measured profile being extrapolated.
    pub profile: QueryProfile,
    /// Node count at which the profile's fractions were measured.
    pub reference_nodes: usize,
}

impl BehaviouralModel {
    /// A model extrapolating from the paper's eight-node Cluster-V
    /// measurements.
    pub fn from_paper(profile: QueryProfile) -> Self {
        Self {
            profile,
            reference_nodes: 8,
        }
    }

    /// A broadcast delivers (n-1)/n of the table to every node no matter how
    /// many participate, so the broadcast term grows gently with n.
    fn broadcast_shape(k: f64) -> f64 {
        if k <= 1.0 {
            0.0
        } else {
            (k - 1.0) / k
        }
    }

    /// Broadcast fraction rescaled by `shape / shape(reference)`; a
    /// single-node reference has no broadcast shape, so the fraction is
    /// carried through unscaled.
    fn broadcast_term(&self, shape: f64) -> f64 {
        let reference_shape = Self::broadcast_shape(self.reference_nodes.max(1) as f64);
        if reference_shape <= 0.0 {
            self.profile.broadcast_fraction
        } else {
            self.profile.broadcast_fraction * shape / reference_shape
        }
    }

    /// Predicted response time at `nodes` nodes, relative to the reference
    /// configuration (1.0 = as fast as the reference).
    pub fn relative_response_time(&self, nodes: usize) -> f64 {
        let n = nodes.max(1) as f64;
        let r = self.reference_nodes.max(1) as f64;
        let local = self.profile.local_fraction * r / n;
        let repartition = self.profile.repartition_fraction;
        local + repartition + self.broadcast_term(Self::broadcast_shape(n))
    }

    /// The response-time floor as the cluster grows without bound: the
    /// network-bound fractions never shrink.
    ///
    /// Computed as the exact closed-form limit of
    /// [`relative_response_time`](Self::relative_response_time): the local
    /// term vanishes, the repartition term is constant, and the broadcast
    /// shape `(n-1)/n` tends to 1, leaving
    /// `repartition + broadcast / shape(reference)`.
    pub fn scaling_floor(&self) -> f64 {
        // lim_{n→∞} broadcast_shape(n) = 1.
        self.profile.repartition_fraction + self.broadcast_term(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eedc_tpch::QueryId;

    #[test]
    fn perfectly_local_queries_scale_linearly() {
        let model = BehaviouralModel::from_paper(QueryProfile::paper(QueryId::Q1));
        let t8 = model.relative_response_time(8);
        let t16 = model.relative_response_time(16);
        assert!((t8 - 1.0).abs() < 1e-12);
        assert!((t16 - 0.5).abs() < 1e-12);
        // A perfectly local query has no network-bound work at all: its
        // closed-form floor is exactly zero, not merely small.
        assert_eq!(model.scaling_floor(), 0.0);
    }

    #[test]
    fn repartition_heavy_queries_flatten_out() {
        // Q12 spends 48% of its execution repartitioning: doubling the nodes
        // from 8 to 16 only removes half of the *local* 52%.
        let model = BehaviouralModel::from_paper(QueryProfile::paper(QueryId::Q12));
        let t16 = model.relative_response_time(16);
        assert!((t16 - (0.52 / 2.0 + 0.48)).abs() < 1e-12);
        // The closed-form floor is the repartition fraction itself — exactly
        // 0.48, with no float-rounding slack (the old implementation
        // evaluated the model at `usize::MAX / 2` and leaned on rounding).
        assert_eq!(model.scaling_floor(), 0.48);
        // Shrinking the cluster slows the query down.
        assert!(model.relative_response_time(4) > 1.0);
    }

    #[test]
    fn broadcast_fractions_raise_the_floor_above_the_repartition_share() {
        // A synthetic profile with broadcast work: at the 8-node reference the
        // broadcast shape is 7/8, and as n → ∞ the shape tends to 1, so the
        // floor is repartition + broadcast · 8/7 — *above* the naive
        // repartition + broadcast sum.
        let mut profile = QueryProfile::paper(QueryId::Q12);
        profile.local_fraction = 0.45;
        profile.repartition_fraction = 0.35;
        profile.broadcast_fraction = 0.20;
        let model = BehaviouralModel::from_paper(profile.clone());
        let floor = model.scaling_floor();
        assert!((floor - (0.35 + 0.20 * 8.0 / 7.0)).abs() < 1e-12);
        // The finite-n model approaches the closed form from above (the
        // vanishing local term dominates the broadcast-shape deficit here).
        let near = model.relative_response_time(1_000_000);
        assert!(near > floor);
        assert!((near - floor) < 1e-4);

        // Degenerate single-node reference: the broadcast term is carried
        // through unscaled, in both the model and its limit.
        let single = BehaviouralModel {
            profile,
            reference_nodes: 1,
        };
        assert!((single.scaling_floor() - (0.35 + 0.20)).abs() < 1e-12);
    }

    #[test]
    fn reference_configuration_is_the_unit_point() {
        for query in [QueryId::Q1, QueryId::Q3, QueryId::Q12, QueryId::Q21] {
            let model = BehaviouralModel::from_paper(QueryProfile::paper(query));
            let t = model.relative_response_time(8);
            assert!((t - 1.0).abs() < 1e-9, "{query}: {t}");
        }
    }
}
