//! Cluster utilization traces: per-node, per-phase busy-share time series.
//!
//! The paper's Section 3 behavioural argument is built from *per-query
//! utilization traces*: iLO2 / WattsUp streams of how busy each node's CPU,
//! disk and network were over the life of a query, replayed through the
//! per-node utilization→power regressions to obtain energy. A
//! [`UtilizationTrace`] is the simulated analogue of that measurement
//! stream at cluster granularity — for every execution phase, how large a
//! share of the phase each node spent busy on each resource.
//!
//! Traces come from two places:
//!
//! * **exported from a measured run** — [`UtilizationTrace::from_execution`]
//!   converts the per-phase statistics of a `PStoreCluster` execution
//!   (`eedc_pstore::QueryExecution`) into busy shares, so a real run can be
//!   replayed under a different engine behaviour (see [`crate::engines`]);
//! * **synthesized from a workload plan** — the `Traced` estimator in
//!   `eedc-core` builds the same shape from the Section 5.4 analytical
//!   model's phase predictions, no cluster load required.
//!
//! Either way, [`crate::replay()`] integrates the trace through the node
//! power models to produce time / energy / per-node series, and
//! [`UtilizationTrace::node_cpu_trace`] lowers one node's row to the
//! one-dimensional `eedc_simkit::trace::UtilizationTrace` (the simulated
//! 1 Hz power-meter readout) for direct integration against a
//! `PowerModel`.
//!
//! ## The busy-share ↔ utilization convention
//!
//! A node executing a query never idles below its engine utilization floor
//! `G` (the `G_B` / `G_W` constants of Table 3). The paper's Section 3
//! utilization model is `u = G + busy · (1 − G)`: a fully stalled node
//! reads `G`, a fully busy node reads 1. [`utilization_from_busy_share`]
//! and [`busy_share_from_utilization`] are the two directions of that map,
//! and they round-trip exactly for any utilization in `[G, 1]` — which is
//! why a trace exported from a measured run replays to the measured energy
//! (see the cross-lens validation in `eedc-core`).

use eedc_pstore::stats::QueryExecution;
use eedc_simkit::error::SimError;
use eedc_simkit::units::{Megabytes, Seconds};
use eedc_simkit::NodeSpec;
use serde::{Deserialize, Serialize};

/// CPU utilization under the Section 3 model: the engine floor plus the busy
/// share of the remaining headroom, clamped to `[0, 1]`.
pub fn utilization_from_busy_share(share: f64, floor: f64) -> f64 {
    let floor = floor.clamp(0.0, 1.0);
    (floor + share.clamp(0.0, 1.0) * (1.0 - floor)).clamp(0.0, 1.0)
}

/// The inverse map: the busy share that produces `utilization` over a floor
/// of `floor` (0 when the floor already covers the utilization; 1 at full
/// utilization). Exact inverse of [`utilization_from_busy_share`] on
/// `[floor, 1]`.
pub fn busy_share_from_utilization(utilization: f64, floor: f64) -> f64 {
    let floor = floor.clamp(0.0, 1.0);
    if 1.0 - floor <= f64::EPSILON {
        return 0.0;
    }
    ((utilization.clamp(0.0, 1.0) - floor) / (1.0 - floor)).clamp(0.0, 1.0)
}

/// How busy one node was on each resource during one phase, as fractions of
/// the phase duration in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusyShares {
    /// Share of the phase the CPU spent processing tuples (excluding the
    /// engine utilization floor, which is always present — see
    /// [`utilization_from_busy_share`]).
    pub cpu: f64,
    /// Share of the phase the storage subsystem spent reading or writing.
    pub disk: f64,
    /// Share of the phase the node's network port spent transferring (its
    /// busier direction).
    pub network: f64,
}

impl BusyShares {
    /// Validated busy shares.
    pub fn new(cpu: f64, disk: f64, network: f64) -> Result<Self, SimError> {
        let shares = Self { cpu, disk, network };
        shares.validate()?;
        Ok(shares)
    }

    /// A node that did nothing during the phase (it still draws floor power
    /// on replay).
    pub fn idle() -> Self {
        Self {
            cpu: 0.0,
            disk: 0.0,
            network: 0.0,
        }
    }

    fn validate(&self) -> Result<(), SimError> {
        for (label, share) in [
            ("cpu", self.cpu),
            ("disk", self.disk),
            ("network", self.network),
        ] {
            if !(0.0..=1.0).contains(&share) {
                return Err(SimError::invalid(format!(
                    "{label} busy share {share} outside [0, 1]"
                )));
            }
        }
        Ok(())
    }
}

/// One execution phase of a cluster trace: a label, a duration, and the busy
/// shares of every node (in cluster node order) over that duration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracePhase {
    /// Phase label (`"build"`, `"probe"`, `"probe/stage"`, …).
    pub label: String,
    /// Wall-clock duration of the phase.
    pub duration: Seconds,
    /// Per-node busy shares, in cluster node order.
    pub node_shares: Vec<BusyShares>,
}

impl TracePhase {
    /// Bytes node `id` moved through its network port during the phase,
    /// recovered from the port's busy share and bandwidth. This is the
    /// port-observed volume (the busier of ingress and egress), which is
    /// what an engine that stages shuffled intermediates must spill.
    pub fn node_network_bytes(&self, id: usize, spec: &NodeSpec) -> Megabytes {
        spec.network_bandwidth * (self.duration * self.node_shares[id].network)
    }
}

/// A per-node, per-phase busy-share time series over a whole query — the
/// simulated analogue of the paper's measured utilization traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationTrace {
    label: String,
    phases: Vec<TracePhase>,
}

impl UtilizationTrace {
    /// An empty trace for the labelled query.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            phases: Vec::new(),
        }
    }

    /// The label of the traced query.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Append a phase. Every phase must describe the same node count;
    /// zero-duration phases are dropped.
    pub fn push_phase(
        &mut self,
        label: impl Into<String>,
        duration: Seconds,
        node_shares: Vec<BusyShares>,
    ) -> Result<(), SimError> {
        if !duration.is_finite() || duration.value() < 0.0 {
            return Err(SimError::invalid(format!(
                "phase duration must be non-negative and finite, got {}",
                duration.value()
            )));
        }
        if node_shares.is_empty() {
            return Err(SimError::invalid("a trace phase needs at least one node"));
        }
        if let Some(first) = self.phases.first() {
            if first.node_shares.len() != node_shares.len() {
                return Err(SimError::invalid(format!(
                    "phase describes {} nodes but the trace holds {}",
                    node_shares.len(),
                    first.node_shares.len()
                )));
            }
        }
        for shares in &node_shares {
            shares.validate()?;
        }
        if duration.value() > 0.0 {
            self.phases.push(TracePhase {
                label: label.into(),
                duration,
                node_shares,
            });
        }
        Ok(())
    }

    /// The phases of the trace, in execution order.
    pub fn phases(&self) -> &[TracePhase] {
        &self.phases
    }

    /// Number of phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether the trace has no phases.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Number of nodes the trace describes (0 for an empty trace).
    pub fn node_count(&self) -> usize {
        self.phases.first().map_or(0, |p| p.node_shares.len())
    }

    /// Total traced wall-clock time.
    pub fn total_time(&self) -> Seconds {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// Export a trace from a measured [`QueryExecution`] (the per-phase
    /// statistics of a `PStoreCluster` run).
    ///
    /// Per-node CPU busy shares are recovered exactly from the measured
    /// per-node utilizations via [`busy_share_from_utilization`], so
    /// replaying the trace over the same nodes reproduces the measured
    /// energy. Network shares are per-node: the runtime exports each node's
    /// egress/ingress volumes and the resulting port-serialization time, so
    /// a node that shipped nothing carries a zero network share instead of
    /// the phase's transfer-completion fraction (stats recorded before the
    /// per-node export fall back to that phase-level fraction). Disk shares
    /// remain phase-level — the runtime records the completion time of the
    /// slowest producer scan, not per-node scan times. With memory-resident
    /// tables (`in_memory`) scans run through the CPU pipeline and the disk
    /// share is zero.
    pub fn from_execution(
        execution: &QueryExecution,
        nodes: &[NodeSpec],
        in_memory: bool,
    ) -> Result<Self, SimError> {
        let mut trace = Self::new(format!(
            "{} {} on {}",
            execution.strategy, execution.mode, execution.cluster_label
        ));
        for phase in &execution.phases {
            if phase.node_utilization.len() != nodes.len() {
                return Err(SimError::invalid(format!(
                    "phase '{}' describes {} nodes but {} specs were supplied",
                    phase.label,
                    phase.node_utilization.len(),
                    nodes.len()
                )));
            }
            let disk = if in_memory {
                0.0
            } else {
                phase.scan_fraction()
            };
            let shares = phase
                .node_utilization
                .iter()
                .zip(nodes)
                .enumerate()
                .map(|(id, (&u, spec))| BusyShares {
                    cpu: busy_share_from_utilization(u, spec.utilization_floor),
                    disk,
                    network: phase.node_network_fraction(id),
                })
                .collect();
            trace.push_phase(phase.label.clone(), phase.duration, shares)?;
        }
        Ok(trace)
    }

    /// The first `duration` seconds of the trace: whole leading phases plus
    /// a proportionally shortened copy of the phase the cut lands in (its
    /// busy shares are piecewise constant, so truncation preserves them).
    /// Returns the whole trace when `duration` covers it.
    ///
    /// This is the primitive behind mid-query restart modelling: the work an
    /// engine re-executes after aborting `duration` into a run is exactly
    /// this prefix.
    pub fn prefix(&self, duration: Seconds) -> UtilizationTrace {
        let mut prefix = UtilizationTrace::new(self.label.clone());
        let mut remaining = duration.value().max(0.0);
        for phase in &self.phases {
            if remaining <= 0.0 {
                break;
            }
            let take = phase.duration.value().min(remaining);
            remaining -= take;
            prefix.phases.push(TracePhase {
                label: phase.label.clone(),
                duration: Seconds(take),
                node_shares: phase.node_shares.clone(),
            });
        }
        prefix
    }

    /// Lower one node's row of the trace to the one-dimensional CPU
    /// utilization signal of `eedc_simkit::trace` — the simulated power-meter
    /// stream — using the node's engine floor to map busy shares to
    /// utilizations.
    pub fn node_cpu_trace(
        &self,
        id: usize,
        spec: &NodeSpec,
    ) -> Result<eedc_simkit::trace::UtilizationTrace, SimError> {
        if id >= self.node_count() {
            return Err(SimError::invalid(format!(
                "node {id} outside the trace's {} nodes",
                self.node_count()
            )));
        }
        let mut signal = eedc_simkit::trace::UtilizationTrace::new();
        for phase in &self.phases {
            signal.push(
                phase.duration,
                utilization_from_busy_share(phase.node_shares[id].cpu, spec.utilization_floor),
            )?;
        }
        Ok(signal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eedc_simkit::catalog::cluster_v_node;

    fn shares(cpu: f64, disk: f64, network: f64) -> BusyShares {
        BusyShares::new(cpu, disk, network).unwrap()
    }

    #[test]
    fn busy_share_round_trips_through_utilization() {
        let floor = 0.25;
        for share in [0.0, 0.1, 0.5, 0.99, 1.0] {
            let u = utilization_from_busy_share(share, floor);
            assert!(u >= floor && u <= 1.0);
            let back = busy_share_from_utilization(u, floor);
            assert!((back - share).abs() < 1e-12, "share {share} -> {back}");
        }
        // Below-floor utilizations (cannot occur during execution) clamp to 0.
        assert_eq!(busy_share_from_utilization(0.1, 0.25), 0.0);
        // A degenerate floor of 1 leaves no headroom at all.
        assert_eq!(busy_share_from_utilization(1.0, 1.0), 0.0);
        assert_eq!(utilization_from_busy_share(0.5, 1.0), 1.0);
    }

    #[test]
    fn phases_accumulate_and_validate() {
        let mut trace = UtilizationTrace::new("q");
        trace
            .push_phase("build", Seconds(2.0), vec![shares(0.5, 0.0, 1.0); 4])
            .unwrap();
        trace
            .push_phase("probe", Seconds(8.0), vec![shares(0.8, 0.0, 1.0); 4])
            .unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.node_count(), 4);
        assert_eq!(trace.total_time(), Seconds(10.0));
        assert_eq!(trace.label(), "q");

        // Mismatched node counts are rejected.
        assert!(trace
            .push_phase("bad", Seconds(1.0), vec![shares(0.1, 0.0, 0.0); 3])
            .is_err());
        // Invalid shares and durations are rejected.
        assert!(BusyShares::new(1.5, 0.0, 0.0).is_err());
        assert!(BusyShares::new(0.5, -0.1, 0.0).is_err());
        assert!(trace
            .push_phase("bad", Seconds(-1.0), vec![shares(0.1, 0.0, 0.0); 4])
            .is_err());
        assert!(trace.push_phase("bad", Seconds(1.0), Vec::new()).is_err());
        // Zero-duration phases are dropped, not stored.
        trace
            .push_phase("noop", Seconds(0.0), vec![BusyShares::idle(); 4])
            .unwrap();
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn prefix_cuts_mid_phase_proportionally() {
        let mut trace = UtilizationTrace::new("q");
        trace
            .push_phase("build", Seconds(2.0), vec![shares(0.5, 0.0, 1.0); 2])
            .unwrap();
        trace
            .push_phase("probe", Seconds(8.0), vec![shares(0.8, 0.0, 1.0); 2])
            .unwrap();
        let half = trace.prefix(Seconds(6.0));
        assert_eq!(half.len(), 2);
        assert_eq!(half.total_time(), Seconds(6.0));
        assert_eq!(half.phases()[1].duration, Seconds(4.0));
        // Shares survive the cut.
        assert_eq!(half.phases()[1].node_shares[0].cpu, 0.8);
        // A prefix past the end is the whole trace; a zero prefix is empty.
        assert_eq!(trace.prefix(Seconds(100.0)), trace);
        assert!(trace.prefix(Seconds(0.0)).is_empty());
    }

    #[test]
    fn node_cpu_trace_integrates_like_the_power_model() {
        let spec = cluster_v_node();
        let mut trace = UtilizationTrace::new("q");
        trace
            .push_phase("build", Seconds(5.0), vec![shares(1.0, 0.0, 0.0); 2])
            .unwrap();
        trace
            .push_phase("probe", Seconds(5.0), vec![shares(0.0, 0.0, 1.0); 2])
            .unwrap();
        let signal = trace.node_cpu_trace(0, &spec).unwrap();
        assert_eq!(signal.len(), 2);
        // Busy phase at utilization 1, stalled phase at the engine floor.
        assert_eq!(signal.utilization_at(Seconds(1.0)), Some(1.0));
        assert_eq!(
            signal.utilization_at(Seconds(6.0)),
            Some(spec.utilization_floor)
        );
        let energy = signal.energy_with(&spec.power_model);
        let expected = spec.peak_power() * Seconds(5.0) + spec.floor_power() * Seconds(5.0);
        assert!((energy.value() - expected.value()).abs() < 1e-9);
        assert!(trace.node_cpu_trace(5, &spec).is_err());
    }

    #[test]
    fn port_bytes_recover_from_the_busy_share() {
        let spec = cluster_v_node();
        let mut trace = UtilizationTrace::new("q");
        trace
            .push_phase("probe", Seconds(10.0), vec![shares(0.2, 0.0, 0.5); 2])
            .unwrap();
        let bytes = trace.phases()[0].node_network_bytes(0, &spec);
        let expected = spec.network_bandwidth * Seconds(5.0);
        assert!((bytes.value() - expected.value()).abs() < 1e-9);
    }
}
