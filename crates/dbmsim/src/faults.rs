//! Fault injection and cluster lifecycle for the serving simulator.
//!
//! The serving layer of [`crate::serving`] assumes every pool survives every
//! query. At production scale that assumption is the first casualty: nodes
//! fail mid-query, repairs and warm-ups burn time and energy, and an elastic
//! cluster parks and revives whole pools as load moves. This module is the
//! *model* of that churn — the serving engine consumes it and schedules the
//! actual node-down / node-up events:
//!
//! * [`FaultModel`] — a per-node-hour failure rate (hazard failures drawn
//!   from the simulation's single seeded RNG, so runs stay bit-reproducible)
//!   plus a deterministic scripted fault trace ([`FaultOutage`]) for
//!   what-if scenarios ("pool 1 dies at noon for ten minutes").
//! * [`RecoveryPolicy`] — what happens to the queries a failure kills:
//!   dropped, replayed from the start, or resumed from the last checkpoint
//!   (the serving-layer analogue of the DBMS-X
//!   [`RestartPolicy`](crate::engines::RestartPolicy) redo fraction).
//! * [`ScalePolicy`] — queue-depth-triggered elastic scale-out/in, parking
//!   pools when the system drains and reviving them when depth builds, with
//!   data movement billed per transition.
//! * [`PoolLifecycle`] — the per-pool state machine the engine drives
//!   (online / failed / parked / migrating), accruing the unpowered time,
//!   fault downtime, and parked time behind the availability and idle-energy
//!   accounting.
//!
//! Determinism: scripted outages and scale checks are fixed instants;
//! hazard failures are the only random element and draw exponential
//! time-to-failure variates from the kernel RNG in a fixed order, so a
//! given `(servers, config, scheduler)` triple still reproduces
//! bit-identically — and a model with zero hazard rate, no trace, and no
//! scale policy ([`FaultModel::is_inert`]) consumes no draws at all.

use eedc_simkit::error::SimError;
use eedc_simkit::units::{Joules, Seconds};
use serde::{Deserialize, Serialize};

/// One scripted outage in a deterministic fault trace: `pool` goes down at
/// `at` and stays unpowered for `duration` (warm-up time is charged on top,
/// per [`FaultModel::restart`]). An outage aimed at a pool that is already
/// offline is ignored.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultOutage {
    /// Pool (server index) the outage hits.
    pub pool: usize,
    /// Instant the pool fails.
    pub at: Seconds,
    /// Unpowered repair span before warm-up begins.
    pub duration: Seconds,
}

/// What happens to the in-flight queries a pool failure kills.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// Killed queries are lost (counted, never re-admitted).
    Drop,
    /// Killed queries re-enter admission and replay from the start — the
    /// serving-layer analogue of a DBMS-X
    /// [`RestartPolicy`](crate::engines::RestartPolicy) with redo fraction 1.
    #[default]
    Replay,
    /// Killed queries re-enter admission and resume from their last
    /// checkpoint: work completes in `interval`-sized increments, and only
    /// the partial increment past the last checkpoint is redone.
    Checkpoint {
        /// Checkpoint cadence in service-seconds of the running query.
        interval: Seconds,
    },
}

impl RecoveryPolicy {
    /// Fraction of a killed query's work that survives, given how much
    /// service it had received (`done`) out of its total requirement
    /// (`service`), both in the killed pool's service-seconds. The survivor
    /// fraction is re-applied against the *next* pool's own service time, so
    /// progress is portable across heterogeneous pools.
    pub fn surviving_fraction(&self, done: Seconds, service: Seconds) -> f64 {
        let service = service.value();
        if service <= 0.0 {
            return 0.0;
        }
        match self {
            RecoveryPolicy::Drop | RecoveryPolicy::Replay => 0.0,
            RecoveryPolicy::Checkpoint { interval } => {
                let interval = interval.value();
                let done = done.value().clamp(0.0, service);
                let checkpointed = (done / interval).floor() * interval;
                (checkpointed / service).clamp(0.0, 1.0)
            }
        }
    }

    fn validate(&self) -> Result<(), SimError> {
        if let RecoveryPolicy::Checkpoint { interval } = self {
            let i = interval.value();
            if !i.is_finite() || i <= 0.0 {
                return Err(SimError::invalid(format!(
                    "checkpoint interval must be positive, got {i}"
                )));
            }
        }
        Ok(())
    }
}

/// Fixed cost of one pool lifecycle transition: wall time the pool spends
/// powered but not serving, and the energy billed to the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitionCost {
    /// Powered-but-offline span (warm-up after a repair, data movement
    /// after a scale-out decision).
    pub time: Seconds,
    /// Energy billed per transition (restart or repartitioning cost).
    pub energy: Joules,
}

impl TransitionCost {
    /// A zero-cost transition.
    pub fn free() -> Self {
        TransitionCost {
            time: Seconds::zero(),
            energy: Joules(0.0),
        }
    }

    fn validate(&self, what: &str) -> Result<(), SimError> {
        let (t, e) = (self.time.value(), self.energy.value());
        if !t.is_finite() || t < 0.0 {
            return Err(SimError::invalid(format!(
                "{what} time must be finite and non-negative, got {t}"
            )));
        }
        if !e.is_finite() || e < 0.0 {
            return Err(SimError::invalid(format!(
                "{what} energy must be finite and non-negative, got {e}"
            )));
        }
        Ok(())
    }
}

/// Queue-depth-triggered elastic scaling. Every `check_interval` the engine
/// compares the total queries in system against the two thresholds: at or
/// above `scale_out_depth` it revives the lowest-numbered parked pool (online
/// after `migration.time`, billing `migration.energy`); at or below
/// `scale_in_depth` it parks the highest-numbered idle pool, as long as more
/// than `min_pools` stay online and no template loses its last capable pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalePolicy {
    /// Queries in system at or above which a parked pool is revived.
    pub scale_out_depth: usize,
    /// Queries in system at or below which an idle pool is parked.
    pub scale_in_depth: usize,
    /// Cadence of the depth check.
    pub check_interval: Seconds,
    /// Pools that must always stay online.
    pub min_pools: usize,
    /// Data-movement cost per scale transition. `None` asks the caller
    /// (the `eedc-core` serving lens) to derive it from the port-volume
    /// model: repartitioning the working set across the cluster's NICs.
    pub migration: Option<TransitionCost>,
}

impl ScalePolicy {
    /// A hysteresis policy: scale out at or above `out_depth` queries in
    /// system, scale in at or below `in_depth`, checking every `interval`.
    pub fn new(out_depth: usize, in_depth: usize, interval: Seconds) -> Self {
        ScalePolicy {
            scale_out_depth: out_depth,
            scale_in_depth: in_depth,
            check_interval: interval,
            min_pools: 1,
            migration: None,
        }
    }

    /// Keep at least `min` pools online whatever the depth says.
    pub fn min_pools(mut self, min: usize) -> Self {
        self.min_pools = min;
        self
    }

    /// Bill each scale transition a fixed data-movement cost instead of the
    /// port-volume-derived default.
    pub fn migration_cost(mut self, cost: TransitionCost) -> Self {
        self.migration = Some(cost);
        self
    }

    fn validate(&self, pool_count: usize) -> Result<(), SimError> {
        if self.scale_out_depth <= self.scale_in_depth {
            return Err(SimError::invalid(format!(
                "scale-out depth {} must exceed scale-in depth {} (hysteresis)",
                self.scale_out_depth, self.scale_in_depth
            )));
        }
        let i = self.check_interval.value();
        if !i.is_finite() || i <= 0.0 {
            return Err(SimError::invalid(format!(
                "scale check interval must be positive, got {i}"
            )));
        }
        if self.min_pools == 0 || self.min_pools > pool_count {
            return Err(SimError::invalid(format!(
                "min_pools must lie in 1..={pool_count}, got {}",
                self.min_pools
            )));
        }
        if let Some(migration) = &self.migration {
            migration.validate("migration")?;
        }
        Ok(())
    }
}

/// Failure and lifecycle model of one serving run: who fails, when, what
/// happens to the killed work, and what each recovery costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Mean failures per node per hour. Each online pool draws exponential
    /// time-to-failure variates at `rate × nodes` from the run's seeded
    /// RNG; `0.0` disables hazard failures.
    pub node_failures_per_hour: f64,
    /// Unpowered repair span after a hazard failure (scripted outages carry
    /// their own).
    pub repair_time: Seconds,
    /// Deterministic scripted outages, on top of the hazard process.
    pub trace: Vec<FaultOutage>,
    /// What happens to the queries a failure kills.
    pub recovery: RecoveryPolicy,
    /// Warm-up time and restart energy charged per pool recovery.
    pub restart: TransitionCost,
    /// Elastic scale-out/in; `None` keeps every pool online except for
    /// failures.
    pub scale: Option<ScalePolicy>,
}

impl FaultModel {
    /// A hazard-only model: `rate` failures per node-hour, ten-minute
    /// repairs, replay recovery, free restarts.
    pub fn new(rate: f64) -> Self {
        FaultModel {
            node_failures_per_hour: rate,
            repair_time: Seconds(600.0),
            trace: Vec::new(),
            recovery: RecoveryPolicy::Replay,
            restart: TransitionCost::free(),
            scale: None,
        }
    }

    /// A purely scripted model: no hazard process, outages from `trace`.
    pub fn scripted(trace: Vec<FaultOutage>) -> Self {
        FaultModel {
            trace,
            ..FaultModel::new(0.0)
        }
    }

    /// Add one scripted outage.
    pub fn outage(mut self, pool: usize, at: Seconds, duration: Seconds) -> Self {
        self.trace.push(FaultOutage { pool, at, duration });
        self
    }

    /// Set the unpowered repair span after a hazard failure.
    pub fn repair_time(mut self, repair: Seconds) -> Self {
        self.repair_time = repair;
        self
    }

    /// Set the killed-query recovery policy.
    pub fn recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Charge each pool recovery a warm-up time and restart energy.
    pub fn restart_cost(mut self, cost: TransitionCost) -> Self {
        self.restart = cost;
        self
    }

    /// Enable queue-depth-triggered elastic scaling.
    pub fn scale(mut self, policy: ScalePolicy) -> Self {
        self.scale = Some(policy);
        self
    }

    /// Whether the model can never perturb a run: no hazard rate, no
    /// scripted outages, no scale policy. An inert model schedules no
    /// events and consumes no RNG draws, so results stay bit-identical to a
    /// fault-free run.
    pub fn is_inert(&self) -> bool {
        self.node_failures_per_hour == 0.0 && self.trace.is_empty() && self.scale.is_none()
    }

    /// Mean time-to-failure in seconds for a pool of `nodes` nodes (the
    /// pool fails when its first node does), or `None` when hazard failures
    /// are disabled.
    pub fn hazard_mean(&self, nodes: usize) -> Option<f64> {
        if self.node_failures_per_hour <= 0.0 || nodes == 0 {
            return None;
        }
        Some(3_600.0 / (self.node_failures_per_hour * nodes as f64))
    }

    /// Check the model against a cluster of `pool_count` pools.
    pub fn validate(&self, pool_count: usize) -> Result<(), SimError> {
        let rate = self.node_failures_per_hour;
        if !rate.is_finite() || rate < 0.0 {
            return Err(SimError::invalid(format!(
                "node failure rate must be finite and non-negative, got {rate}"
            )));
        }
        let repair = self.repair_time.value();
        if !repair.is_finite() || repair < 0.0 {
            return Err(SimError::invalid(format!(
                "repair time must be finite and non-negative, got {repair}"
            )));
        }
        for outage in &self.trace {
            if outage.pool >= pool_count {
                return Err(SimError::invalid(format!(
                    "scripted outage targets pool {} of {pool_count}",
                    outage.pool
                )));
            }
            let at = outage.at.value();
            if !at.is_finite() || at < 0.0 {
                return Err(SimError::invalid(format!(
                    "scripted outage instants must be finite and non-negative, got {at}"
                )));
            }
            let d = outage.duration.value();
            if !d.is_finite() || d <= 0.0 {
                return Err(SimError::invalid(format!(
                    "scripted outage durations must be positive, got {d}"
                )));
            }
        }
        self.recovery.validate()?;
        self.restart.validate("restart")?;
        if let Some(scale) = &self.scale {
            scale.validate(pool_count)?;
        }
        Ok(())
    }
}

/// Lifecycle state of one pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LifeState {
    /// Serving.
    Online,
    /// Failed: unpowered while repairing, then powered warm-up until the
    /// restore event fires.
    Failed,
    /// Scaled in: parked unpowered until a scale-out decision.
    Parked,
    /// Rejoining after a scale-out decision: powered data movement.
    Migrating,
}

/// Per-pool lifecycle state machine, driven by the serving engine. Accrues
/// the three spans the accounting needs: *unpowered* time (no idle power is
/// metered), *fault downtime* (the availability metric: repair plus
/// warm-up), and *parked* time (deliberate elastic downtime, excluded from
/// the availability metric).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolLifecycle {
    state: LifeState,
    /// Start of the current state episode.
    since: f64,
    /// Unpowered repair span of the current `Failed` episode (the remainder
    /// up to the restore instant is powered warm-up).
    repair_span: f64,
    /// Bumped on every transition; stale in-air events carry the old value.
    pub epoch: u64,
    unpowered: f64,
    fault_downtime: f64,
    parked_time: f64,
}

impl PoolLifecycle {
    /// A pool online from time zero.
    pub fn new() -> Self {
        PoolLifecycle {
            state: LifeState::Online,
            since: 0.0,
            repair_span: 0.0,
            epoch: 0,
            unpowered: 0.0,
            fault_downtime: 0.0,
            parked_time: 0.0,
        }
    }

    /// Whether the pool is serving.
    pub fn online(&self) -> bool {
        self.state == LifeState::Online
    }

    /// Whether the pool is parked by the scale policy.
    pub fn parked(&self) -> bool {
        self.state == LifeState::Parked
    }

    /// The pool fails at `now`; it stays unpowered for `repair` seconds and
    /// then warms up until [`restore`](Self::restore) is called.
    pub fn fail(&mut self, now: f64, repair: f64) {
        debug_assert_eq!(self.state, LifeState::Online, "only online pools fail");
        self.state = LifeState::Failed;
        self.since = now;
        self.repair_span = repair;
        self.epoch += 1;
    }

    /// The pool is parked by a scale-in decision at `now`.
    pub fn park(&mut self, now: f64) {
        debug_assert_eq!(self.state, LifeState::Online, "only online pools park");
        self.state = LifeState::Parked;
        self.since = now;
        self.epoch += 1;
    }

    /// A scale-out decision at `now` starts reviving a parked pool; it
    /// comes back online when [`restore`](Self::restore) is called.
    pub fn unpark(&mut self, now: f64) {
        debug_assert_eq!(self.state, LifeState::Parked, "only parked pools revive");
        let span = now - self.since;
        self.parked_time += span;
        self.unpowered += span;
        self.state = LifeState::Migrating;
        self.since = now;
        self.epoch += 1;
    }

    /// The pool rejoins service at `now` (after repair + warm-up, or after
    /// migration).
    pub fn restore(&mut self, now: f64) {
        match self.state {
            LifeState::Failed => {
                let span = now - self.since;
                self.fault_downtime += span;
                self.unpowered += self.repair_span.min(span);
            }
            LifeState::Migrating => {}
            LifeState::Online | LifeState::Parked => {
                debug_assert!(false, "restore from {:?}", self.state)
            }
        }
        self.state = LifeState::Online;
        self.since = now;
        self.epoch += 1;
    }

    /// Accrue the tail episode up to the end of the run (pools can end a
    /// run parked; failed pools always see their restore event first).
    pub fn finalize(&mut self, end: f64) {
        let span = (end - self.since).max(0.0);
        match self.state {
            LifeState::Online | LifeState::Migrating => {}
            LifeState::Failed => {
                self.fault_downtime += span;
                self.unpowered += self.repair_span.min(span);
            }
            LifeState::Parked => {
                self.parked_time += span;
                self.unpowered += span;
            }
        }
        self.since = end;
    }

    /// Seconds the pool spent unpowered (no idle power metered).
    pub fn unpowered_time(&self) -> f64 {
        self.unpowered
    }

    /// Seconds the pool was unavailable due to failures (repair + warm-up)
    /// — the numerator of the availability metric.
    pub fn fault_downtime(&self) -> f64 {
        self.fault_downtime
    }

    /// Seconds the pool spent deliberately parked by the scale policy.
    pub fn parked_time(&self) -> f64 {
        self.parked_time
    }
}

impl Default for PoolLifecycle {
    fn default() -> Self {
        PoolLifecycle::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_models_are_detected() {
        assert!(FaultModel::new(0.0).is_inert());
        assert!(!FaultModel::new(0.5).is_inert());
        assert!(!FaultModel::new(0.0)
            .outage(0, Seconds(10.0), Seconds(5.0))
            .is_inert());
        assert!(!FaultModel::new(0.0)
            .scale(ScalePolicy::new(8, 1, Seconds(10.0)))
            .is_inert());
    }

    #[test]
    fn hazard_mean_scales_with_pool_size() {
        let model = FaultModel::new(0.1);
        // 0.1 failures/node-hour over 4 nodes: first failure after a mean
        // 3600 / 0.4 = 9000 s.
        assert_eq!(model.hazard_mean(4), Some(9_000.0));
        assert_eq!(model.hazard_mean(0), None);
        assert_eq!(FaultModel::new(0.0).hazard_mean(4), None);
    }

    #[test]
    fn validation_rejects_bad_models() {
        assert!(FaultModel::new(f64::NAN).validate(2).is_err());
        assert!(FaultModel::new(-1.0).validate(2).is_err());
        assert!(FaultModel::new(0.1)
            .repair_time(Seconds(f64::INFINITY))
            .validate(2)
            .is_err());
        // Scripted outages: pool in range, finite instants, positive spans.
        assert!(FaultModel::new(0.0)
            .outage(2, Seconds(1.0), Seconds(1.0))
            .validate(2)
            .is_err());
        assert!(FaultModel::new(0.0)
            .outage(0, Seconds(-1.0), Seconds(1.0))
            .validate(2)
            .is_err());
        assert!(FaultModel::new(0.0)
            .outage(0, Seconds(1.0), Seconds(0.0))
            .validate(2)
            .is_err());
        // Checkpoint intervals must be positive.
        assert!(FaultModel::new(0.1)
            .recovery(RecoveryPolicy::Checkpoint {
                interval: Seconds(0.0)
            })
            .validate(2)
            .is_err());
        // Transition costs must be finite and non-negative.
        assert!(FaultModel::new(0.1)
            .restart_cost(TransitionCost {
                time: Seconds(-1.0),
                energy: Joules(0.0),
            })
            .validate(2)
            .is_err());
        // Scale policies need hysteresis and a feasible floor.
        assert!(FaultModel::new(0.0)
            .scale(ScalePolicy::new(2, 2, Seconds(10.0)))
            .validate(2)
            .is_err());
        assert!(FaultModel::new(0.0)
            .scale(ScalePolicy::new(8, 1, Seconds(0.0)))
            .validate(2)
            .is_err());
        assert!(FaultModel::new(0.0)
            .scale(ScalePolicy::new(8, 1, Seconds(10.0)).min_pools(3))
            .validate(2)
            .is_err());
        // A sane model passes.
        assert!(FaultModel::new(0.1)
            .outage(1, Seconds(5.0), Seconds(2.0))
            .recovery(RecoveryPolicy::Checkpoint {
                interval: Seconds(1.0)
            })
            .restart_cost(TransitionCost {
                time: Seconds(3.0),
                energy: Joules(500.0),
            })
            .scale(ScalePolicy::new(8, 1, Seconds(10.0)).min_pools(1))
            .validate(2)
            .is_ok());
    }

    #[test]
    fn surviving_fraction_follows_the_policy() {
        let service = Seconds(10.0);
        // Drop and replay both forfeit everything.
        assert_eq!(
            RecoveryPolicy::Drop.surviving_fraction(Seconds(9.0), service),
            0.0
        );
        assert_eq!(
            RecoveryPolicy::Replay.surviving_fraction(Seconds(9.0), service),
            0.0
        );
        // Checkpoints keep whole intervals only: 7.5 s done at a 2 s cadence
        // checkpoints 6 s of the 10 s requirement.
        let ckpt = RecoveryPolicy::Checkpoint {
            interval: Seconds(2.0),
        };
        assert_eq!(ckpt.surviving_fraction(Seconds(7.5), service), 0.6);
        assert_eq!(ckpt.surviving_fraction(Seconds(0.5), service), 0.0);
        assert_eq!(ckpt.surviving_fraction(Seconds(10.0), service), 1.0);
        // Degenerate inputs clamp instead of escaping [0, 1].
        assert_eq!(ckpt.surviving_fraction(Seconds(25.0), service), 1.0);
        assert_eq!(ckpt.surviving_fraction(Seconds(5.0), Seconds(0.0)), 0.0);
    }

    #[test]
    fn lifecycle_accrues_unpowered_fault_and_parked_spans() {
        let mut life = PoolLifecycle::new();
        assert!(life.online());
        // Fail at t=100 with a 50 s repair; warm-up until restore at t=170.
        life.fail(100.0, 50.0);
        assert!(!life.online());
        life.restore(170.0);
        assert!(life.online());
        assert_eq!(life.fault_downtime(), 70.0);
        assert_eq!(life.unpowered_time(), 50.0);
        assert_eq!(life.parked_time(), 0.0);
        // Park at t=200, revive at t=260, online after 10 s migration.
        life.park(200.0);
        assert!(life.parked());
        life.unpark(260.0);
        assert!(!life.online() && !life.parked());
        life.restore(270.0);
        assert!(life.online());
        assert_eq!(life.parked_time(), 60.0);
        assert_eq!(life.unpowered_time(), 110.0);
        // Parked pools accrue through the end of the run.
        life.park(300.0);
        life.finalize(350.0);
        assert_eq!(life.parked_time(), 110.0);
        assert_eq!(life.unpowered_time(), 160.0);
        // Fault downtime never counted the deliberate parking.
        assert_eq!(life.fault_downtime(), 70.0);
        // Every transition bumped the epoch.
        assert_eq!(life.epoch, 6);
    }

    #[test]
    fn restore_clamps_unpowered_to_the_actual_episode() {
        // A restore that lands before the nominal repair span has elapsed
        // (e.g. a zero-warm-up model with a long repair clipped by the
        // engine) never counts more unpowered time than passed.
        let mut life = PoolLifecycle::new();
        life.fail(10.0, 100.0);
        life.restore(40.0);
        assert_eq!(life.fault_downtime(), 30.0);
        assert_eq!(life.unpowered_time(), 30.0);
    }
}
