//! Discrete-event *serving* simulator: open-loop arrivals, admission
//! queueing, pluggable placement.
//!
//! Everything else in this crate (and in the analytical model) evaluates one
//! query at a time in closed form. This module models a cluster run as a
//! long-lived **service**: queries arrive as an open-loop Poisson process at
//! a configured QPS, each arrival draws a query *template* from a
//! Zipf-skewed mix, a bounded admission queue absorbs bursts (with drop and
//! timeout accounting), and a [`Scheduler`] places each admitted query on one
//! of several single-query *servers* (for a heterogeneous design: the Beefy
//! pool and the Wimpy pool). Per-query service times and energies are
//! **inputs** ([`ServiceProfile`]) — they come from the existing closed-form
//! machinery (`eedc-core`'s analytical/traced estimators), not from new
//! physics; what this layer adds is the queueing behaviour those closed
//! forms cannot express: latency percentiles, drops, saturation.
//!
//! Event flow (each hop is one event on the [`Simulation`] kernel):
//!
//! ```text
//! arrival ──▶ admission queue ──▶ scheduler ──▶ service ──▶ completion
//!    │             │ (bounded)        │ (FCFS /                 │
//!    └─ schedules  └─ drop / timeout  │  energy-aware)          └─ pops the
//!       the next      accounting      └─ picks an idle             queue
//!       arrival                          capable server
//! ```
//!
//! Determinism: every random draw (inter-arrival gaps, template selection,
//! service-time jitter) comes from the kernel's seeded RNG, so a given
//! `(servers, config, scheduler)` triple reproduces bit-identically.

use eedc_simkit::error::SimError;
use eedc_simkit::sim::{EventHandler, Simulation};
use eedc_simkit::units::{Joules, Seconds, Watts};
use std::collections::VecDeque;

/// Closed-form cost of running one query template on one server: the service
/// time and the energy drawn *above idle* while serving.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceProfile {
    /// Mean service time of the template on this server.
    pub time: Seconds,
    /// Energy consumed serving one query of the template.
    pub energy: Joules,
}

/// One logical server: a pool of nodes that serves one query at a time.
///
/// For a heterogeneous `(b Beefy, w Wimpy)` design the serving layer builds
/// two servers — the Beefy pool and the Wimpy pool — so the scheduler's
/// per-query choice *is* the paper's Beefy-vs-Wimpy placement decision.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingServer {
    /// Human-readable label (e.g. `"beefy(4)"`, `"wimpy(16)"`).
    pub label: String,
    /// Wall power the pool burns while idle between queries.
    pub idle_power: Watts,
    /// Per-template cost, indexed by template id; `None` marks a template
    /// this server cannot serve (e.g. the build side overflows its memory).
    pub profiles: Vec<Option<ServiceProfile>>,
}

impl ServingServer {
    /// Whether this server can serve the given template.
    pub fn can_serve(&self, template: usize) -> bool {
        self.profiles.get(template).is_some_and(|p| p.is_some())
    }
}

/// Service-time law applied around the profile's mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceDistribution {
    /// Every query of a template takes exactly the profile time (the
    /// closed-form machinery is deterministic, so this is the default).
    Deterministic,
    /// Exponentially distributed around the profile mean — the M/M/1 law the
    /// kernel is cross-validated against.
    Exponential,
}

/// Parameters of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// Offered load: mean arrivals per second of the Poisson process.
    pub qps: f64,
    /// Length of the arrival window; completions are drained past it.
    pub duration: Seconds,
    /// Zipf skew of the template mix: template `i` has weight
    /// `(i + 1)^-theta`. `0.0` is a uniform mix.
    pub template_theta: f64,
    /// Admission-queue bound; arrivals beyond it are dropped.
    pub queue_capacity: usize,
    /// Queued queries waiting longer than this time out (checked lazily at
    /// the next arrival or completion). `None` disables timeouts.
    pub max_wait: Option<Seconds>,
    /// RNG seed; same seed ⇒ bit-identical run.
    pub seed: u64,
    /// Service-time law.
    pub service: ServiceDistribution,
}

impl ServingConfig {
    /// A deterministic-service, uniform-mix configuration with a generous
    /// (but bounded) admission queue.
    pub fn new(qps: f64, duration: Seconds, seed: u64) -> Self {
        ServingConfig {
            qps,
            duration,
            template_theta: 0.0,
            queue_capacity: 1024,
            max_wait: None,
            seed,
            service: ServiceDistribution::Deterministic,
        }
    }

    /// Set the Zipf skew of the template mix.
    pub fn template_theta(mut self, theta: f64) -> Self {
        self.template_theta = theta;
        self
    }

    /// Set the admission-queue bound.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Enable queue-wait timeouts.
    pub fn max_wait(mut self, wait: Seconds) -> Self {
        self.max_wait = Some(wait);
        self
    }

    /// Use exponentially distributed service times.
    pub fn exponential_service(mut self) -> Self {
        self.service = ServiceDistribution::Exponential;
        self
    }
}

/// Placement policy: given an admitted query's template and the currently
/// idle servers, pick where it runs.
pub trait Scheduler {
    /// Policy name, recorded in results.
    fn name(&self) -> String;
    /// Choose one of `idle` (indices into `servers`) able to serve
    /// `template`, or `None` to queue the query. Implementations must be
    /// deterministic functions of their arguments.
    fn place(
        &mut self,
        template: usize,
        idle: &[usize],
        servers: &[ServingServer],
    ) -> Option<usize>;
}

/// FCFS baseline: the first idle server (in id order) that can serve the
/// template.
#[derive(Debug, Clone, Copy, Default)]
pub struct FcfsScheduler;

impl Scheduler for FcfsScheduler {
    fn name(&self) -> String {
        "fcfs".into()
    }

    fn place(
        &mut self,
        template: usize,
        idle: &[usize],
        servers: &[ServingServer],
    ) -> Option<usize> {
        idle.iter()
            .copied()
            .find(|&s| servers[s].can_serve(template))
    }
}

/// Energy-aware placer: among idle servers able to serve the template, pick
/// the one whose profile costs the fewest joules (ties break to the lower
/// id). This is the per-query Beefy-vs-Wimpy decision.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyAwareScheduler;

impl Scheduler for EnergyAwareScheduler {
    fn name(&self) -> String {
        "energy-aware".into()
    }

    fn place(
        &mut self,
        template: usize,
        idle: &[usize],
        servers: &[ServingServer],
    ) -> Option<usize> {
        idle.iter()
            .copied()
            .filter(|&s| servers[s].can_serve(template))
            .min_by(|&a, &b| {
                let ea = servers[a].profiles[template].expect("filtered").energy;
                let eb = servers[b].profiles[template].expect("filtered").energy;
                ea.value().total_cmp(&eb.value()).then(a.cmp(&b))
            })
    }
}

/// Aggregated outcome of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingResult {
    /// Name of the scheduler that placed the queries.
    pub scheduler: String,
    /// Offered load (arrivals per second).
    pub offered_qps: f64,
    /// Configured arrival window.
    pub window: Seconds,
    /// End of the run: the later of the arrival window and the last
    /// completion. Idle energy is metered over this span.
    pub makespan: Seconds,
    /// Queries that arrived.
    pub arrivals: usize,
    /// Queries that completed service.
    pub completed: usize,
    /// Arrivals rejected because the admission queue was full.
    pub dropped: usize,
    /// Queued queries abandoned after waiting longer than `max_wait`.
    pub timed_out: usize,
    /// Completed-query latencies (arrival → completion), sorted ascending.
    pub latencies: Vec<f64>,
    /// Mean time admitted queries waited before service started.
    pub mean_wait: Seconds,
    /// Total energy over the makespan: query energy plus idle power.
    pub energy: Joules,
    /// Energy attributed to query execution.
    pub query_energy: Joules,
    /// Energy burned idling between queries.
    pub idle_energy: Joules,
    /// Per-server busy time.
    pub server_busy: Vec<Seconds>,
    /// Per-server total energy (query energy plus that server's idle power
    /// over its idle time). Sums to `energy`.
    pub server_energy: Vec<Joules>,
    /// Per-server completed-query counts.
    pub server_queries: Vec<usize>,
    /// Per-template completed-query counts.
    pub template_completed: Vec<usize>,
}

impl ServingResult {
    /// Nearest-rank percentile of the completed-query latency distribution
    /// (`p` in `(0, 100]`); zero when nothing completed.
    pub fn latency_percentile(&self, p: f64) -> Seconds {
        if self.latencies.is_empty() {
            return Seconds::zero();
        }
        let rank = ((p / 100.0) * self.latencies.len() as f64).ceil() as usize;
        Seconds(self.latencies[rank.clamp(1, self.latencies.len()) - 1])
    }

    /// Median latency.
    pub fn p50(&self) -> Seconds {
        self.latency_percentile(50.0)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> Seconds {
        self.latency_percentile(95.0)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Seconds {
        self.latency_percentile(99.0)
    }

    /// Mean completed-query latency.
    pub fn mean_latency(&self) -> Seconds {
        if self.latencies.is_empty() {
            return Seconds::zero();
        }
        Seconds(self.latencies.iter().sum::<f64>() / self.latencies.len() as f64)
    }

    /// Completions per second over the makespan.
    pub fn achieved_qps(&self) -> f64 {
        if self.makespan.value() <= f64::EPSILON {
            return 0.0;
        }
        self.completed as f64 / self.makespan.value()
    }

    /// Fraction of arrivals lost to drops or timeouts.
    pub fn drop_rate(&self) -> f64 {
        if self.arrivals == 0 {
            return 0.0;
        }
        (self.dropped + self.timed_out) as f64 / self.arrivals as f64
    }

    /// Total energy divided by completed queries (total energy when nothing
    /// completed, so a fully-saturated run still reads as expensive).
    pub fn energy_per_query(&self) -> Joules {
        if self.completed == 0 {
            return self.energy;
        }
        self.energy / self.completed as f64
    }

    /// Busy share of a server over the makespan.
    pub fn server_utilization(&self, server: usize) -> f64 {
        if self.makespan.value() <= f64::EPSILON {
            return 0.0;
        }
        (self.server_busy[server].value() / self.makespan.value()).clamp(0.0, 1.0)
    }
}

#[derive(Debug, Clone, Copy)]
enum ServingEvent {
    Arrival,
    Completion { server: usize },
}

#[derive(Debug, Clone, Copy)]
struct Queued {
    arrival: f64,
    template: usize,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    arrival: f64,
    template: usize,
}

struct ServingEngine<'a> {
    servers: &'a [ServingServer],
    scheduler: &'a mut dyn Scheduler,
    config: &'a ServingConfig,
    /// Cumulative Zipf weights over templates, last entry 1.0.
    template_cdf: Vec<f64>,
    idle: Vec<bool>,
    in_flight: Vec<Option<InFlight>>,
    queue: VecDeque<Queued>,
    arrivals: usize,
    dropped: usize,
    timed_out: usize,
    latencies: Vec<f64>,
    wait_sum: f64,
    wait_count: usize,
    server_busy: Vec<f64>,
    server_query_energy: Vec<f64>,
    server_queries: Vec<usize>,
    template_completed: Vec<usize>,
}

impl ServingEngine<'_> {
    fn draw_template(&mut self, sim: &mut Simulation<ServingEvent>) -> usize {
        let u = sim.sample_unit();
        self.template_cdf
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.template_cdf.len() - 1)
    }

    /// Remove queued entries that have outlived `max_wait`.
    fn purge_expired(&mut self, now: f64) {
        let Some(max_wait) = self.config.max_wait else {
            return;
        };
        let before = self.queue.len();
        self.queue.retain(|q| now - q.arrival <= max_wait.value());
        self.timed_out += before - self.queue.len();
    }

    /// Start service for `query` on `server` at time `now`.
    fn start(
        &mut self,
        sim: &mut Simulation<ServingEvent>,
        server: usize,
        query: Queued,
        now: f64,
    ) {
        let profile = self.servers[server].profiles[query.template]
            .expect("scheduler placed an unservable template");
        let service = match self.config.service {
            ServiceDistribution::Deterministic => profile.time.value(),
            ServiceDistribution::Exponential => sim
                .sample_exponential(profile.time.value())
                .expect("profile times are validated positive"),
        };
        // Energy scales with actual service time, so exponential draws keep
        // the profile's mean power.
        let energy = profile.energy.value() * (service / profile.time.value());
        self.idle[server] = false;
        self.in_flight[server] = Some(InFlight {
            arrival: query.arrival,
            template: query.template,
        });
        self.wait_sum += now - query.arrival;
        self.wait_count += 1;
        self.server_busy[server] += service;
        self.server_query_energy[server] += energy;
        sim.schedule_in(service, ServingEvent::Completion { server })
            .expect("service times are finite and non-negative");
    }

    /// Place an admitted query, or queue/drop it.
    fn admit(&mut self, sim: &mut Simulation<ServingEvent>, query: Queued, now: f64) {
        let idle: Vec<usize> = (0..self.servers.len()).filter(|&s| self.idle[s]).collect();
        match self.scheduler.place(query.template, &idle, self.servers) {
            Some(server) => self.start(sim, server, query, now),
            None if self.queue.len() < self.config.queue_capacity => self.queue.push_back(query),
            None => self.dropped += 1,
        }
    }
}

impl EventHandler<ServingEvent> for ServingEngine<'_> {
    fn on_event(&mut self, sim: &mut Simulation<ServingEvent>, event: ServingEvent) {
        let now = sim.time();
        match event {
            ServingEvent::Arrival => {
                self.arrivals += 1;
                self.purge_expired(now);
                let template = self.draw_template(sim);
                self.admit(
                    sim,
                    Queued {
                        arrival: now,
                        template,
                    },
                    now,
                );
                // Open loop: the next arrival is scheduled regardless of
                // service progress, but only inside the arrival window.
                let gap = sim
                    .sample_exponential(1.0 / self.config.qps)
                    .expect("qps is validated positive");
                if now + gap < self.config.duration.value() {
                    sim.schedule_in(gap, ServingEvent::Arrival)
                        .expect("gap is finite and non-negative");
                }
            }
            ServingEvent::Completion { server } => {
                let done = self.in_flight[server]
                    .take()
                    .expect("completion for an idle server");
                self.latencies.push(now - done.arrival);
                self.template_completed[done.template] += 1;
                self.server_queries[server] += 1;
                self.idle[server] = true;
                self.purge_expired(now);
                // FCFS queue discipline with heterogeneous capability: the
                // freed server takes the oldest queued query it can serve.
                if let Some(pos) = self
                    .queue
                    .iter()
                    .position(|q| self.servers[server].can_serve(q.template))
                {
                    let query = self.queue.remove(pos).expect("position is in bounds");
                    self.start(sim, server, query, now);
                }
            }
        }
    }
}

/// Run one serving simulation to completion.
///
/// Validates the inputs, schedules the first arrival, and drives the event
/// loop until the arrival window has passed and every admitted query has
/// completed (or timed out).
pub fn simulate_serving(
    servers: &[ServingServer],
    config: &ServingConfig,
    scheduler: &mut dyn Scheduler,
) -> Result<ServingResult, SimError> {
    if servers.is_empty() {
        return Err(SimError::invalid("serving needs at least one server"));
    }
    let templates = servers[0].profiles.len();
    if templates == 0 {
        return Err(SimError::invalid("serving needs at least one template"));
    }
    for server in servers {
        if server.profiles.len() != templates {
            return Err(SimError::invalid(format!(
                "server '{}' profiles {} templates, expected {}",
                server.label,
                server.profiles.len(),
                templates
            )));
        }
        for profile in server.profiles.iter().flatten() {
            if profile.time.value() <= 0.0 || !profile.time.value().is_finite() {
                return Err(SimError::invalid(format!(
                    "server '{}' has a non-positive service time",
                    server.label
                )));
            }
        }
    }
    for template in 0..templates {
        if !servers.iter().any(|s| s.can_serve(template)) {
            return Err(SimError::invalid(format!(
                "no server can serve template {template}"
            )));
        }
    }
    if !config.qps.is_finite() || config.qps <= 0.0 {
        return Err(SimError::invalid(format!(
            "offered QPS must be positive, got {}",
            config.qps
        )));
    }
    if config.duration.value() <= 0.0 {
        return Err(SimError::invalid("arrival window must be positive"));
    }
    if config.template_theta < 0.0 {
        return Err(SimError::invalid("Zipf theta must be non-negative"));
    }

    // Zipf weights: template i gets (i + 1)^-theta, normalized to a CDF.
    let weights: Vec<f64> = (0..templates)
        .map(|i| ((i + 1) as f64).powf(-config.template_theta))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    let template_cdf: Vec<f64> = weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect();

    let mut engine = ServingEngine {
        servers,
        scheduler,
        config,
        template_cdf,
        idle: vec![true; servers.len()],
        in_flight: vec![None; servers.len()],
        queue: VecDeque::new(),
        arrivals: 0,
        dropped: 0,
        timed_out: 0,
        latencies: Vec::new(),
        wait_sum: 0.0,
        wait_count: 0,
        server_busy: vec![0.0; servers.len()],
        server_query_energy: vec![0.0; servers.len()],
        server_queries: vec![0; servers.len()],
        template_completed: vec![0; templates],
    };

    let mut sim: Simulation<ServingEvent> = Simulation::new(config.seed);
    let first = sim.sample_exponential(1.0 / config.qps)?;
    if first < config.duration.value() {
        sim.schedule_in(first, ServingEvent::Arrival)?;
    }
    sim.run(&mut engine);

    debug_assert!(engine.queue.is_empty(), "run ended with queued queries");
    let makespan = sim.time().max(config.duration.value());
    let mut latencies = engine.latencies;
    latencies.sort_by(f64::total_cmp);

    let server_energy: Vec<Joules> = (0..servers.len())
        .map(|s| {
            let idle_time = (makespan - engine.server_busy[s]).max(0.0);
            Joules(engine.server_query_energy[s]) + servers[s].idle_power * Seconds(idle_time)
        })
        .collect();
    let query_energy = Joules(engine.server_query_energy.iter().sum());
    let energy = server_energy.iter().copied().sum::<Joules>();

    Ok(ServingResult {
        scheduler: engine.scheduler.name(),
        offered_qps: config.qps,
        window: config.duration,
        makespan: Seconds(makespan),
        arrivals: engine.arrivals,
        completed: latencies.len(),
        dropped: engine.dropped,
        timed_out: engine.timed_out,
        latencies,
        mean_wait: Seconds(if engine.wait_count == 0 {
            0.0
        } else {
            engine.wait_sum / engine.wait_count as f64
        }),
        energy,
        query_energy,
        idle_energy: energy - query_energy,
        server_busy: engine.server_busy.into_iter().map(Seconds).collect(),
        server_energy,
        server_queries: engine.server_queries,
        template_completed: engine.template_completed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(label: &str, times: &[Option<(f64, f64)>], idle_power: f64) -> ServingServer {
        ServingServer {
            label: label.into(),
            idle_power: Watts(idle_power),
            profiles: times
                .iter()
                .map(|t| {
                    t.map(|(time, energy)| ServiceProfile {
                        time: Seconds(time),
                        energy: Joules(energy),
                    })
                })
                .collect(),
        }
    }

    /// Satellite: the queueing kernel against closed form. An M/M/1 queue at
    /// ρ = λ/μ = 0.8 has mean wait ρ/(μ−λ) = 4 s; the simulated mean wait
    /// must land within 5%.
    #[test]
    fn mm1_mean_wait_matches_closed_form() {
        let lambda = 0.8;
        let mu = 1.0;
        let servers = vec![server("mm1", &[Some((1.0 / mu, 100.0))], 50.0)];
        let config = ServingConfig::new(lambda, Seconds(150_000.0), 4242)
            .queue_capacity(usize::MAX)
            .exponential_service();
        let result = simulate_serving(&servers, &config, &mut FcfsScheduler).unwrap();
        assert!(result.arrivals > 100_000, "arrivals {}", result.arrivals);
        assert_eq!(result.dropped, 0);
        assert_eq!(result.completed, result.arrivals);
        let rho = lambda / mu;
        let expected = rho / (mu - lambda);
        let observed = result.mean_wait.value();
        assert!(
            (observed - expected).abs() / expected < 0.05,
            "simulated mean wait {observed} vs M/M/1 closed form {expected}"
        );
        // Utilization converges to ρ as well.
        assert!((result.server_utilization(0) - rho).abs() < 0.02);
    }

    /// Satellite: two runs with the same seed are bit-identical.
    #[test]
    fn same_seed_is_bit_identical() {
        let servers = vec![
            server("beefy", &[Some((0.5, 300.0)), Some((2.0, 1200.0))], 120.0),
            server("wimpy", &[Some((1.5, 90.0)), None], 30.0),
        ];
        let config = ServingConfig::new(1.2, Seconds(2_000.0), 99)
            .template_theta(1.0)
            .queue_capacity(16)
            .max_wait(Seconds(20.0))
            .exponential_service();
        let a = simulate_serving(&servers, &config, &mut EnergyAwareScheduler).unwrap();
        let b = simulate_serving(&servers, &config, &mut EnergyAwareScheduler).unwrap();
        assert_eq!(a, b, "same seed must reproduce bit-identically");
        let other = ServingConfig {
            seed: 100,
            ..config
        };
        let c = simulate_serving(&servers, &other, &mut EnergyAwareScheduler).unwrap();
        assert_ne!(a.latencies, c.latencies, "different seed must differ");
    }

    #[test]
    fn saturation_fills_the_queue_and_drops() {
        let servers = vec![server("slow", &[Some((1.0, 100.0))], 50.0)];
        let config = ServingConfig::new(3.0, Seconds(500.0), 7).queue_capacity(8);
        let result = simulate_serving(&servers, &config, &mut FcfsScheduler).unwrap();
        assert!(result.dropped > 0, "offered 3× capacity must drop");
        assert!(result.drop_rate() > 0.5);
        assert_eq!(
            result.completed + result.dropped + result.timed_out,
            result.arrivals
        );
        // The server never idles once saturated; throughput pins near μ.
        assert!(result.server_utilization(0) > 0.95);
        assert!((result.achieved_qps() - 1.0).abs() < 0.05);
    }

    #[test]
    fn stale_queued_queries_time_out() {
        let servers = vec![server("slow", &[Some((2.0, 100.0))], 50.0)];
        let config = ServingConfig::new(2.0, Seconds(300.0), 11)
            .queue_capacity(usize::MAX)
            .max_wait(Seconds(4.0));
        let result = simulate_serving(&servers, &config, &mut FcfsScheduler).unwrap();
        assert!(result.timed_out > 0, "stale queries must time out");
        assert_eq!(result.dropped, 0, "unbounded queue never drops");
        assert_eq!(
            result.completed + result.timed_out,
            result.arrivals,
            "every arrival either completes or times out"
        );
        // Lazy expiry bounds the wait of *served* queries by max_wait plus
        // one service time (the purge runs at the next event).
        assert!(result.latencies.last().unwrap() <= &(4.0 + 2.0 + 2.0));
    }

    #[test]
    fn energy_splits_into_query_and_idle_parts() {
        let servers = vec![server("one", &[Some((1.0, 200.0))], 100.0)];
        let config = ServingConfig::new(0.1, Seconds(1_000.0), 3);
        let result = simulate_serving(&servers, &config, &mut FcfsScheduler).unwrap();
        let busy = result.server_busy[0].value();
        assert!((busy - result.completed as f64).abs() < 1e-9, "1 s each");
        let expected_query = 200.0 * result.completed as f64;
        assert!((result.query_energy.value() - expected_query).abs() < 1e-6);
        let expected_idle = 100.0 * (result.makespan.value() - busy);
        assert!((result.idle_energy.value() - expected_idle).abs() < 1e-6);
        assert!(
            (result.energy.value() - (result.query_energy.value() + result.idle_energy.value()))
                .abs()
                < 1e-6
        );
        assert!(
            result.energy_per_query() > Joules(200.0),
            "idle power amortizes in"
        );
    }

    #[test]
    fn energy_aware_placement_prefers_the_cheaper_pool() {
        // Both pools can serve the single template; the wimpy pool is slower
        // but far cheaper per query.
        let servers = vec![
            server("beefy", &[Some((0.5, 500.0))], 200.0),
            server("wimpy", &[Some((1.0, 100.0))], 40.0),
        ];
        let config = ServingConfig::new(0.05, Seconds(20_000.0), 21);
        let fcfs = simulate_serving(&servers, &config, &mut FcfsScheduler).unwrap();
        let aware = simulate_serving(&servers, &config, &mut EnergyAwareScheduler).unwrap();
        // At this light load the preferred server is almost always idle, so
        // FCFS runs nearly everything on the beefy pool and the energy-aware
        // placer nearly everything on the wimpy pool (the other pool only
        // catches overflow).
        assert!(fcfs.server_queries[0] > fcfs.server_queries[1] * 5);
        assert!(aware.server_queries[1] > aware.server_queries[0] * 5);
        assert!(aware.query_energy < fcfs.query_energy);
        assert_eq!(aware.scheduler, "energy-aware");
        assert_eq!(fcfs.scheduler, "fcfs");
    }

    #[test]
    fn zipf_mix_skews_toward_early_templates() {
        let profiles: Vec<Option<(f64, f64)>> = vec![Some((0.1, 10.0)); 5];
        let servers = vec![server("s", &profiles, 50.0)];
        let config = ServingConfig::new(2.0, Seconds(5_000.0), 13).template_theta(1.5);
        let result = simulate_serving(&servers, &config, &mut FcfsScheduler).unwrap();
        let counts = &result.template_completed;
        assert!(
            counts[0] > 2 * counts[1],
            "theta=1.5 strongly favours template 0"
        );
        assert!(
            counts.windows(2).all(|w| w[0] >= w[1]),
            "monotone mix {counts:?}"
        );
        // Uniform mix spreads evenly.
        let uniform_config = ServingConfig::new(2.0, Seconds(5_000.0), 13);
        let uniform = simulate_serving(&servers, &uniform_config, &mut FcfsScheduler).unwrap();
        let max = *uniform.template_completed.iter().max().unwrap() as f64;
        let min = *uniform.template_completed.iter().min().unwrap() as f64;
        assert!(max / min < 1.2, "uniform mix stays balanced");
    }

    #[test]
    fn tail_latency_grows_with_offered_load() {
        let servers = vec![server("s", &[Some((1.0, 100.0))], 50.0)];
        let p99_at = |qps: f64| {
            let config = ServingConfig::new(qps, Seconds(5_000.0), 17)
                .queue_capacity(usize::MAX)
                .exponential_service();
            simulate_serving(&servers, &config, &mut FcfsScheduler)
                .unwrap()
                .p99()
        };
        let low = p99_at(0.3);
        let mid = p99_at(0.6);
        let high = p99_at(0.9);
        assert!(
            low < mid && mid < high,
            "p99 must grow with load: {low:?} {mid:?} {high:?}"
        );
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let result = ServingResult {
            scheduler: "fcfs".into(),
            offered_qps: 1.0,
            window: Seconds(1.0),
            makespan: Seconds(1.0),
            arrivals: 4,
            completed: 4,
            dropped: 0,
            timed_out: 0,
            latencies: vec![1.0, 2.0, 3.0, 4.0],
            mean_wait: Seconds(0.0),
            energy: Joules(0.0),
            query_energy: Joules(0.0),
            idle_energy: Joules(0.0),
            server_busy: vec![Seconds(0.0)],
            server_energy: vec![Joules(0.0)],
            server_queries: vec![4],
            template_completed: vec![4],
        };
        assert_eq!(result.p50(), Seconds(2.0));
        assert_eq!(result.p95(), Seconds(4.0));
        assert_eq!(result.p99(), Seconds(4.0));
        assert_eq!(result.latency_percentile(1.0), Seconds(1.0));
        assert_eq!(result.mean_latency(), Seconds(2.5));
        let empty = ServingResult {
            latencies: Vec::new(),
            completed: 0,
            ..result
        };
        assert_eq!(empty.p99(), Seconds::zero());
        assert_eq!(empty.mean_latency(), Seconds::zero());
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let ok = vec![server("s", &[Some((1.0, 1.0))], 1.0)];
        let config = ServingConfig::new(1.0, Seconds(10.0), 1);
        assert!(simulate_serving(&[], &config, &mut FcfsScheduler).is_err());
        let no_templates = vec![server("s", &[], 1.0)];
        assert!(simulate_serving(&no_templates, &config, &mut FcfsScheduler).is_err());
        let unservable = vec![server("s", &[Some((1.0, 1.0)), None], 1.0)];
        assert!(simulate_serving(&unservable, &config, &mut FcfsScheduler).is_err());
        let ragged = vec![
            server("a", &[Some((1.0, 1.0))], 1.0),
            server("b", &[Some((1.0, 1.0)), Some((1.0, 1.0))], 1.0),
        ];
        assert!(simulate_serving(&ragged, &config, &mut FcfsScheduler).is_err());
        let zero_time = vec![server("s", &[Some((0.0, 1.0))], 1.0)];
        assert!(simulate_serving(&zero_time, &config, &mut FcfsScheduler).is_err());
        let bad_qps = ServingConfig::new(0.0, Seconds(10.0), 1);
        assert!(simulate_serving(&ok, &bad_qps, &mut FcfsScheduler).is_err());
        let bad_duration = ServingConfig::new(1.0, Seconds(0.0), 1);
        assert!(simulate_serving(&ok, &bad_duration, &mut FcfsScheduler).is_err());
        let bad_theta = ServingConfig::new(1.0, Seconds(10.0), 1).template_theta(-1.0);
        assert!(simulate_serving(&ok, &bad_theta, &mut FcfsScheduler).is_err());
    }
}
