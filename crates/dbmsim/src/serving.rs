//! Discrete-event *serving* simulator: open-loop arrivals, admission
//! queueing, pluggable placement.
//!
//! Everything else in this crate (and in the analytical model) evaluates one
//! query at a time in closed form. This module models a cluster run as a
//! long-lived **service**: queries arrive open loop under a configurable
//! [`ArrivalProcess`] (Poisson, a recorded trace, or a piecewise-rate
//! diurnal ramp), each arrival draws a query *template* from a Zipf-skewed
//! mix, a bounded admission queue absorbs bursts (with drop and timeout
//! accounting), and a [`Scheduler`] places each admitted query on one of
//! several *pools* (for a heterogeneous design: the Beefy pool and the Wimpy
//! pool). A pool serves up to [`ServingServer::concurrency_limit`] queries
//! at once — either on dedicated slots ([`ServiceMode::Dedicated`], the
//! M/M/c shape) or by dividing its single-query rate across everything in
//! flight ([`ServiceMode::ProcessorSharing`], the M/M/1-PS shape). Per-query
//! service times and energies are **inputs** ([`ServiceProfile`]) — they
//! come from the existing closed-form machinery (`eedc-core`'s
//! analytical/traced estimators), not from new physics; what this layer adds
//! is the queueing behaviour those closed forms cannot express: latency
//! percentiles, drops, saturation.
//!
//! Event flow (each hop is one event on the [`Simulation`] kernel):
//!
//! ```text
//! arrival ──▶ scheduler ──────────▶ pool ──▶ service ──▶ completion
//!    │            │ (FCFS / energy- │ queue                  │
//!    └─ schedules │  aware: free    │ (JSQ / po2 commit      └─ frees a
//!       the next  │  slots only;    │  here; timeouts and       slot; pulls
//!       arrival   │  else central   │  the shared bound         the pool
//!                 ▼  queue)         ▼  apply)                   queue, then
//!          central queue ───────────────────────────────────▶   the central
//!          (bounded, drop / timeout accounting)                 queue
//! ```
//!
//! Determinism: every random draw (inter-arrival gaps, template selection,
//! service-time jitter, the power-of-two-choices probes) comes from the
//! kernel's seeded RNG, so a given `(servers, config, scheduler)` triple
//! reproduces bit-identically. The queueing behaviour is cross-validated
//! against closed forms — Erlang-C for M/M/c waits, the M/M/1-PS sojourn
//! insensitivity, po2-beats-random — in
//! `crates/dbmsim/tests/queueing_validation.rs`.
//!
//! Fault injection and elastic lifecycle live in [`crate::faults`]: attach a
//! [`FaultModel`] via [`ServingConfig::faults`] and the engine schedules
//! node-down / node-up events — in-flight queries on a failed pool are
//! killed and dropped, replayed, or checkpoint-resumed per
//! [`RecoveryPolicy`](crate::faults::RecoveryPolicy); restart energy and
//! warm-up time are billed to the run; and a queue-depth
//! [`ScalePolicy`](crate::faults::ScalePolicy) parks and revives whole
//! pools mid-run, billing data movement per transition. An inert model
//! ([`FaultModel::is_inert`]) schedules no events and consumes no RNG
//! draws, so fault-free results stay bit-identical.

use crate::faults::{FaultModel, PoolLifecycle, TransitionCost};
use eedc_simkit::error::SimError;
use eedc_simkit::sim::{EventHandler, Simulation};
use eedc_simkit::units::{Joules, Seconds, Watts};
use std::collections::VecDeque;

/// Closed-form cost of running one query template on one server: the service
/// time and the energy drawn *above idle* while serving.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceProfile {
    /// Mean service time of the template on this server.
    pub time: Seconds,
    /// Energy consumed serving one query of the template.
    pub energy: Joules,
}

/// How a pool shares its capacity across concurrent queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServiceMode {
    /// Up to `concurrency_limit` dedicated slots, each serving one query at
    /// the profile's full rate — the M/M/c shape. The per-query profile
    /// should then be priced *at* that concurrency (the `eedc-core` serving
    /// lens prices an n-way pool from `ConcurrencySweep` data).
    #[default]
    Dedicated,
    /// One shared processor at the single-query profile rate, divided
    /// equally across everything in flight (up to `concurrency_limit`) —
    /// the M/M/1-PS shape. Contention is modeled by the sharing itself, so
    /// profiles should be priced solo.
    ProcessorSharing,
}

/// One logical server: a pool of nodes serving up to
/// [`concurrency_limit`](Self::concurrency_limit) queries at a time.
///
/// For a heterogeneous `(b Beefy, w Wimpy)` design the serving layer builds
/// two pools — the Beefy pool and the Wimpy pool — so the scheduler's
/// per-query choice *is* the paper's Beefy-vs-Wimpy placement decision.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingServer {
    /// Human-readable label (e.g. `"beefy(4)"`, `"wimpy(16)"`).
    pub label: String,
    /// Wall power the pool burns while idle between queries.
    pub idle_power: Watts,
    /// Per-template cost, indexed by template id; `None` marks a template
    /// this server cannot serve (e.g. the build side overflows its memory).
    pub profiles: Vec<Option<ServiceProfile>>,
    /// Queries the pool serves simultaneously; beyond it they queue.
    pub concurrency_limit: usize,
    /// Dedicated slots or processor sharing across the in-flight set.
    pub mode: ServiceMode,
    /// Physical nodes backing the pool — the pool fails when its first node
    /// does, so this scales the hazard rate of a [`FaultModel`].
    pub nodes: usize,
}

impl ServingServer {
    /// A single-query, dedicated-slot pool (the pre-concurrency default).
    pub fn new(
        label: impl Into<String>,
        idle_power: Watts,
        profiles: Vec<Option<ServiceProfile>>,
    ) -> Self {
        Self {
            label: label.into(),
            idle_power,
            profiles,
            concurrency_limit: 1,
            mode: ServiceMode::Dedicated,
            nodes: 1,
        }
    }

    /// Serve up to `limit` queries at once (dedicated slots by default).
    pub fn concurrency_limit(mut self, limit: usize) -> Self {
        self.concurrency_limit = limit;
        self
    }

    /// Set the physical node count backing the pool (scales the hazard
    /// failure rate; defaults to one).
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Divide the pool's single-query rate across in-flight queries instead
    /// of granting each a dedicated slot.
    pub fn processor_sharing(mut self) -> Self {
        self.mode = ServiceMode::ProcessorSharing;
        self
    }

    /// Whether this server can serve the given template.
    pub fn can_serve(&self, template: usize) -> bool {
        self.profiles.get(template).is_some_and(|p| p.is_some())
    }

    /// The utilization divisor: parallel service capacity in query-slots
    /// (a processor-sharing pool is one shared processor, whatever its
    /// multiprogramming limit).
    pub fn slots(&self) -> usize {
        match self.mode {
            ServiceMode::Dedicated => self.concurrency_limit.max(1),
            ServiceMode::ProcessorSharing => 1,
        }
    }
}

/// Service-time law applied around the profile's mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceDistribution {
    /// Every query of a template takes exactly the profile time (the
    /// closed-form machinery is deterministic, so this is the default).
    Deterministic,
    /// Exponentially distributed around the profile mean — the M/M/c law
    /// the kernel is cross-validated against.
    Exponential,
}

/// One piece of a piecewise-constant-rate arrival ramp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RampSegment {
    /// How long the segment lasts.
    pub duration: Seconds,
    /// Mean Poisson arrival rate over the segment (`0.0` is a quiet spell).
    pub qps: f64,
}

/// The open-loop arrival law — the seam that replaces the PR 7 hard-coded
/// exponential gaps (the `dslab-faas` trace shape).
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant mean rate.
    Poisson {
        /// Mean arrivals per second.
        qps: f64,
    },
    /// Replay recorded arrival instants (non-decreasing, from time zero);
    /// instants at or beyond the arrival window are ignored.
    Trace(Vec<Seconds>),
    /// Piecewise-constant Poisson rates — a diurnal ramp. Segments tile the
    /// window from time zero; arrivals stop at the earlier of the last
    /// segment and the window.
    Ramp(Vec<RampSegment>),
}

impl ArrivalProcess {
    /// Short name recorded in results (`"poisson"` / `"trace"` / `"ramp"`).
    pub fn kind(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Trace(_) => "trace",
            ArrivalProcess::Ramp(_) => "ramp",
        }
    }

    /// Mean offered rate over an arrival window (the configured rate for
    /// Poisson; the realized rate for traces and ramps).
    pub fn mean_qps(&self, window: Seconds) -> f64 {
        let window = window.value();
        if window <= 0.0 {
            return 0.0;
        }
        match self {
            ArrivalProcess::Poisson { qps } => *qps,
            ArrivalProcess::Trace(times) => {
                times.iter().filter(|t| t.value() < window).count() as f64 / window
            }
            ArrivalProcess::Ramp(segments) => {
                let mut start = 0.0;
                let mut expected = 0.0;
                for segment in segments {
                    let end = (start + segment.duration.value()).min(window);
                    if end > start {
                        expected += segment.qps * (end - start);
                    }
                    start += segment.duration.value();
                    if start >= window {
                        break;
                    }
                }
                expected / window
            }
        }
    }

    fn validate(&self) -> Result<(), SimError> {
        match self {
            ArrivalProcess::Poisson { qps } => {
                if !qps.is_finite() || *qps <= 0.0 {
                    return Err(SimError::invalid(format!(
                        "offered QPS must be positive, got {qps}"
                    )));
                }
            }
            ArrivalProcess::Trace(times) => {
                let mut last = 0.0;
                for time in times {
                    let t = time.value();
                    if !t.is_finite() || t < 0.0 {
                        return Err(SimError::invalid(format!(
                            "trace arrival instants must be finite and non-negative, got {t}"
                        )));
                    }
                    if t < last {
                        return Err(SimError::invalid(
                            "trace arrival instants must be non-decreasing",
                        ));
                    }
                    last = t;
                }
            }
            ArrivalProcess::Ramp(segments) => {
                if segments.is_empty() {
                    return Err(SimError::invalid("a ramp needs at least one segment"));
                }
                for segment in segments {
                    let d = segment.duration.value();
                    if !d.is_finite() || d <= 0.0 {
                        return Err(SimError::invalid(format!(
                            "ramp segment durations must be positive, got {d}"
                        )));
                    }
                    if !segment.qps.is_finite() || segment.qps < 0.0 {
                        return Err(SimError::invalid(format!(
                            "ramp segment rates must be finite and non-negative, got {}",
                            segment.qps
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Parameters of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// The open-loop arrival law.
    pub arrival: ArrivalProcess,
    /// Length of the arrival window; completions are drained past it.
    pub duration: Seconds,
    /// Zipf skew of the template mix: template `i` has weight
    /// `(i + 1)^-theta`. `0.0` is a uniform mix.
    pub template_theta: f64,
    /// Shared waiting-room bound across the central queue and every pool
    /// queue; arrivals beyond it are dropped.
    pub queue_capacity: usize,
    /// Queued queries waiting longer than this time out (checked lazily at
    /// the next arrival or completion). `None` disables timeouts.
    pub max_wait: Option<Seconds>,
    /// RNG seed; same seed ⇒ bit-identical run.
    pub seed: u64,
    /// Service-time law.
    pub service: ServiceDistribution,
    /// Fault-injection and lifecycle model; `None` (or an inert model)
    /// keeps every pool online for the whole run.
    pub faults: Option<FaultModel>,
}

impl ServingConfig {
    /// A deterministic-service, uniform-mix, Poisson-arrival configuration
    /// with a generous (but bounded) admission queue.
    pub fn new(qps: f64, duration: Seconds, seed: u64) -> Self {
        ServingConfig {
            arrival: ArrivalProcess::Poisson { qps },
            duration,
            template_theta: 0.0,
            queue_capacity: 1024,
            max_wait: None,
            seed,
            service: ServiceDistribution::Deterministic,
            faults: None,
        }
    }

    /// Replace the arrival law (trace replay, diurnal ramp).
    pub fn arrival(mut self, arrival: ArrivalProcess) -> Self {
        self.arrival = arrival;
        self
    }

    /// Set the Zipf skew of the template mix.
    pub fn template_theta(mut self, theta: f64) -> Self {
        self.template_theta = theta;
        self
    }

    /// Set the admission-queue bound.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Enable queue-wait timeouts.
    pub fn max_wait(mut self, wait: Seconds) -> Self {
        self.max_wait = Some(wait);
        self
    }

    /// Use exponentially distributed service times.
    pub fn exponential_service(mut self) -> Self {
        self.service = ServiceDistribution::Exponential;
        self
    }

    /// Attach a fault-injection and lifecycle model.
    pub fn faults(mut self, model: FaultModel) -> Self {
        self.faults = Some(model);
        self
    }
}

/// Read-only queue state of one pool at placement time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolView {
    /// Queries currently being served by the pool.
    pub in_flight: usize,
    /// Queries waiting in the pool's own queue.
    pub queued: usize,
    /// Service slots currently free (`0` for a full — or offline — pool).
    pub free_slots: usize,
    /// Whether the pool is serving. Failed and parked pools read offline;
    /// committing to one sends the query to the central queue instead.
    pub online: bool,
}

impl PoolView {
    /// Queue depth as feedback schedulers see it: waiting plus in service.
    pub fn depth(&self) -> usize {
        self.in_flight + self.queued
    }
}

/// Placement policy: given an admitted query's template and the queue state
/// of every pool, pick where it goes.
pub trait Scheduler {
    /// Policy name, recorded in results.
    fn name(&self) -> String;

    /// Choose a pool able to serve `template`, or `None` to wait in the
    /// central queue (the first pool to free a capable slot then takes it,
    /// oldest first). Returning `Some(pool)` *commits* the query to that
    /// pool: it starts immediately if a slot is free and joins the pool's
    /// own queue otherwise. `draw` yields uniform `[0, 1)` variates from
    /// the run's seeded RNG — the only randomness a policy may use, so
    /// placements stay a deterministic function of `(seed, arguments)`.
    fn place(
        &mut self,
        template: usize,
        servers: &[ServingServer],
        pools: &[PoolView],
        draw: &mut dyn FnMut() -> f64,
    ) -> Option<usize>;
}

/// FCFS baseline: the first pool (in id order) with a free slot that can
/// serve the template; central queue otherwise.
#[derive(Debug, Clone, Copy, Default)]
pub struct FcfsScheduler;

impl Scheduler for FcfsScheduler {
    fn name(&self) -> String {
        "fcfs".into()
    }

    fn place(
        &mut self,
        template: usize,
        servers: &[ServingServer],
        pools: &[PoolView],
        _draw: &mut dyn FnMut() -> f64,
    ) -> Option<usize> {
        (0..servers.len())
            .find(|&s| pools[s].online && pools[s].free_slots > 0 && servers[s].can_serve(template))
    }
}

/// Energy-aware placer: among pools with a free slot able to serve the
/// template, pick the one whose profile costs the fewest joules (ties break
/// to the lower id); central queue when none is free. This is the per-query
/// Beefy-vs-Wimpy decision.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyAwareScheduler;

impl Scheduler for EnergyAwareScheduler {
    fn name(&self) -> String {
        "energy-aware".into()
    }

    fn place(
        &mut self,
        template: usize,
        servers: &[ServingServer],
        pools: &[PoolView],
        _draw: &mut dyn FnMut() -> f64,
    ) -> Option<usize> {
        (0..servers.len())
            .filter(|&s| {
                pools[s].online && pools[s].free_slots > 0 && servers[s].can_serve(template)
            })
            .min_by(|&a, &b| {
                let energy = |s: usize| {
                    servers[s].profiles[template]
                        .map(|p| p.energy.value())
                        .unwrap_or(f64::INFINITY)
                };
                energy(a).total_cmp(&energy(b)).then(a.cmp(&b))
            })
    }
}

/// Join-shortest-queue: commit every arrival to the capable pool with the
/// fewest queries in system (waiting + in flight; ties break to the lower
/// id). Never uses the central queue.
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinShortestQueue;

impl Scheduler for JoinShortestQueue {
    fn name(&self) -> String {
        "jsq".into()
    }

    fn place(
        &mut self,
        template: usize,
        servers: &[ServingServer],
        pools: &[PoolView],
        _draw: &mut dyn FnMut() -> f64,
    ) -> Option<usize> {
        (0..servers.len())
            .filter(|&s| pools[s].online && servers[s].can_serve(template))
            .min_by_key(|&s| (pools[s].depth(), s))
    }
}

/// Power-of-two-choices: probe two distinct capable pools chosen uniformly
/// through the run's seeded RNG and commit to the one with fewer queries in
/// system (ties break to the lower pool id). The classic
/// Mitzenmacher/Vvedenskaya result: two random probes buy an exponential
/// improvement in queue depth over one.
#[derive(Debug, Clone, Copy, Default)]
pub struct PowerOfTwoChoices;

impl Scheduler for PowerOfTwoChoices {
    fn name(&self) -> String {
        "po2".into()
    }

    fn place(
        &mut self,
        template: usize,
        servers: &[ServingServer],
        pools: &[PoolView],
        draw: &mut dyn FnMut() -> f64,
    ) -> Option<usize> {
        let capable: Vec<usize> = (0..servers.len())
            .filter(|&s| pools[s].online && servers[s].can_serve(template))
            .collect();
        match capable.len() {
            0 => None,
            1 => Some(capable[0]),
            n => {
                let first = sample_below(draw(), n);
                let second = (first + 1 + sample_below(draw(), n - 1)) % n;
                let (a, b) = (capable[first], capable[second]);
                Some(if (pools[a].depth(), a) <= (pools[b].depth(), b) {
                    a
                } else {
                    b
                })
            }
        }
    }
}

/// Uniform random assignment over capable pools — the queue-blind baseline
/// power-of-two-choices is validated against.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomScheduler;

impl Scheduler for RandomScheduler {
    fn name(&self) -> String {
        "random".into()
    }

    fn place(
        &mut self,
        template: usize,
        servers: &[ServingServer],
        pools: &[PoolView],
        draw: &mut dyn FnMut() -> f64,
    ) -> Option<usize> {
        let capable: Vec<usize> = (0..servers.len())
            .filter(|&s| pools[s].online && servers[s].can_serve(template))
            .collect();
        match capable.len() {
            0 => None,
            n => Some(capable[sample_below(draw(), n)]),
        }
    }
}

/// Map a uniform `[0, 1)` variate onto `0..n` (clamped defensively so a
/// draw of exactly 1.0 from a foreign source cannot index out of bounds).
fn sample_below(unit: f64, n: usize) -> usize {
    ((unit * n as f64) as usize).min(n.saturating_sub(1))
}

/// Aggregated outcome of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingResult {
    /// Name of the scheduler that placed the queries.
    pub scheduler: String,
    /// Arrival-law name (`"poisson"` / `"trace"` / `"ramp"`).
    pub arrival: String,
    /// Mean offered load over the window (arrivals per second).
    pub offered_qps: f64,
    /// Configured arrival window.
    pub window: Seconds,
    /// End of the run: the later of the arrival window and the last
    /// completion. Idle energy is metered over this span.
    pub makespan: Seconds,
    /// Queries that arrived.
    pub arrivals: usize,
    /// Queries that completed service.
    pub completed: usize,
    /// Arrivals rejected because the shared waiting room was full (plus any
    /// queries stranded in a queue when the run ended — possible only under
    /// fault churn).
    pub dropped: usize,
    /// Queued queries abandoned after waiting longer than `max_wait`.
    pub timed_out: usize,
    /// Pool failures (hazard plus scripted) during the run.
    pub failures: usize,
    /// In-flight queries killed by pool failures.
    pub killed: usize,
    /// Killed queries re-admitted per the recovery policy. The conservation
    /// invariant: `arrivals = completed + dropped + timed_out +
    /// (killed - readmitted)`.
    pub readmitted: usize,
    /// Pools revived by the scale policy.
    pub scale_out_events: usize,
    /// Pools parked by the scale policy.
    pub scale_in_events: usize,
    /// Summed pool-seconds lost to failures (repair plus warm-up).
    pub fault_downtime: Seconds,
    /// Summed pool-seconds deliberately parked by the scale policy
    /// (excluded from the availability metric).
    pub parked_time: Seconds,
    /// Fraction of pool-time the cluster was available:
    /// `1 − fault_downtime / (makespan × pools)`.
    pub availability: f64,
    /// Completed-query latencies (arrival → completion), sorted ascending.
    pub latencies: Vec<f64>,
    /// Mean time admitted queries waited before service started.
    pub mean_wait: Seconds,
    /// Total energy over the makespan: query energy plus idle power plus
    /// lifecycle overhead (restarts and migrations).
    pub energy: Joules,
    /// Energy attributed to query execution.
    pub query_energy: Joules,
    /// Energy burned idling between queries (unpowered repair and parked
    /// spans are not metered).
    pub idle_energy: Joules,
    /// Energy billed to lifecycle transitions: restart energy per recovery
    /// and data movement per scale transition.
    pub overhead_energy: Joules,
    /// Per-server busy time: summed per-slot service time for dedicated
    /// pools, wall-clock non-empty time for processor-sharing pools.
    pub server_busy: Vec<Seconds>,
    /// Per-server total energy (query energy plus that server's idle power
    /// over its idle time). Sums to `energy`.
    pub server_energy: Vec<Joules>,
    /// Per-server completed-query counts.
    pub server_queries: Vec<usize>,
    /// Per-server parallel capacity in query-slots (the utilization
    /// divisor): the concurrency limit for dedicated pools, 1 for
    /// processor-sharing pools.
    pub server_slots: Vec<usize>,
    /// Time-averaged queries in system (waiting + in flight) per pool.
    pub pool_mean_depth: Vec<f64>,
    /// High-water mark of each pool's own queue (waiting only).
    pub pool_max_queued: Vec<usize>,
    /// Time-averaged central-queue length.
    pub central_mean_depth: f64,
    /// Per-template completed-query counts.
    pub template_completed: Vec<usize>,
}

impl ServingResult {
    /// Nearest-rank percentile of the completed-query latency distribution.
    ///
    /// Defined for every input: `p` is clamped into `[0, 100]` (a NaN reads
    /// as 0), `p = 0` is the minimum, `p = 100` the maximum, a single-sample
    /// run returns that sample for every `p`, and an empty run returns zero
    /// seconds — never an index panic, never a NaN.
    pub fn latency_percentile(&self, p: f64) -> Seconds {
        if self.latencies.is_empty() {
            return Seconds::zero();
        }
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 100.0) };
        let rank = ((p / 100.0) * self.latencies.len() as f64).ceil() as usize;
        Seconds(self.latencies[rank.clamp(1, self.latencies.len()) - 1])
    }

    /// Median latency.
    pub fn p50(&self) -> Seconds {
        self.latency_percentile(50.0)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> Seconds {
        self.latency_percentile(95.0)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Seconds {
        self.latency_percentile(99.0)
    }

    /// Mean completed-query latency.
    pub fn mean_latency(&self) -> Seconds {
        if self.latencies.is_empty() {
            return Seconds::zero();
        }
        Seconds(self.latencies.iter().sum::<f64>() / self.latencies.len() as f64)
    }

    /// Completions per second over the makespan.
    pub fn achieved_qps(&self) -> f64 {
        if self.makespan.value() <= f64::EPSILON {
            return 0.0;
        }
        self.completed as f64 / self.makespan.value()
    }

    /// Fraction of arrivals lost to drops or timeouts.
    pub fn drop_rate(&self) -> f64 {
        if self.arrivals == 0 {
            return 0.0;
        }
        (self.dropped + self.timed_out) as f64 / self.arrivals as f64
    }

    /// Total energy divided by completed queries (total energy when nothing
    /// completed, so a fully-saturated run still reads as expensive).
    pub fn energy_per_query(&self) -> Joules {
        if self.completed == 0 {
            return self.energy;
        }
        self.energy / self.completed as f64
    }

    /// Busy share of a server over the makespan: per-slot mean utilization
    /// for dedicated pools, non-empty fraction for processor sharing.
    pub fn server_utilization(&self, server: usize) -> f64 {
        let capacity = self.makespan.value() * self.server_slots[server].max(1) as f64;
        if capacity <= f64::EPSILON {
            return 0.0;
        }
        (self.server_busy[server].value() / capacity).clamp(0.0, 1.0)
    }

    /// Time-averaged queries in system across every pool and the central
    /// queue — the queue-depth figure of merit feedback schedulers drive
    /// down.
    pub fn mean_system_depth(&self) -> f64 {
        self.pool_mean_depth.iter().sum::<f64>() + self.central_mean_depth
    }
}

#[derive(Debug, Clone, Copy)]
enum ServingEvent {
    Arrival,
    /// A dedicated slot finishes the identified query.
    Completion {
        server: usize,
        query: u64,
    },
    /// The earliest remaining-work horizon of a processor-sharing pool;
    /// stale epochs (the in-flight set changed since scheduling) are
    /// ignored.
    PsHorizon {
        server: usize,
        epoch: u64,
    },
    /// A hazard failure drawn from the fault model; stale lifecycle epochs
    /// (the pool transitioned since the draw) are ignored.
    HazardFailure {
        server: usize,
        epoch: u64,
    },
    /// A scripted outage from the fault trace (index into
    /// [`FaultModel::trace`]); ignored when the pool is already offline.
    ScriptedOutage {
        outage: usize,
    },
    /// The pool finishes repair + warm-up (or migration) and rejoins.
    PoolRestore {
        server: usize,
        epoch: u64,
    },
    /// Periodic queue-depth check of the elastic scale policy.
    ScaleCheck,
}

#[derive(Debug, Clone, Copy)]
struct Queued {
    arrival: f64,
    template: usize,
    /// Fraction of the work already checkpointed before a kill (`0.0` for a
    /// fresh arrival); service starts at the residual requirement.
    progress: f64,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    id: u64,
    arrival: f64,
    template: usize,
    /// Remaining service requirement in solo-rate seconds (advanced lazily
    /// for processor-sharing pools; unused for dedicated slots, whose
    /// completion instants are fixed at start).
    remaining: f64,
    /// Residual service requirement drawn at start (after checkpointed
    /// progress was deducted).
    service: f64,
    /// Instant service started (kill accounting for dedicated slots).
    started: f64,
    /// Checkpointed fraction of the *original* requirement carried in from
    /// earlier kills.
    progress: f64,
}

/// Per-pool runtime state: the in-flight set, the pool's own queue, and the
/// queue-depth integrals behind [`ServingResult::pool_mean_depth`].
struct Pool {
    in_flight: Vec<InFlight>,
    queue: VecDeque<Queued>,
    /// Invalidates in-air [`ServingEvent::PsHorizon`] events.
    epoch: u64,
    /// Last instant the in-flight remaining work was advanced (PS only).
    advanced_at: f64,
    busy: f64,
    query_energy: f64,
    /// Lifecycle overhead billed to this pool: restart energy per recovery
    /// and migration energy per scale transition.
    overhead: f64,
    completed: usize,
    max_queued: usize,
    depth_integral: f64,
    depth_since: f64,
}

impl Pool {
    fn new() -> Self {
        Pool {
            in_flight: Vec::new(),
            queue: VecDeque::new(),
            epoch: 0,
            advanced_at: 0.0,
            busy: 0.0,
            query_energy: 0.0,
            overhead: 0.0,
            completed: 0,
            max_queued: 0,
            depth_integral: 0.0,
            depth_since: 0.0,
        }
    }

    /// Integrate the in-system depth up to `now` (call before any change).
    fn note_depth(&mut self, now: f64) {
        self.depth_integral +=
            (now - self.depth_since) * (self.queue.len() + self.in_flight.len()) as f64;
        self.depth_since = now;
    }

    /// Advance every in-flight query's remaining work to `now` at the
    /// equal-share rate, accruing wall busy time (PS pools only).
    fn advance_shared(&mut self, now: f64) {
        let k = self.in_flight.len();
        if k > 0 {
            let elapsed = now - self.advanced_at;
            let each = elapsed / k as f64;
            for flight in &mut self.in_flight {
                flight.remaining -= each;
            }
            self.busy += elapsed;
        }
        self.advanced_at = now;
    }

    /// Index of the in-flight query with the least remaining work (ties
    /// break to the earliest-started — the lowest index).
    fn min_remaining(&self) -> Option<usize> {
        (0..self.in_flight.len()).min_by(|&a, &b| {
            self.in_flight[a]
                .remaining
                .total_cmp(&self.in_flight[b].remaining)
                .then(a.cmp(&b))
        })
    }
}

struct ServingEngine<'a> {
    servers: &'a [ServingServer],
    scheduler: &'a mut dyn Scheduler,
    config: &'a ServingConfig,
    /// The active fault model (`None` when absent or inert — the engine
    /// then schedules no lifecycle events and consumes no extra draws).
    faults: Option<&'a FaultModel>,
    /// Per-pool lifecycle state machines (all trivially online without an
    /// active fault model).
    life: Vec<PoolLifecycle>,
    /// Cumulative Zipf weights over templates, last entry 1.0.
    template_cdf: Vec<f64>,
    /// Cursor into a trace's arrival instants.
    trace_next: usize,
    next_query_id: u64,
    pools: Vec<Pool>,
    central: VecDeque<Queued>,
    central_integral: f64,
    central_since: f64,
    arrivals: usize,
    dropped: usize,
    timed_out: usize,
    failures: usize,
    killed: usize,
    readmitted: usize,
    scale_out_events: usize,
    scale_in_events: usize,
    latencies: Vec<f64>,
    wait_sum: f64,
    wait_count: usize,
    template_completed: Vec<usize>,
}

impl ServingEngine<'_> {
    fn draw_template(&mut self, sim: &mut Simulation<ServingEvent>) -> usize {
        let u = sim.sample_unit();
        self.template_cdf
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.template_cdf.len() - 1)
    }

    /// Total queries waiting anywhere — bounded by `queue_capacity`.
    fn total_waiting(&self) -> usize {
        self.central.len() + self.pools.iter().map(|p| p.queue.len()).sum::<usize>()
    }

    fn note_central_depth(&mut self, now: f64) {
        self.central_integral += (now - self.central_since) * self.central.len() as f64;
        self.central_since = now;
    }

    /// The next arrival instant strictly inside the window, advancing the
    /// process state (trace cursor / RNG stream).
    fn next_arrival(&mut self, now: f64, sim: &mut Simulation<ServingEvent>) -> Option<f64> {
        let horizon = self.config.duration.value();
        match &self.config.arrival {
            ArrivalProcess::Poisson { qps } => {
                // lint:allow(panic-policy): qps was validated finite-positive by simulate_serving
                let gap = sim.sample_exponential(1.0 / qps).expect("validated rate");
                Some(now + gap).filter(|&t| t < horizon)
            }
            ArrivalProcess::Trace(times) => {
                let time = times.get(self.trace_next)?.value();
                self.trace_next += 1;
                // Validation pinned the instants non-decreasing, so `time`
                // never lies before the clock.
                Some(time).filter(|&t| t < horizon)
            }
            ArrivalProcess::Ramp(segments) => {
                let mut t = now;
                let mut start = 0.0;
                for segment in segments {
                    let end = start + segment.duration.value();
                    if end <= t {
                        start = end;
                        continue;
                    }
                    if segment.qps > 0.0 {
                        let gap = sim
                            .sample_exponential(1.0 / segment.qps)
                            // lint:allow(panic-policy): segment rates were validated finite by simulate_serving
                            .expect("validated rate");
                        let candidate = t.max(start) + gap;
                        if candidate < end {
                            return Some(candidate).filter(|&c| c < horizon);
                        }
                    }
                    // Memorylessness: restarting the draw at the boundary
                    // with the next segment's rate is exact for a
                    // piecewise-constant Poisson process.
                    t = end;
                    start = end;
                }
                None
            }
        }
    }

    /// Start service for `query` on `server` at time `now`.
    fn start(
        &mut self,
        sim: &mut Simulation<ServingEvent>,
        server: usize,
        query: Queued,
        now: f64,
    ) {
        let profile = self.servers[server].profiles[query.template]
            // lint:allow(panic-policy): scheduler contract — place() must return a capable pool; the shipped policies are property-tested for it
            .expect("scheduler placed an unservable template");
        let mut service = match self.config.service {
            ServiceDistribution::Deterministic => profile.time.value(),
            ServiceDistribution::Exponential => sim
                .sample_exponential(profile.time.value())
                // lint:allow(panic-policy): profile times were validated finite-positive by simulate_serving
                .expect("profile times are validated positive"),
        };
        // Checkpoint recovery: a killed query resumes at its residual
        // requirement (the guard keeps the fault-free arithmetic untouched).
        if query.progress > 0.0 {
            service *= 1.0 - query.progress;
        }
        // Energy scales with actual service requirement, so exponential
        // draws keep the profile's mean power.
        let energy = profile.energy.value() * (service / profile.time.value());
        let pool = &mut self.pools[server];
        pool.note_depth(now);
        let id = self.next_query_id;
        self.next_query_id += 1;
        self.wait_sum += now - query.arrival;
        self.wait_count += 1;
        pool.query_energy += energy;
        match self.servers[server].mode {
            ServiceMode::Dedicated => {
                pool.busy += service;
                pool.in_flight.push(InFlight {
                    id,
                    arrival: query.arrival,
                    template: query.template,
                    remaining: 0.0,
                    service,
                    started: now,
                    progress: query.progress,
                });
                sim.schedule_in(service, ServingEvent::Completion { server, query: id })
                    // lint:allow(panic-policy): service times are finite and non-negative by construction
                    .expect("service times are finite and non-negative");
            }
            ServiceMode::ProcessorSharing => {
                pool.advance_shared(now);
                pool.in_flight.push(InFlight {
                    id,
                    arrival: query.arrival,
                    template: query.template,
                    remaining: service,
                    service,
                    started: now,
                    progress: query.progress,
                });
                self.reschedule_ps(sim, server);
            }
        }
    }

    /// Re-arm the processor-sharing horizon event for `server` after its
    /// in-flight set changed (remaining work must already be advanced).
    fn reschedule_ps(&mut self, sim: &mut Simulation<ServingEvent>, server: usize) {
        let pool = &mut self.pools[server];
        pool.epoch += 1;
        let k = pool.in_flight.len();
        if k == 0 {
            return;
        }
        let epoch = pool.epoch;
        // lint:allow(panic-policy): a non-empty in-flight set has a minimum
        let soonest = pool.min_remaining().expect("non-empty in-flight set");
        // Everyone shares the rate equally, so the least remaining work
        // completes after `remaining * k` wall seconds (clamped: float
        // drift may leave a hair of negative remainder at the horizon).
        let delay = (pool.in_flight[soonest].remaining * k as f64).max(0.0);
        sim.schedule_in(delay, ServingEvent::PsHorizon { server, epoch })
            // lint:allow(panic-policy): the delay is clamped finite and non-negative one line above
            .expect("horizon delay is finite and non-negative");
    }

    /// Record a finished query popped out of `server`'s in-flight set.
    fn complete(&mut self, done: InFlight, server: usize, now: f64) {
        self.latencies.push(now - done.arrival);
        self.template_completed[done.template] += 1;
        self.pools[server].completed += 1;
    }

    /// Remove queued entries that have outlived `max_wait`, everywhere.
    fn purge_expired(&mut self, now: f64) {
        let Some(max_wait) = self.config.max_wait else {
            return;
        };
        let horizon = now - max_wait.value();
        self.note_central_depth(now);
        let before = self.central.len();
        self.central.retain(|q| q.arrival >= horizon);
        self.timed_out += before - self.central.len();
        for pool in &mut self.pools {
            pool.note_depth(now);
            let before = pool.queue.len();
            pool.queue.retain(|q| q.arrival >= horizon);
            self.timed_out += before - pool.queue.len();
        }
    }

    /// Place an admitted query, or queue/drop it.
    fn admit(&mut self, sim: &mut Simulation<ServingEvent>, query: Queued, now: f64) {
        let views: Vec<PoolView> = self
            .pools
            .iter()
            .zip(self.servers)
            .zip(&self.life)
            .map(|((pool, server), life)| {
                let online = life.online();
                PoolView {
                    in_flight: pool.in_flight.len(),
                    queued: pool.queue.len(),
                    free_slots: if online {
                        server
                            .concurrency_limit
                            .saturating_sub(pool.in_flight.len())
                    } else {
                        0
                    },
                    online,
                }
            })
            .collect();
        let placed = {
            let scheduler = &mut *self.scheduler;
            let mut draw = || sim.sample_unit();
            scheduler.place(query.template, self.servers, &views, &mut draw)
        };
        match placed {
            Some(server) if views[server].free_slots > 0 => self.start(sim, server, query, now),
            Some(server)
                if views[server].online && self.total_waiting() < self.config.queue_capacity =>
            {
                let pool = &mut self.pools[server];
                pool.note_depth(now);
                pool.queue.push_back(query);
                pool.max_queued = pool.max_queued.max(pool.queue.len());
            }
            // A commitment to an offline pool falls back to the central
            // queue — the first pool to free a capable slot takes it.
            Some(_) | None if self.total_waiting() < self.config.queue_capacity => {
                self.note_central_depth(now);
                self.central.push_back(query);
            }
            _ => self.dropped += 1,
        }
    }

    /// Fill every free slot of `server` from its own queue first, then from
    /// the oldest capable entry of the central queue.
    fn refill(&mut self, sim: &mut Simulation<ServingEvent>, server: usize, now: f64) {
        if !self.life[server].online() {
            return;
        }
        while self.pools[server].in_flight.len() < self.servers[server].concurrency_limit {
            let pool = &mut self.pools[server];
            if let Some(query) = pool.queue.front().copied() {
                pool.note_depth(now);
                pool.queue.pop_front();
                self.start(sim, server, query, now);
                continue;
            }
            let Some(pos) = self
                .central
                .iter()
                .position(|q| self.servers[server].can_serve(q.template))
            else {
                break;
            };
            self.note_central_depth(now);
            // lint:allow(panic-policy): the position came from the same queue one line above
            let query = self.central.remove(pos).expect("position is in bounds");
            self.start(sim, server, query, now);
        }
    }

    /// Draw a time-to-failure for `server` from the seeded RNG and schedule
    /// the hazard event if it lands inside the arrival window (armed once
    /// per online episode, so one draw per up-transition).
    fn arm_hazard(&mut self, sim: &mut Simulation<ServingEvent>, server: usize, now: f64) {
        let Some(model) = self.faults else {
            return;
        };
        let Some(mean) = model.hazard_mean(self.servers[server].nodes) else {
            return;
        };
        let ttf = sim
            .sample_exponential(mean)
            // lint:allow(panic-policy): hazard_mean only yields finite positive means
            .expect("hazard mean is positive");
        let at = now + ttf;
        if at < self.config.duration.value() {
            let epoch = self.life[server].epoch;
            sim.schedule_at(at, ServingEvent::HazardFailure { server, epoch })
                // lint:allow(panic-policy): the instant is finite and after the clock by construction
                .expect("failure instants are finite and non-past");
        }
    }

    /// Take `server` down at `now`: kill its in-flight queries (dropping or
    /// re-admitting them per the recovery policy), push its own queue back
    /// through admission, bill the restart, and schedule the rejoin after
    /// `repair` unpowered seconds plus the model's warm-up time.
    fn fail_pool(&mut self, sim: &mut Simulation<ServingEvent>, server: usize, repair: f64) {
        let now = sim.time();
        // lint:allow(panic-policy): fail_pool is only called with an active fault model
        let model = self.faults.expect("fault model is active");
        let (recovery, restart) = (model.recovery, model.restart);
        self.failures += 1;
        let pool = &mut self.pools[server];
        pool.note_depth(now);
        if self.servers[server].mode == ServiceMode::ProcessorSharing {
            pool.advance_shared(now);
        }
        let victims = std::mem::take(&mut pool.in_flight);
        // Strand every in-air completion/horizon of the old episode.
        pool.epoch += 1;
        pool.advanced_at = now;
        let waiting: Vec<Queued> = pool.queue.drain(..).collect();
        pool.overhead += restart.energy.value();
        self.life[server].fail(now, repair);

        let mut resumed: Vec<Queued> = Vec::new();
        for victim in victims {
            // Refund the unserved remainder credited at start: busy time
            // (dedicated slots credit the full service upfront; PS busy is
            // wall-clock and already exact) and energy.
            let (done, left) = match self.servers[server].mode {
                ServiceMode::Dedicated => {
                    let done = (now - victim.started).clamp(0.0, victim.service);
                    (done, victim.service - done)
                }
                ServiceMode::ProcessorSharing => {
                    let left = victim.remaining.clamp(0.0, victim.service);
                    (victim.service - left, left)
                }
            };
            let profile = self.servers[server].profiles[victim.template]
                // lint:allow(panic-policy): the query was started on this pool, so the profile exists
                .expect("killed query ran on a capable pool");
            let pool = &mut self.pools[server];
            if self.servers[server].mode == ServiceMode::Dedicated {
                pool.busy -= left;
            }
            pool.query_energy -= profile.energy.value() * (left / profile.time.value());
            self.killed += 1;
            // Checkpointed progress composes across kills: the surviving
            // fraction of the residual stacks onto what was already banked.
            let fraction = recovery.surviving_fraction(Seconds(done), Seconds(victim.service));
            if !matches!(recovery, crate::faults::RecoveryPolicy::Drop) {
                self.readmitted += 1;
                resumed.push(Queued {
                    arrival: victim.arrival,
                    template: victim.template,
                    progress: victim.progress + (1.0 - victim.progress) * fraction,
                });
            }
        }
        // Waiting queries lost nothing; re-admit them first, then the
        // killed set, so relative order is preserved within each class.
        for query in waiting {
            self.admit(sim, query, now);
        }
        for query in resumed {
            self.admit(sim, query, now);
        }
        let epoch = self.life[server].epoch;
        sim.schedule_in(
            repair + restart.time.value(),
            ServingEvent::PoolRestore { server, epoch },
        )
        // lint:allow(panic-policy): repair and warm-up spans are validated finite non-negative
        .expect("restore delay is finite and non-negative");
    }

    /// One queue-depth check of the elastic scale policy: revive a parked
    /// pool when depth builds, park an idle pool when the system drains.
    fn scale_check(&mut self, sim: &mut Simulation<ServingEvent>, now: f64) {
        let Some(policy) = self.faults.and_then(|m| m.scale) else {
            return;
        };
        let migration = policy.migration.unwrap_or_else(TransitionCost::free);
        let depth = self.central.len()
            + self
                .pools
                .iter()
                .map(|p| p.in_flight.len() + p.queue.len())
                .sum::<usize>();
        if depth >= policy.scale_out_depth {
            if let Some(server) = (0..self.pools.len()).find(|&s| self.life[s].parked()) {
                self.life[server].unpark(now);
                self.pools[server].overhead += migration.energy.value();
                self.scale_out_events += 1;
                let epoch = self.life[server].epoch;
                sim.schedule_in(
                    migration.time.value(),
                    ServingEvent::PoolRestore { server, epoch },
                )
                // lint:allow(panic-policy): migration spans are validated finite non-negative
                .expect("migration delay is finite and non-negative");
            }
        } else if depth <= policy.scale_in_depth {
            let online: Vec<usize> = (0..self.pools.len())
                .filter(|&s| self.life[s].online())
                .collect();
            if online.len() > policy.min_pools {
                let templates = self.template_cdf.len();
                // Highest-numbered idle pool whose parking leaves every
                // template at least one capable online pool.
                let candidate = online.iter().rev().copied().find(|&s| {
                    self.pools[s].in_flight.is_empty()
                        && self.pools[s].queue.is_empty()
                        && (0..templates).all(|t| {
                            !self.servers[s].can_serve(t)
                                || online
                                    .iter()
                                    .any(|&o| o != s && self.servers[o].can_serve(t))
                        })
                });
                if let Some(server) = candidate {
                    self.life[server].park(now);
                    self.pools[server].overhead += migration.energy.value();
                    self.scale_in_events += 1;
                }
            }
        }
        let next = now + policy.check_interval.value();
        if next < self.config.duration.value() {
            sim.schedule_at(next, ServingEvent::ScaleCheck)
                // lint:allow(panic-policy): the next check instant is finite and after the clock
                .expect("scale checks are finite and non-past");
        }
    }
}

impl EventHandler<ServingEvent> for ServingEngine<'_> {
    fn on_event(&mut self, sim: &mut Simulation<ServingEvent>, event: ServingEvent) {
        let now = sim.time();
        match event {
            ServingEvent::Arrival => {
                self.arrivals += 1;
                self.purge_expired(now);
                let template = self.draw_template(sim);
                self.admit(
                    sim,
                    Queued {
                        arrival: now,
                        template,
                        progress: 0.0,
                    },
                    now,
                );
                // Open loop: the next arrival is scheduled regardless of
                // service progress, but only inside the arrival window.
                if let Some(at) = self.next_arrival(now, sim) {
                    sim.schedule_at(at, ServingEvent::Arrival)
                        // lint:allow(panic-policy): next_arrival only yields finite instants at or after the clock
                        .expect("arrival instants are finite and non-past");
                }
            }
            ServingEvent::Completion { server, query } => {
                let pool = &mut self.pools[server];
                // A miss means the query was killed by a pool failure after
                // this completion was scheduled; the kill already accounted
                // for it.
                let Some(index) = pool.in_flight.iter().position(|f| f.id == query) else {
                    return;
                };
                pool.note_depth(now);
                let done = pool.in_flight.swap_remove(index);
                self.complete(done, server, now);
                self.purge_expired(now);
                self.refill(sim, server, now);
            }
            ServingEvent::HazardFailure { server, epoch } => {
                // Stale draws (the pool transitioned since arming) are
                // dead letters; the next up-transition re-arms.
                if self.life[server].epoch != epoch || !self.life[server].online() {
                    return;
                }
                // lint:allow(panic-policy): hazard events are only scheduled with an active fault model
                let repair = self.faults.expect("fault model is active").repair_time;
                self.fail_pool(sim, server, repair.value());
            }
            ServingEvent::ScriptedOutage { outage } => {
                // lint:allow(panic-policy): scripted outages are only scheduled with an active fault model
                let outage = self.faults.expect("fault model is active").trace[outage];
                // An outage aimed at an already-offline pool is ignored.
                if self.life[outage.pool].online() {
                    self.fail_pool(sim, outage.pool, outage.duration.value());
                }
            }
            ServingEvent::PoolRestore { server, epoch } => {
                if self.life[server].epoch != epoch {
                    return;
                }
                self.life[server].restore(now);
                self.arm_hazard(sim, server, now);
                self.purge_expired(now);
                self.refill(sim, server, now);
            }
            ServingEvent::ScaleCheck => {
                self.scale_check(sim, now);
            }
            ServingEvent::PsHorizon { server, epoch } => {
                if self.pools[server].epoch != epoch {
                    return; // Stale horizon: the in-flight set changed.
                }
                let pool = &mut self.pools[server];
                pool.note_depth(now);
                pool.advance_shared(now);
                let Some(index) = pool.min_remaining() else {
                    return;
                };
                let done = pool.in_flight.swap_remove(index);
                self.complete(done, server, now);
                self.reschedule_ps(sim, server);
                self.purge_expired(now);
                self.refill(sim, server, now);
            }
        }
    }
}

/// Run one serving simulation to completion.
///
/// Validates the inputs, schedules the first arrival, and drives the event
/// loop until the arrival window has passed and every admitted query has
/// completed (or timed out).
pub fn simulate_serving(
    servers: &[ServingServer],
    config: &ServingConfig,
    scheduler: &mut dyn Scheduler,
) -> Result<ServingResult, SimError> {
    if servers.is_empty() {
        return Err(SimError::invalid("serving needs at least one server"));
    }
    let templates = servers[0].profiles.len();
    if templates == 0 {
        return Err(SimError::invalid("serving needs at least one template"));
    }
    for server in servers {
        if server.profiles.len() != templates {
            return Err(SimError::invalid(format!(
                "server '{}' profiles {} templates, expected {}",
                server.label,
                server.profiles.len(),
                templates
            )));
        }
        if server.concurrency_limit == 0 {
            return Err(SimError::invalid(format!(
                "server '{}' has a zero concurrency limit",
                server.label
            )));
        }
        if server.nodes == 0 {
            return Err(SimError::invalid(format!(
                "server '{}' has a zero node count",
                server.label
            )));
        }
        for profile in server.profiles.iter().flatten() {
            if profile.time.value() <= 0.0 || !profile.time.value().is_finite() {
                return Err(SimError::invalid(format!(
                    "server '{}' has a non-positive service time",
                    server.label
                )));
            }
        }
    }
    for template in 0..templates {
        if !servers.iter().any(|s| s.can_serve(template)) {
            return Err(SimError::invalid(format!(
                "no server can serve template {template}"
            )));
        }
    }
    config.arrival.validate()?;
    if config.duration.value() <= 0.0 {
        return Err(SimError::invalid("arrival window must be positive"));
    }
    if config.template_theta < 0.0 {
        return Err(SimError::invalid("Zipf theta must be non-negative"));
    }
    if let Some(model) = &config.faults {
        model.validate(servers.len())?;
    }
    // An inert model perturbs nothing; treat it as absent so results stay
    // bit-identical to a fault-free run under the same seed.
    let faults = config.faults.as_ref().filter(|m| !m.is_inert());

    // Zipf weights: template i gets (i + 1)^-theta, normalized to a CDF.
    let weights: Vec<f64> = (0..templates)
        .map(|i| ((i + 1) as f64).powf(-config.template_theta))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    let template_cdf: Vec<f64> = weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect();

    let mut engine = ServingEngine {
        servers,
        scheduler,
        config,
        faults,
        life: vec![PoolLifecycle::new(); servers.len()],
        template_cdf,
        trace_next: 0,
        next_query_id: 0,
        pools: (0..servers.len()).map(|_| Pool::new()).collect(),
        central: VecDeque::new(),
        central_integral: 0.0,
        central_since: 0.0,
        arrivals: 0,
        dropped: 0,
        timed_out: 0,
        failures: 0,
        killed: 0,
        readmitted: 0,
        scale_out_events: 0,
        scale_in_events: 0,
        latencies: Vec::new(),
        wait_sum: 0.0,
        wait_count: 0,
        template_completed: vec![0; templates],
    };

    let mut sim: Simulation<ServingEvent> = Simulation::new(config.seed);
    if let Some(first) = engine.next_arrival(0.0, &mut sim) {
        sim.schedule_at(first, ServingEvent::Arrival)?;
    }
    if let Some(model) = faults {
        for (index, outage) in model.trace.iter().enumerate() {
            sim.schedule_at(
                outage.at.value(),
                ServingEvent::ScriptedOutage { outage: index },
            )?;
        }
        for server in 0..servers.len() {
            engine.arm_hazard(&mut sim, server, 0.0);
        }
        if let Some(policy) = &model.scale {
            let first = policy.check_interval.value();
            if first < config.duration.value() {
                sim.schedule_at(first, ServingEvent::ScaleCheck)?;
            }
        }
    }
    sim.run(&mut engine);

    // Under fault churn a run can end with stranded waiters (every capable
    // pool parked, or a post-window outage); they count as dropped. A
    // fault-free run never strands anything.
    let end = sim.time();
    engine.note_central_depth(end);
    let mut stranded = engine.central.len();
    engine.central.clear();
    for pool in &mut engine.pools {
        pool.note_depth(end);
        stranded += pool.queue.len();
        pool.queue.clear();
    }
    debug_assert!(
        faults.is_some() || stranded == 0,
        "fault-free run ended with queued queries"
    );
    engine.dropped += stranded;
    let makespan = sim.time().max(config.duration.value());
    engine.note_central_depth(makespan);
    for pool in &mut engine.pools {
        pool.note_depth(makespan);
    }
    for life in &mut engine.life {
        life.finalize(makespan);
    }
    let mut latencies = engine.latencies;
    latencies.sort_by(f64::total_cmp);

    let server_energy: Vec<Joules> = engine
        .pools
        .iter()
        .zip(servers)
        .zip(&engine.life)
        .map(|((pool, server), life)| {
            let slots = server.slots() as f64;
            // Idle power is metered only over the powered span (repairs and
            // parked spells are unpowered); lifecycle overhead rides on top.
            let powered = makespan - life.unpowered_time();
            let idle_time = (powered * slots - pool.busy).max(0.0) / slots;
            Joules(pool.query_energy + pool.overhead) + server.idle_power * Seconds(idle_time)
        })
        .collect();
    let query_energy = Joules(engine.pools.iter().map(|p| p.query_energy).sum());
    let overhead_energy = Joules(engine.pools.iter().map(|p| p.overhead).sum());
    let energy = server_energy.iter().copied().sum::<Joules>();
    let fault_downtime: f64 = engine.life.iter().map(PoolLifecycle::fault_downtime).sum();
    let parked_time: f64 = engine.life.iter().map(PoolLifecycle::parked_time).sum();
    let availability = 1.0 - fault_downtime / (makespan * servers.len() as f64);

    Ok(ServingResult {
        scheduler: engine.scheduler.name(),
        arrival: config.arrival.kind().to_string(),
        offered_qps: config.arrival.mean_qps(config.duration),
        window: config.duration,
        makespan: Seconds(makespan),
        arrivals: engine.arrivals,
        completed: latencies.len(),
        dropped: engine.dropped,
        timed_out: engine.timed_out,
        failures: engine.failures,
        killed: engine.killed,
        readmitted: engine.readmitted,
        scale_out_events: engine.scale_out_events,
        scale_in_events: engine.scale_in_events,
        fault_downtime: Seconds(fault_downtime),
        parked_time: Seconds(parked_time),
        availability,
        latencies,
        mean_wait: Seconds(if engine.wait_count == 0 {
            0.0
        } else {
            engine.wait_sum / engine.wait_count as f64
        }),
        energy,
        query_energy,
        idle_energy: energy - query_energy - overhead_energy,
        overhead_energy,
        server_busy: engine.pools.iter().map(|p| Seconds(p.busy)).collect(),
        server_energy,
        server_queries: engine.pools.iter().map(|p| p.completed).collect(),
        server_slots: servers.iter().map(ServingServer::slots).collect(),
        pool_mean_depth: engine
            .pools
            .iter()
            .map(|p| p.depth_integral / makespan)
            .collect(),
        pool_max_queued: engine.pools.iter().map(|p| p.max_queued).collect(),
        central_mean_depth: engine.central_integral / makespan,
        template_completed: engine.template_completed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{RecoveryPolicy, ScalePolicy};

    fn server(label: &str, times: &[Option<(f64, f64)>], idle_power: f64) -> ServingServer {
        ServingServer::new(
            label,
            Watts(idle_power),
            times
                .iter()
                .map(|t| {
                    t.map(|(time, energy)| ServiceProfile {
                        time: Seconds(time),
                        energy: Joules(energy),
                    })
                })
                .collect(),
        )
    }

    /// The queueing kernel against closed form. An M/M/1 queue at
    /// ρ = λ/μ = 0.8 has mean wait ρ/(μ−λ) = 4 s; the simulated mean wait
    /// must land within 5%.
    #[test]
    fn mm1_mean_wait_matches_closed_form() {
        let lambda = 0.8;
        let mu = 1.0;
        let servers = vec![server("mm1", &[Some((1.0 / mu, 100.0))], 50.0)];
        let config = ServingConfig::new(lambda, Seconds(150_000.0), 4242)
            .queue_capacity(usize::MAX)
            .exponential_service();
        let result = simulate_serving(&servers, &config, &mut FcfsScheduler).unwrap();
        assert!(result.arrivals > 100_000, "arrivals {}", result.arrivals);
        assert_eq!(result.dropped, 0);
        assert_eq!(result.completed, result.arrivals);
        let rho = lambda / mu;
        let expected = rho / (mu - lambda);
        let observed = result.mean_wait.value();
        assert!(
            (observed - expected).abs() / expected < 0.05,
            "simulated mean wait {observed} vs M/M/1 closed form {expected}"
        );
        // Utilization converges to ρ as well.
        assert!((result.server_utilization(0) - rho).abs() < 0.02);
        // The central queue is where every waiting query sat; its mean
        // length converges to the M/M/1 L_q = ρ²/(1−ρ).
        let lq = rho * rho / (1.0 - rho);
        assert!(
            (result.central_mean_depth - lq).abs() / lq < 0.06,
            "central depth {} vs L_q {lq}",
            result.central_mean_depth
        );
        assert_eq!(result.arrival, "poisson");
    }

    /// Two runs with the same seed are bit-identical.
    #[test]
    fn same_seed_is_bit_identical() {
        let servers = vec![
            server("beefy", &[Some((0.5, 300.0)), Some((2.0, 1200.0))], 120.0),
            server("wimpy", &[Some((1.5, 90.0)), None], 30.0),
        ];
        let config = ServingConfig::new(1.2, Seconds(2_000.0), 99)
            .template_theta(1.0)
            .queue_capacity(16)
            .max_wait(Seconds(20.0))
            .exponential_service();
        let a = simulate_serving(&servers, &config, &mut EnergyAwareScheduler).unwrap();
        let b = simulate_serving(&servers, &config, &mut EnergyAwareScheduler).unwrap();
        assert_eq!(a, b, "same seed must reproduce bit-identically");
        let other = ServingConfig {
            seed: 100,
            ..config
        };
        let c = simulate_serving(&servers, &other, &mut EnergyAwareScheduler).unwrap();
        assert_ne!(a.latencies, c.latencies, "different seed must differ");
    }

    #[test]
    fn saturation_fills_the_queue_and_drops() {
        let servers = vec![server("slow", &[Some((1.0, 100.0))], 50.0)];
        let config = ServingConfig::new(3.0, Seconds(500.0), 7).queue_capacity(8);
        let result = simulate_serving(&servers, &config, &mut FcfsScheduler).unwrap();
        assert!(result.dropped > 0, "offered 3× capacity must drop");
        assert!(result.drop_rate() > 0.5);
        assert_eq!(
            result.completed + result.dropped + result.timed_out,
            result.arrivals
        );
        // The server never idles once saturated; throughput pins near μ.
        assert!(result.server_utilization(0) > 0.95);
        assert!((result.achieved_qps() - 1.0).abs() < 0.05);
    }

    #[test]
    fn stale_queued_queries_time_out() {
        let servers = vec![server("slow", &[Some((2.0, 100.0))], 50.0)];
        let config = ServingConfig::new(2.0, Seconds(300.0), 11)
            .queue_capacity(usize::MAX)
            .max_wait(Seconds(4.0));
        let result = simulate_serving(&servers, &config, &mut FcfsScheduler).unwrap();
        assert!(result.timed_out > 0, "stale queries must time out");
        assert_eq!(result.dropped, 0, "unbounded queue never drops");
        assert_eq!(
            result.completed + result.timed_out,
            result.arrivals,
            "every arrival either completes or times out"
        );
        // Lazy expiry bounds the wait of *served* queries by max_wait plus
        // one service time (the purge runs at the next event).
        assert!(result.latencies.last().unwrap() <= &(4.0 + 2.0 + 2.0));
    }

    #[test]
    fn energy_splits_into_query_and_idle_parts() {
        let servers = vec![server("one", &[Some((1.0, 200.0))], 100.0)];
        let config = ServingConfig::new(0.1, Seconds(1_000.0), 3);
        let result = simulate_serving(&servers, &config, &mut FcfsScheduler).unwrap();
        let busy = result.server_busy[0].value();
        assert!((busy - result.completed as f64).abs() < 1e-9, "1 s each");
        let expected_query = 200.0 * result.completed as f64;
        assert!((result.query_energy.value() - expected_query).abs() < 1e-6);
        let expected_idle = 100.0 * (result.makespan.value() - busy);
        assert!((result.idle_energy.value() - expected_idle).abs() < 1e-6);
        assert!(
            (result.energy.value() - (result.query_energy.value() + result.idle_energy.value()))
                .abs()
                < 1e-6
        );
        assert!(
            result.energy_per_query() > Joules(200.0),
            "idle power amortizes in"
        );
    }

    #[test]
    fn energy_aware_placement_prefers_the_cheaper_pool() {
        // Both pools can serve the single template; the wimpy pool is slower
        // but far cheaper per query.
        let servers = vec![
            server("beefy", &[Some((0.5, 500.0))], 200.0),
            server("wimpy", &[Some((1.0, 100.0))], 40.0),
        ];
        let config = ServingConfig::new(0.05, Seconds(20_000.0), 21);
        let fcfs = simulate_serving(&servers, &config, &mut FcfsScheduler).unwrap();
        let aware = simulate_serving(&servers, &config, &mut EnergyAwareScheduler).unwrap();
        // At this light load the preferred server is almost always idle, so
        // FCFS runs nearly everything on the beefy pool and the energy-aware
        // placer nearly everything on the wimpy pool (the other pool only
        // catches overflow).
        assert!(fcfs.server_queries[0] > fcfs.server_queries[1] * 5);
        assert!(aware.server_queries[1] > aware.server_queries[0] * 5);
        assert!(aware.query_energy < fcfs.query_energy);
        assert_eq!(aware.scheduler, "energy-aware");
        assert_eq!(fcfs.scheduler, "fcfs");
    }

    #[test]
    fn zipf_mix_skews_toward_early_templates() {
        let profiles: Vec<Option<(f64, f64)>> = vec![Some((0.1, 10.0)); 5];
        let servers = vec![server("s", &profiles, 50.0)];
        let config = ServingConfig::new(2.0, Seconds(5_000.0), 13).template_theta(1.5);
        let result = simulate_serving(&servers, &config, &mut FcfsScheduler).unwrap();
        let counts = &result.template_completed;
        assert!(
            counts[0] > 2 * counts[1],
            "theta=1.5 strongly favours template 0"
        );
        assert!(
            counts.windows(2).all(|w| w[0] >= w[1]),
            "monotone mix {counts:?}"
        );
        // Uniform mix spreads evenly.
        let uniform_config = ServingConfig::new(2.0, Seconds(5_000.0), 13);
        let uniform = simulate_serving(&servers, &uniform_config, &mut FcfsScheduler).unwrap();
        let max = *uniform.template_completed.iter().max().unwrap() as f64;
        let min = *uniform.template_completed.iter().min().unwrap() as f64;
        assert!(max / min < 1.2, "uniform mix stays balanced");
    }

    #[test]
    fn tail_latency_grows_with_offered_load() {
        let servers = vec![server("s", &[Some((1.0, 100.0))], 50.0)];
        let p99_at = |qps: f64| {
            let config = ServingConfig::new(qps, Seconds(5_000.0), 17)
                .queue_capacity(usize::MAX)
                .exponential_service();
            simulate_serving(&servers, &config, &mut FcfsScheduler)
                .unwrap()
                .p99()
        };
        let low = p99_at(0.3);
        let mid = p99_at(0.6);
        let high = p99_at(0.9);
        assert!(
            low < mid && mid < high,
            "p99 must grow with load: {low:?} {mid:?} {high:?}"
        );
    }

    /// A pool with `c` dedicated slots drains `c` queries at once: offered
    /// load just under `c·μ` stays stable where a single slot saturates.
    #[test]
    fn concurrency_limit_multiplies_throughput() {
        let config = ServingConfig::new(3.0, Seconds(2_000.0), 23).queue_capacity(usize::MAX);
        let single = vec![server("s1", &[Some((1.0, 100.0))], 50.0)];
        let quad = vec![server("s4", &[Some((1.0, 100.0))], 50.0).concurrency_limit(4)];
        let saturated = simulate_serving(&single, &config, &mut FcfsScheduler).unwrap();
        let pooled = simulate_serving(&quad, &config, &mut FcfsScheduler).unwrap();
        // One slot at μ=1 cannot carry 3 qps; four slots carry it easily.
        assert!(saturated.makespan.value() > 2.0 * saturated.window.value());
        assert!(
            (pooled.achieved_qps() - 3.0).abs() < 0.1,
            "{}",
            pooled.achieved_qps()
        );
        assert!(pooled.mean_wait.value() < 1.0);
        // Per-slot utilization reads ρ = λ/(cμ) = 0.75, not 3.0.
        assert!((pooled.server_utilization(0) - 0.75).abs() < 0.05);
        assert_eq!(pooled.server_slots, vec![4]);
    }

    /// Processor sharing: every in-flight query progresses at rate 1/k, so
    /// two simultaneous unit jobs both finish at t = 2.
    #[test]
    fn processor_sharing_divides_the_rate() {
        let servers = vec![server("ps", &[Some((1.0, 100.0))], 50.0)
            .concurrency_limit(8)
            .processor_sharing()];
        // Two arrivals at t = 0 and t = 0 (trace), nothing else.
        let config = ServingConfig::new(1.0, Seconds(10.0), 5)
            .arrival(ArrivalProcess::Trace(vec![Seconds(0.0), Seconds(0.0)]));
        let result = simulate_serving(&servers, &config, &mut FcfsScheduler).unwrap();
        assert_eq!(result.arrivals, 2);
        assert_eq!(result.completed, 2);
        assert_eq!(result.arrival, "trace");
        // Both share the processor: each takes 2 wall seconds.
        for latency in &result.latencies {
            assert!((latency - 2.0).abs() < 1e-9, "{:?}", result.latencies);
        }
        // Wall busy time is 2 s (one shared processor), not 4.
        assert!((result.server_busy[0].value() - 2.0).abs() < 1e-9);
        assert_eq!(result.server_slots, vec![1]);
        assert_eq!(result.mean_wait, Seconds(0.0), "PS admits immediately");
    }

    #[test]
    fn trace_arrivals_replay_the_recorded_instants() {
        let servers = vec![server("s", &[Some((0.5, 10.0))], 20.0)];
        let times = vec![Seconds(0.5), Seconds(1.0), Seconds(1.0), Seconds(7.5)];
        let config =
            ServingConfig::new(1.0, Seconds(5.0), 3).arrival(ArrivalProcess::Trace(times.clone()));
        let result = simulate_serving(&servers, &config, &mut FcfsScheduler).unwrap();
        // The 7.5 s instant lies beyond the 5 s window and is ignored.
        assert_eq!(result.arrivals, 3);
        assert_eq!(result.completed, 3);
        let expected = ArrivalProcess::Trace(times).mean_qps(Seconds(5.0));
        assert!((result.offered_qps - expected).abs() < 1e-12);
        assert!((expected - 0.6).abs() < 1e-12);
        // Replays are deterministic even without RNG draws.
        let again = simulate_serving(&servers, &config, &mut FcfsScheduler).unwrap();
        assert_eq!(result, again);
    }

    #[test]
    fn ramp_arrivals_follow_the_piecewise_rates() {
        let servers = vec![server("s", &[Some((0.01, 1.0))], 10.0).concurrency_limit(64)];
        // Quiet night, busy day, quiet evening.
        let ramp = ArrivalProcess::Ramp(vec![
            RampSegment {
                duration: Seconds(1_000.0),
                qps: 0.1,
            },
            RampSegment {
                duration: Seconds(1_000.0),
                qps: 5.0,
            },
            RampSegment {
                duration: Seconds(1_000.0),
                qps: 0.1,
            },
        ]);
        let config = ServingConfig::new(1.0, Seconds(3_000.0), 11)
            .arrival(ramp.clone())
            .queue_capacity(usize::MAX);
        let result = simulate_serving(&servers, &config, &mut FcfsScheduler).unwrap();
        assert_eq!(result.arrival, "ramp");
        // Mean offered rate: (100 + 5000 + 100) / 3000 ≈ 1.733.
        assert!((result.offered_qps - 5_200.0 / 3_000.0).abs() < 1e-9);
        let expected = 5_200.0;
        let got = result.arrivals as f64;
        assert!(
            (got - expected).abs() / expected < 0.05,
            "arrivals {got} vs expected {expected}"
        );
        // The day segment dominates: most completions land inside it.
        let day_share = result.latencies.len() as f64;
        assert!(day_share > 0.0);
        // Window truncation: a ramp shorter than the window stops arriving.
        let short = ServingConfig::new(1.0, Seconds(10_000.0), 11)
            .arrival(ArrivalProcess::Ramp(vec![RampSegment {
                duration: Seconds(100.0),
                qps: 2.0,
            }]))
            .queue_capacity(usize::MAX);
        let truncated = simulate_serving(&servers, &short, &mut FcfsScheduler).unwrap();
        assert!(
            (truncated.arrivals as f64 - 200.0).abs() < 60.0,
            "{}",
            truncated.arrivals
        );
    }

    #[test]
    fn jsq_balances_where_random_piles_up() {
        let profiles: Vec<Option<(f64, f64)>> = vec![Some((1.0, 10.0))];
        let servers: Vec<ServingServer> = (0..4)
            .map(|i| server(&format!("s{i}"), &profiles, 10.0))
            .collect();
        let config = ServingConfig::new(3.2, Seconds(10_000.0), 31)
            .queue_capacity(usize::MAX)
            .exponential_service();
        let jsq = simulate_serving(&servers, &config, &mut JoinShortestQueue).unwrap();
        let random = simulate_serving(&servers, &config, &mut RandomScheduler).unwrap();
        assert_eq!(jsq.scheduler, "jsq");
        assert_eq!(random.scheduler, "random");
        assert_eq!(jsq.completed + jsq.timed_out + jsq.dropped, jsq.arrivals);
        // Queue-state feedback beats blind assignment on depth and tail.
        assert!(
            jsq.mean_system_depth() < random.mean_system_depth(),
            "jsq {} vs random {}",
            jsq.mean_system_depth(),
            random.mean_system_depth()
        );
        assert!(jsq.p99() < random.p99());
        // JSQ commits to pool queues; the central queue stays empty.
        assert_eq!(jsq.central_mean_depth, 0.0);
        assert!(jsq.pool_mean_depth.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn po2_respects_capability_and_stays_deterministic() {
        // Template 1 fits only pool 0; po2 must never probe it onto pool 1.
        let servers = vec![
            server("both", &[Some((0.5, 10.0)), Some((0.5, 10.0))], 10.0),
            server("only0", &[Some((0.5, 10.0)), None], 10.0),
        ];
        let config = ServingConfig::new(1.5, Seconds(4_000.0), 41).queue_capacity(usize::MAX);
        let a = simulate_serving(&servers, &config, &mut PowerOfTwoChoices).unwrap();
        let b = simulate_serving(&servers, &config, &mut PowerOfTwoChoices).unwrap();
        assert_eq!(a, b, "po2 draws come from the seeded kernel RNG");
        assert_eq!(a.scheduler, "po2");
        assert_eq!(a.completed + a.timed_out + a.dropped, a.arrivals);
        // Template 1 completions all ran somewhere capable (pool 0), and
        // pool 1 still served plenty of template 0.
        assert!(a.template_completed[1] > 0);
        assert!(a.server_queries[1] > 0);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let result = ServingResult {
            scheduler: "fcfs".into(),
            arrival: "poisson".into(),
            offered_qps: 1.0,
            window: Seconds(1.0),
            makespan: Seconds(1.0),
            arrivals: 4,
            completed: 4,
            dropped: 0,
            timed_out: 0,
            failures: 0,
            killed: 0,
            readmitted: 0,
            scale_out_events: 0,
            scale_in_events: 0,
            fault_downtime: Seconds(0.0),
            parked_time: Seconds(0.0),
            availability: 1.0,
            latencies: vec![1.0, 2.0, 3.0, 4.0],
            mean_wait: Seconds(0.0),
            energy: Joules(0.0),
            query_energy: Joules(0.0),
            idle_energy: Joules(0.0),
            overhead_energy: Joules(0.0),
            server_busy: vec![Seconds(0.0)],
            server_energy: vec![Joules(0.0)],
            server_queries: vec![4],
            server_slots: vec![1],
            pool_mean_depth: vec![0.0],
            pool_max_queued: vec![0],
            central_mean_depth: 0.0,
            template_completed: vec![4],
        };
        assert_eq!(result.p50(), Seconds(2.0));
        assert_eq!(result.p95(), Seconds(4.0));
        assert_eq!(result.p99(), Seconds(4.0));
        assert_eq!(result.latency_percentile(1.0), Seconds(1.0));
        assert_eq!(result.mean_latency(), Seconds(2.5));
        // The edge cases are pinned, not caller-disciplined: p = 0 is the
        // minimum, p = 100 the maximum, out-of-range and NaN inputs clamp.
        assert_eq!(result.latency_percentile(0.0), Seconds(1.0));
        assert_eq!(result.latency_percentile(100.0), Seconds(4.0));
        assert_eq!(result.latency_percentile(-5.0), Seconds(1.0));
        assert_eq!(result.latency_percentile(250.0), Seconds(4.0));
        assert_eq!(result.latency_percentile(f64::NAN), Seconds(1.0));
        assert_eq!(result.latency_percentile(f64::INFINITY), Seconds(4.0));
        assert_eq!(result.latency_percentile(f64::NEG_INFINITY), Seconds(1.0));
        // A single-sample run returns that sample at every percentile.
        let single = ServingResult {
            latencies: vec![7.0],
            completed: 1,
            ..result.clone()
        };
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(single.latency_percentile(p), Seconds(7.0));
        }
        // An empty run returns a defined zero for every percentile.
        let empty = ServingResult {
            latencies: Vec::new(),
            completed: 0,
            ..result
        };
        for p in [0.0, 50.0, 99.0, 100.0, f64::NAN] {
            assert_eq!(empty.latency_percentile(p), Seconds::zero());
        }
        assert_eq!(empty.p99(), Seconds::zero());
        assert_eq!(empty.mean_latency(), Seconds::zero());
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let ok = vec![server("s", &[Some((1.0, 1.0))], 1.0)];
        let config = ServingConfig::new(1.0, Seconds(10.0), 1);
        assert!(simulate_serving(&[], &config, &mut FcfsScheduler).is_err());
        let no_templates = vec![server("s", &[], 1.0)];
        assert!(simulate_serving(&no_templates, &config, &mut FcfsScheduler).is_err());
        let unservable = vec![server("s", &[Some((1.0, 1.0)), None], 1.0)];
        assert!(simulate_serving(&unservable, &config, &mut FcfsScheduler).is_err());
        let ragged = vec![
            server("a", &[Some((1.0, 1.0))], 1.0),
            server("b", &[Some((1.0, 1.0)), Some((1.0, 1.0))], 1.0),
        ];
        assert!(simulate_serving(&ragged, &config, &mut FcfsScheduler).is_err());
        let zero_time = vec![server("s", &[Some((0.0, 1.0))], 1.0)];
        assert!(simulate_serving(&zero_time, &config, &mut FcfsScheduler).is_err());
        let zero_limit = vec![server("s", &[Some((1.0, 1.0))], 1.0).concurrency_limit(0)];
        assert!(simulate_serving(&zero_limit, &config, &mut FcfsScheduler).is_err());
        let bad_qps = ServingConfig::new(0.0, Seconds(10.0), 1);
        assert!(simulate_serving(&ok, &bad_qps, &mut FcfsScheduler).is_err());
        let bad_duration = ServingConfig::new(1.0, Seconds(0.0), 1);
        assert!(simulate_serving(&ok, &bad_duration, &mut FcfsScheduler).is_err());
        let bad_theta = ServingConfig::new(1.0, Seconds(10.0), 1).template_theta(-1.0);
        assert!(simulate_serving(&ok, &bad_theta, &mut FcfsScheduler).is_err());
        // Arrival-process validation.
        let bad_trace = config
            .clone()
            .arrival(ArrivalProcess::Trace(vec![Seconds(2.0), Seconds(1.0)]));
        assert!(simulate_serving(&ok, &bad_trace, &mut FcfsScheduler).is_err());
        let nan_trace = config
            .clone()
            .arrival(ArrivalProcess::Trace(vec![Seconds(f64::NAN)]));
        assert!(simulate_serving(&ok, &nan_trace, &mut FcfsScheduler).is_err());
        let empty_ramp = config.clone().arrival(ArrivalProcess::Ramp(Vec::new()));
        assert!(simulate_serving(&ok, &empty_ramp, &mut FcfsScheduler).is_err());
        let bad_ramp = config
            .clone()
            .arrival(ArrivalProcess::Ramp(vec![RampSegment {
                duration: Seconds(0.0),
                qps: 1.0,
            }]));
        assert!(simulate_serving(&ok, &bad_ramp, &mut FcfsScheduler).is_err());
        let bad_rate = config.arrival(ArrivalProcess::Ramp(vec![RampSegment {
            duration: Seconds(1.0),
            qps: -2.0,
        }]));
        assert!(simulate_serving(&ok, &bad_rate, &mut FcfsScheduler).is_err());
        // An empty trace is a valid no-arrival run, not an error.
        let quiet =
            ServingConfig::new(1.0, Seconds(10.0), 1).arrival(ArrivalProcess::Trace(Vec::new()));
        let result = simulate_serving(&ok, &quiet, &mut FcfsScheduler).unwrap();
        assert_eq!(result.arrivals, 0);
        assert_eq!(result.makespan, Seconds(10.0));
        assert_eq!(result.p99(), Seconds::zero());
        // Fault-model validation runs through the same gate.
        let bad_faults = ServingConfig::new(1.0, Seconds(10.0), 1).faults(FaultModel::new(-1.0));
        assert!(simulate_serving(&ok, &bad_faults, &mut FcfsScheduler).is_err());
        let bad_pool = ServingConfig::new(1.0, Seconds(10.0), 1)
            .faults(FaultModel::new(0.0).outage(3, Seconds(1.0), Seconds(1.0)));
        assert!(simulate_serving(&ok, &bad_pool, &mut FcfsScheduler).is_err());
        let zero_nodes = vec![server("s", &[Some((1.0, 1.0))], 1.0).nodes(0)];
        let plain = ServingConfig::new(1.0, Seconds(10.0), 1);
        assert!(simulate_serving(&zero_nodes, &plain, &mut FcfsScheduler).is_err());
    }

    /// `arrivals = completed + dropped + timed_out + (killed − readmitted)`
    /// — every query is accounted for exactly once.
    fn assert_conserves(result: &ServingResult) {
        assert!(result.readmitted <= result.killed);
        assert_eq!(
            result.completed
                + result.dropped
                + result.timed_out
                + (result.killed - result.readmitted),
            result.arrivals,
            "conservation violated: {result:?}"
        );
    }

    /// An inert fault model schedules no events and consumes no RNG draws:
    /// the run is bit-identical to one with no model at all.
    #[test]
    fn inert_fault_model_is_bit_identical() {
        let servers = vec![
            server("beefy", &[Some((0.5, 300.0)), Some((2.0, 1200.0))], 120.0),
            server("wimpy", &[Some((1.5, 90.0)), None], 30.0).nodes(4),
        ];
        let config = ServingConfig::new(1.2, Seconds(2_000.0), 99)
            .template_theta(1.0)
            .queue_capacity(16)
            .max_wait(Seconds(20.0))
            .exponential_service();
        let bare = simulate_serving(&servers, &config, &mut EnergyAwareScheduler).unwrap();
        let inert = config.clone().faults(FaultModel::new(0.0));
        let faulted = simulate_serving(&servers, &inert, &mut EnergyAwareScheduler).unwrap();
        assert_eq!(bare, faulted, "a zero-rate model must not perturb the run");
        assert_eq!(faulted.availability, 1.0);
        assert_eq!(faulted.failures, 0);
        assert_eq!(faulted.overhead_energy, Joules(0.0));
    }

    /// A scripted outage mid-query kills it; replay recovery redoes the
    /// whole query after repair + warm-up, with the restart billed and the
    /// unpowered repair span unmetered.
    #[test]
    fn scripted_outage_kills_and_replays() {
        let servers = vec![server("s", &[Some((10.0, 100.0))], 50.0)];
        let model = FaultModel::scripted(Vec::new())
            .outage(0, Seconds(5.0), Seconds(2.0))
            .restart_cost(TransitionCost {
                time: Seconds(1.0),
                energy: Joules(500.0),
            });
        let config = ServingConfig::new(1.0, Seconds(10.0), 1)
            .arrival(ArrivalProcess::Trace(vec![Seconds(0.0)]))
            .faults(model);
        let result = simulate_serving(&servers, &config, &mut FcfsScheduler).unwrap();
        assert_eq!(result.arrivals, 1);
        assert_eq!(result.failures, 1);
        assert_eq!(result.killed, 1);
        assert_eq!(result.readmitted, 1);
        assert_eq!(result.completed, 1);
        assert_conserves(&result);
        // Killed at t=5, offline until t=8 (2 s repair + 1 s warm-up),
        // replayed from scratch: completion at t=18.
        assert!((result.latencies[0] - 18.0).abs() < 1e-9);
        assert_eq!(result.makespan, Seconds(18.0));
        assert_eq!(result.fault_downtime, Seconds(3.0));
        assert!((result.availability - (1.0 - 3.0 / 18.0)).abs() < 1e-12);
        // Busy: 5 s of wasted partial work plus the 10 s replay.
        assert!((result.server_busy[0].value() - 15.0).abs() < 1e-9);
        // Energy: 150 J of query work (half the first attempt refunded),
        // 500 J restart, idle power over the powered non-busy second only.
        assert!((result.query_energy.value() - 150.0).abs() < 1e-9);
        assert_eq!(result.overhead_energy, Joules(500.0));
        assert!((result.idle_energy.value() - 50.0).abs() < 1e-9);
        assert!((result.energy.value() - 700.0).abs() < 1e-9);
    }

    /// Checkpoint recovery resumes from the last whole interval instead of
    /// replaying from scratch: less redone work, lower latency and energy.
    #[test]
    fn checkpoint_recovery_redoes_less_than_replay() {
        let servers = vec![server("s", &[Some((10.0, 100.0))], 50.0)];
        let scenario = |recovery: RecoveryPolicy| {
            let model = FaultModel::scripted(Vec::new())
                .outage(0, Seconds(5.0), Seconds(2.0))
                .restart_cost(TransitionCost {
                    time: Seconds(1.0),
                    energy: Joules(500.0),
                })
                .recovery(recovery);
            let config = ServingConfig::new(1.0, Seconds(10.0), 1)
                .arrival(ArrivalProcess::Trace(vec![Seconds(0.0)]))
                .faults(model);
            simulate_serving(&servers, &config, &mut FcfsScheduler).unwrap()
        };
        let replay = scenario(RecoveryPolicy::Replay);
        let checkpoint = scenario(RecoveryPolicy::Checkpoint {
            interval: Seconds(2.0),
        });
        // 5 s done at a 2 s cadence banks 4 s: the resume needs 6 s, so the
        // query finishes at t = 8 + 6 = 14 against replay's 18.
        assert!((checkpoint.latencies[0] - 14.0).abs() < 1e-9);
        assert!((replay.latencies[0] - 18.0).abs() < 1e-9);
        assert!(checkpoint.query_energy < replay.query_energy);
        assert_conserves(&checkpoint);
        assert_conserves(&replay);
    }

    /// Drop recovery forfeits killed queries; the conservation invariant
    /// books them as killed-not-readmitted.
    #[test]
    fn drop_recovery_loses_killed_queries() {
        let servers = vec![server("s", &[Some((10.0, 100.0))], 50.0)];
        let model = FaultModel::scripted(Vec::new())
            .outage(0, Seconds(5.0), Seconds(2.0))
            .recovery(RecoveryPolicy::Drop);
        let config = ServingConfig::new(1.0, Seconds(10.0), 1)
            .arrival(ArrivalProcess::Trace(vec![Seconds(0.0)]))
            .faults(model);
        let result = simulate_serving(&servers, &config, &mut FcfsScheduler).unwrap();
        assert_eq!(result.killed, 1);
        assert_eq!(result.readmitted, 0);
        assert_eq!(result.completed, 0);
        assert_conserves(&result);
        // The wasted partial work still burned energy (5 s of a 10 s / 100 J
        // profile), but the unserved remainder was refunded.
        assert!((result.query_energy.value() - 50.0).abs() < 1e-9);
    }

    /// Hazard failures drawn from the seeded RNG dent availability, conserve
    /// queries, and stay bit-reproducible.
    #[test]
    fn hazard_failures_reduce_availability() {
        let servers = vec![
            server("beefy", &[Some((0.5, 300.0)), Some((2.0, 1200.0))], 120.0).nodes(4),
            server("wimpy", &[Some((1.5, 90.0)), None], 30.0).nodes(16),
        ];
        let model = FaultModel::new(2.0)
            .repair_time(Seconds(30.0))
            .restart_cost(TransitionCost {
                time: Seconds(5.0),
                energy: Joules(1_000.0),
            });
        let config = ServingConfig::new(1.2, Seconds(2_000.0), 99)
            .template_theta(1.0)
            .queue_capacity(64)
            .faults(model);
        let a = simulate_serving(&servers, &config, &mut JoinShortestQueue).unwrap();
        let b = simulate_serving(&servers, &config, &mut JoinShortestQueue).unwrap();
        assert_eq!(a, b, "fault draws come from the seeded kernel RNG");
        assert!(a.failures > 0, "2 failures/node-hour over 20 node-hours");
        assert!(a.killed > 0);
        assert!(a.availability < 1.0);
        assert!(a.fault_downtime.value() > 0.0);
        assert!(a.overhead_energy.value() >= a.failures as f64 * 1_000.0);
        assert_conserves(&a);
        // Churn shows up in the tail: the same stream without faults has a
        // strictly better p99.
        let calm = ServingConfig {
            faults: None,
            ..config
        };
        let baseline = simulate_serving(&servers, &calm, &mut JoinShortestQueue).unwrap();
        assert!(a.p99() > baseline.p99(), "churn must inflate the tail");
    }

    /// The scale policy parks an idle pool through the quiet spell and
    /// revives it for the burst, saving idle energy net of migration costs.
    #[test]
    fn scale_policy_parks_and_revives() {
        let profiles: Vec<Option<(f64, f64)>> = vec![Some((1.0, 10.0))];
        let servers: Vec<ServingServer> = (0..2)
            .map(|i| server(&format!("s{i}"), &profiles, 100.0).concurrency_limit(4))
            .collect();
        // A quiet night then a burst near two-pool capacity.
        let ramp = ArrivalProcess::Ramp(vec![
            RampSegment {
                duration: Seconds(500.0),
                qps: 0.05,
            },
            RampSegment {
                duration: Seconds(500.0),
                qps: 6.0,
            },
        ]);
        let policy = ScalePolicy::new(6, 1, Seconds(10.0))
            .min_pools(1)
            .migration_cost(TransitionCost {
                time: Seconds(5.0),
                energy: Joules(200.0),
            });
        let config = ServingConfig::new(1.0, Seconds(1_000.0), 7)
            .arrival(ramp)
            .queue_capacity(usize::MAX)
            .faults(FaultModel::new(0.0).scale(policy));
        let scaled = simulate_serving(&servers, &config, &mut JoinShortestQueue).unwrap();
        assert!(scaled.scale_in_events >= 1, "the quiet spell parks a pool");
        assert!(scaled.scale_out_events >= 1, "the burst revives it");
        assert!(scaled.parked_time.value() > 0.0);
        assert_eq!(scaled.failures, 0);
        assert_eq!(
            scaled.availability, 1.0,
            "deliberate parking is not unavailability"
        );
        assert!(scaled.overhead_energy.value() > 0.0);
        assert_conserves(&scaled);
        // Parking beats idling: the saved idle power dwarfs the migration
        // bills at these spans.
        let always_on = ServingConfig {
            faults: None,
            ..config
        };
        let baseline = simulate_serving(&servers, &always_on, &mut JoinShortestQueue).unwrap();
        assert!(
            scaled.energy < baseline.energy,
            "scaled {:?} vs always-on {:?}",
            scaled.energy,
            baseline.energy
        );
        assert_conserves(&baseline);
    }
}
