//! Queueing-theory cross-validation of the serving simulator.
//!
//! Every mechanism PR 9 adds to `eedc_dbmsim::serving` has a closed-form
//! ground truth, and this suite holds the simulator to it:
//!
//! * a concurrency-limited pool under Poisson arrivals and exponential
//!   service is an **M/M/c** queue — its mean wait must match **Erlang-C**;
//! * a processor-sharing pool is an **M/M/1-PS** queue — its mean sojourn
//!   is `1/(μ−λ)` *regardless of the service distribution* (the classic
//!   insensitivity result), which doubles as a check that the sharing
//!   engine is not quietly FCFS;
//! * **power-of-two-choices** must beat blind random assignment on mean
//!   queue depth at the same load (Mitzenmacher/Vvedenskaya).
//!
//! All runs are seeded and deterministic: a failure here reproduces
//! bit-identically.

use eedc_dbmsim::{
    simulate_serving, FcfsScheduler, PowerOfTwoChoices, RandomScheduler, ServiceProfile,
    ServingConfig, ServingServer,
};
use eedc_simkit::units::{Joules, Seconds, Watts};

fn pool(label: &str, service_time: f64, limit: usize) -> ServingServer {
    ServingServer::new(
        label,
        Watts(50.0),
        vec![Some(ServiceProfile {
            time: Seconds(service_time),
            energy: Joules(100.0),
        })],
    )
    .concurrency_limit(limit)
}

/// Erlang-C mean queueing delay for an M/M/c queue: with offered load
/// `a = λ/μ` and utilization `ρ = a/c`,
/// `P_wait = (a^c/c!)·(1/(1−ρ)) / (Σ_{k<c} a^k/k! + (a^c/c!)·(1/(1−ρ)))`
/// and `W_q = P_wait / (c·μ − λ)`.
fn erlang_c_mean_wait(lambda: f64, mu: f64, c: usize) -> f64 {
    let a = lambda / mu;
    let rho = a / c as f64;
    assert!(rho < 1.0, "Erlang-C needs a stable queue");
    let mut term = 1.0; // a^k / k!
    let mut sum = 0.0;
    for k in 0..c {
        if k > 0 {
            term *= a / k as f64;
        }
        sum += term;
    }
    let tail = term * (a / c as f64) / (1.0 - rho); // a^c/c! · 1/(1−ρ)
    let p_wait = tail / (sum + tail);
    p_wait / (c as f64 * mu - lambda)
}

/// A 4-slot pool at ρ = 0.8 must land within 5% of the Erlang-C mean wait.
#[test]
fn mmc_mean_wait_matches_erlang_c() {
    let c = 4;
    let mu = 1.0;
    let lambda = 3.2; // ρ = λ/(cμ) = 0.8
    let servers = vec![pool("mmc", 1.0 / mu, c)];
    let config = ServingConfig::new(lambda, Seconds(120_000.0), 20_240)
        .queue_capacity(usize::MAX)
        .exponential_service();
    let result = simulate_serving(&servers, &config, &mut FcfsScheduler).unwrap();
    assert!(result.arrivals > 300_000, "arrivals {}", result.arrivals);
    assert_eq!(result.dropped + result.timed_out, 0);
    assert_eq!(result.completed, result.arrivals);

    let expected = erlang_c_mean_wait(lambda, mu, c);
    let observed = result.mean_wait.value();
    assert!(
        (observed - expected).abs() / expected < 0.05,
        "simulated M/M/{c} mean wait {observed:.4} vs Erlang-C {expected:.4}"
    );
    // Per-slot utilization converges to ρ.
    assert!(
        (result.server_utilization(0) - 0.8).abs() < 0.02,
        "utilization {}",
        result.server_utilization(0)
    );
}

/// Degenerate cross-check: Erlang-C at c = 1 is the M/M/1 wait ρ/(μ−λ),
/// and the simulator agrees there too (ties this suite to the PR 7 test).
#[test]
fn erlang_c_degenerates_to_mm1() {
    let lambda = 0.8;
    let mu = 1.0;
    let closed = erlang_c_mean_wait(lambda, mu, 1);
    let mm1 = (lambda / mu) / (mu - lambda);
    assert!((closed - mm1).abs() < 1e-12, "{closed} vs {mm1}");

    let servers = vec![pool("mm1", 1.0 / mu, 1)];
    let config = ServingConfig::new(lambda, Seconds(120_000.0), 77)
        .queue_capacity(usize::MAX)
        .exponential_service();
    let result = simulate_serving(&servers, &config, &mut FcfsScheduler).unwrap();
    let observed = result.mean_wait.value();
    assert!(
        (observed - closed).abs() / closed < 0.05,
        "simulated {observed:.4} vs closed form {closed:.4}"
    );
}

/// M/M/1-PS mean sojourn equals the M/M/1 FCFS sojourn `1/(μ−λ)` — the
/// processor-sharing queue redistributes waiting into slowdown without
/// changing the mean.
#[test]
fn mm1_ps_mean_sojourn_matches_mm1_fcfs() {
    let lambda = 0.8;
    let mu = 1.0;
    let expected = 1.0 / (mu - lambda); // 5 s

    let ps = vec![pool("ps", 1.0 / mu, usize::MAX >> 1).processor_sharing()];
    let config = ServingConfig::new(lambda, Seconds(120_000.0), 9_001)
        .queue_capacity(usize::MAX)
        .exponential_service();
    let ps_result = simulate_serving(&ps, &config, &mut FcfsScheduler).unwrap();
    assert_eq!(ps_result.completed, ps_result.arrivals);
    let ps_sojourn = ps_result.mean_latency().value();
    assert!(
        (ps_sojourn - expected).abs() / expected < 0.05,
        "M/M/1-PS mean sojourn {ps_sojourn:.4} vs 1/(μ−λ) = {expected:.4}"
    );
    // Under PS nobody waits in a queue — service starts immediately and the
    // delay shows up as slowdown instead.
    assert_eq!(ps_result.mean_wait, Seconds(0.0));

    // The FCFS twin of the same system agrees on the mean sojourn.
    let fcfs = vec![pool("fcfs", 1.0 / mu, 1)];
    let fcfs_result = simulate_serving(&fcfs, &config, &mut FcfsScheduler).unwrap();
    let fcfs_sojourn = fcfs_result.mean_latency().value();
    assert!(
        (ps_sojourn - fcfs_sojourn).abs() / fcfs_sojourn < 0.05,
        "PS {ps_sojourn:.4} vs FCFS {fcfs_sojourn:.4}"
    );
}

/// The insensitivity half of the M/M/1-PS result: with *deterministic*
/// service (an M/D/1-PS queue) the mean sojourn is still `1/(μ−λ)`,
/// while FCFS with deterministic service waits only half as long
/// (Pollaczek–Khinchine). If the sharing engine were secretly FCFS this
/// test would catch it.
#[test]
fn ps_sojourn_is_insensitive_to_the_service_distribution() {
    let lambda = 0.8;
    let mu = 1.0;
    let expected = 1.0 / (mu - lambda);

    let ps = vec![pool("ps", 1.0 / mu, usize::MAX >> 1).processor_sharing()];
    let config = ServingConfig::new(lambda, Seconds(120_000.0), 555).queue_capacity(usize::MAX);
    // Deterministic service (the config default).
    let ps_result = simulate_serving(&ps, &config, &mut FcfsScheduler).unwrap();
    let ps_sojourn = ps_result.mean_latency().value();
    assert!(
        (ps_sojourn - expected).abs() / expected < 0.05,
        "M/D/1-PS mean sojourn {ps_sojourn:.4} vs insensitive value {expected:.4}"
    );

    // FCFS under deterministic service: P-K mean wait ρ/(2(μ−λ)) = 2 s, so
    // sojourn ≈ 3 s — far below the PS value of 5 s.
    let fcfs = vec![pool("fcfs", 1.0 / mu, 1)];
    let fcfs_result = simulate_serving(&fcfs, &config, &mut FcfsScheduler).unwrap();
    let md1_sojourn = 1.0 / mu + (lambda / mu) / (2.0 * (mu - lambda));
    let fcfs_sojourn = fcfs_result.mean_latency().value();
    assert!(
        (fcfs_sojourn - md1_sojourn).abs() / md1_sojourn < 0.05,
        "M/D/1 FCFS sojourn {fcfs_sojourn:.4} vs P-K {md1_sojourn:.4}"
    );
    assert!(
        ps_sojourn > 1.5 * fcfs_sojourn,
        "PS ({ps_sojourn:.4}) and FCFS ({fcfs_sojourn:.4}) must differ under \
         deterministic service — otherwise sharing is not happening"
    );
}

/// Power-of-two-choices strictly beats blind random assignment on mean
/// queue depth at heavy load, and the mean tail follows.
#[test]
fn po2_mean_depth_is_strictly_below_random_assignment() {
    let n = 8;
    let servers: Vec<ServingServer> = (0..n).map(|i| pool(&format!("s{i}"), 1.0, 1)).collect();
    let config = ServingConfig::new(0.9 * n as f64, Seconds(20_000.0), 4_242)
        .queue_capacity(usize::MAX)
        .exponential_service();
    let po2 = simulate_serving(&servers, &config, &mut PowerOfTwoChoices).unwrap();
    let random = simulate_serving(&servers, &config, &mut RandomScheduler).unwrap();
    assert_eq!(po2.completed, po2.arrivals);
    assert_eq!(random.completed, random.arrivals);

    let po2_depth = po2.mean_system_depth();
    let random_depth = random.mean_system_depth();
    assert!(
        po2_depth < random_depth,
        "po2 mean depth {po2_depth:.3} must undercut random {random_depth:.3}"
    );
    // The gap at ρ = 0.9 is large (the doubly-exponential improvement), not
    // a statistical whisker.
    assert!(
        po2_depth < 0.6 * random_depth,
        "po2 {po2_depth:.3} vs random {random_depth:.3}: gap too small"
    );
    assert!(po2.p99() < random.p99());

    // Both runs are reproducible: the po2 probes draw from the seeded RNG.
    let again = simulate_serving(&servers, &config, &mut PowerOfTwoChoices).unwrap();
    assert_eq!(po2, again);
}
