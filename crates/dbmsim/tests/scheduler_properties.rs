//! Property tests for every `Scheduler` × `ArrivalProcess` combination.
//!
//! Three invariants must hold for *any* placement policy the serving layer
//! ships, under *any* arrival law:
//!
//! 1. **Capability** — no query is ever dispatched to a pool whose
//!    `can_serve` rejects its template (checked by wrapping each policy in
//!    a recorder that sees every placement decision).
//! 2. **Conservation** — completed + dropped + timed-out = arrivals once
//!    the run drains (the simulator runs to quiescence, so nothing stays
//!    in flight).
//! 3. **Determinism** — the same seed reproduces a bit-identical
//!    `ServingResult`, including for policies that consume RNG draws.
//!
//! The matrix is {FCFS, energy-aware, JSQ, po2, random} ×
//! {Poisson, trace, ramp} over a heterogeneous two-pool cluster where the
//! second template only fits pool 0 — the capability property is load-
//! bearing, not vacuous.

use eedc_dbmsim::{
    simulate_serving, ArrivalProcess, EnergyAwareScheduler, FcfsScheduler, JoinShortestQueue,
    PoolView, PowerOfTwoChoices, RampSegment, RandomScheduler, Scheduler, ServiceProfile,
    ServingConfig, ServingServer,
};
use eedc_simkit::units::{Joules, Seconds, Watts};

/// Wraps a policy and records every (template, pool) commitment it makes.
struct Recording<S> {
    inner: S,
    placements: Vec<(usize, usize)>,
}

impl<S: Scheduler> Recording<S> {
    fn new(inner: S) -> Self {
        Recording {
            inner,
            placements: Vec::new(),
        }
    }
}

impl<S: Scheduler> Scheduler for Recording<S> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn place(
        &mut self,
        template: usize,
        servers: &[ServingServer],
        pools: &[PoolView],
        draw: &mut dyn FnMut() -> f64,
    ) -> Option<usize> {
        let choice = self.inner.place(template, servers, pools, draw);
        if let Some(pool) = choice {
            self.placements.push((template, pool));
        }
        choice
    }
}

fn heterogeneous_cluster() -> Vec<ServingServer> {
    let profile = |time: f64, energy: f64| {
        Some(ServiceProfile {
            time: Seconds(time),
            energy: Joules(energy),
        })
    };
    vec![
        // Pool 0 serves both templates, four slots.
        ServingServer::new(
            "beefy",
            Watts(120.0),
            vec![profile(0.4, 250.0), profile(1.6, 900.0)],
        )
        .concurrency_limit(4),
        // Pool 1 serves only template 0, cheaper, two slots.
        ServingServer::new("wimpy", Watts(30.0), vec![profile(1.0, 80.0), None])
            .concurrency_limit(2),
    ]
}

fn arrival_processes() -> Vec<ArrivalProcess> {
    vec![
        ArrivalProcess::Poisson { qps: 2.5 },
        // A bursty recorded trace: pairs and triples landing together.
        ArrivalProcess::Trace(
            (0..900)
                .map(|i| Seconds((i / 3) as f64 * 0.9 + (i % 3) as f64 * 0.01))
                .collect(),
        ),
        ArrivalProcess::Ramp(vec![
            RampSegment {
                duration: Seconds(100.0),
                qps: 0.5,
            },
            RampSegment {
                duration: Seconds(100.0),
                qps: 6.0,
            },
            RampSegment {
                duration: Seconds(100.0),
                qps: 0.0,
            },
            RampSegment {
                duration: Seconds(100.0),
                qps: 2.0,
            },
        ]),
    ]
}

fn config_with(arrival: ArrivalProcess) -> ServingConfig {
    ServingConfig::new(1.0, Seconds(300.0), 31_337)
        .arrival(arrival)
        .template_theta(0.8)
        .queue_capacity(64)
        .max_wait(Seconds(25.0))
        .exponential_service()
}

fn run_matrix(mut check: impl FnMut(&str, &str, &[ServingServer], &ServingConfig)) {
    let servers = heterogeneous_cluster();
    for arrival in arrival_processes() {
        let config = config_with(arrival);
        for scheduler in ["fcfs", "energy-aware", "jsq", "po2", "random"] {
            check(scheduler, config.arrival.kind(), &servers, &config);
        }
    }
}

fn run_recorded(
    name: &str,
    servers: &[ServingServer],
    config: &ServingConfig,
) -> (eedc_dbmsim::ServingResult, Vec<(usize, usize)>) {
    // The recorder wrapper keeps the inner policy's name, so results remain
    // comparable with unwrapped runs.
    macro_rules! run {
        ($inner:expr) => {{
            let mut recording = Recording::new($inner);
            let result = simulate_serving(servers, config, &mut recording).unwrap();
            (result, recording.placements)
        }};
    }
    match name {
        "fcfs" => run!(FcfsScheduler),
        "energy-aware" => run!(EnergyAwareScheduler),
        "jsq" => run!(JoinShortestQueue),
        "po2" => run!(PowerOfTwoChoices),
        "random" => run!(RandomScheduler),
        other => panic!("unknown scheduler {other}"),
    }
}

/// Property 1: no policy ever commits a query to a pool that cannot serve
/// its template.
#[test]
fn no_policy_dispatches_to_an_incapable_pool() {
    run_matrix(|name, arrival, servers, config| {
        let (result, placements) = run_recorded(name, servers, config);
        assert!(
            !placements.is_empty(),
            "{name}/{arrival}: the recorder saw no placements"
        );
        for &(template, pool) in &placements {
            assert!(
                servers[pool].can_serve(template),
                "{name}/{arrival}: template {template} placed on incapable pool {pool}"
            );
        }
        // The restricted template really occurred and really completed.
        assert!(
            result.template_completed[1] > 0,
            "{name}/{arrival}: template 1 never completed — capability check is vacuous"
        );
    });
}

/// Property 2: arrivals are conserved — after the run drains, every arrival
/// either completed, was dropped at admission, or timed out in a queue.
#[test]
fn arrivals_are_conserved_across_every_policy_and_arrival_law() {
    run_matrix(|name, arrival, servers, config| {
        let (result, _) = run_recorded(name, servers, config);
        assert!(result.arrivals > 0, "{name}/{arrival}: no arrivals");
        assert_eq!(
            result.completed + result.dropped + result.timed_out,
            result.arrivals,
            "{name}/{arrival}: conservation violated"
        );
        assert_eq!(result.completed, result.latencies.len());
        assert_eq!(
            result.server_queries.iter().sum::<usize>(),
            result.completed,
            "{name}/{arrival}: per-server counts disagree with the total"
        );
        assert_eq!(
            result.template_completed.iter().sum::<usize>(),
            result.completed,
            "{name}/{arrival}: per-template counts disagree with the total"
        );
        // Latencies are sorted and non-negative, so percentiles are sane.
        assert!(result
            .latencies
            .windows(2)
            .all(|w| w[0] <= w[1] && w[0] >= 0.0));
        assert_eq!(result.scheduler, name);
        assert_eq!(result.arrival, arrival);
    });
}

/// Property 3: same seed ⇒ bit-identical result, for every policy including
/// the ones that consume RNG draws (po2, random), under every arrival law.
#[test]
fn same_seed_reproduces_bit_identically_for_every_combination() {
    run_matrix(|name, arrival, servers, config| {
        let (a, placements_a) = run_recorded(name, servers, config);
        let (b, placements_b) = run_recorded(name, servers, config);
        assert_eq!(a, b, "{name}/{arrival}: results diverged under one seed");
        assert_eq!(
            placements_a, placements_b,
            "{name}/{arrival}: placements diverged under one seed"
        );
        // And a different seed genuinely perturbs randomized runs (Poisson
        // gaps, service draws, po2 probes all consume the stream).
        let reseeded = ServingConfig {
            seed: config.seed + 1,
            ..config.clone()
        };
        let (c, _) = run_recorded(name, servers, &reseeded);
        assert_ne!(
            a.latencies, c.latencies,
            "{name}/{arrival}: a different seed changed nothing"
        );
    });
}
