//! Property tests for the fault-injection layer: the conservation
//! invariant (`arrivals = completed + dropped + timed_out +
//! killed-not-readmitted`) must hold for every scheduler × arrival-law
//! combination under hazard failures, scripted outages, and elastic
//! scaling, and every faulted run must stay bit-reproducible under its
//! seed.

use eedc_dbmsim::serving::{
    simulate_serving, ArrivalProcess, FcfsScheduler, JoinShortestQueue, PowerOfTwoChoices,
    Scheduler, ServiceProfile, ServingConfig, ServingResult, ServingServer,
};
use eedc_dbmsim::{FaultModel, RecoveryPolicy, ScalePolicy, TransitionCost};
use eedc_simkit::units::{Joules, Seconds, Watts};

type SchedulerCtor = fn() -> Box<dyn Scheduler>;

fn cluster() -> Vec<ServingServer> {
    let profile = |time: f64, energy: f64| {
        Some(ServiceProfile {
            time: Seconds(time),
            energy: Joules(energy),
        })
    };
    vec![
        ServingServer::new(
            "beefy",
            Watts(120.0),
            vec![profile(0.5, 300.0), profile(2.0, 1_200.0)],
        )
        .concurrency_limit(4)
        .nodes(4),
        ServingServer::new("wimpy-a", Watts(30.0), vec![profile(1.5, 90.0), None])
            .concurrency_limit(2)
            .nodes(8),
        ServingServer::new("wimpy-b", Watts(30.0), vec![profile(1.5, 90.0), None])
            .concurrency_limit(2)
            .nodes(8),
    ]
}

fn churn_model() -> FaultModel {
    FaultModel::new(1.5)
        .repair_time(Seconds(40.0))
        .recovery(RecoveryPolicy::Checkpoint {
            interval: Seconds(0.5),
        })
        .restart_cost(TransitionCost {
            time: Seconds(5.0),
            energy: Joules(800.0),
        })
        .outage(0, Seconds(300.0), Seconds(60.0))
        .outage(1, Seconds(900.0), Seconds(120.0))
        .scale(
            ScalePolicy::new(12, 1, Seconds(25.0))
                .min_pools(1)
                .migration_cost(TransitionCost {
                    time: Seconds(10.0),
                    energy: Joules(400.0),
                }),
        )
}

fn arrivals() -> Vec<(&'static str, ArrivalProcess)> {
    // A deterministic trace with a burst, and a Poisson stream at the same
    // mean rate.
    let burst: Vec<Seconds> = (0..2_400)
        .map(|i| {
            let t = i as f64 * 0.75;
            Seconds(if t < 600.0 {
                t
            } else {
                600.0 + (t - 600.0) * 1.25
            })
        })
        .collect();
    vec![
        ("poisson", ArrivalProcess::Poisson { qps: 1.4 }),
        ("trace", ArrivalProcess::Trace(burst)),
    ]
}

fn assert_conserves(result: &ServingResult, label: &str) {
    assert!(result.readmitted <= result.killed, "{label}: {result:?}");
    assert_eq!(
        result.completed + result.dropped + result.timed_out + (result.killed - result.readmitted),
        result.arrivals,
        "{label}: conservation violated"
    );
}

/// Conservation and determinism across {fcfs, jsq, po2} × {Poisson, trace}
/// under the full churn model (hazard + scripted + elastic scaling).
#[test]
fn conservation_holds_for_every_scheduler_and_arrival_law() {
    let servers = cluster();
    let schedulers: Vec<(&str, SchedulerCtor)> = vec![
        ("fcfs", || Box::new(FcfsScheduler)),
        ("jsq", || Box::new(JoinShortestQueue)),
        ("po2", || Box::new(PowerOfTwoChoices)),
    ];
    for (arrival_name, arrival) in arrivals() {
        for (scheduler_name, make) in &schedulers {
            let label = format!("{scheduler_name}/{arrival_name}");
            let config = ServingConfig::new(1.0, Seconds(1_800.0), 2_024)
                .arrival(arrival.clone())
                .template_theta(0.8)
                .queue_capacity(128)
                .max_wait(Seconds(60.0))
                .faults(churn_model());
            let a = simulate_serving(&servers, &config, make().as_mut()).unwrap();
            let b = simulate_serving(&servers, &config, make().as_mut()).unwrap();
            assert_eq!(a, b, "{label}: same seed must reproduce bit-identically");
            assert_conserves(&a, &label);
            assert!(a.failures > 0, "{label}: the churn model must fire");
            assert!(a.availability < 1.0, "{label}");
            assert!(a.availability > 0.0, "{label}");
            assert!(a.killed > 0, "{label}");
            assert!(
                a.overhead_energy.value() > 0.0,
                "{label}: restarts must be billed"
            );
        }
    }
}

/// The same sweep with an inert model must match a fault-free run exactly —
/// the seam costs nothing when unused.
#[test]
fn inert_model_matches_fault_free_for_every_scheduler() {
    let servers = cluster();
    let schedulers: Vec<(&str, SchedulerCtor)> = vec![
        ("fcfs", || Box::new(FcfsScheduler)),
        ("jsq", || Box::new(JoinShortestQueue)),
        ("po2", || Box::new(PowerOfTwoChoices)),
    ];
    for (arrival_name, arrival) in arrivals() {
        for (scheduler_name, make) in &schedulers {
            let bare = ServingConfig::new(1.0, Seconds(1_200.0), 7)
                .arrival(arrival.clone())
                .queue_capacity(128)
                .max_wait(Seconds(60.0));
            let inert = bare.clone().faults(FaultModel::new(0.0));
            let a = simulate_serving(&servers, &bare, make().as_mut()).unwrap();
            let b = simulate_serving(&servers, &inert, make().as_mut()).unwrap();
            assert_eq!(
                a, b,
                "{scheduler_name}/{arrival_name}: inert model perturbed the run"
            );
            assert_conserves(&a, scheduler_name);
        }
    }
}
