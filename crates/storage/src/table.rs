//! Schemas and in-memory columnar tables.

use crate::column::{Column, ColumnType, Value};
use crate::error::StorageError;
use eedc_simkit::units::Megabytes;
use eedc_tpch::gen::{LineitemRow, OrdersRow};
use serde::{Deserialize, Serialize};

/// An ordered list of named, typed columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<(String, ColumnType)>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    pub fn new(columns: impl IntoIterator<Item = (impl Into<String>, ColumnType)>) -> Self {
        Self {
            columns: columns
                .into_iter()
                .map(|(name, ty)| (name.into(), ty))
                .collect(),
        }
    }

    /// The projected LINEITEM schema used throughout the paper's experiments.
    pub fn lineitem_projection() -> Self {
        Schema::new([
            ("L_ORDERKEY", ColumnType::Int64),
            ("L_EXTENDEDPRICE", ColumnType::Int64),
            ("L_DISCOUNT", ColumnType::Int32),
            ("L_SHIPDATE", ColumnType::Int32),
        ])
    }

    /// The projected ORDERS schema used throughout the paper's experiments.
    pub fn orders_projection() -> Self {
        Schema::new([
            ("O_ORDERKEY", ColumnType::Int64),
            ("O_ORDERDATE", ColumnType::Int32),
            ("O_SHIPPRIORITY", ColumnType::Int32),
            ("O_CUSTKEY", ColumnType::Int64),
        ])
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The `(name, type)` pairs in order.
    pub fn columns(&self) -> &[(String, ColumnType)] {
        &self.columns
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Type of a column by name.
    pub fn type_of(&self, name: &str) -> Option<ColumnType> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ty)| *ty)
    }

    /// Bytes per row (sum of column widths).
    pub fn row_bytes(&self) -> u32 {
        self.columns.iter().map(|(_, ty)| ty.width_bytes()).sum()
    }

    /// A schema containing only the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema, StorageError> {
        let mut columns = Vec::with_capacity(names.len());
        for &name in names {
            let ty = self
                .type_of(name)
                .ok_or_else(|| StorageError::UnknownColumn {
                    column: name.into(),
                    table: "<schema>".into(),
                })?;
            columns.push((name.to_string(), ty));
        }
        Ok(Schema { columns })
    }
}

/// An in-memory columnar table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
}

impl Table {
    /// An empty table with the given name and schema.
    pub fn empty(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|(_, ty)| Column::empty(*ty))
            .collect();
        Self {
            name: name.into(),
            schema,
            columns,
        }
    }

    /// An empty table with reserved row capacity.
    pub fn with_capacity(name: impl Into<String>, schema: Schema, rows: usize) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|(_, ty)| Column::with_capacity(*ty, rows))
            .collect();
        Self {
            name: name.into(),
            schema,
            columns,
        }
    }

    /// A table assembled from pre-built columns. The columns must match the
    /// schema's types and all have the same length — this is how the
    /// execution kernel turns gathered output fragments back into tables
    /// without touching any per-row path.
    pub fn from_columns(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<Column>,
    ) -> Result<Self, StorageError> {
        let name = name.into();
        if columns.len() != schema.len() {
            return Err(StorageError::schema(format!(
                "table {} given {} columns for a {}-column schema",
                name,
                columns.len(),
                schema.len()
            )));
        }
        let rows = columns.first().map_or(0, Column::len);
        for (column, (col_name, ty)) in columns.iter().zip(schema.columns()) {
            if column.column_type() != *ty {
                return Err(StorageError::schema(format!(
                    "column {col_name} of table {name} is {} but the schema says {ty}",
                    column.column_type()
                )));
            }
            if column.len() != rows {
                return Err(StorageError::schema(format!(
                    "column {col_name} of table {name} has {} rows, expected {rows}",
                    column.len()
                )));
            }
        }
        Ok(Self {
            name,
            schema,
            columns,
        })
    }

    /// Materialise the projected LINEITEM table from generated rows. The
    /// columns are built directly from the typed row fields — no per-row
    /// schema validation on this hot path.
    pub fn from_lineitem(rows: impl IntoIterator<Item = LineitemRow>) -> Self {
        let iter = rows.into_iter();
        let capacity = iter.size_hint().0;
        let mut orderkey = Vec::with_capacity(capacity);
        let mut extendedprice = Vec::with_capacity(capacity);
        let mut discount = Vec::with_capacity(capacity);
        let mut shipdate = Vec::with_capacity(capacity);
        for row in iter {
            orderkey.push(row.orderkey);
            extendedprice.push(row.extendedprice);
            discount.push(row.discount);
            shipdate.push(row.shipdate);
        }
        Table::from_columns(
            "LINEITEM",
            Schema::lineitem_projection(),
            vec![
                Column::Int64(orderkey),
                Column::Int64(extendedprice),
                Column::Int32(discount),
                Column::Int32(shipdate),
            ],
        )
        .expect("lineitem projection columns match their schema")
    }

    /// Materialise the projected ORDERS table from generated rows.
    pub fn from_orders(rows: impl IntoIterator<Item = OrdersRow>) -> Self {
        let iter = rows.into_iter();
        let capacity = iter.size_hint().0;
        let mut orderkey = Vec::with_capacity(capacity);
        let mut orderdate = Vec::with_capacity(capacity);
        let mut shippriority = Vec::with_capacity(capacity);
        let mut custkey = Vec::with_capacity(capacity);
        for row in iter {
            orderkey.push(row.orderkey);
            orderdate.push(row.orderdate);
            shippriority.push(row.shippriority);
            custkey.push(row.custkey);
        }
        Table::from_columns(
            "ORDERS",
            Schema::orders_projection(),
            vec![
                Column::Int64(orderkey),
                Column::Int32(orderdate),
                Column::Int32(shippriority),
                Column::Int64(custkey),
            ],
        )
        .expect("orders projection columns match their schema")
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the table (used when deriving partitions or join outputs).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.row_count() == 0
    }

    /// Payload size of the table.
    pub fn byte_size(&self) -> Megabytes {
        Megabytes::from_bytes(self.columns.iter().map(Column::byte_size).sum())
    }

    /// The column at `index`.
    pub fn column(&self, index: usize) -> Option<&Column> {
        self.columns.get(index)
    }

    /// The column with the given name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column, StorageError> {
        let index = self
            .schema
            .index_of(name)
            .ok_or_else(|| StorageError::UnknownColumn {
                column: name.into(),
                table: self.name.clone(),
            })?;
        Ok(&self.columns[index])
    }

    /// Append one row given values in schema order.
    pub fn append_row(&mut self, values: &[Value]) -> Result<(), StorageError> {
        if values.len() != self.schema.len() {
            return Err(StorageError::schema(format!(
                "row has {} values but table {} has {} columns",
                values.len(),
                self.name,
                self.schema.len()
            )));
        }
        for (column, value) in self.columns.iter_mut().zip(values) {
            column.push(*value)?;
        }
        Ok(())
    }

    /// Append one row without re-validating it against the schema — the
    /// batched kernel path for callers that validated the row shape once up
    /// front. Arity and types are `debug_assert!`ed.
    #[inline]
    pub fn append_row_unchecked(&mut self, values: &[Value]) {
        debug_assert_eq!(
            values.len(),
            self.schema.len(),
            "append_row_unchecked: row arity does not match table {}",
            self.name
        );
        for (column, value) in self.columns.iter_mut().zip(values) {
            column.push_unchecked(*value);
        }
    }

    /// A new table holding row `i` of `self` for every index in `indices`,
    /// in order — per-column gather, no per-row dispatch. Indices must be in
    /// bounds (panics otherwise).
    pub fn gather_rows(&self, name: impl Into<String>, indices: &[u32]) -> Table {
        Table {
            name: name.into(),
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.gathered(indices)).collect(),
        }
    }

    /// The row multiset as a sorted list of value tuples over the named
    /// columns — the order-insensitive signature used to assert that two
    /// executions produced the same rows regardless of worker count, morsel
    /// size, or partitioning. Rows sort lexicographically by
    /// [`Value::compare`].
    pub fn sorted_row_signature(&self, columns: &[&str]) -> Result<Vec<Vec<Value>>, StorageError> {
        let cols: Vec<&Column> = columns
            .iter()
            .map(|name| self.column_by_name(name))
            .collect::<Result<_, _>>()?;
        let mut rows: Vec<Vec<Value>> = (0..self.row_count())
            .map(|i| {
                cols.iter()
                    .map(|c| c.get(i).expect("row index within row_count"))
                    .collect()
            })
            .collect();
        rows.sort_unstable_by(|a, b| {
            a.iter()
                .zip(b)
                .map(|(x, y)| x.compare(y))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(rows)
    }

    /// Copy the row at `index` of `source` into this table. The schemas must
    /// be identical.
    pub fn append_row_from(&mut self, source: &Table, index: usize) -> Result<(), StorageError> {
        if self.schema != source.schema {
            return Err(StorageError::schema(format!(
                "cannot copy rows from {} into {}: schemas differ",
                source.name, self.name
            )));
        }
        for (dest, src) in self.columns.iter_mut().zip(&source.columns) {
            dest.push_from(src, index)?;
        }
        Ok(())
    }

    /// Read a full row as a vector of values.
    pub fn row(&self, index: usize) -> Option<Vec<Value>> {
        if index >= self.row_count() {
            return None;
        }
        Some(
            self.columns
                .iter()
                .map(|c| c.get(index).expect("row index checked against row_count"))
                .collect(),
        )
    }

    /// A new table containing only the named columns (in the given order) of
    /// every row.
    pub fn project(&self, names: &[&str]) -> Result<Table, StorageError> {
        let schema = self.schema.project(names)?;
        let mut columns = Vec::with_capacity(names.len());
        for &name in names {
            let index = self
                .schema
                .index_of(name)
                .ok_or_else(|| StorageError::UnknownColumn {
                    column: name.into(),
                    table: self.name.clone(),
                })?;
            columns.push(self.columns[index].clone());
        }
        Ok(Table {
            name: format!("{}_proj", self.name),
            schema,
            columns,
        })
    }

    /// Concatenate another table with an identical schema onto this one.
    /// Appends column-wise: one schema check and one slice copy per column,
    /// never a per-row dispatch.
    pub fn append_table(&mut self, other: &Table) -> Result<(), StorageError> {
        if self.schema != other.schema {
            return Err(StorageError::schema(format!(
                "cannot append {} to {}: schemas differ",
                other.name, self.name
            )));
        }
        for (dest, src) in self.columns.iter_mut().zip(&other.columns) {
            dest.extend_from(src)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eedc_tpch::gen::{LineitemGenerator, OrdersGenerator};
    use eedc_tpch::scale::ScaleFactor;

    fn small_orders() -> Table {
        Table::from_orders(OrdersGenerator::new(ScaleFactor(0.001), 1))
    }

    #[test]
    fn schema_round_trip() {
        let schema = Schema::lineitem_projection();
        assert_eq!(schema.len(), 4);
        assert_eq!(schema.row_bytes(), 8 + 8 + 4 + 4);
        assert_eq!(schema.index_of("L_SHIPDATE"), Some(3));
        assert_eq!(schema.type_of("L_ORDERKEY"), Some(ColumnType::Int64));
        assert_eq!(schema.type_of("NOPE"), None);
        let projected = schema.project(&["L_SHIPDATE", "L_ORDERKEY"]).unwrap();
        assert_eq!(projected.columns()[0].0, "L_SHIPDATE");
        assert!(schema.project(&["MISSING"]).is_err());
    }

    #[test]
    fn projected_tuples_are_20_bytes_plus_alignment() {
        // The paper stores 20-byte projected tuples; our typed layout uses 24
        // bytes per LINEITEM row (two i64 + two i32) which preserves the same
        // four-column shape. The byte_size accessor reflects the real layout.
        let schema = Schema::orders_projection();
        assert_eq!(schema.row_bytes(), 24);
    }

    #[test]
    fn append_and_read_rows() {
        let mut table = Table::empty(
            "T",
            Schema::new([("A", ColumnType::Int64), ("B", ColumnType::Int32)]),
        );
        table
            .append_row(&[Value::Int64(1), Value::Int32(10)])
            .unwrap();
        table
            .append_row(&[Value::Int64(2), Value::Int32(20)])
            .unwrap();
        assert_eq!(table.row_count(), 2);
        assert_eq!(table.row(1), Some(vec![Value::Int64(2), Value::Int32(20)]));
        assert_eq!(table.row(2), None);
        assert!(
            table.append_row(&[Value::Int64(3)]).is_err(),
            "wrong arity must fail"
        );
        assert!(
            table
                .append_row(&[Value::Int32(3), Value::Int32(1)])
                .is_err(),
            "wrong type must fail"
        );
    }

    #[test]
    fn from_generators_builds_projections() {
        let orders = small_orders();
        assert_eq!(orders.name(), "ORDERS");
        assert_eq!(orders.row_count(), 1500);
        assert_eq!(orders.schema(), &Schema::orders_projection());
        let lineitem = Table::from_lineitem(LineitemGenerator::new(ScaleFactor(0.001), 1));
        assert!(lineitem.row_count() > 4000 && lineitem.row_count() < 8000);
        assert!(lineitem.byte_size().value() > 0.0);
    }

    #[test]
    fn projection_copies_columns() {
        let orders = small_orders();
        let keys = orders.project(&["O_ORDERKEY"]).unwrap();
        assert_eq!(keys.row_count(), orders.row_count());
        assert_eq!(keys.schema().len(), 1);
        assert!(orders.project(&["O_NOPE"]).is_err());
    }

    #[test]
    fn append_table_requires_identical_schema() {
        let mut a = small_orders();
        let b = small_orders();
        let before = a.row_count();
        a.append_table(&b).unwrap();
        assert_eq!(a.row_count(), 2 * before);
        let lineitem = Table::from_lineitem(LineitemGenerator::new(ScaleFactor(0.001), 1));
        assert!(a.append_table(&lineitem).is_err());
    }

    #[test]
    fn from_columns_validates_shape() {
        let schema = Schema::new([("A", ColumnType::Int64), ("B", ColumnType::Int32)]);
        let table = Table::from_columns(
            "T",
            schema.clone(),
            vec![Column::Int64(vec![1, 2]), Column::Int32(vec![10, 20])],
        )
        .unwrap();
        assert_eq!(table.row_count(), 2);
        assert_eq!(table.row(1), Some(vec![Value::Int64(2), Value::Int32(20)]));
        // Wrong column count, wrong type, ragged lengths.
        assert!(Table::from_columns("T", schema.clone(), vec![Column::Int64(vec![1])]).is_err());
        assert!(Table::from_columns(
            "T",
            schema.clone(),
            vec![Column::Int32(vec![1]), Column::Int32(vec![10])]
        )
        .is_err());
        assert!(Table::from_columns(
            "T",
            schema,
            vec![Column::Int64(vec![1, 2]), Column::Int32(vec![10])]
        )
        .is_err());
    }

    #[test]
    fn gather_rows_selects_in_index_order() {
        let orders = small_orders();
        let gathered = orders.gather_rows("G", &[2, 0, 2]);
        assert_eq!(gathered.row_count(), 3);
        assert_eq!(gathered.name(), "G");
        assert_eq!(gathered.row(0), orders.row(2));
        assert_eq!(gathered.row(1), orders.row(0));
        assert_eq!(gathered.row(2), orders.row(2));
        assert_eq!(gathered.schema(), orders.schema());
    }

    #[test]
    fn unchecked_append_matches_checked_append() {
        let schema = Schema::new([("A", ColumnType::Int64), ("B", ColumnType::Float64)]);
        let mut checked = Table::empty("C", schema.clone());
        let mut unchecked = Table::empty("U", schema);
        for i in 0..10 {
            let row = [Value::Int64(i), Value::Float64(i as f64 / 2.0)];
            checked.append_row(&row).unwrap();
            unchecked.append_row_unchecked(&row);
        }
        assert_eq!(checked.row_count(), unchecked.row_count());
        for i in 0..10 {
            assert_eq!(checked.row(i), unchecked.row(i));
        }
    }

    #[test]
    fn sorted_row_signature_is_order_insensitive() {
        let orders = small_orders();
        let mut reversed = Table::empty("R", orders.schema().clone());
        for i in (0..orders.row_count()).rev() {
            reversed.append_row_from(&orders, i).unwrap();
        }
        let cols = ["O_ORDERKEY", "O_CUSTKEY"];
        assert_eq!(
            orders.sorted_row_signature(&cols).unwrap(),
            reversed.sorted_row_signature(&cols).unwrap()
        );
        assert!(orders.sorted_row_signature(&["O_NOPE"]).is_err());
    }

    #[test]
    fn column_lookup_by_name() {
        let orders = small_orders();
        assert!(orders.column_by_name("O_CUSTKEY").is_ok());
        assert!(orders.column_by_name("O_NOPE").is_err());
        assert!(orders.column(0).is_some());
        assert!(orders.column(9).is_none());
    }

    #[test]
    fn set_name_renames() {
        let mut orders = small_orders();
        orders.set_name("ORDERS_PART_3");
        assert_eq!(orders.name(), "ORDERS_PART_3");
    }
}
