//! Schemas and in-memory columnar tables.

use crate::column::{Column, ColumnType, Value};
use crate::error::StorageError;
use eedc_simkit::units::Megabytes;
use eedc_tpch::gen::{LineitemRow, OrdersRow};
use serde::{Deserialize, Serialize};

/// An ordered list of named, typed columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<(String, ColumnType)>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    pub fn new(columns: impl IntoIterator<Item = (impl Into<String>, ColumnType)>) -> Self {
        Self {
            columns: columns
                .into_iter()
                .map(|(name, ty)| (name.into(), ty))
                .collect(),
        }
    }

    /// The projected LINEITEM schema used throughout the paper's experiments.
    pub fn lineitem_projection() -> Self {
        Schema::new([
            ("L_ORDERKEY", ColumnType::Int64),
            ("L_EXTENDEDPRICE", ColumnType::Int64),
            ("L_DISCOUNT", ColumnType::Int32),
            ("L_SHIPDATE", ColumnType::Int32),
        ])
    }

    /// The projected ORDERS schema used throughout the paper's experiments.
    pub fn orders_projection() -> Self {
        Schema::new([
            ("O_ORDERKEY", ColumnType::Int64),
            ("O_ORDERDATE", ColumnType::Int32),
            ("O_SHIPPRIORITY", ColumnType::Int32),
            ("O_CUSTKEY", ColumnType::Int64),
        ])
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The `(name, type)` pairs in order.
    pub fn columns(&self) -> &[(String, ColumnType)] {
        &self.columns
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Type of a column by name.
    pub fn type_of(&self, name: &str) -> Option<ColumnType> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ty)| *ty)
    }

    /// Bytes per row (sum of column widths).
    pub fn row_bytes(&self) -> u32 {
        self.columns.iter().map(|(_, ty)| ty.width_bytes()).sum()
    }

    /// A schema containing only the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema, StorageError> {
        let mut columns = Vec::with_capacity(names.len());
        for &name in names {
            let ty = self
                .type_of(name)
                .ok_or_else(|| StorageError::UnknownColumn {
                    column: name.into(),
                    table: "<schema>".into(),
                })?;
            columns.push((name.to_string(), ty));
        }
        Ok(Schema { columns })
    }
}

/// An in-memory columnar table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
}

impl Table {
    /// An empty table with the given name and schema.
    pub fn empty(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|(_, ty)| Column::empty(*ty))
            .collect();
        Self {
            name: name.into(),
            schema,
            columns,
        }
    }

    /// An empty table with reserved row capacity.
    pub fn with_capacity(name: impl Into<String>, schema: Schema, rows: usize) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|(_, ty)| Column::with_capacity(*ty, rows))
            .collect();
        Self {
            name: name.into(),
            schema,
            columns,
        }
    }

    /// Materialise the projected LINEITEM table from generated rows.
    pub fn from_lineitem(rows: impl IntoIterator<Item = LineitemRow>) -> Self {
        let iter = rows.into_iter();
        let mut table = Table::with_capacity(
            "LINEITEM",
            Schema::lineitem_projection(),
            iter.size_hint().0,
        );
        for row in iter {
            table
                .append_row(&[
                    Value::Int64(row.orderkey),
                    Value::Int64(row.extendedprice),
                    Value::Int32(row.discount),
                    Value::Int32(row.shipdate),
                ])
                .expect("lineitem projection row matches its schema");
        }
        table
    }

    /// Materialise the projected ORDERS table from generated rows.
    pub fn from_orders(rows: impl IntoIterator<Item = OrdersRow>) -> Self {
        let iter = rows.into_iter();
        let mut table =
            Table::with_capacity("ORDERS", Schema::orders_projection(), iter.size_hint().0);
        for row in iter {
            table
                .append_row(&[
                    Value::Int64(row.orderkey),
                    Value::Int32(row.orderdate),
                    Value::Int32(row.shippriority),
                    Value::Int64(row.custkey),
                ])
                .expect("orders projection row matches its schema");
        }
        table
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the table (used when deriving partitions or join outputs).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.row_count() == 0
    }

    /// Payload size of the table.
    pub fn byte_size(&self) -> Megabytes {
        Megabytes::from_bytes(self.columns.iter().map(Column::byte_size).sum())
    }

    /// The column at `index`.
    pub fn column(&self, index: usize) -> Option<&Column> {
        self.columns.get(index)
    }

    /// The column with the given name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column, StorageError> {
        let index = self
            .schema
            .index_of(name)
            .ok_or_else(|| StorageError::UnknownColumn {
                column: name.into(),
                table: self.name.clone(),
            })?;
        Ok(&self.columns[index])
    }

    /// Append one row given values in schema order.
    pub fn append_row(&mut self, values: &[Value]) -> Result<(), StorageError> {
        if values.len() != self.schema.len() {
            return Err(StorageError::schema(format!(
                "row has {} values but table {} has {} columns",
                values.len(),
                self.name,
                self.schema.len()
            )));
        }
        for (column, value) in self.columns.iter_mut().zip(values) {
            column.push(*value)?;
        }
        Ok(())
    }

    /// Copy the row at `index` of `source` into this table. The schemas must
    /// be identical.
    pub fn append_row_from(&mut self, source: &Table, index: usize) -> Result<(), StorageError> {
        if self.schema != source.schema {
            return Err(StorageError::schema(format!(
                "cannot copy rows from {} into {}: schemas differ",
                source.name, self.name
            )));
        }
        for (dest, src) in self.columns.iter_mut().zip(&source.columns) {
            dest.push_from(src, index)?;
        }
        Ok(())
    }

    /// Read a full row as a vector of values.
    pub fn row(&self, index: usize) -> Option<Vec<Value>> {
        if index >= self.row_count() {
            return None;
        }
        Some(
            self.columns
                .iter()
                .map(|c| c.get(index).expect("row index checked against row_count"))
                .collect(),
        )
    }

    /// A new table containing only the named columns (in the given order) of
    /// every row.
    pub fn project(&self, names: &[&str]) -> Result<Table, StorageError> {
        let schema = self.schema.project(names)?;
        let mut columns = Vec::with_capacity(names.len());
        for &name in names {
            let index = self
                .schema
                .index_of(name)
                .ok_or_else(|| StorageError::UnknownColumn {
                    column: name.into(),
                    table: self.name.clone(),
                })?;
            columns.push(self.columns[index].clone());
        }
        Ok(Table {
            name: format!("{}_proj", self.name),
            schema,
            columns,
        })
    }

    /// Concatenate another table with an identical schema onto this one.
    pub fn append_table(&mut self, other: &Table) -> Result<(), StorageError> {
        if self.schema != other.schema {
            return Err(StorageError::schema(format!(
                "cannot append {} to {}: schemas differ",
                other.name, self.name
            )));
        }
        for index in 0..other.row_count() {
            self.append_row_from(other, index)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eedc_tpch::gen::{LineitemGenerator, OrdersGenerator};
    use eedc_tpch::scale::ScaleFactor;

    fn small_orders() -> Table {
        Table::from_orders(OrdersGenerator::new(ScaleFactor(0.001), 1))
    }

    #[test]
    fn schema_round_trip() {
        let schema = Schema::lineitem_projection();
        assert_eq!(schema.len(), 4);
        assert_eq!(schema.row_bytes(), 8 + 8 + 4 + 4);
        assert_eq!(schema.index_of("L_SHIPDATE"), Some(3));
        assert_eq!(schema.type_of("L_ORDERKEY"), Some(ColumnType::Int64));
        assert_eq!(schema.type_of("NOPE"), None);
        let projected = schema.project(&["L_SHIPDATE", "L_ORDERKEY"]).unwrap();
        assert_eq!(projected.columns()[0].0, "L_SHIPDATE");
        assert!(schema.project(&["MISSING"]).is_err());
    }

    #[test]
    fn projected_tuples_are_20_bytes_plus_alignment() {
        // The paper stores 20-byte projected tuples; our typed layout uses 24
        // bytes per LINEITEM row (two i64 + two i32) which preserves the same
        // four-column shape. The byte_size accessor reflects the real layout.
        let schema = Schema::orders_projection();
        assert_eq!(schema.row_bytes(), 24);
    }

    #[test]
    fn append_and_read_rows() {
        let mut table = Table::empty(
            "T",
            Schema::new([("A", ColumnType::Int64), ("B", ColumnType::Int32)]),
        );
        table
            .append_row(&[Value::Int64(1), Value::Int32(10)])
            .unwrap();
        table
            .append_row(&[Value::Int64(2), Value::Int32(20)])
            .unwrap();
        assert_eq!(table.row_count(), 2);
        assert_eq!(table.row(1), Some(vec![Value::Int64(2), Value::Int32(20)]));
        assert_eq!(table.row(2), None);
        assert!(
            table.append_row(&[Value::Int64(3)]).is_err(),
            "wrong arity must fail"
        );
        assert!(
            table
                .append_row(&[Value::Int32(3), Value::Int32(1)])
                .is_err(),
            "wrong type must fail"
        );
    }

    #[test]
    fn from_generators_builds_projections() {
        let orders = small_orders();
        assert_eq!(orders.name(), "ORDERS");
        assert_eq!(orders.row_count(), 1500);
        assert_eq!(orders.schema(), &Schema::orders_projection());
        let lineitem = Table::from_lineitem(LineitemGenerator::new(ScaleFactor(0.001), 1));
        assert!(lineitem.row_count() > 4000 && lineitem.row_count() < 8000);
        assert!(lineitem.byte_size().value() > 0.0);
    }

    #[test]
    fn projection_copies_columns() {
        let orders = small_orders();
        let keys = orders.project(&["O_ORDERKEY"]).unwrap();
        assert_eq!(keys.row_count(), orders.row_count());
        assert_eq!(keys.schema().len(), 1);
        assert!(orders.project(&["O_NOPE"]).is_err());
    }

    #[test]
    fn append_table_requires_identical_schema() {
        let mut a = small_orders();
        let b = small_orders();
        let before = a.row_count();
        a.append_table(&b).unwrap();
        assert_eq!(a.row_count(), 2 * before);
        let lineitem = Table::from_lineitem(LineitemGenerator::new(ScaleFactor(0.001), 1));
        assert!(a.append_table(&lineitem).is_err());
    }

    #[test]
    fn column_lookup_by_name() {
        let orders = small_orders();
        assert!(orders.column_by_name("O_CUSTKEY").is_ok());
        assert!(orders.column_by_name("O_NOPE").is_err());
        assert!(orders.column(0).is_some());
        assert!(orders.column(9).is_none());
    }

    #[test]
    fn set_name_renames() {
        let mut orders = small_orders();
        orders.set_name("ORDERS_PART_3");
        assert_eq!(orders.name(), "ORDERS_PART_3");
    }
}
