//! Error types for the storage engine.

use std::fmt;

/// Errors produced by the storage engine.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// A column name was not found in a schema.
    UnknownColumn {
        /// The requested column name.
        column: String,
        /// The table whose schema was consulted.
        table: String,
    },
    /// A table name was not found in a catalog.
    UnknownTable {
        /// The requested table name.
        table: String,
    },
    /// A value or row did not match the schema (wrong arity or type).
    SchemaMismatch {
        /// Human-readable description.
        reason: String,
    },
    /// An operation received an invalid argument (e.g. zero partitions).
    InvalidArgument {
        /// Human-readable description.
        reason: String,
    },
}

impl StorageError {
    /// Convenience constructor for [`StorageError::SchemaMismatch`].
    pub fn schema(reason: impl Into<String>) -> Self {
        StorageError::SchemaMismatch {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`StorageError::InvalidArgument`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        StorageError::InvalidArgument {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownColumn { column, table } => {
                write!(f, "unknown column {column:?} in table {table:?}")
            }
            StorageError::UnknownTable { table } => write!(f, "unknown table {table:?}"),
            StorageError::SchemaMismatch { reason } => write!(f, "schema mismatch: {reason}"),
            StorageError::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::UnknownColumn {
            column: "L_FOO".into(),
            table: "LINEITEM".into(),
        };
        assert!(e.to_string().contains("L_FOO"));
        assert!(StorageError::UnknownTable {
            table: "NOPE".into()
        }
        .to_string()
        .contains("NOPE"));
        assert!(StorageError::schema("arity").to_string().contains("arity"));
        assert!(StorageError::invalid("zero").to_string().contains("zero"));
    }
}
