//! Reusable columnar output buffers for batch materialization.
//!
//! The execution kernel never materializes join output row-at-a-time.
//! Workers accumulate `(probe_row, build_row)` index pairs per morsel and
//! flush them with a per-column *gather* into the builders here: one typed
//! slice append per column per flush, no `Value` boxing, no per-row schema
//! checks. Builders are reusable — [`ColumnBuilder::take`] hands the built
//! column out while retaining the allocation for the next batch.

use crate::column::{Column, ColumnType, Value};
use crate::error::StorageError;
use crate::table::{Schema, Table};

/// A reusable, growable buffer for one output column.
#[derive(Debug, Clone)]
pub struct ColumnBuilder {
    column: Column,
}

impl ColumnBuilder {
    /// An empty builder for values of `column_type`.
    pub fn new(column_type: ColumnType) -> Self {
        Self {
            column: Column::empty(column_type),
        }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(column_type: ColumnType, capacity: usize) -> Self {
        Self {
            column: Column::with_capacity(column_type, capacity),
        }
    }

    /// The type of the column being built.
    pub fn column_type(&self) -> ColumnType {
        self.column.column_type()
    }

    /// Number of values accumulated so far.
    pub fn len(&self) -> usize {
        self.column.len()
    }

    /// Whether no values have been accumulated.
    pub fn is_empty(&self) -> bool {
        self.column.is_empty()
    }

    /// Append `source[i]` for every index in `indices` (per-column gather).
    /// Indices must be in bounds of `source`.
    pub fn gather(&mut self, source: &Column, indices: &[u32]) -> Result<(), StorageError> {
        self.column.gather_from(source, indices)
    }

    /// Append a single value (type-checked; the gather path is the hot one).
    pub fn push(&mut self, value: Value) -> Result<(), StorageError> {
        self.column.push(value)
    }

    /// Take the built column out, leaving an empty builder of the same type
    /// behind so the allocation pattern restarts cleanly.
    pub fn take(&mut self) -> Column {
        let ty = self.column.column_type();
        std::mem::replace(&mut self.column, Column::empty(ty))
    }

    /// Borrow the column built so far.
    pub fn as_column(&self) -> &Column {
        &self.column
    }
}

/// A reusable builder for whole output batches: one [`ColumnBuilder`] per
/// schema column, filled by gathering from source tables.
///
/// A hash-join worker builds its fragment by gathering the probe table's
/// columns at the matched probe rows into builders `0..probe_cols` and the
/// build table's columns at the matched build rows into the rest:
///
/// ```
/// use eedc_storage::{BatchBuilder, ColumnType, Schema, Table, Value};
/// let mut probe = Table::empty("P", Schema::new([("K", ColumnType::Int64)]));
/// probe.append_row(&[Value::Int64(7)]).unwrap();
/// let mut build = Table::empty("B", Schema::new([("V", ColumnType::Int32)]));
/// build.append_row(&[Value::Int32(70)]).unwrap();
///
/// let schema = Schema::new([("K", ColumnType::Int64), ("V", ColumnType::Int32)]);
/// let mut batch = BatchBuilder::new(schema);
/// batch.gather_table(&probe, &[0], 0).unwrap();
/// batch.gather_table(&build, &[0], 1).unwrap();
/// let fragment = batch.finish("F").unwrap();
/// assert_eq!(fragment.row_count(), 1);
/// assert_eq!(fragment.row(0), Some(vec![Value::Int64(7), Value::Int32(70)]));
/// ```
#[derive(Debug, Clone)]
pub struct BatchBuilder {
    schema: Schema,
    builders: Vec<ColumnBuilder>,
}

impl BatchBuilder {
    /// An empty batch for `schema`.
    pub fn new(schema: Schema) -> Self {
        Self::with_capacity(schema, 0)
    }

    /// An empty batch with reserved row capacity.
    pub fn with_capacity(schema: Schema, rows: usize) -> Self {
        let builders = schema
            .columns()
            .iter()
            .map(|(_, ty)| ColumnBuilder::with_capacity(*ty, rows))
            .collect();
        Self { schema, builders }
    }

    /// The schema being built.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Rows accumulated so far (of the first column; the columns only agree
    /// once a full row's worth of gathers has been applied).
    pub fn rows(&self) -> usize {
        self.builders.first().map_or(0, ColumnBuilder::len)
    }

    /// Whether no rows have been accumulated.
    pub fn is_empty(&self) -> bool {
        self.rows() == 0
    }

    /// Gather every column of `source` at `indices` into the builders
    /// starting at schema position `at_column`.
    pub fn gather_table(
        &mut self,
        source: &Table,
        indices: &[u32],
        at_column: usize,
    ) -> Result<(), StorageError> {
        let width = source.schema().len();
        if at_column + width > self.builders.len() {
            return Err(StorageError::schema(format!(
                "gather of {width} columns at offset {at_column} overflows a {}-column batch",
                self.builders.len()
            )));
        }
        for (offset, builder) in self.builders[at_column..at_column + width]
            .iter_mut()
            .enumerate()
        {
            let column = source
                .column(offset)
                .expect("source column index within schema width");
            builder.gather(column, indices)?;
        }
        Ok(())
    }

    /// Finish the batch into a table, leaving empty builders behind (the
    /// allocations of the taken columns move into the table).
    pub fn finish(&mut self, name: impl Into<String>) -> Result<Table, StorageError> {
        let columns = self.builders.iter_mut().map(ColumnBuilder::take).collect();
        Table::from_columns(name, self.schema.clone(), columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_builder_round_trip_retains_type() {
        let mut builder = ColumnBuilder::with_capacity(ColumnType::Int64, 4);
        assert!(builder.is_empty());
        builder.push(Value::Int64(1)).unwrap();
        builder
            .gather(&Column::Int64(vec![10, 20, 30]), &[2, 0])
            .unwrap();
        assert_eq!(builder.len(), 3);
        assert_eq!(
            builder.as_column().as_i64_slice(),
            Some(&[1i64, 30, 10][..])
        );
        let column = builder.take();
        assert_eq!(column.len(), 3);
        assert!(builder.is_empty());
        assert_eq!(builder.column_type(), ColumnType::Int64);
        // The emptied builder is immediately reusable.
        builder.push(Value::Int64(9)).unwrap();
        assert_eq!(builder.len(), 1);
        // Type mismatches are schema errors.
        assert!(builder.push(Value::Int32(1)).is_err());
        assert!(builder.gather(&Column::Float64(vec![1.0]), &[0]).is_err());
    }

    #[test]
    fn batch_builder_gathers_two_sides_into_one_schema() {
        let probe = Table::from_columns(
            "P",
            Schema::new([("K", ColumnType::Int64), ("X", ColumnType::Int32)]),
            vec![
                Column::Int64(vec![1, 2, 3]),
                Column::Int32(vec![10, 20, 30]),
            ],
        )
        .unwrap();
        let build = Table::from_columns(
            "B",
            Schema::new([("V", ColumnType::Float64)]),
            vec![Column::Float64(vec![0.5, 1.5])],
        )
        .unwrap();
        let schema = Schema::new([
            ("K", ColumnType::Int64),
            ("X", ColumnType::Int32),
            ("V", ColumnType::Float64),
        ]);
        let mut batch = BatchBuilder::with_capacity(schema, 4);
        batch.gather_table(&probe, &[2, 0], 0).unwrap();
        batch.gather_table(&build, &[1, 1], 2).unwrap();
        assert_eq!(batch.rows(), 2);
        let fragment = batch.finish("F").unwrap();
        assert_eq!(fragment.row_count(), 2);
        assert_eq!(
            fragment.row(0),
            Some(vec![Value::Int64(3), Value::Int32(30), Value::Float64(1.5)])
        );
        // The builder is reusable after finish.
        assert!(batch.is_empty());
        batch.gather_table(&probe, &[1], 0).unwrap();
        batch.gather_table(&build, &[0], 2).unwrap();
        assert_eq!(batch.finish("F2").unwrap().row_count(), 1);
        // Column overflow is an error.
        assert!(batch.gather_table(&probe, &[0], 2).is_err());
    }
}
