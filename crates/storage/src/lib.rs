//! # eedc-storage
//!
//! A small in-memory columnar storage engine: the substrate underneath the
//! P-store parallel execution kernel.
//!
//! The paper describes P-store as being "built on top of a block-iterator
//! tuple-scan module and a storage engine … that has scan, project, and
//! select operators" (Section 4.2), with the experiment data stored as
//! four-column, 20-byte projected tuples in memory to simulate a columnar
//! storage manager. This crate reproduces that substrate:
//!
//! * typed [`column::Column`]s and schema-carrying [`table::Table`]s,
//! * a [`block`] iterator that hands out fixed-size row ranges so operators
//!   never materialise whole tables,
//! * [`predicate`]s (comparison, conjunction, disjunction) for selection,
//! * [`partition`]ing: hash partitioning and replication of tables across
//!   cluster nodes, exactly like Vertica's hash segmentation in Section 3.1,
//! * per-node and cluster-wide [`catalog`]s mapping table names to partitions,
//! * a [`scan()`] operator combining block iteration, predicate evaluation and
//!   column projection, and reporting the scanned/qualifying volumes that the
//!   energy model needs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod block;
pub mod catalog;
pub mod column;
pub mod error;
pub mod partition;
pub mod predicate;
pub mod scan;
pub mod table;

pub use batch::{BatchBuilder, ColumnBuilder};
pub use block::{Block, BlockIter, DEFAULT_BLOCK_ROWS};
pub use catalog::{ClusterCatalog, NodeCatalog};
pub use column::{Column, ColumnType, Value};
pub use error::StorageError;
pub use partition::{
    hash_i64, hash_of_value, hash_partition, replicate, round_robin_partition, PartitionSpec,
    Partitioned,
};
pub use predicate::{CmpOp, Predicate};
pub use scan::{scan, ScanResult};
pub use table::{Schema, Table};
