//! Typed columns and scalar values.

use crate::error::StorageError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The scalar types the engine stores. The paper's projected tuples only need
/// integers (keys, dates, priorities, prices-in-cents) and the occasional
/// float.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit signed integer (keys, prices in cents).
    Int64,
    /// 32-bit signed integer (dates as day offsets, small codes).
    Int32,
    /// 64-bit float (aggregation results).
    Float64,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnType::Int64 => write!(f, "INT64"),
            ColumnType::Int32 => write!(f, "INT32"),
            ColumnType::Float64 => write!(f, "FLOAT64"),
        }
    }
}

impl ColumnType {
    /// Storage width of one value of this type in bytes.
    pub fn width_bytes(self) -> u32 {
        match self {
            ColumnType::Int64 | ColumnType::Float64 => 8,
            ColumnType::Int32 => 4,
        }
    }
}

/// A single scalar value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int64(i64),
    /// 32-bit signed integer.
    Int32(i32),
    /// 64-bit float.
    Float64(f64),
}

impl Value {
    /// The type of this value.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Value::Int64(_) => ColumnType::Int64,
            Value::Int32(_) => ColumnType::Int32,
            Value::Float64(_) => ColumnType::Float64,
        }
    }

    /// Interpret the value as a float (for aggregation).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Value::Int64(v) => v as f64,
            Value::Int32(v) => f64::from(v),
            Value::Float64(v) => v,
        }
    }

    /// Interpret the value as an i64 if it is an integer type.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int64(v) => Some(v),
            Value::Int32(v) => Some(i64::from(v)),
            Value::Float64(_) => None,
        }
    }

    /// Total order over values of the *same* type; comparing across numeric
    /// types falls back to the f64 interpretation.
    pub fn compare(&self, other: &Value) -> std::cmp::Ordering {
        match (self, other) {
            (Value::Int64(a), Value::Int64(b)) => a.cmp(b),
            (Value::Int32(a), Value::Int32(b)) => a.cmp(b),
            _ => self.as_f64().total_cmp(&other.as_f64()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int64(v) => write!(f, "{v}"),
            Value::Int32(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
        }
    }
}

/// A typed column of values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// 64-bit integer column.
    Int64(Vec<i64>),
    /// 32-bit integer column.
    Int32(Vec<i32>),
    /// 64-bit float column.
    Float64(Vec<f64>),
}

impl Column {
    /// An empty column of the given type.
    pub fn empty(column_type: ColumnType) -> Self {
        match column_type {
            ColumnType::Int64 => Column::Int64(Vec::new()),
            ColumnType::Int32 => Column::Int32(Vec::new()),
            ColumnType::Float64 => Column::Float64(Vec::new()),
        }
    }

    /// An empty column with reserved capacity.
    pub fn with_capacity(column_type: ColumnType, capacity: usize) -> Self {
        match column_type {
            ColumnType::Int64 => Column::Int64(Vec::with_capacity(capacity)),
            ColumnType::Int32 => Column::Int32(Vec::with_capacity(capacity)),
            ColumnType::Float64 => Column::Float64(Vec::with_capacity(capacity)),
        }
    }

    /// The column's type.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Column::Int64(_) => ColumnType::Int64,
            Column::Int32(_) => ColumnType::Int32,
            Column::Float64(_) => ColumnType::Float64,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64(v) => v.len(),
            Column::Int32(v) => v.len(),
            Column::Float64(v) => v.len(),
        }
    }

    /// Whether the column has no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `index`, if in bounds.
    pub fn get(&self, index: usize) -> Option<Value> {
        match self {
            Column::Int64(v) => v.get(index).copied().map(Value::Int64),
            Column::Int32(v) => v.get(index).copied().map(Value::Int32),
            Column::Float64(v) => v.get(index).copied().map(Value::Float64),
        }
    }

    /// Append a value; errors if the value's type does not match the column.
    pub fn push(&mut self, value: Value) -> Result<(), StorageError> {
        match (self, value) {
            (Column::Int64(v), Value::Int64(x)) => v.push(x),
            (Column::Int32(v), Value::Int32(x)) => v.push(x),
            (Column::Float64(v), Value::Float64(x)) => v.push(x),
            (col, value) => {
                return Err(StorageError::schema(format!(
                    "cannot push {:?} value into {} column",
                    value.column_type(),
                    col.column_type()
                )))
            }
        }
        Ok(())
    }

    /// Append a value without checking its type against the column.
    ///
    /// The batched kernel append path: the caller has already validated the
    /// schema once for the whole batch, so per-value re-validation is a
    /// `debug_assert!`. In release builds a mismatched value is silently
    /// dropped (the caller's contract is that this never happens).
    #[inline]
    pub fn push_unchecked(&mut self, value: Value) {
        match (self, value) {
            (Column::Int64(v), Value::Int64(x)) => v.push(x),
            (Column::Int32(v), Value::Int32(x)) => v.push(x),
            (Column::Float64(v), Value::Float64(x)) => v.push(x),
            (col, value) => debug_assert!(
                false,
                "push_unchecked: {:?} value into {} column",
                value.column_type(),
                col.column_type()
            ),
        }
    }

    /// Append the value at `index` of `source` (which must have the same
    /// type).
    pub fn push_from(&mut self, source: &Column, index: usize) -> Result<(), StorageError> {
        let value = source
            .get(index)
            .ok_or_else(|| StorageError::invalid(format!("row index {index} out of bounds")))?;
        self.push(value)
    }

    /// Reserve capacity for at least `additional` more values.
    pub fn reserve(&mut self, additional: usize) {
        match self {
            Column::Int64(v) => v.reserve(additional),
            Column::Int32(v) => v.reserve(additional),
            Column::Float64(v) => v.reserve(additional),
        }
    }

    /// Append the whole of `source` onto this column in one slice copy —
    /// the column-wise building block of [`crate::Table::append_table`].
    pub fn extend_from(&mut self, source: &Column) -> Result<(), StorageError> {
        match (self, source) {
            (Column::Int64(dst), Column::Int64(src)) => dst.extend_from_slice(src),
            (Column::Int32(dst), Column::Int32(src)) => dst.extend_from_slice(src),
            (Column::Float64(dst), Column::Float64(src)) => dst.extend_from_slice(src),
            (dst, src) => {
                return Err(StorageError::schema(format!(
                    "cannot extend {} column from {} column",
                    dst.column_type(),
                    src.column_type()
                )))
            }
        }
        Ok(())
    }

    /// Append `source[i]` for every index in `indices`, in order — the
    /// per-column gather underneath batch materialization. Indices must be
    /// in bounds of `source` (panics otherwise, like slice indexing).
    pub fn gather_from(&mut self, source: &Column, indices: &[u32]) -> Result<(), StorageError> {
        match (self, source) {
            (Column::Int64(dst), Column::Int64(src)) => {
                dst.extend(indices.iter().map(|&i| src[i as usize]));
            }
            (Column::Int32(dst), Column::Int32(src)) => {
                dst.extend(indices.iter().map(|&i| src[i as usize]));
            }
            (Column::Float64(dst), Column::Float64(src)) => {
                dst.extend(indices.iter().map(|&i| src[i as usize]));
            }
            (dst, src) => {
                return Err(StorageError::schema(format!(
                    "cannot gather {} column into {} column",
                    src.column_type(),
                    dst.column_type()
                )))
            }
        }
        Ok(())
    }

    /// A new column holding `self[i]` for every index in `indices`, in
    /// order. Indices must be in bounds (panics otherwise).
    pub fn gathered(&self, indices: &[u32]) -> Column {
        match self {
            Column::Int64(v) => Column::Int64(indices.iter().map(|&i| v[i as usize]).collect()),
            Column::Int32(v) => Column::Int32(indices.iter().map(|&i| v[i as usize]).collect()),
            Column::Float64(v) => Column::Float64(indices.iter().map(|&i| v[i as usize]).collect()),
        }
    }

    /// Bytes of payload stored in the column.
    pub fn byte_size(&self) -> u64 {
        self.len() as u64 * u64::from(self.column_type().width_bytes())
    }

    /// Borrow as an i64 slice (only for `Int64` columns).
    pub fn as_i64_slice(&self) -> Option<&[i64]> {
        match self {
            Column::Int64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as an i32 slice (only for `Int32` columns).
    pub fn as_i32_slice(&self) -> Option<&[i32]> {
        match self {
            Column::Int32(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as an f64 slice (only for `Float64` columns).
    pub fn as_f64_slice(&self) -> Option<&[f64]> {
        match self {
            Column::Float64(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip() {
        let mut col = Column::empty(ColumnType::Int64);
        col.push(Value::Int64(42)).unwrap();
        col.push(Value::Int64(-7)).unwrap();
        assert_eq!(col.len(), 2);
        assert_eq!(col.get(0), Some(Value::Int64(42)));
        assert_eq!(col.get(1), Some(Value::Int64(-7)));
        assert_eq!(col.get(2), None);
        assert_eq!(col.byte_size(), 16);
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let mut col = Column::empty(ColumnType::Int32);
        assert!(col.push(Value::Int64(1)).is_err());
        assert!(col.push(Value::Float64(1.0)).is_err());
        assert!(col.push(Value::Int32(1)).is_ok());
    }

    #[test]
    fn push_from_copies_values() {
        let mut source = Column::empty(ColumnType::Float64);
        source.push(Value::Float64(3.25)).unwrap();
        let mut dest = Column::with_capacity(ColumnType::Float64, 4);
        dest.push_from(&source, 0).unwrap();
        assert_eq!(dest.get(0), Some(Value::Float64(3.25)));
        assert!(dest.push_from(&source, 5).is_err());
    }

    #[test]
    fn value_conversions_and_comparison() {
        assert_eq!(Value::Int32(7).as_f64(), 7.0);
        assert_eq!(Value::Int64(7).as_i64(), Some(7));
        assert_eq!(Value::Int32(7).as_i64(), Some(7));
        assert_eq!(Value::Float64(7.5).as_i64(), None);
        assert_eq!(
            Value::Int64(3).compare(&Value::Int64(5)),
            std::cmp::Ordering::Less
        );
        assert_eq!(
            Value::Int32(5).compare(&Value::Int32(5)),
            std::cmp::Ordering::Equal
        );
        assert_eq!(
            Value::Float64(9.0).compare(&Value::Int64(5)),
            std::cmp::Ordering::Greater
        );
    }

    #[test]
    fn widths_and_display() {
        assert_eq!(ColumnType::Int64.width_bytes(), 8);
        assert_eq!(ColumnType::Int32.width_bytes(), 4);
        assert_eq!(ColumnType::Float64.width_bytes(), 8);
        assert_eq!(ColumnType::Int32.to_string(), "INT32");
        assert_eq!(Value::Int64(9).to_string(), "9");
    }

    #[test]
    fn extend_from_appends_column_wise() {
        let mut dst = Column::Int64(vec![1, 2]);
        dst.extend_from(&Column::Int64(vec![3, 4])).unwrap();
        assert_eq!(dst.as_i64_slice(), Some(&[1i64, 2, 3, 4][..]));
        assert!(dst.extend_from(&Column::Int32(vec![5])).is_err());
        assert!(dst.extend_from(&Column::Float64(vec![5.0])).is_err());
    }

    #[test]
    fn gather_selects_in_index_order() {
        let source = Column::Int32(vec![10, 20, 30, 40]);
        let gathered = source.gathered(&[3, 0, 0, 2]);
        assert_eq!(gathered.as_i32_slice(), Some(&[40i32, 10, 10, 30][..]));
        let mut dst = Column::Int32(vec![5]);
        dst.gather_from(&source, &[1, 1]).unwrap();
        assert_eq!(dst.as_i32_slice(), Some(&[5i32, 20, 20][..]));
        assert!(dst.gather_from(&Column::Int64(vec![1]), &[0]).is_err());
        assert!(source.gathered(&[]).is_empty());
    }

    #[test]
    fn unchecked_push_appends_matching_values() {
        let mut col = Column::with_capacity(ColumnType::Float64, 2);
        col.reserve(2);
        col.push_unchecked(Value::Float64(1.5));
        col.push_unchecked(Value::Float64(2.5));
        assert_eq!(col.as_f64_slice(), Some(&[1.5, 2.5][..]));
    }

    #[test]
    #[should_panic(expected = "push_unchecked")]
    #[cfg(debug_assertions)]
    fn unchecked_push_type_mismatch_is_debug_asserted() {
        let mut col = Column::empty(ColumnType::Int64);
        col.push_unchecked(Value::Int32(1));
    }

    #[test]
    fn slice_accessors() {
        let col = Column::Int64(vec![1, 2, 3]);
        assert_eq!(col.as_i64_slice(), Some(&[1i64, 2, 3][..]));
        assert!(col.as_i32_slice().is_none());
        assert!(col.as_f64_slice().is_none());
        assert!(!col.is_empty());
        assert!(Column::empty(ColumnType::Float64).is_empty());
    }
}
