//! The scan / select / project operator.
//!
//! The scan operator is the leaf of every P-store plan: it walks a table in
//! blocks, applies a selection predicate, projects the requested columns, and
//! reports how many bytes it touched versus how many qualified — the two
//! quantities the energy model cares about (scanned bytes drive the disk /
//! CPU phase, qualifying bytes drive the network phase).

use crate::block::{BlockIter, DEFAULT_BLOCK_ROWS};
use crate::error::StorageError;
use crate::predicate::Predicate;
use crate::table::Table;
use eedc_simkit::units::Megabytes;
use serde::{Deserialize, Serialize};

/// Statistics and output of one scan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanResult {
    /// The qualifying, projected rows.
    pub output: Table,
    /// Rows examined.
    pub rows_scanned: usize,
    /// Rows that passed the predicate.
    pub rows_passed: usize,
    /// Payload volume examined (full input rows).
    pub bytes_scanned: Megabytes,
    /// Payload volume of the qualifying, projected output.
    pub bytes_passed: Megabytes,
}

impl ScanResult {
    /// Observed selectivity of the scan (1.0 for an empty input).
    pub fn selectivity(&self) -> f64 {
        if self.rows_scanned == 0 {
            1.0
        } else {
            self.rows_passed as f64 / self.rows_scanned as f64
        }
    }
}

/// Scan `table`, keep rows satisfying `predicate`, and project `projection`
/// (or all columns if `projection` is `None`).
pub fn scan(
    table: &Table,
    predicate: &Predicate,
    projection: Option<&[&str]>,
) -> Result<ScanResult, StorageError> {
    scan_with_block_rows(table, predicate, projection, DEFAULT_BLOCK_ROWS)
}

/// [`scan`] with an explicit block size (exposed for benchmarking the block
/// iterator itself).
pub fn scan_with_block_rows(
    table: &Table,
    predicate: &Predicate,
    projection: Option<&[&str]>,
    block_rows: usize,
) -> Result<ScanResult, StorageError> {
    let output_schema = match projection {
        Some(names) => table.schema().project(names)?,
        None => table.schema().clone(),
    };
    // Validate predicate columns eagerly so errors are not order-dependent.
    for column in predicate.referenced_columns() {
        if table.schema().index_of(column).is_none() {
            return Err(StorageError::UnknownColumn {
                column: column.into(),
                table: table.name().to_string(),
            });
        }
    }

    let projected_source = match projection {
        Some(names) => Some(table.project(names)?),
        None => None,
    };
    let source_for_output: &Table = projected_source.as_ref().unwrap_or(table);

    // Collect qualifying row indices, then materialise the output with one
    // per-column gather instead of a row-at-a-time append.
    let mut passing: Vec<u32> = Vec::new();
    for block in BlockIter::with_block_rows(table, block_rows) {
        for row in block.row_indices() {
            if predicate.matches_row(table, row)? {
                passing.push(row as u32);
            }
        }
    }
    let rows_passed = passing.len();
    let output = source_for_output.gather_rows(format!("{}_scan", table.name()), &passing);
    debug_assert_eq!(output.schema(), &output_schema);

    let rows_scanned = table.row_count();
    Ok(ScanResult {
        bytes_scanned: table.byte_size(),
        bytes_passed: output.byte_size(),
        output,
        rows_scanned,
        rows_passed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Value;
    use crate::predicate::CmpOp;
    use eedc_tpch::gen::{date_cutoff_for_selectivity, LineitemGenerator, OrdersGenerator};
    use eedc_tpch::scale::ScaleFactor;

    const SCALE: ScaleFactor = ScaleFactor(0.002);

    #[test]
    fn scan_with_true_predicate_returns_everything() {
        let orders = Table::from_orders(OrdersGenerator::new(SCALE, 1));
        let result = scan(&orders, &Predicate::True, None).unwrap();
        assert_eq!(result.rows_scanned, orders.row_count());
        assert_eq!(result.rows_passed, orders.row_count());
        assert_eq!(result.output.row_count(), orders.row_count());
        assert_eq!(result.selectivity(), 1.0);
        assert_eq!(result.bytes_scanned, orders.byte_size());
        assert_eq!(result.bytes_passed, orders.byte_size());
    }

    #[test]
    fn selective_scan_filters_rows() {
        let lineitem = Table::from_lineitem(LineitemGenerator::new(SCALE, 2));
        let cutoff = date_cutoff_for_selectivity(0.05);
        let predicate = Predicate::lineitem_shipdate_below(cutoff);
        let result = scan(&lineitem, &predicate, None).unwrap();
        assert!(result.rows_passed < result.rows_scanned / 10);
        assert!((result.selectivity() - 0.05).abs() < 0.02);
        // Every surviving row satisfies the predicate.
        let shipdates = result.output.column_by_name("L_SHIPDATE").unwrap();
        for i in 0..result.output.row_count() {
            match shipdates.get(i).unwrap() {
                Value::Int32(d) => assert!(d < cutoff),
                other => panic!("unexpected value {other:?}"),
            }
        }
    }

    #[test]
    fn projection_narrows_the_output() {
        let orders = Table::from_orders(OrdersGenerator::new(SCALE, 3));
        let result = scan(
            &orders,
            &Predicate::compare("O_SHIPPRIORITY", CmpOp::Eq, Value::Int32(0)),
            Some(&["O_ORDERKEY"]),
        )
        .unwrap();
        assert_eq!(result.output.schema().len(), 1);
        assert!(result.bytes_passed.value() < result.bytes_scanned.value());
        assert!(result.rows_passed > 0);
    }

    #[test]
    fn block_size_does_not_change_the_result() {
        let orders = Table::from_orders(OrdersGenerator::new(SCALE, 4));
        let predicate = Predicate::orders_custkey_at_most(50);
        let a = scan_with_block_rows(&orders, &predicate, None, 7).unwrap();
        let b = scan_with_block_rows(&orders, &predicate, None, 100_000).unwrap();
        assert_eq!(a.rows_passed, b.rows_passed);
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn unknown_columns_are_errors() {
        let orders = Table::from_orders(OrdersGenerator::new(SCALE, 5));
        assert!(scan(&orders, &Predicate::True, Some(&["O_NOPE"])).is_err());
        let bad_predicate = Predicate::compare("O_NOPE", CmpOp::Eq, Value::Int64(1));
        assert!(scan(&orders, &bad_predicate, None).is_err());
    }

    #[test]
    fn empty_input_scans_cleanly() {
        let empty = Table::empty("E", crate::table::Schema::orders_projection());
        let result = scan(&empty, &Predicate::orders_custkey_at_most(10), None).unwrap();
        assert_eq!(result.rows_scanned, 0);
        assert_eq!(result.rows_passed, 0);
        assert_eq!(result.selectivity(), 1.0);
    }
}
