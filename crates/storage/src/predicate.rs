//! Selection predicates.
//!
//! The paper's experiments dial predicate selectivity between 1% and 100% on
//! the LINEITEM and ORDERS tables (e.g. "we apply a 5% selectivity predicate
//! on both the tables using a predicate on the O_CUSTKEY attribute for ORDERS
//! and a predicate on the L_SHIPDATE attribute for LINEITEM"). Predicates are
//! simple column-versus-constant comparisons plus conjunction / disjunction;
//! they evaluate over whole tables or individual rows.

use crate::column::Value;
use crate::error::StorageError;
use crate::table::Table;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `<>`
    Ne,
}

impl CmpOp {
    fn matches(self, ordering: Ordering) -> bool {
        match self {
            CmpOp::Lt => ordering == Ordering::Less,
            CmpOp::Le => ordering != Ordering::Greater,
            CmpOp::Gt => ordering == Ordering::Greater,
            CmpOp::Ge => ordering != Ordering::Less,
            CmpOp::Eq => ordering == Ordering::Equal,
            CmpOp::Ne => ordering != Ordering::Equal,
        }
    }
}

/// A selection predicate over one table's rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Accept every row.
    True,
    /// Compare a named column against a constant.
    Compare {
        /// Column name.
        column: String,
        /// Comparison operator.
        op: CmpOp,
        /// Constant to compare against.
        value: Value,
    },
    /// Both sub-predicates must hold.
    And(Box<Predicate>, Box<Predicate>),
    /// At least one sub-predicate must hold.
    Or(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    /// A column-versus-constant comparison.
    pub fn compare(column: impl Into<String>, op: CmpOp, value: Value) -> Self {
        Predicate::Compare {
            column: column.into(),
            op,
            value,
        }
    }

    /// Conjunction of two predicates.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction of two predicates.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// The paper's LINEITEM ship-date predicate with the given cutoff (rows
    /// whose `L_SHIPDATE` is strictly below the cutoff qualify).
    pub fn lineitem_shipdate_below(cutoff: i32) -> Self {
        Predicate::compare("L_SHIPDATE", CmpOp::Lt, Value::Int32(cutoff))
    }

    /// The paper's ORDERS customer-key predicate with the given cutoff (rows
    /// whose `O_CUSTKEY` is at most the cutoff qualify).
    pub fn orders_custkey_at_most(cutoff: i64) -> Self {
        Predicate::compare("O_CUSTKEY", CmpOp::Le, Value::Int64(cutoff))
    }

    /// Evaluate the predicate for one row of `table`.
    pub fn matches_row(&self, table: &Table, row: usize) -> Result<bool, StorageError> {
        match self {
            Predicate::True => Ok(true),
            Predicate::Compare { column, op, value } => {
                let col = table.column_by_name(column)?;
                let cell = col.get(row).ok_or_else(|| {
                    StorageError::invalid(format!("row {row} out of bounds in {}", table.name()))
                })?;
                Ok(op.matches(cell.compare(value)))
            }
            Predicate::And(a, b) => Ok(a.matches_row(table, row)? && b.matches_row(table, row)?),
            Predicate::Or(a, b) => Ok(a.matches_row(table, row)? || b.matches_row(table, row)?),
        }
    }

    /// Evaluate the predicate over every row of `table`, returning a
    /// selection bitmap.
    pub fn evaluate(&self, table: &Table) -> Result<Vec<bool>, StorageError> {
        let rows = table.row_count();
        let mut selection = Vec::with_capacity(rows);
        for row in 0..rows {
            selection.push(self.matches_row(table, row)?);
        }
        Ok(selection)
    }

    /// Observed selectivity of the predicate over a table (qualifying rows /
    /// total rows); 1.0 for an empty table.
    pub fn selectivity(&self, table: &Table) -> Result<f64, StorageError> {
        let rows = table.row_count();
        if rows == 0 {
            return Ok(1.0);
        }
        let selection = self.evaluate(table)?;
        let hits = selection.iter().filter(|&&b| b).count();
        Ok(hits as f64 / rows as f64)
    }

    /// Every column name referenced by the predicate.
    pub fn referenced_columns(&self) -> Vec<&str> {
        match self {
            Predicate::True => Vec::new(),
            Predicate::Compare { column, .. } => vec![column.as_str()],
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                let mut cols = a.referenced_columns();
                cols.extend(b.referenced_columns());
                cols
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use eedc_tpch::gen::{
        custkey_cutoff_for_selectivity, date_cutoff_for_selectivity, LineitemGenerator,
        OrdersGenerator,
    };
    use eedc_tpch::scale::ScaleFactor;

    const SCALE: ScaleFactor = ScaleFactor(0.002);

    #[test]
    fn comparison_operators() {
        let orders = Table::from_orders(OrdersGenerator::new(SCALE, 1));
        let eq = Predicate::compare("O_ORDERKEY", CmpOp::Eq, Value::Int64(1));
        assert_eq!(
            eq.evaluate(&orders).unwrap().iter().filter(|&&b| b).count(),
            1
        );
        let ne = Predicate::compare("O_ORDERKEY", CmpOp::Ne, Value::Int64(1));
        assert_eq!(
            ne.evaluate(&orders).unwrap().iter().filter(|&&b| b).count(),
            orders.row_count() - 1
        );
        let ge = Predicate::compare("O_ORDERKEY", CmpOp::Ge, Value::Int64(1));
        assert!((ge.selectivity(&orders).unwrap() - 1.0).abs() < 1e-12);
        let gt_all = Predicate::compare(
            "O_ORDERKEY",
            CmpOp::Gt,
            Value::Int64(orders.row_count() as i64),
        );
        assert_eq!(gt_all.selectivity(&orders).unwrap(), 0.0);
        let le = Predicate::compare("O_ORDERKEY", CmpOp::Le, Value::Int64(10));
        let lt = Predicate::compare("O_ORDERKEY", CmpOp::Lt, Value::Int64(10));
        assert_eq!(
            le.evaluate(&orders).unwrap().iter().filter(|&&b| b).count(),
            10
        );
        assert_eq!(
            lt.evaluate(&orders).unwrap().iter().filter(|&&b| b).count(),
            9
        );
    }

    #[test]
    fn paper_predicates_hit_their_target_selectivity() {
        let lineitem = Table::from_lineitem(LineitemGenerator::new(SCALE, 2));
        let orders = Table::from_orders(OrdersGenerator::new(SCALE, 2));
        for target in [0.01, 0.05, 0.10, 0.50] {
            let p = Predicate::lineitem_shipdate_below(date_cutoff_for_selectivity(target));
            let observed = p.selectivity(&lineitem).unwrap();
            assert!(
                (observed - target).abs() < 0.02,
                "lineitem target {target} observed {observed}"
            );
            let p =
                Predicate::orders_custkey_at_most(custkey_cutoff_for_selectivity(SCALE, target));
            let observed = p.selectivity(&orders).unwrap();
            assert!(
                (observed - target).abs() < 0.03,
                "orders target {target} observed {observed}"
            );
        }
    }

    #[test]
    fn conjunction_and_disjunction() {
        let orders = Table::from_orders(OrdersGenerator::new(SCALE, 3));
        let a = Predicate::compare("O_ORDERKEY", CmpOp::Le, Value::Int64(100));
        let b = Predicate::compare("O_ORDERKEY", CmpOp::Gt, Value::Int64(50));
        let and = a.clone().and(b.clone());
        let or = a.clone().or(b.clone());
        let count = |p: &Predicate| p.evaluate(&orders).unwrap().iter().filter(|&&x| x).count();
        assert_eq!(count(&and), 50);
        assert_eq!(count(&or), orders.row_count());
        assert_eq!(count(&Predicate::True), orders.row_count());
        let cols = and.referenced_columns();
        assert_eq!(cols, vec!["O_ORDERKEY", "O_ORDERKEY"]);
        assert!(Predicate::True.referenced_columns().is_empty());
    }

    #[test]
    fn unknown_columns_are_errors() {
        let orders = Table::from_orders(OrdersGenerator::new(SCALE, 4));
        let p = Predicate::compare("O_NOPE", CmpOp::Eq, Value::Int64(1));
        assert!(p.evaluate(&orders).is_err());
        assert!(p.matches_row(&orders, 0).is_err());
    }

    #[test]
    fn empty_table_has_unit_selectivity() {
        let empty = Table::empty("E", crate::table::Schema::orders_projection());
        let p = Predicate::orders_custkey_at_most(10);
        assert_eq!(p.selectivity(&empty).unwrap(), 1.0);
    }
}
