//! Table partitioning across cluster nodes.
//!
//! The paper's clusters place data exactly two ways (Section 3.1): large
//! tables are *hash partitioned* ("hash segmentation") on a chosen attribute,
//! and small tables are *replicated* on every node. Whether a join's inputs
//! are hash partitioned on the join key decides whether the join is
//! partition-compatible (no network traffic) or requires a shuffle /
//! broadcast — the central distinction of the whole study.

use crate::column::Value;
use crate::error::StorageError;
use crate::table::Table;
use serde::{Deserialize, Serialize};

/// How a table is laid out across the nodes of a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PartitionSpec {
    /// Hash partition on a column: row goes to `hash(value) % nodes`.
    Hash {
        /// The partitioning column.
        column: String,
    },
    /// Full copy of the table on every node.
    Replicated,
    /// Round-robin placement (used for tables scanned without joins).
    RoundRobin,
}

impl PartitionSpec {
    /// Hash partitioning on the given column.
    pub fn hash(column: impl Into<String>) -> Self {
        PartitionSpec::Hash {
            column: column.into(),
        }
    }

    /// Whether two specs co-partition their tables for a join on the given
    /// pair of key columns: both must be hash partitioned on exactly those
    /// columns. Replicated build sides are also join-compatible (every node
    /// already holds the whole table).
    pub fn join_compatible(&self, probe_key: &str, build: &PartitionSpec, build_key: &str) -> bool {
        match (self, build) {
            (PartitionSpec::Hash { column: a }, PartitionSpec::Hash { column: b }) => {
                a == probe_key && b == build_key
            }
            (_, PartitionSpec::Replicated) => true,
            _ => false,
        }
    }
}

/// A deterministic 64-bit mix (splitmix64 finaliser) so partition placement is
/// stable across runs and platforms.
pub fn hash_of_value(value: &Value) -> u64 {
    let raw = match *value {
        Value::Int64(v) => v as u64,
        Value::Int32(v) => v as i64 as u64,
        Value::Float64(v) => v.to_bits(),
    };
    hash_i64(raw as i64)
}

/// The same splitmix64 mix over a raw integer key — the hash the execution
/// kernel applies per probe row, skipping the [`Value`] round-trip.
/// `hash_i64(k)` equals `hash_of_value(&Value::Int64(k))` (and the `Int32`
/// encoding of the same integer), so kernel-side hashing and partition
/// placement can never disagree.
#[inline]
pub fn hash_i64(key: i64) -> u64 {
    let mut z = (key as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A table split into per-node fragments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partitioned {
    /// The layout that produced the fragments.
    pub spec: PartitionSpec,
    /// One fragment per node, in node order.
    pub fragments: Vec<Table>,
}

impl Partitioned {
    /// Total rows across fragments.
    pub fn total_rows(&self) -> usize {
        self.fragments.iter().map(Table::row_count).sum()
    }

    /// Number of fragments (nodes).
    pub fn len(&self) -> usize {
        self.fragments.len()
    }

    /// Whether there are no fragments.
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }

    /// The ratio of the largest fragment's row count to the mean fragment row
    /// count — 1.0 is perfect balance; data skew drives it above 1.
    pub fn imbalance(&self) -> f64 {
        if self.fragments.is_empty() {
            return 1.0;
        }
        let total = self.total_rows() as f64;
        if total == 0.0 {
            return 1.0;
        }
        let mean = total / self.fragments.len() as f64;
        let max = self
            .fragments
            .iter()
            .map(Table::row_count)
            .max()
            .unwrap_or(0) as f64;
        max / mean
    }
}

/// Hash partition `table` on `column` into `nodes` fragments. Runs as a
/// scatter: one pass computes each row's destination, then every fragment is
/// materialised with a per-column gather.
pub fn hash_partition(
    table: &Table,
    column: &str,
    nodes: usize,
) -> Result<Partitioned, StorageError> {
    if nodes == 0 {
        return Err(StorageError::invalid("cannot partition across zero nodes"));
    }
    // Resolve the partition column up front so the error mentions the table.
    let key = table.column_by_name(column)?;
    let mut indices: Vec<Vec<u32>> = vec![Vec::with_capacity(table.row_count() / nodes + 1); nodes];
    for row in 0..table.row_count() {
        let value = key
            .get(row)
            .ok_or_else(|| StorageError::invalid(format!("row {row} out of bounds")))?;
        let node = (hash_of_value(&value) % nodes as u64) as usize;
        indices[node].push(row as u32);
    }
    let fragments = indices
        .iter()
        .enumerate()
        .map(|(i, rows)| table.gather_rows(format!("{}_part{}", table.name(), i), rows))
        .collect();
    Ok(Partitioned {
        spec: PartitionSpec::hash(column),
        fragments,
    })
}

/// Replicate `table` onto `nodes` nodes (every fragment is a full copy).
pub fn replicate(table: &Table, nodes: usize) -> Result<Partitioned, StorageError> {
    if nodes == 0 {
        return Err(StorageError::invalid("cannot replicate across zero nodes"));
    }
    Ok(Partitioned {
        spec: PartitionSpec::Replicated,
        fragments: vec![table.clone(); nodes],
    })
}

/// Round-robin partition `table` into `nodes` fragments.
pub fn round_robin_partition(table: &Table, nodes: usize) -> Result<Partitioned, StorageError> {
    if nodes == 0 {
        return Err(StorageError::invalid("cannot partition across zero nodes"));
    }
    let mut indices: Vec<Vec<u32>> = vec![Vec::with_capacity(table.row_count() / nodes + 1); nodes];
    for row in 0..table.row_count() {
        indices[row % nodes].push(row as u32);
    }
    let fragments = indices
        .iter()
        .enumerate()
        .map(|(i, rows)| table.gather_rows(format!("{}_part{}", table.name(), i), rows))
        .collect();
    Ok(Partitioned {
        spec: PartitionSpec::RoundRobin,
        fragments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eedc_tpch::gen::OrdersGenerator;
    use eedc_tpch::scale::ScaleFactor;
    use std::collections::HashSet;

    const SCALE: ScaleFactor = ScaleFactor(0.002);

    fn orders() -> Table {
        Table::from_orders(OrdersGenerator::new(SCALE, 1))
    }

    #[test]
    fn hash_partition_is_complete_and_disjoint() {
        let table = orders();
        let partitioned = hash_partition(&table, "O_ORDERKEY", 8).unwrap();
        assert_eq!(partitioned.len(), 8);
        assert_eq!(partitioned.total_rows(), table.row_count());
        // Keys are unique, so the union of fragment keys must equal the table
        // keys without duplication.
        let mut seen = HashSet::new();
        for fragment in &partitioned.fragments {
            let keys = fragment.column_by_name("O_ORDERKEY").unwrap();
            for i in 0..fragment.row_count() {
                assert!(seen.insert(keys.get(i).unwrap().as_i64().unwrap()));
            }
        }
        assert_eq!(seen.len(), table.row_count());
    }

    #[test]
    fn hash_partition_is_reasonably_balanced() {
        let partitioned = hash_partition(&orders(), "O_ORDERKEY", 8).unwrap();
        assert!(partitioned.imbalance() < 1.2, "{}", partitioned.imbalance());
    }

    #[test]
    fn hash_placement_is_deterministic() {
        let a = hash_partition(&orders(), "O_CUSTKEY", 4).unwrap();
        let b = hash_partition(&orders(), "O_CUSTKEY", 4).unwrap();
        for (x, y) in a.fragments.iter().zip(&b.fragments) {
            assert_eq!(x.row_count(), y.row_count());
        }
    }

    #[test]
    fn same_key_lands_on_same_node_across_tables() {
        // Co-partitioning guarantee: the same join-key value always maps to
        // the same node, which is what makes pre-partitioned joins free of
        // network traffic.
        for key in [1_i64, 17, 123, 999] {
            let v = Value::Int64(key);
            assert_eq!(hash_of_value(&v) % 8, hash_of_value(&v) % 8);
        }
        // Int32 and Int64 encodings of the same integer hash identically, so
        // co-partitioning still works when key columns differ only in width.
        assert_eq!(
            hash_of_value(&Value::Int64(5)),
            hash_of_value(&Value::Int32(5))
        );
        // The raw-key hash used by the execution kernel agrees with the
        // Value-level hash used for placement, including negative keys.
        for key in [0_i64, 5, -5, i64::MAX, i64::MIN, 123_456_789] {
            assert_eq!(hash_i64(key), hash_of_value(&Value::Int64(key)));
        }
    }

    #[test]
    fn replication_copies_everything_everywhere() {
        let table = orders();
        let replicated = replicate(&table, 3).unwrap();
        assert_eq!(replicated.len(), 3);
        assert_eq!(replicated.total_rows(), 3 * table.row_count());
        assert_eq!(replicated.imbalance(), 1.0);
        assert_eq!(replicated.spec, PartitionSpec::Replicated);
    }

    #[test]
    fn round_robin_is_balanced() {
        let partitioned = round_robin_partition(&orders(), 7).unwrap();
        assert_eq!(partitioned.total_rows(), orders().row_count());
        assert!(partitioned.imbalance() < 1.01);
    }

    #[test]
    fn zero_nodes_is_an_error() {
        let table = orders();
        assert!(hash_partition(&table, "O_ORDERKEY", 0).is_err());
        assert!(replicate(&table, 0).is_err());
        assert!(round_robin_partition(&table, 0).is_err());
    }

    #[test]
    fn unknown_partition_column_is_an_error() {
        assert!(hash_partition(&orders(), "O_NOPE", 4).is_err());
    }

    #[test]
    fn join_compatibility_rules() {
        let lineitem_on_orderkey = PartitionSpec::hash("L_ORDERKEY");
        let orders_on_orderkey = PartitionSpec::hash("O_ORDERKEY");
        let orders_on_custkey = PartitionSpec::hash("O_CUSTKEY");
        // Vertica setup in Section 3.1: LINEITEM on L_ORDERKEY joined with
        // ORDERS repartitioned on O_ORDERKEY is compatible; ORDERS hashed on
        // O_CUSTKEY is not.
        assert!(lineitem_on_orderkey.join_compatible(
            "L_ORDERKEY",
            &orders_on_orderkey,
            "O_ORDERKEY"
        ));
        assert!(!lineitem_on_orderkey.join_compatible(
            "L_ORDERKEY",
            &orders_on_custkey,
            "O_ORDERKEY"
        ));
        // A replicated build side is always compatible.
        assert!(lineitem_on_orderkey.join_compatible(
            "L_ORDERKEY",
            &PartitionSpec::Replicated,
            "O_ORDERKEY"
        ));
        assert!(!PartitionSpec::RoundRobin.join_compatible(
            "L_ORDERKEY",
            &orders_on_orderkey,
            "O_ORDERKEY"
        ));
    }

    #[test]
    fn empty_partitioned_imbalance_is_one() {
        let empty = Partitioned {
            spec: PartitionSpec::RoundRobin,
            fragments: Vec::new(),
        };
        assert_eq!(empty.imbalance(), 1.0);
        assert!(empty.is_empty());
    }
}
