//! Per-node and cluster-wide table catalogs.
//!
//! A [`NodeCatalog`] is the set of table fragments physically resident on one
//! node; a [`ClusterCatalog`] owns one node catalog per cluster node plus the
//! layout metadata ([`PartitionSpec`]) of every distributed table. This
//! mirrors the physical design step of the paper's Vertica experiments, where
//! LINEITEM / ORDERS / CUSTOMER are hash-segmented and the small dimension
//! tables are replicated everywhere.

use crate::error::StorageError;
use crate::partition::{
    hash_partition, replicate, round_robin_partition, PartitionSpec, Partitioned,
};
use crate::table::Table;
use eedc_simkit::units::Megabytes;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The tables resident on one node.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeCatalog {
    tables: BTreeMap<String, Table>,
}

impl NodeCatalog {
    /// An empty node catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table fragment under a logical table name.
    pub fn insert(&mut self, logical_name: impl Into<String>, fragment: Table) {
        self.tables.insert(logical_name.into(), fragment);
    }

    /// Look up a fragment by logical table name.
    pub fn get(&self, logical_name: &str) -> Result<&Table, StorageError> {
        self.tables
            .get(logical_name)
            .ok_or_else(|| StorageError::UnknownTable {
                table: logical_name.into(),
            })
    }

    /// Logical table names stored on this node.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Total payload bytes stored on this node.
    pub fn resident_bytes(&self) -> Megabytes {
        self.tables.values().map(Table::byte_size).sum()
    }

    /// Number of tables resident on this node.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the node stores no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

/// The physical layout of a cluster: one [`NodeCatalog`] per node plus the
/// partitioning spec of every logical table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterCatalog {
    nodes: Vec<NodeCatalog>,
    layouts: BTreeMap<String, PartitionSpec>,
}

impl ClusterCatalog {
    /// An empty catalog for a cluster of `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            nodes: vec![NodeCatalog::new(); nodes],
            layouts: BTreeMap::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The catalog of one node.
    pub fn node(&self, node: usize) -> Result<&NodeCatalog, StorageError> {
        self.nodes.get(node).ok_or_else(|| {
            StorageError::invalid(format!(
                "node {node} outside cluster of {} nodes",
                self.nodes.len()
            ))
        })
    }

    /// Distribute a table across the cluster according to `spec`, registering
    /// the resulting fragments on every node.
    pub fn distribute(
        &mut self,
        table: &Table,
        spec: PartitionSpec,
    ) -> Result<&PartitionSpec, StorageError> {
        let nodes = self.nodes.len();
        let partitioned: Partitioned = match &spec {
            PartitionSpec::Hash { column } => hash_partition(table, column, nodes)?,
            PartitionSpec::Replicated => replicate(table, nodes)?,
            PartitionSpec::RoundRobin => round_robin_partition(table, nodes)?,
        };
        for (node, fragment) in self.nodes.iter_mut().zip(partitioned.fragments) {
            node.insert(table.name(), fragment);
        }
        self.layouts.insert(table.name().to_string(), spec);
        Ok(self
            .layouts
            .get(table.name())
            .expect("layout inserted above"))
    }

    /// The layout of a logical table, if it has been distributed.
    pub fn layout(&self, logical_name: &str) -> Option<&PartitionSpec> {
        self.layouts.get(logical_name)
    }

    /// The fragment of `logical_name` on `node`.
    pub fn fragment(&self, node: usize, logical_name: &str) -> Result<&Table, StorageError> {
        self.node(node)?.get(logical_name)
    }

    /// Every fragment of a logical table, in node order.
    pub fn fragments(&self, logical_name: &str) -> Result<Vec<&Table>, StorageError> {
        self.nodes
            .iter()
            .map(|n| n.get(logical_name))
            .collect::<Result<Vec<_>, _>>()
    }

    /// Total rows of a logical table across the cluster (replicated tables
    /// count every copy).
    pub fn total_rows(&self, logical_name: &str) -> Result<usize, StorageError> {
        Ok(self
            .fragments(logical_name)?
            .iter()
            .map(|t| t.row_count())
            .sum())
    }

    /// Per-node resident data volumes, in node order.
    pub fn resident_bytes_per_node(&self) -> Vec<Megabytes> {
        self.nodes.iter().map(NodeCatalog::resident_bytes).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eedc_tpch::gen::{LineitemGenerator, OrdersGenerator};
    use eedc_tpch::scale::ScaleFactor;

    const SCALE: ScaleFactor = ScaleFactor(0.002);

    fn cluster() -> ClusterCatalog {
        let mut catalog = ClusterCatalog::new(4);
        let lineitem = Table::from_lineitem(LineitemGenerator::new(SCALE, 1));
        let orders = Table::from_orders(OrdersGenerator::new(SCALE, 1));
        catalog
            .distribute(&lineitem, PartitionSpec::hash("L_ORDERKEY"))
            .unwrap();
        catalog
            .distribute(&orders, PartitionSpec::hash("O_CUSTKEY"))
            .unwrap();
        catalog
    }

    #[test]
    fn distribution_registers_fragments_on_every_node() {
        let catalog = cluster();
        assert_eq!(catalog.node_count(), 4);
        for node in 0..4 {
            let nc = catalog.node(node).unwrap();
            assert_eq!(nc.len(), 2);
            assert!(nc.get("LINEITEM").is_ok());
            assert!(nc.get("ORDERS").is_ok());
            assert!(nc.resident_bytes().value() > 0.0);
        }
        assert!(catalog.node(9).is_err());
    }

    #[test]
    fn hash_distribution_preserves_row_counts() {
        let catalog = cluster();
        let orders_total = ScaleFactor(0.002).cardinality(eedc_tpch::schema::TpchTable::Orders);
        assert_eq!(catalog.total_rows("ORDERS").unwrap() as u64, orders_total);
    }

    #[test]
    fn replication_stores_full_copies() {
        let mut catalog = ClusterCatalog::new(3);
        let orders = Table::from_orders(OrdersGenerator::new(SCALE, 2));
        catalog
            .distribute(&orders, PartitionSpec::Replicated)
            .unwrap();
        assert_eq!(
            catalog.total_rows("ORDERS").unwrap(),
            3 * orders.row_count()
        );
        for node in 0..3 {
            assert_eq!(
                catalog.fragment(node, "ORDERS").unwrap().row_count(),
                orders.row_count()
            );
        }
        assert_eq!(catalog.layout("ORDERS"), Some(&PartitionSpec::Replicated));
    }

    #[test]
    fn layouts_are_recorded() {
        let catalog = cluster();
        assert_eq!(
            catalog.layout("LINEITEM"),
            Some(&PartitionSpec::hash("L_ORDERKEY"))
        );
        assert_eq!(
            catalog.layout("ORDERS"),
            Some(&PartitionSpec::hash("O_CUSTKEY"))
        );
        assert_eq!(catalog.layout("CUSTOMER"), None);
    }

    #[test]
    fn unknown_tables_are_errors() {
        let catalog = cluster();
        assert!(catalog.fragment(0, "CUSTOMER").is_err());
        assert!(catalog.fragments("CUSTOMER").is_err());
        assert!(catalog.total_rows("CUSTOMER").is_err());
        let nc = NodeCatalog::new();
        assert!(nc.is_empty());
        assert!(nc.get("X").is_err());
    }

    #[test]
    fn resident_bytes_reflect_partitioning() {
        let catalog = cluster();
        let per_node = catalog.resident_bytes_per_node();
        assert_eq!(per_node.len(), 4);
        let total: f64 = per_node.iter().map(|m| m.value()).sum();
        assert!(total > 0.0);
        // Hash partitioning spreads the data roughly evenly.
        let max = per_node.iter().map(|m| m.value()).fold(0.0, f64::max);
        assert!(max / (total / 4.0) < 1.25);
    }

    #[test]
    fn node_catalog_table_names() {
        let catalog = cluster();
        let names: Vec<&str> = catalog.node(0).unwrap().table_names().collect();
        assert_eq!(names, vec!["LINEITEM", "ORDERS"]);
    }
}
