//! Block iteration.
//!
//! P-store is "built on top of a block-iterator tuple-scan module"
//! (Section 4.2): operators pull fixed-size blocks of rows rather than
//! materialising whole tables, which keeps the working set cache-friendly and
//! lets the execution layer interleave scanning with network transfer. A
//! [`Block`] is a borrowed view over a contiguous row range of a
//! [`Table`]; [`BlockIter`] hands them out in order.

use crate::column::Value;
use crate::table::Table;

/// Default number of rows per block. 4096 rows of 20-byte projected tuples is
/// ~80 KB — comfortably inside the L2 cache of every node in the catalog.
pub const DEFAULT_BLOCK_ROWS: usize = 4096;

/// A borrowed view over a contiguous range of rows of a table.
#[derive(Debug, Clone, Copy)]
pub struct Block<'a> {
    table: &'a Table,
    start: usize,
    len: usize,
}

impl<'a> Block<'a> {
    /// The underlying table.
    pub fn table(&self) -> &'a Table {
        self.table
    }

    /// Index of the first row of the block within the table.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of rows in the block.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the block contains no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Global row indices covered by the block.
    pub fn row_indices(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.len
    }

    /// The value of `column` (by schema index) at `offset` within the block.
    pub fn value(&self, column: usize, offset: usize) -> Option<Value> {
        if offset >= self.len {
            return None;
        }
        self.table.column(column)?.get(self.start + offset)
    }
}

/// Iterator over the blocks of a table.
#[derive(Debug, Clone)]
pub struct BlockIter<'a> {
    table: &'a Table,
    block_rows: usize,
    next_row: usize,
}

impl<'a> BlockIter<'a> {
    /// Iterate over `table` in blocks of [`DEFAULT_BLOCK_ROWS`] rows.
    pub fn new(table: &'a Table) -> Self {
        Self::with_block_rows(table, DEFAULT_BLOCK_ROWS)
    }

    /// Iterate over `table` in blocks of `block_rows` rows (minimum 1).
    pub fn with_block_rows(table: &'a Table, block_rows: usize) -> Self {
        Self {
            table,
            block_rows: block_rows.max(1),
            next_row: 0,
        }
    }
}

impl<'a> Iterator for BlockIter<'a> {
    type Item = Block<'a>;

    fn next(&mut self) -> Option<Block<'a>> {
        let total = self.table.row_count();
        if self.next_row >= total {
            return None;
        }
        let start = self.next_row;
        let len = self.block_rows.min(total - start);
        self.next_row += len;
        Some(Block {
            table: self.table,
            start,
            len,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining_rows = self.table.row_count().saturating_sub(self.next_row);
        let blocks = remaining_rows.div_ceil(self.block_rows);
        (blocks, Some(blocks))
    }
}

impl<'a> ExactSizeIterator for BlockIter<'a> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnType;
    use crate::table::Schema;

    fn table_with_rows(n: usize) -> Table {
        let mut table = Table::with_capacity("T", Schema::new([("A", ColumnType::Int64)]), n);
        for i in 0..n {
            table.append_row(&[Value::Int64(i as i64)]).unwrap();
        }
        table
    }

    #[test]
    fn blocks_cover_the_table_exactly_once() {
        let table = table_with_rows(10_000);
        let mut covered = 0;
        let mut expected_next = 0;
        for block in BlockIter::new(&table) {
            assert_eq!(block.start(), expected_next);
            covered += block.len();
            expected_next += block.len();
            assert!(block.len() <= DEFAULT_BLOCK_ROWS);
        }
        assert_eq!(covered, 10_000);
    }

    #[test]
    fn last_block_is_partial() {
        let table = table_with_rows(10);
        let blocks: Vec<Block<'_>> = BlockIter::with_block_rows(&table, 4).collect();
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].len(), 4);
        assert_eq!(blocks[2].len(), 2);
        assert_eq!(blocks[2].row_indices(), 8..10);
    }

    #[test]
    fn block_values_match_table_values() {
        let table = table_with_rows(10);
        let blocks: Vec<Block<'_>> = BlockIter::with_block_rows(&table, 3).collect();
        assert_eq!(blocks[1].value(0, 0), Some(Value::Int64(3)));
        assert_eq!(blocks[1].value(0, 2), Some(Value::Int64(5)));
        assert_eq!(blocks[1].value(0, 3), None, "offset past block end");
        assert_eq!(blocks[1].value(7, 0), None, "unknown column");
        assert!(!blocks[1].is_empty());
        assert_eq!(blocks[1].table().name(), "T");
    }

    #[test]
    fn empty_table_yields_no_blocks() {
        let table = table_with_rows(0);
        assert_eq!(BlockIter::new(&table).count(), 0);
    }

    #[test]
    fn zero_block_rows_is_clamped_to_one() {
        let table = table_with_rows(3);
        let blocks: Vec<Block<'_>> = BlockIter::with_block_rows(&table, 0).collect();
        assert_eq!(blocks.len(), 3);
    }

    #[test]
    fn size_hint_is_exact() {
        let table = table_with_rows(100);
        let iter = BlockIter::with_block_rows(&table, 7);
        assert_eq!(iter.len(), 15);
        assert_eq!(iter.count(), 15);
    }
}
