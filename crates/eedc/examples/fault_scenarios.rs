//! Availability under churn: serve the same open-loop stream to three
//! cluster designs while nodes fail and recover. Each design runs under a
//! fault model combining a per-node-hour hazard rate, two scripted outages,
//! checkpoint recovery, and a queue-depth elastic scale policy whose data-
//! movement cost the `Serving` lens derives from the port-volume model.
//! The sweep closes with the availability objective: the cheapest design
//! whose simulated availability clears a floor.
//!
//! Flags (for the nightly CI soak): `--horizon-scale N` multiplies the
//! arrival window, `--out PATH` writes the full experiment report as JSON —
//! two runs at the same scale must produce byte-identical files.

use eedc::pstore::{ClusterSpec, JoinQuerySpec};
use eedc::simkit::catalog::{cluster_v_node, laptop_b};
use eedc::simkit::units::{Megabytes, Seconds};
use eedc::{
    Analytical, DesignAdvisor, Estimator, Experiment, FaultModel, RecoveryPolicy, ScalePolicy,
    Serving, ServingWorkload, SweepJoin, Workload,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut horizon_scale = 1.0_f64;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--horizon-scale" => {
                let value = args.next().ok_or("--horizon-scale needs a value")?;
                horizon_scale = value.parse::<f64>()?;
                if !horizon_scale.is_finite() || horizon_scale <= 0.0 {
                    return Err(format!("--horizon-scale must be positive, got {value}").into());
                }
            }
            "--out" => out = Some(args.next().ok_or("--out needs a path")?),
            other => return Err(format!("unknown flag '{other}'").into()),
        }
    }

    // The serving example's small join, so Wimpy pools can serve it too and
    // the heterogeneous designs have something to park and revive.
    let mut template = SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle());
    template.build_bytes = Megabytes(2_000.0);
    template.probe_bytes = Megabytes(8_000.0);

    let designs = [
        ClusterSpec::homogeneous(cluster_v_node(), 8)?,
        ClusterSpec::heterogeneous(cluster_v_node(), 4, laptop_b(), 8)?,
        ClusterSpec::heterogeneous(cluster_v_node(), 2, laptop_b(), 16)?,
    ];

    let service_time = Analytical
        .estimate(&template.plans()[0], &designs[0])?
        .response_time
        .value();
    let qps = 0.4 / service_time;
    let window = Seconds(1_000.0 * service_time * horizon_scale);

    // The churn model: a hazard rate that expects a handful of failures per
    // pool over the base window, two scripted outages, checkpointed
    // recovery (killed queries resume from their last checkpoint instead of
    // replaying from scratch), a restart bill, and an elastic policy with
    // no explicit migration cost — the lens derives one per design from the
    // port-volume model.
    let rate = 6.0 * 3_600.0 / (8.0 * window.value());
    let model = FaultModel::new(rate)
        .repair_time(Seconds(2.0 * service_time))
        .recovery(RecoveryPolicy::Checkpoint {
            interval: Seconds(service_time / 4.0),
        })
        .restart_cost(eedc::TransitionCost {
            time: Seconds(0.1 * service_time),
            energy: eedc::simkit::units::Joules(500.0),
        })
        .outage(
            0,
            Seconds(0.25 * window.value()),
            Seconds(4.0 * service_time),
        )
        .outage(
            0,
            Seconds(0.75 * window.value()),
            Seconds(4.0 * service_time),
        )
        .scale(ScalePolicy::new(12, 1, Seconds(2.0 * service_time)));

    let workload = ServingWorkload::new(&template, qps, window, 4_242)
        .queue_capacity(256)
        .with_faults(model);

    let report = Experiment::new(&workload)
        .designs(designs.clone())
        .estimator(Serving::fcfs())
        .estimator(Serving::jsq())
        .run()?;

    println!(
        "churn sweep: {qps:.4} qps over {:.0} s, hazard {rate:.3} failures/node-hour",
        window.value()
    );
    for series in &report.series {
        println!("{} lens:", series.estimator);
        println!(
            "  {:>8} {:>9} {:>7} {:>7} {:>7} {:>7} {:>9} {:>12}",
            "design", "avail", "fails", "killed", "readm", "scale", "p99 (s)", "J/query"
        );
        for record in &series.records {
            let stats = record.serving.as_ref().expect("serving lens fills stats");
            let faults = stats.faults.as_ref().expect("churned runs report faults");
            println!(
                "  {:>8} {:>9.5} {:>7} {:>7} {:>7} {:>7} {:>9.2} {:>12.0}",
                record.design,
                faults.availability,
                faults.failures,
                faults.killed,
                faults.readmitted,
                faults.scale_out_events + faults.scale_in_events,
                stats.p99.value(),
                stats.energy_per_query.value(),
            );
        }
    }

    // The availability objective: the lowest-energy design whose simulated
    // availability clears the floor, confirmed against the full report.
    let floor = 0.98;
    let advisor = DesignAdvisor::new(Serving::fcfs(), &workload);
    match advisor.cheapest_meeting_availability(&designs, floor)? {
        Some(pick) => {
            let faults = pick
                .serving
                .as_ref()
                .and_then(|s| s.faults.as_ref())
                .expect("churned runs report faults");
            println!(
                "cheapest design meeting availability >= {floor}: {} ({:.5} available, {:.0} J total)",
                pick.design,
                faults.availability,
                pick.energy.value(),
            );
        }
        None => println!("no design meets availability >= {floor} under this churn"),
    }

    if let Some(path) = out {
        std::fs::write(&path, report.to_json_string())?;
        println!("report written to {path}");
    }
    Ok(())
}
