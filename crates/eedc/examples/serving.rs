//! Serving Pareto sweep: offer the same open-loop query stream to three
//! cluster designs and compare the trade-off each one buys — tail latency
//! versus energy per completed query — under FCFS, energy-aware,
//! join-shortest-queue, and power-of-two-choices placement. The `Serving`
//! lens prices each query template per node pool with the closed-form
//! model, then plays the stream through the discrete-event serving
//! simulator (admission queue, scheduler, completions). The sweep closes
//! with the SLA objective: the cheapest design whose p99 clears a floor.

use eedc::pstore::{ClusterSpec, JoinQuerySpec};
use eedc::simkit::catalog::{cluster_v_node, laptop_b};
use eedc::simkit::units::{Megabytes, Seconds};
use eedc::{
    Analytical, DesignAdvisor, Estimator, Experiment, Serving, ServingWorkload, SweepJoin, Workload,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A join small enough that Wimpy pools can serve it too — the designs
    // then differ in how much Beefy capacity they keep for the same stream.
    let mut template = SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle());
    template.build_bytes = Megabytes(2_000.0);
    template.probe_bytes = Megabytes(8_000.0);

    let designs = [
        ClusterSpec::homogeneous(cluster_v_node(), 8)?,
        ClusterSpec::heterogeneous(cluster_v_node(), 4, laptop_b(), 8)?,
        ClusterSpec::heterogeneous(cluster_v_node(), 2, laptop_b(), 16)?,
    ];

    // Half the service rate of the all-Beefy reference: comfortably stable
    // there, and revealing on designs that trade Beefy capacity away.
    let service_time = Analytical
        .estimate(&template.plans()[0], &designs[0])?
        .response_time
        .value();
    let qps = 0.5 / service_time;
    let window = Seconds(2_000.0 * service_time);
    let workload = ServingWorkload::new(&template, qps, window, 42);

    let report = Experiment::new(&workload)
        .designs(designs.clone())
        .estimator(Serving::fcfs())
        .estimator(Serving::energy_aware())
        .estimator(Serving::jsq())
        .estimator(Serving::power_of_two())
        .run()?;

    println!(
        "offered load {qps:.4} qps over {:.0} s ({} schedulers x {} designs)",
        window.value(),
        report.series.len(),
        report.series[0].records.len(),
    );
    for series in &report.series {
        println!("{} lens:", series.estimator);
        println!(
            "  {:>8} {:>9} {:>9} {:>9} {:>7} {:>8} {:>12}",
            "design", "p50 (s)", "p99 (s)", "qps", "lost", "depth", "J/query"
        );
        for record in &series.records {
            let stats = record.serving.as_ref().expect("serving lens fills stats");
            println!(
                "  {:>8} {:>9.2} {:>9.2} {:>9.4} {:>6.1}% {:>8.2} {:>12.0}",
                record.design,
                stats.p50.value(),
                stats.p99.value(),
                stats.achieved_qps,
                stats.drop_rate * 100.0,
                stats.pool_mean_depth.iter().sum::<f64>(),
                stats.energy_per_query.value(),
            );
        }
        // The Pareto view: normalized performance vs energy against the
        // all-Beefy reference design.
        for record in &series.records {
            let point = record.normalized.expect("experiment normalizes records");
            println!("  {:>8}: {point}", record.design);
        }
    }

    // The SLA objective: among the three designs, the lowest-energy one
    // whose simulated p99 clears a latency floor. At 3.5x the solo service
    // time the floor is selective: under energy-aware placement only one
    // design clears it at this load.
    let floor = Seconds(3.5 * service_time);
    let advisor = DesignAdvisor::new(Serving::energy_aware(), &workload);
    match advisor.cheapest_meeting_p99(&designs, floor)? {
        Some(pick) => {
            let stats = pick.serving.as_ref().expect("serving lens fills stats");
            println!(
                "cheapest design meeting p99 <= {:.2} s: {} (p99 {:.2} s, {:.0} J/query)",
                floor.value(),
                pick.design,
                stats.p99.value(),
                stats.energy_per_query.value(),
            );
        }
        None => println!(
            "no design meets p99 <= {:.2} s at {qps:.4} qps",
            floor.value()
        ),
    }
    Ok(())
}
