//! Homogeneous cluster sizing (the Figure 1(a) shape): shrink a Cluster-V
//! cluster and plot each size as a normalized (performance, energy) point
//! against the largest configuration — under both the measured runtime and
//! the closed-form analytical model, side by side.

use eedc::pstore::{ClusterSpec, JoinQuerySpec};
use eedc::simkit::catalog::cluster_v_node;
use eedc::{Analytical, Experiment, Measured, SweepJoin};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle());
    let sizes = [16usize, 12, 8, 4];

    let report = Experiment::new(&workload)
        .designs(
            sizes
                .iter()
                .map(|&n| ClusterSpec::homogeneous(cluster_v_node(), n))
                .collect::<Result<Vec<_>, _>>()?,
        )
        .estimator(Measured::default())
        .estimator(Analytical)
        .run()?;

    for series in &report.series {
        println!(
            "{} lens, normalized against {}",
            series.estimator, series.normalized.reference_label
        );
        for record in &series.records {
            let point = record.normalized.expect("experiment normalizes records");
            println!("  {:>6}: {point}", record.design);
        }
    }
    Ok(())
}
