//! Heterogeneous execution (Section 5.2): when the build-side hash table no
//! longer fits the Wimpy nodes, they are demoted to scan-and-filter
//! producers feeding the Beefy nodes — compare against an all-Beefy cluster
//! through the experiment API.

use eedc::pstore::{ClusterSpec, JoinQuerySpec, JoinStrategy, RunOptions};
use eedc::simkit::catalog::{cluster_v_node, laptop_b};
use eedc::tpch::ScaleFactor;
use eedc::{Experiment, Measured, SweepJoin};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 50%-selectivity broadcast build side at SF-1000 is a ~30 GB hash
    // table: it fits the 48 GB Beefy nodes but not the 8 GB Wimpy laptops.
    let options = RunOptions {
        nominal_scale: ScaleFactor::SF1000,
        ..RunOptions::default()
    };
    let query = JoinQuerySpec::new(0.5, 0.05);
    let workload = SweepJoin::section_5_4(query);

    let report = Experiment::new(&workload)
        .strategy(JoinStrategy::Broadcast)
        .design(ClusterSpec::homogeneous(cluster_v_node(), 4)?)
        .design(ClusterSpec::heterogeneous(
            cluster_v_node(),
            2,
            laptop_b(),
            2,
        )?)
        .estimator(Measured::new(options))
        .run()?;

    for record in &report.series[0].records {
        println!(
            "{:>5}: {} execution, {:.1} s, {:.1} kJ, EDP {:.0} J*s, {} rows",
            record.design,
            record.mode,
            record.response_time.value(),
            record.energy.as_kilojoules(),
            record.edp(),
            record
                .output_rows
                .expect("measured runs verify cardinality"),
        );
    }
    Ok(())
}
