//! Trace-driven engine what-ifs (Sections 3 and 3.2): run a real join on
//! the measured P-store lens, export its per-node utilization trace, and
//! replay that trace under different engine behaviours — the pipelined
//! P-store engine (which reproduces the measured energy) and the DBMS-X
//! engine, which stages repartitioned intermediates through disk and pays a
//! mid-query restart. The same comparison then runs at paper scale through
//! the `Traced` estimator lens of the experiment API.

use eedc::dbmsim::{replay, EngineBehaviour, UtilizationTrace};
use eedc::pstore::{ClusterSpec, JoinQuerySpec, JoinStrategy, PStoreCluster, RunOptions};
use eedc::simkit::catalog::cluster_v_node;
use eedc::tpch::ScaleFactor;
use eedc::{Experiment, SweepJoin, Traced};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. A real measured run: engine-scale correctness, nominal-scale
    // time and energy.
    let design = ClusterSpec::homogeneous(cluster_v_node(), 4)?;
    let options = RunOptions {
        engine_scale: ScaleFactor(0.002),
        ..RunOptions::default()
    };
    let cluster = PStoreCluster::load(design.clone(), options)?;
    let query = JoinQuerySpec::q3_dual_shuffle();
    let execution = cluster.run(&query, JoinStrategy::DualShuffle)?;
    println!(
        "measured dual-shuffle join on {}: {:.1} s, {:.1} kJ",
        execution.cluster_label,
        execution.response_time().value(),
        execution.energy().as_kilojoules(),
    );

    // ---- 2. Export the utilization trace — the simulated analogue of the
    // paper's iLO2 / WattsUp measurement streams.
    let trace = UtilizationTrace::from_execution(&execution, design.nodes(), options.in_memory)?;
    println!("\nexported trace ({} phases):", trace.len());
    for phase in trace.phases() {
        let shares = &phase.node_shares[0];
        println!(
            "  {:>5}: {:6.1} s, node 0 busy shares cpu {:.2} / disk {:.2} / network {:.2}",
            phase.label,
            phase.duration.value(),
            shares.cpu,
            shares.disk,
            shares.network,
        );
    }

    // ---- 3. Replay under both engine behaviours. The pipelined P-store
    // engine reproduces the measured energy; DBMS-X pays for staging and
    // its restart with the CPUs idling at the engine floor.
    println!("\nreplay under engine behaviours:");
    for engine in [EngineBehaviour::pstore_like(), EngineBehaviour::dbms_x()] {
        let shaped = engine.apply(&trace, design.nodes())?;
        let result = replay(&shaped, design.nodes())?;
        println!(
            "  {:>7}: {:6.1} s, {:6.1} kJ over {} phases ({:.2}x measured energy)",
            engine.name,
            result.response_time().value(),
            result.energy().as_kilojoules(),
            result.phases.len(),
            result.energy().value() / execution.energy().value(),
        );
    }

    // ---- 4. The same what-if at paper scale through the experiment API:
    // the `Traced` lens synthesizes traces from the analytical model, so no
    // cluster load is needed for the scale-down sweep.
    let workload = SweepJoin::section_5_4(query);
    let report =
        Experiment::new(&workload)
            .designs((0..3).map(|i| {
                ClusterSpec::homogeneous(cluster_v_node(), 16 >> i).expect("spec is valid")
            }))
            .estimator(Traced::pstore())
            .estimator(Traced::dbms_x())
            .run()?;
    let pstore = &report.series[0];
    let dbms_x = &report.series[1];
    println!("\nSection 5.4 sweep at paper scale, P-store vs DBMS-X engine:");
    for (p, x) in pstore.records.iter().zip(&dbms_x.records) {
        println!(
            "  {:>7}: p-store {:6.1} s / {:7.1} kJ  |  dbms-x {:6.1} s / {:7.1} kJ",
            p.design,
            p.response_time.value(),
            p.energy.as_kilojoules(),
            x.response_time.value(),
            x.energy.as_kilojoules(),
        );
    }
    Ok(())
}
