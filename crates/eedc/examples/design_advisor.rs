//! The Section 6 design advisor over the Section 5.4 analytical model:
//! enumerate every `(b Beefy, w Wimpy)` cluster design, predict its response
//! time and energy for the 700 GB ⋈ 2.8 TB sweep join in closed form,
//! normalize against the all-Beefy reference, and pick the most
//! energy-efficient design meeting each performance target.
//!
//! The advisor is estimator-agnostic — swap `Analytical` for `Measured` (or
//! `Behavioural`) and the same selection rule ranks designs from real runs.
//!
//! ```sh
//! cargo run --release --example design_advisor
//! ```

use eedc::pstore::JoinQuerySpec;
use eedc::simkit::catalog::{cluster_v_node, laptop_b};
use eedc::{Analytical, DesignAdvisor, DesignSpace, SweepJoin};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Q3-style sweep join (5% predicates on both inputs) over a
    // grid of up to 8 Cluster-V "Beefy" servers and 16 Laptop-B "Wimpy"
    // nodes, executed with the dual-shuffle repartitioning plan.
    let workload = SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle());
    let advisor = DesignAdvisor::new(Analytical, &workload);
    let space = DesignSpace::new(cluster_v_node(), laptop_b(), 8, 16)?;

    let report = advisor.evaluate(&space)?;
    println!(
        "evaluated {} designs: {} feasible, {} infeasible (hash table fits no mode)",
        space.len(),
        report.series.points().len(),
        report.infeasible.len(),
    );
    println!(
        "normalized against {} (all-Beefy reference)",
        report.series.reference_label
    );

    // A few representative rows of the design space.
    for label in ["8B,0W", "8B,8W", "4B,8W", "2B,16W", "1B,16W"] {
        match report.record(label) {
            Some(record) => {
                let point = record.normalized.expect("advisor normalizes records");
                println!(
                    "  {label:>7} [{} execution]: {:.1} s, {:.1} kJ — {point}",
                    record.mode,
                    record.response_time.value(),
                    record.energy.as_kilojoules(),
                );
            }
            None => println!("  {label:>7}: infeasible"),
        }
    }

    // The Section 6 selection rule for a range of performance floors.
    for target in [0.9, 0.75, 0.5] {
        match report.recommend(target) {
            Some(pick) => println!("target perf >= {target:.2}: pick {pick}"),
            None => println!("target perf >= {target:.2}: no design qualifies"),
        }
    }
    Ok(())
}
