//! Data-skew study (the Section 4.1 "third bottleneck"): Zipf-skewed join
//! keys unbalance hash partitioning, so the node holding the hot partition
//! receives a disproportionate share of the shuffled bytes, runs hotter,
//! and burns more energy — quantified here by running the same sweep join
//! uniform and skewed through the measured P-store lens.

use eedc::pstore::{ClusterSpec, JoinQuerySpec, JoinSkew};
use eedc::simkit::catalog::cluster_v_node;
use eedc::{Experiment, Measured, SkewedJoin, SweepJoin, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Wide 50% predicates so the shuffled volumes carry real weight next to
    // the scans; a tight key domain concentrates the skew.
    let base = SweepJoin::section_5_4(JoinQuerySpec::new(0.5, 0.5));
    let design = ClusterSpec::homogeneous(cluster_v_node(), 4)?;

    println!("dual-shuffle join, 4 Cluster-V nodes, hottest-node share of cluster energy:");
    for theta in [0.0, 0.5, 1.0, 1.5] {
        let skewed = SkewedJoin::new(
            base,
            JoinSkew {
                theta,
                key_domain: 1_000,
                seed: 7,
            },
        );
        let workload: &dyn Workload = if theta == 0.0 { &base } else { &skewed };
        let report = Experiment::new(workload)
            .design(design.clone())
            .estimator(Measured::default())
            .run()?;
        let record = &report.series[0].records[0];
        let hottest = record
            .node_energy
            .iter()
            .map(|e| e.value())
            .fold(0.0_f64, f64::max);
        println!(
            "  theta {theta:>3.1}: {:6.1} s, {:7.1} kJ total, hottest node {:5.1}% \
             (balanced = {:.1}%), hot partition holds {:.3} of the keys",
            record.response_time.value(),
            record.energy.as_kilojoules(),
            100.0 * hottest / record.energy.value(),
            100.0 / record.node_utilization.len() as f64,
            skewed.hot_partition_fraction(4),
        );
    }
    Ok(())
}
