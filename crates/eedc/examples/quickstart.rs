//! Quickstart: describe the paper's Q3-style sweep join once, run it through
//! the `Experiment` API under the measured P-store lens, and print response
//! time, energy, and EDP.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use eedc::pstore::{ClusterSpec, JoinQuerySpec};
use eedc::simkit::catalog::cluster_v_node;
use eedc::{Experiment, Measured, SweepJoin};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Q3-style join: 5% predicates on both ORDERS and LINEITEM,
    // executed with the dual-shuffle repartitioning plan of Section 4.3.1 on
    // eight Cluster-V nodes. Data is generated at a laptop-sized engine
    // scale; time and energy are modeled at SF-400.
    let workload = SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle());
    let report = Experiment::new(&workload)
        .design(ClusterSpec::homogeneous(cluster_v_node(), 8)?)
        .estimator(Measured::default())
        .run()?;

    let record = &report.series[0].records[0];
    println!(
        "{} join ({}) on {} [{} execution]",
        record.strategy, record.workload, record.design, record.mode,
    );
    for phase in &record.phases {
        println!(
            "  {:>5}: {:.2} s ({} bound; scan {:.2} s, network {:.2} s, compute {:.2} s), \
             {:.1} kJ, {:.0} MB over network",
            phase.label,
            phase.duration.value(),
            phase.bottleneck,
            phase.scan_time.value(),
            phase.network_time.value(),
            phase.compute_time.value(),
            phase.energy.as_kilojoules(),
            phase.bytes_over_network.value(),
        );
    }

    println!("response time: {:.2} s", record.response_time.value());
    println!("energy:        {:.1} kJ", record.energy.as_kilojoules());
    println!("EDP:           {:.0} J*s", record.edp());
    println!(
        "output rows:   {} (verified against the scalar reference join)",
        record
            .output_rows
            .expect("measured runs verify cardinality"),
    );
    Ok(())
}
