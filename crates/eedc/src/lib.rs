//! # eedc
//!
//! Umbrella crate for the energy-efficient database cluster toolkit: one
//! dependency that re-exports every layer of the workspace, and the home of
//! the runnable examples (see `examples/` at the workspace root).
//!
//! ## The experiment API
//!
//! The toolkit's front door is the [`Experiment`] builder: describe a
//! [`Workload`] once, pick the cluster designs to compare, and evaluate it
//! under any combination of [`Estimator`] lenses —
//!
//! * [`Measured`] — real P-store cluster runs (engine-scale correctness,
//!   nominal-scale time/energy; Section 5 of the paper),
//! * [`Analytical`] — the closed-form Section 5.4 design model,
//! * [`Behavioural`] — the first-order Section 3.1 scaling law,
//! * [`Traced`] — per-node utilization traces replayed through the power
//!   models under an engine behaviour: the pipelined P-store engine or the
//!   disk-staging, mid-query-restarting DBMS-X engine of Section 3.2,
//! * [`Serving`] — an open-loop query stream (wrap the workload in a
//!   [`ServingWorkload`]; Poisson, recorded-trace, or diurnal-ramp arrivals
//!   via [`ArrivalProcess`]) through the discrete-event serving simulator:
//!   admission queueing, concurrency-limited or processor-sharing pools,
//!   FCFS / energy-aware / join-shortest-queue / power-of-two-choices
//!   placement, latency percentiles and energy-per-query.
//!
//! Every lens yields the same [`RunRecord`] shape (response time, energy,
//! EDP, per-node utilization/energy, normalized-vs-reference point), and
//! reports serialize to JSON for the figures pipeline.
//!
//! ```
//! use eedc::{Analytical, Experiment, SweepJoin};
//! use eedc::pstore::{ClusterSpec, JoinQuerySpec};
//! use eedc::simkit::catalog::cluster_v_node;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Q3-style sweep join (5% predicates on both inputs) over a
//! // homogeneous scale-down, predicted in closed form.
//! let workload = SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle());
//! let report = Experiment::new(&workload)
//!     .designs([
//!         ClusterSpec::homogeneous(cluster_v_node(), 16)?,
//!         ClusterSpec::homogeneous(cluster_v_node(), 8)?,
//!     ])
//!     .estimator(Analytical)
//!     .run()?;
//!
//! let series = &report.series[0];
//! assert_eq!(series.records[0].design, "16B,0W");
//! // Half the cluster is slower but does not halve the energy — the
//! // energy-proportionality gap the paper is about.
//! let point = series.record("8B,0W").unwrap().normalized.unwrap();
//! assert!(point.performance < 1.0);
//! assert!(point.energy > point.performance);
//! # Ok(())
//! # }
//! ```
//!
//! ## Layer map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`simkit`] | `eedc-simkit` | units, power models, hardware catalog, metrics, discrete-event sim kernel |
//! | [`netsim`] | `eedc-netsim` | flow-level interconnect simulator |
//! | [`storage`] | `eedc-storage` | columnar tables, partitioning, scans |
//! | [`tpch`] | `eedc-tpch` | deterministic generators, scale arithmetic, profiles, Zipf skew |
//! | [`pstore`] | `eedc-pstore` | operators, cluster runtime, concurrency, microbench |
//! | [`dbmsim`] | `eedc-dbmsim` | behavioural DBMS simulators: scaling law, utilization-trace replay, engine behaviours, serving layer |
//! | [`model`] | `eedc-core` | experiment API, Section 5.4 analytical model, Section 6 advisor, JSON writer/reader |
//!
//! A crate-by-crate tour with the full data-flow diagram lives in
//! `docs/ARCHITECTURE.md` at the repository root.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use eedc_core as model;
pub use eedc_dbmsim as dbmsim;
pub use eedc_netsim as netsim;
pub use eedc_pstore as pstore;
pub use eedc_simkit as simkit;
pub use eedc_storage as storage;
pub use eedc_tpch as tpch;

// The experiment API is the facade's front door: re-export it at the top
// level so examples and downstream code write `eedc::Experiment`.
pub use eedc_core::{
    Analytical, ArrivalProcess, Behavioural, ConcurrencySweep, DesignAdvisor, DesignSpace,
    Estimator, Experiment, ExperimentReport, FaultModel, FaultOutage, FaultStats, Measured,
    ProfiledQuery, RampSegment, RecoveryPolicy, RunRecord, RunSeries, ScalePolicy, Serving,
    ServingStats, ServingWorkload, SkewedJoin, SweepJoin, Traced, TransitionCost, Workload,
    WorkloadPlan,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_layers_are_reachable_through_the_umbrella() {
        // One end-to-end smoke: run a tiny measured experiment through the
        // re-exported facade paths.
        let workload = SweepJoin::section_5_4(crate::pstore::JoinQuerySpec::q3_dual_shuffle());
        let spec =
            crate::pstore::ClusterSpec::homogeneous(crate::simkit::catalog::cluster_v_node(), 2)
                .unwrap();
        let options = crate::pstore::RunOptions {
            engine_scale: crate::tpch::ScaleFactor(0.001),
            ..Default::default()
        };
        let report = Experiment::new(&workload)
            .design(spec)
            .estimator(Measured::new(options))
            .run()
            .unwrap();
        let record = &report.series[0].records[0];
        assert!(record.output_rows.unwrap() > 0);
        assert!(record.edp() > 0.0);
        assert_eq!(record.estimator, "measured");
    }

    #[test]
    fn advisor_is_reachable_through_the_umbrella() {
        // Second smoke: the analytical layer, end to end — enumerate a small
        // design grid and recommend a design for a performance floor.
        let workload = SweepJoin::section_5_4(crate::pstore::JoinQuerySpec::q3_dual_shuffle());
        let advisor = DesignAdvisor::new(Analytical, &workload);
        let space = DesignSpace::new(
            crate::simkit::catalog::cluster_v_node(),
            crate::simkit::catalog::laptop_b(),
            4,
            4,
        )
        .unwrap();
        let pick = advisor.recommend(&space, 0.5).unwrap().unwrap();
        assert!(pick.point.performance >= 0.5);
    }
}
