//! # eedc
//!
//! Umbrella crate for the energy-efficient database cluster toolkit: one
//! dependency that re-exports every layer of the workspace under a short
//! module path, and the home of the runnable examples (see `examples/` at
//! the workspace root).
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`simkit`] | `eedc-simkit` | units, power models, hardware catalog, metrics |
//! | [`netsim`] | `eedc-netsim` | flow-level interconnect simulator |
//! | [`storage`] | `eedc-storage` | columnar tables, partitioning, scans |
//! | [`tpch`] | `eedc-tpch` | deterministic generators, scale arithmetic, profiles |
//! | [`pstore`] | `eedc-pstore` | operators, cluster runtime, concurrency, microbench |
//! | [`dbmsim`] | `eedc-dbmsim` | behavioural DBMS scaling models |
//! | [`model`] | `eedc-core` | Section 5.4 analytical design model + Section 6 design-space advisor |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use eedc_core as model;
pub use eedc_dbmsim as dbmsim;
pub use eedc_netsim as netsim;
pub use eedc_pstore as pstore;
pub use eedc_simkit as simkit;
pub use eedc_storage as storage;
pub use eedc_tpch as tpch;

#[cfg(test)]
mod tests {
    #[test]
    fn all_layers_are_reachable_through_the_umbrella() {
        // One end-to-end smoke: build a tiny cluster through the re-exported
        // paths and run a shuffle join.
        let node = crate::simkit::catalog::cluster_v_node();
        let spec = crate::pstore::ClusterSpec::homogeneous(node, 2).unwrap();
        let cluster = crate::pstore::PStoreCluster::load(
            spec,
            crate::pstore::RunOptions {
                engine_scale: crate::tpch::ScaleFactor(0.001),
                ..Default::default()
            },
        )
        .unwrap();
        let execution = cluster
            .run(
                &crate::pstore::JoinQuerySpec::q3_dual_shuffle(),
                crate::pstore::JoinStrategy::DualShuffle,
            )
            .unwrap();
        assert!(execution.output_rows > 0);
        assert!(execution.measurement().edp() > 0.0);
    }

    #[test]
    fn advisor_is_reachable_through_the_umbrella() {
        // Second smoke: the analytical layer, end to end — enumerate a small
        // design grid and recommend a design for a performance floor.
        let advisor = crate::model::DesignAdvisor::new(
            crate::model::AnalyticalModel::section_5_4(
                crate::pstore::JoinQuerySpec::q3_dual_shuffle(),
            )
            .unwrap(),
            crate::pstore::JoinStrategy::DualShuffle,
        );
        let space = crate::model::DesignSpace::new(
            crate::simkit::catalog::cluster_v_node(),
            crate::simkit::catalog::laptop_b(),
            4,
            4,
        )
        .unwrap();
        let pick = advisor.recommend(&space, 0.5).unwrap().unwrap();
        assert!(pick.point.performance >= 0.5);
    }
}
