//! CPU-utilization traces.
//!
//! The paper converts measured CPU utilization into wall power through the
//! per-node regression models and then integrates power over the query's
//! response time to obtain energy. A [`UtilizationTrace`] is the simulated
//! analogue of the iLO2 / WattsUp measurement stream: a piecewise-constant
//! utilization-over-time signal that can be integrated against any
//! [`PowerModel`].

use crate::error::SimError;
use crate::power::PowerModel;
use crate::units::{Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// A single segment of a trace: the node ran at `utilization` for `duration`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSegment {
    /// Length of the segment.
    pub duration: Seconds,
    /// CPU utilization fraction in `[0, 1]` during the segment.
    pub utilization: f64,
}

/// A piecewise-constant CPU-utilization signal over time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UtilizationTrace {
    segments: Vec<TraceSegment>,
}

impl UtilizationTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// A trace consisting of a single segment.
    pub fn constant(duration: Seconds, utilization: f64) -> Result<Self, SimError> {
        let mut trace = Self::new();
        trace.push(duration, utilization)?;
        Ok(trace)
    }

    /// Append a segment to the end of the trace.
    pub fn push(&mut self, duration: Seconds, utilization: f64) -> Result<(), SimError> {
        if !duration.is_finite() || duration.value() < 0.0 {
            return Err(SimError::invalid(format!(
                "segment duration must be non-negative and finite, got {}",
                duration.value()
            )));
        }
        if !(0.0..=1.0).contains(&utilization) {
            return Err(SimError::invalid(format!(
                "utilization {utilization} outside [0, 1]"
            )));
        }
        if duration.value() > 0.0 {
            self.segments.push(TraceSegment {
                duration,
                utilization,
            });
        }
        Ok(())
    }

    /// Append every segment of `other` to this trace.
    pub fn extend(&mut self, other: &UtilizationTrace) {
        self.segments.extend_from_slice(&other.segments);
    }

    /// The segments of the trace in time order.
    pub fn segments(&self) -> &[TraceSegment] {
        &self.segments
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the trace has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total duration covered by the trace.
    pub fn total_time(&self) -> Seconds {
        self.segments.iter().map(|s| s.duration).sum()
    }

    /// Time-weighted average utilization over the trace (0 for an empty trace).
    pub fn average_utilization(&self) -> f64 {
        let total = self.total_time().value();
        if total <= f64::EPSILON {
            return 0.0;
        }
        self.segments
            .iter()
            .map(|s| s.utilization * s.duration.value())
            .sum::<f64>()
            / total
    }

    /// Integrate the trace against a power model to obtain the energy consumed
    /// by the node over the trace (the simulated analogue of a WattsUp meter
    /// reading).
    pub fn energy_with(&self, model: &PowerModel) -> Joules {
        self.segments
            .iter()
            .map(|s| model.power_at(s.utilization) * s.duration)
            .sum()
    }

    /// Time-weighted average power against a model (0 W for an empty trace).
    pub fn average_power_with(&self, model: &PowerModel) -> Watts {
        let total = self.total_time();
        if total.value() <= f64::EPSILON {
            return Watts::zero();
        }
        self.energy_with(model) / total
    }

    /// Sampled utilization at an offset from the start of the trace, mirroring
    /// a 1 Hz power-meter readout. Returns `None` past the end of the trace.
    pub fn utilization_at(&self, offset: Seconds) -> Option<f64> {
        if offset.value() < 0.0 {
            return None;
        }
        let mut elapsed = 0.0;
        for segment in &self.segments {
            elapsed += segment.duration.value();
            if offset.value() < elapsed {
                return Some(segment.utilization);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beefy() -> PowerModel {
        PowerModel::power_law(130.03, 0.2369)
    }

    #[test]
    fn constant_trace_energy_matches_closed_form() {
        let trace = UtilizationTrace::constant(Seconds(10.0), 0.5).unwrap();
        let expected = beefy().power_at(0.5) * Seconds(10.0);
        assert_eq!(trace.energy_with(&beefy()), expected);
        assert_eq!(trace.total_time(), Seconds(10.0));
        assert!((trace.average_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn multi_segment_energy_is_additive() {
        let mut trace = UtilizationTrace::new();
        trace.push(Seconds(5.0), 1.0).unwrap();
        trace.push(Seconds(5.0), 0.25).unwrap();
        let expected = beefy().power_at(1.0) * Seconds(5.0) + beefy().power_at(0.25) * Seconds(5.0);
        let got = trace.energy_with(&beefy());
        assert!((got.value() - expected.value()).abs() < 1e-9);
        // Average utilization is the time-weighted mean.
        assert!((trace.average_utilization() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn average_power_is_energy_over_time() {
        let mut trace = UtilizationTrace::new();
        trace.push(Seconds(2.0), 0.8).unwrap();
        trace.push(Seconds(8.0), 0.1).unwrap();
        let avg = trace.average_power_with(&beefy());
        let manual = trace.energy_with(&beefy()) / trace.total_time();
        assert!((avg.value() - manual.value()).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_segments_are_dropped() {
        let mut trace = UtilizationTrace::new();
        trace.push(Seconds(0.0), 0.5).unwrap();
        assert!(trace.is_empty());
        assert_eq!(trace.average_utilization(), 0.0);
        assert_eq!(trace.average_power_with(&beefy()), Watts::zero());
    }

    #[test]
    fn invalid_segments_are_rejected() {
        let mut trace = UtilizationTrace::new();
        assert!(trace.push(Seconds(-1.0), 0.5).is_err());
        assert!(trace.push(Seconds(1.0), 1.5).is_err());
        assert!(trace.push(Seconds(f64::NAN), 0.5).is_err());
        assert!(UtilizationTrace::constant(Seconds(1.0), -0.1).is_err());
    }

    #[test]
    fn extend_concatenates_traces() {
        let mut a = UtilizationTrace::constant(Seconds(1.0), 0.2).unwrap();
        let b = UtilizationTrace::constant(Seconds(2.0), 0.8).unwrap();
        a.extend(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.total_time(), Seconds(3.0));
    }

    #[test]
    fn utilization_sampling() {
        let mut trace = UtilizationTrace::new();
        trace.push(Seconds(2.0), 0.3).unwrap();
        trace.push(Seconds(3.0), 0.9).unwrap();
        assert_eq!(trace.utilization_at(Seconds(0.5)), Some(0.3));
        assert_eq!(trace.utilization_at(Seconds(2.5)), Some(0.9));
        assert_eq!(trace.utilization_at(Seconds(5.5)), None);
        assert_eq!(trace.utilization_at(Seconds(-1.0)), None);
    }
}
