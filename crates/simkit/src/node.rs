//! Per-node hardware descriptions.
//!
//! A [`NodeSpec`] captures everything the higher layers need to know about a
//! single cluster node: its role class (Beefy or Wimpy, in the paper's
//! terminology), CPU configuration, memory capacity, I/O and network
//! bandwidth, the maximum rate at which its CPU can push tuples through the
//! P-store operators (the `C_B` / `C_W` constants of Table 3), the engine
//! utilization floor (`G_B` / `G_W`), and its wall-power model.
//!
//! Specs are constructed either from the [`crate::catalog`] (which contains
//! the exact machines used in the paper) or with [`NodeSpecBuilder`] for
//! what-if hardware.

use crate::error::SimError;
use crate::power::PowerModel;
use crate::units::{Megabytes, MegabytesPerSec, Watts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The role a node plays in a cluster design, following the paper's
/// terminology (Section 5): traditional server-class "Beefy" nodes versus
/// low-power "Wimpy" nodes ("slower but energy efficient").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeClass {
    /// Traditional server / workstation class hardware (Xeon, desktop i7).
    Beefy,
    /// Low-power hardware (mobile CPUs, Atom, laptops).
    Wimpy,
}

impl fmt::Display for NodeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeClass::Beefy => write!(f, "Beefy"),
            NodeClass::Wimpy => write!(f, "Wimpy"),
        }
    }
}

/// Complete hardware description of a single cluster node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Human-readable name (e.g. `"cluster-v"`, `"laptop-b"`).
    pub name: String,
    /// Beefy or Wimpy role class.
    pub class: NodeClass,
    /// Physical cores.
    pub cores: u32,
    /// Hardware threads.
    pub threads: u32,
    /// Main memory capacity.
    pub memory: Megabytes,
    /// Sequential storage (disk/SSD) scan bandwidth — the model variable `I`.
    pub disk_bandwidth: MegabytesPerSec,
    /// Network interface bandwidth — the model variable `L`.
    pub network_bandwidth: MegabytesPerSec,
    /// Maximum rate at which the CPU can process tuples through the P-store
    /// operator pipeline — the model constants `C_B` / `C_W` of Table 3.
    pub cpu_bandwidth: MegabytesPerSec,
    /// Rate at which this machine executes the single-node, cache-conscious,
    /// multi-threaded hash-join microbenchmark of Section 5.1 / Figure 6.
    /// This is a different (heavier) code path than the P-store scan pipeline,
    /// hence a separate calibration constant.
    pub hashjoin_bandwidth: MegabytesPerSec,
    /// Engine-inherent CPU utilization floor while P-store is executing — the
    /// constants `G_B` / `G_W` of Table 3.
    pub utilization_floor: f64,
    /// CPU-utilization → wall-power model.
    pub power_model: PowerModel,
    /// Measured idle wall power (Table 2). For server nodes the paper reports
    /// only the regression model; for those we store the model's near-idle
    /// evaluation.
    pub idle_power: Watts,
}

impl NodeSpec {
    /// Start building a node spec with the given name and class.
    pub fn builder(name: impl Into<String>, class: NodeClass) -> NodeSpecBuilder {
        NodeSpecBuilder::new(name, class)
    }

    /// Whether this node is a Beefy node.
    pub fn is_beefy(&self) -> bool {
        self.class == NodeClass::Beefy
    }

    /// Whether this node is a Wimpy node.
    pub fn is_wimpy(&self) -> bool {
        self.class == NodeClass::Wimpy
    }

    /// Wall power drawn at the given CPU utilization fraction.
    pub fn power_at(&self, utilization: f64) -> Watts {
        self.power_model.power_at(utilization)
    }

    /// Wall power at the engine utilization floor (a node that is running
    /// P-store but stalled on the network or disk).
    pub fn floor_power(&self) -> Watts {
        self.power_at(self.utilization_floor)
    }

    /// Peak wall power at 100% CPU utilization.
    pub fn peak_power(&self) -> Watts {
        self.power_model.peak_power()
    }

    /// CPU utilization while the node processes data at `rate`, following the
    /// paper's model: the engine floor (`G`) plus the fraction of the maximum
    /// CPU bandwidth (`C`) in use, clamped to `[0, 1]`.
    pub fn utilization_at_rate(&self, rate: MegabytesPerSec) -> f64 {
        let c = self.cpu_bandwidth.value();
        if c <= f64::EPSILON {
            return self.utilization_floor.clamp(0.0, 1.0);
        }
        (self.utilization_floor + rate.value() / c).clamp(0.0, 1.0)
    }

    /// Wall power drawn while processing data at `rate`.
    pub fn power_at_rate(&self, rate: MegabytesPerSec) -> Watts {
        self.power_at(self.utilization_at_rate(rate))
    }

    /// Whether a hash table of `hash_table_size` fits in this node's memory,
    /// leaving `headroom_fraction` of memory for the rest of the execution
    /// (buffers, the probe-side working set, the OS).
    pub fn fits_hash_table(&self, hash_table_size: Megabytes, headroom_fraction: f64) -> bool {
        let usable = self.memory.value() * (1.0 - headroom_fraction.clamp(0.0, 1.0));
        hash_table_size.value() <= usable
    }
}

impl fmt::Display for NodeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}c/{}t, {:.0} GB RAM, disk {:.0} MB/s, net {:.0} MB/s",
            self.name,
            self.class,
            self.cores,
            self.threads,
            self.memory.as_gigabytes(),
            self.disk_bandwidth.value(),
            self.network_bandwidth.value(),
        )
    }
}

/// Builder for [`NodeSpec`] with validation of the physical parameters.
#[derive(Debug, Clone)]
pub struct NodeSpecBuilder {
    name: String,
    class: NodeClass,
    cores: u32,
    threads: u32,
    memory: Megabytes,
    disk_bandwidth: MegabytesPerSec,
    network_bandwidth: MegabytesPerSec,
    cpu_bandwidth: MegabytesPerSec,
    hashjoin_bandwidth: Option<MegabytesPerSec>,
    utilization_floor: f64,
    power_model: PowerModel,
    idle_power: Option<Watts>,
}

impl NodeSpecBuilder {
    /// Start a new builder. Sensible server-class defaults are supplied for
    /// every field; callers override what they know.
    pub fn new(name: impl Into<String>, class: NodeClass) -> Self {
        Self {
            name: name.into(),
            class,
            cores: 4,
            threads: 8,
            memory: Megabytes::from_gigabytes(32.0),
            disk_bandwidth: MegabytesPerSec(270.0),
            network_bandwidth: MegabytesPerSec::from_gigabits_per_sec(1.0),
            cpu_bandwidth: MegabytesPerSec(4000.0),
            hashjoin_bandwidth: None,
            utilization_floor: 0.25,
            power_model: PowerModel::power_law(130.03, 0.2369),
            idle_power: None,
        }
    }

    /// Set the core / hardware thread counts.
    pub fn cpu(mut self, cores: u32, threads: u32) -> Self {
        self.cores = cores;
        self.threads = threads;
        self
    }

    /// Set the main memory capacity.
    pub fn memory(mut self, memory: Megabytes) -> Self {
        self.memory = memory;
        self
    }

    /// Set the storage scan bandwidth (model variable `I`).
    pub fn disk_bandwidth(mut self, bw: MegabytesPerSec) -> Self {
        self.disk_bandwidth = bw;
        self
    }

    /// Set the network bandwidth (model variable `L`).
    pub fn network_bandwidth(mut self, bw: MegabytesPerSec) -> Self {
        self.network_bandwidth = bw;
        self
    }

    /// Set the maximum CPU processing bandwidth (model constants `C_B`/`C_W`).
    pub fn cpu_bandwidth(mut self, bw: MegabytesPerSec) -> Self {
        self.cpu_bandwidth = bw;
        self
    }

    /// Set the single-node hash-join microbenchmark rate (Figure 6).
    pub fn hashjoin_bandwidth(mut self, bw: MegabytesPerSec) -> Self {
        self.hashjoin_bandwidth = Some(bw);
        self
    }

    /// Set the engine utilization floor (model constants `G_B`/`G_W`).
    pub fn utilization_floor(mut self, floor: f64) -> Self {
        self.utilization_floor = floor;
        self
    }

    /// Set the CPU-utilization → wall-power model.
    pub fn power_model(mut self, model: PowerModel) -> Self {
        self.power_model = model;
        self
    }

    /// Set the measured idle power (Table 2). If not supplied, the power
    /// model's near-idle evaluation is used.
    pub fn idle_power(mut self, idle: Watts) -> Self {
        self.idle_power = Some(idle);
        self
    }

    /// Validate and produce the [`NodeSpec`].
    pub fn build(self) -> Result<NodeSpec, SimError> {
        if self.name.is_empty() {
            return Err(SimError::invalid("node name must not be empty"));
        }
        if self.cores == 0 || self.threads == 0 {
            return Err(SimError::invalid("core and thread counts must be positive"));
        }
        if self.threads < self.cores {
            return Err(SimError::invalid(format!(
                "thread count {} smaller than core count {}",
                self.threads, self.cores
            )));
        }
        for (label, v) in [
            ("memory", self.memory.value()),
            ("disk bandwidth", self.disk_bandwidth.value()),
            ("network bandwidth", self.network_bandwidth.value()),
            ("cpu bandwidth", self.cpu_bandwidth.value()),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(SimError::invalid(format!(
                    "{label} must be a positive finite value, got {v}"
                )));
            }
        }
        if !(0.0..=1.0).contains(&self.utilization_floor) {
            return Err(SimError::invalid(format!(
                "utilization floor {} outside [0, 1]",
                self.utilization_floor
            )));
        }
        let idle_power = self
            .idle_power
            .unwrap_or_else(|| self.power_model.near_idle_power());
        let hashjoin_bandwidth = self.hashjoin_bandwidth.unwrap_or(self.cpu_bandwidth);
        Ok(NodeSpec {
            name: self.name,
            class: self.class,
            cores: self.cores,
            threads: self.threads,
            memory: self.memory,
            disk_bandwidth: self.disk_bandwidth,
            network_bandwidth: self.network_bandwidth,
            cpu_bandwidth: self.cpu_bandwidth,
            hashjoin_bandwidth,
            utilization_floor: self.utilization_floor,
            power_model: self.power_model,
            idle_power,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beefy() -> NodeSpec {
        NodeSpec::builder("beefy-test", NodeClass::Beefy)
            .cpu(8, 16)
            .memory(Megabytes::from_gigabytes(48.0))
            .disk_bandwidth(MegabytesPerSec(1200.0))
            .network_bandwidth(MegabytesPerSec(100.0))
            .cpu_bandwidth(MegabytesPerSec(5037.0))
            .utilization_floor(0.25)
            .power_model(PowerModel::power_law(130.03, 0.2369))
            .build()
            .unwrap()
    }

    fn wimpy() -> NodeSpec {
        NodeSpec::builder("wimpy-test", NodeClass::Wimpy)
            .cpu(2, 4)
            .memory(Megabytes::from_gigabytes(8.0))
            .disk_bandwidth(MegabytesPerSec(270.0))
            .network_bandwidth(MegabytesPerSec(100.0))
            .cpu_bandwidth(MegabytesPerSec(1129.0))
            .utilization_floor(0.13)
            .power_model(PowerModel::power_law(10.994, 0.2875))
            .idle_power(Watts(11.0))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_expected_spec() {
        let n = beefy();
        assert!(n.is_beefy());
        assert!(!n.is_wimpy());
        assert_eq!(n.cores, 8);
        assert_eq!(n.memory, Megabytes::from_gigabytes(48.0));
        // Idle power defaults to the power model's near-idle value.
        assert!((n.idle_power.value() - 130.03).abs() < 1e-6);
        // Hash-join bandwidth defaults to the CPU bandwidth.
        assert_eq!(n.hashjoin_bandwidth, n.cpu_bandwidth);
    }

    #[test]
    fn explicit_idle_power_is_kept() {
        let n = wimpy();
        assert_eq!(n.idle_power, Watts(11.0));
    }

    #[test]
    fn utilization_at_rate_follows_model() {
        let n = beefy();
        // Fully stalled node sits at the engine floor.
        assert!((n.utilization_at_rate(MegabytesPerSec(0.0)) - 0.25).abs() < 1e-12);
        // Processing at exactly C would exceed 1.0 together with the floor, so
        // it clamps.
        assert_eq!(n.utilization_at_rate(MegabytesPerSec(5037.0)), 1.0);
        // Half the CPU bandwidth → floor + 0.5.
        let u = n.utilization_at_rate(MegabytesPerSec(5037.0 / 2.0));
        assert!((u - 0.75).abs() < 1e-9);
    }

    #[test]
    fn power_at_rate_is_monotonic() {
        let n = wimpy();
        let mut prev = n.power_at_rate(MegabytesPerSec(0.0)).value();
        for i in 1..=10 {
            let cur = n.power_at_rate(MegabytesPerSec(i as f64 * 112.9)).value();
            assert!(cur + 1e-9 >= prev);
            prev = cur;
        }
    }

    #[test]
    fn fits_hash_table_respects_headroom() {
        let n = wimpy(); // 8 GB
        assert!(n.fits_hash_table(Megabytes::from_gigabytes(3.0), 0.125));
        assert!(!n.fits_hash_table(Megabytes::from_gigabytes(8.8), 0.125));
        // Zero headroom: exactly the memory size fits.
        assert!(n.fits_hash_table(Megabytes::from_gigabytes(8.0), 0.0));
    }

    #[test]
    fn builder_rejects_invalid_input() {
        assert!(NodeSpec::builder("", NodeClass::Beefy).build().is_err());
        assert!(NodeSpec::builder("x", NodeClass::Beefy)
            .cpu(0, 0)
            .build()
            .is_err());
        assert!(NodeSpec::builder("x", NodeClass::Beefy)
            .cpu(8, 4)
            .build()
            .is_err());
        assert!(NodeSpec::builder("x", NodeClass::Beefy)
            .memory(Megabytes(0.0))
            .build()
            .is_err());
        assert!(NodeSpec::builder("x", NodeClass::Beefy)
            .disk_bandwidth(MegabytesPerSec(-1.0))
            .build()
            .is_err());
        assert!(NodeSpec::builder("x", NodeClass::Beefy)
            .utilization_floor(1.5)
            .build()
            .is_err());
    }

    #[test]
    fn display_is_readable() {
        let s = beefy().to_string();
        assert!(s.contains("beefy-test"));
        assert!(s.contains("Beefy"));
        assert!(s.contains("48 GB"));
    }

    #[test]
    fn class_display() {
        assert_eq!(NodeClass::Beefy.to_string(), "Beefy");
        assert_eq!(NodeClass::Wimpy.to_string(), "Wimpy");
    }
}
