//! # eedc-simkit
//!
//! Simulation substrate for the energy-efficient database cluster design toolkit.
//!
//! This crate provides the building blocks that every higher layer of the
//! workspace relies on:
//!
//! * strongly-typed physical [`units`] (seconds, joules, watts, megabytes),
//! * node [`power`] models (the CPU-utilization → wall-power regression models
//!   published in the paper, plus fitting routines to derive new ones from
//!   measurements),
//! * per-node hardware descriptions ([`node::NodeSpec`]) and a [`catalog`] of the
//!   exact machines used in the paper (Cluster-V servers, the Beefy L5630 nodes,
//!   the Wimpy "Laptop B", the Atom desktop, and the two workstations),
//! * [`trace`]s of CPU utilization over time and [`energy`] meters that integrate
//!   them into joules,
//! * the energy-efficiency [`metrics`] used throughout the paper: response time,
//!   performance (1 / response time), energy, the Energy-Delay-Product (EDP) and
//!   normalized energy-vs-performance points relative to a reference
//!   configuration,
//! * a discrete-event [`sim`] kernel (queryable clock, binary-heap event queue
//!   with stable FIFO tie-breaking, deterministic seeded RNG) that the serving
//!   simulator in `eedc-dbmsim` builds on.
//!
//! The substrate is deliberately free of any database logic; the storage engine,
//! the P-store execution kernel, the behavioural DBMS simulators and the
//! analytical model are all built on top of it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod energy;
pub mod error;
pub mod metrics;
pub mod node;
pub mod power;
pub mod sim;
pub mod trace;
pub mod units;

pub use catalog::HardwareCatalog;
pub use energy::{EnergyMeter, PhaseEnergy};
pub use error::SimError;
pub use metrics::{EdpLine, Measurement, NormalizedPoint, NormalizedSeries};
pub use node::{NodeClass, NodeSpec, NodeSpecBuilder};
pub use power::{FitReport, PowerModel, PowerSample};
pub use sim::{Event, EventHandler, Simulation};
pub use trace::UtilizationTrace;
pub use units::{Joules, Megabytes, MegabytesPerSec, Seconds, Watts};
