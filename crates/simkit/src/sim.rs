//! Discrete-event simulation kernel.
//!
//! The substrate's other modules are *closed-form*: they turn a workload
//! description directly into times and joules. This module adds the missing
//! *open-form* piece — a minimal event-driven kernel in the `dslab-core`
//! shape — so higher layers (the `eedc-dbmsim` serving simulator) can model
//! queueing phenomena that closed forms cannot: admission queues, drops,
//! latency percentiles under sustained load.
//!
//! The kernel is deliberately tiny:
//!
//! * a queryable `f64` clock ([`Simulation::time`]),
//! * a binary-heap event queue ordered by `(time, seq)` — the monotonically
//!   increasing sequence number gives **stable FIFO tie-breaking** for events
//!   scheduled at the same timestamp, which is what makes runs reproducible,
//! * an [`EventHandler`] trait the owning component implements, driven by
//!   [`Simulation::step`] / [`Simulation::run`],
//! * a deterministic seeded RNG ([`Simulation::sample_unit`],
//!   [`Simulation::sample_exponential`]) so every draw in a run is a pure
//!   function of the seed.
//!
//! ```
//! use eedc_simkit::sim::{EventHandler, Simulation};
//!
//! struct Counter {
//!     fired: Vec<(f64, u32)>,
//! }
//!
//! impl EventHandler<u32> for Counter {
//!     fn on_event(&mut self, sim: &mut Simulation<u32>, payload: u32) {
//!         self.fired.push((sim.time(), payload));
//!         if payload < 3 {
//!             sim.schedule_in(1.0, payload + 1).unwrap();
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(42);
//! sim.schedule_in(0.5, 1).unwrap();
//! let mut counter = Counter { fired: Vec::new() };
//! sim.run(&mut counter);
//! assert_eq!(counter.fired, vec![(0.5, 1), (1.5, 2), (2.5, 3)]);
//! ```

use crate::error::SimError;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled occurrence: the payload plus the kernel bookkeeping that
/// orders it. Returned by [`Simulation::step`].
#[derive(Debug, Clone, PartialEq)]
pub struct Event<E> {
    /// Simulated time at which the event fires.
    pub time: f64,
    /// Kernel-assigned sequence number; the FIFO tie-breaker at equal times.
    pub seq: u64,
    /// The caller's event payload.
    pub payload: E,
}

/// Heap entry. `BinaryHeap` is a max-heap, so `Ord` is inverted to pop the
/// *earliest* `(time, seq)` first.
#[derive(Debug)]
struct Scheduled<E> {
    time: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // `total_cmp` keeps the order total even if a NaN ever slipped past
        // entry validation (a NaN-poisoned heap silently corrupts pop order
        // under `partial_cmp` + fallback); seq is unique, making the order
        // deterministic. Times are finite, so -0.0/+0.0 is the only pair
        // total_cmp splits that `==` does not — both sort before every
        // positive time, and seq still breaks exact ties FIFO.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A component that reacts to events popped by [`Simulation::run`].
///
/// The handler lives *outside* the simulation so it can freely schedule
/// follow-up events and draw random numbers through the `&mut Simulation`
/// it receives.
pub trait EventHandler<E> {
    /// React to one event; `sim.time()` reads the event's timestamp.
    fn on_event(&mut self, sim: &mut Simulation<E>, payload: E);
}

/// The discrete-event kernel: clock + ordered event queue + seeded RNG.
#[derive(Debug)]
pub struct Simulation<E> {
    clock: f64,
    queue: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    processed: u64,
    seed: u64,
    rng: SmallRng,
}

impl<E> Simulation<E> {
    /// Create an empty simulation at time zero with a deterministic RNG
    /// seeded from `seed`.
    pub fn new(seed: u64) -> Self {
        Simulation {
            clock: 0.0,
            queue: BinaryHeap::new(),
            next_seq: 0,
            processed: 0,
            seed,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Current simulated time.
    pub fn time(&self) -> f64 {
        self.clock
    }

    /// The seed this simulation's RNG was constructed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of events waiting in the queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.queue.peek().map(|s| s.time)
    }

    /// Schedule `payload` to fire `delay` simulated seconds from now.
    /// Returns the event's sequence number.
    pub fn schedule_in(&mut self, delay: f64, payload: E) -> Result<u64, SimError> {
        if !delay.is_finite() || delay < 0.0 {
            return Err(SimError::invalid(format!(
                "event delay must be finite and non-negative, got {delay}"
            )));
        }
        self.push(self.clock + delay, payload)
    }

    /// Schedule `payload` at absolute time `time` (which must not lie in the
    /// past). Returns the event's sequence number.
    pub fn schedule_at(&mut self, time: f64, payload: E) -> Result<u64, SimError> {
        if !time.is_finite() || time < self.clock {
            return Err(SimError::invalid(format!(
                "event time {time} is not finite or lies before the clock ({})",
                self.clock
            )));
        }
        self.push(time, payload)
    }

    fn push(&mut self, time: f64, payload: E) -> Result<u64, SimError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled { time, seq, payload });
        Ok(seq)
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    /// Events at equal times pop in scheduling (FIFO) order.
    pub fn step(&mut self) -> Option<Event<E>> {
        let next = self.queue.pop()?;
        debug_assert!(next.time >= self.clock, "event queue went backwards");
        self.clock = next.time;
        self.processed += 1;
        Some(Event {
            time: next.time,
            seq: next.seq,
            payload: next.payload,
        })
    }

    /// Drive `handler` until the event queue is empty; returns the number of
    /// events processed by this call.
    pub fn run(&mut self, handler: &mut impl EventHandler<E>) -> u64 {
        let before = self.processed;
        while let Some(event) = self.step() {
            handler.on_event(self, event.payload);
        }
        self.processed - before
    }

    /// Drive `handler` until the queue is empty or the next event lies
    /// strictly beyond `horizon`; returns the number of events processed.
    /// Events left beyond the horizon stay queued.
    pub fn run_until(&mut self, horizon: f64, handler: &mut impl EventHandler<E>) -> u64 {
        let before = self.processed;
        while let Some(next) = self.peek_time() {
            if next > horizon {
                break;
            }
            let event = self.step().expect("peeked event must pop");
            handler.on_event(self, event.payload);
        }
        self.processed - before
    }

    /// One uniform draw in `[0, 1)` from the seeded RNG.
    pub fn sample_unit(&mut self) -> f64 {
        self.rng.gen_range(0.0..1.0)
    }

    /// One exponential draw with the given mean (inverse-CDF method) —
    /// the inter-arrival law of a Poisson process with rate `1 / mean`.
    pub fn sample_exponential(&mut self, mean: f64) -> Result<f64, SimError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(SimError::invalid(format!(
                "exponential mean must be finite and positive, got {mean}"
            )));
        }
        // sample_unit is in [0, 1), so 1 - u is in (0, 1] and ln stays finite.
        Ok(-(1.0 - self.sample_unit()).ln() * mean)
    }

    /// Direct access to the seeded RNG for distributions the helpers do not
    /// cover.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        fired: Vec<(f64, u8)>,
    }

    impl EventHandler<u8> for Recorder {
        fn on_event(&mut self, sim: &mut Simulation<u8>, payload: u8) {
            self.fired.push((sim.time(), payload));
        }
    }

    #[test]
    fn events_pop_in_time_order_with_fifo_tie_breaking() {
        let mut sim: Simulation<u8> = Simulation::new(1);
        sim.schedule_in(2.0, 10).unwrap();
        sim.schedule_in(1.0, 20).unwrap();
        // Three events at the same instant must pop in scheduling order.
        sim.schedule_in(1.0, 21).unwrap();
        sim.schedule_in(1.0, 22).unwrap();
        sim.schedule_at(0.5, 30).unwrap();
        let mut recorder = Recorder { fired: Vec::new() };
        let processed = sim.run(&mut recorder);
        assert_eq!(processed, 5);
        assert_eq!(
            recorder.fired,
            vec![(0.5, 30), (1.0, 20), (1.0, 21), (1.0, 22), (2.0, 10)]
        );
        assert_eq!(sim.pending(), 0);
        assert_eq!(sim.processed(), 5);
    }

    #[test]
    fn clock_is_queryable_and_monotonic() {
        let mut sim: Simulation<u8> = Simulation::new(1);
        assert_eq!(sim.time(), 0.0);
        sim.schedule_in(3.0, 1).unwrap();
        sim.schedule_in(1.0, 2).unwrap();
        assert_eq!(sim.peek_time(), Some(1.0));
        let mut last = 0.0;
        while let Some(event) = sim.step() {
            assert!(event.time >= last);
            assert_eq!(sim.time(), event.time);
            last = event.time;
        }
        assert_eq!(sim.time(), 3.0);
    }

    #[test]
    fn invalid_schedules_are_rejected() {
        let mut sim: Simulation<u8> = Simulation::new(1);
        assert!(sim.schedule_in(-1.0, 0).is_err());
        assert!(sim.schedule_in(f64::NAN, 0).is_err());
        assert!(sim.schedule_in(f64::INFINITY, 0).is_err());
        sim.schedule_in(5.0, 0).unwrap();
        sim.step();
        assert!(sim.schedule_at(4.0, 0).is_err(), "past is rejected");
        assert!(sim.schedule_at(5.0, 0).is_ok(), "present is allowed");
    }

    #[test]
    fn run_until_leaves_later_events_queued() {
        let mut sim: Simulation<u8> = Simulation::new(1);
        for t in 1..=5 {
            sim.schedule_at(t as f64, t).unwrap();
        }
        let mut recorder = Recorder { fired: Vec::new() };
        assert_eq!(sim.run_until(3.0, &mut recorder), 3);
        assert_eq!(sim.pending(), 2);
        assert_eq!(sim.time(), 3.0);
        assert_eq!(sim.run(&mut recorder), 2);
        assert_eq!(recorder.fired.len(), 5);
    }

    #[test]
    fn same_seed_gives_bit_identical_draws() {
        let draws = |seed: u64| -> Vec<f64> {
            let mut sim: Simulation<u8> = Simulation::new(seed);
            (0..256)
                .map(|i| {
                    if i % 2 == 0 {
                        sim.sample_unit()
                    } else {
                        sim.sample_exponential(2.0).unwrap()
                    }
                })
                .collect()
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8));
    }

    #[test]
    fn total_cmp_heap_pops_in_stable_time_seq_order() {
        // The event-queue comparator moved from a `partial_cmp` +
        // `unwrap_or(Equal)` chain to `f64::total_cmp`; for finite inputs
        // the pop order must be unchanged — nondecreasing time, FIFO seq at
        // equal times — i.e. exactly the stable sort of the schedule.
        let mut sim: Simulation<usize> = Simulation::new(99);
        let mut times = Vec::new();
        for i in 0..512 {
            // Seeded draws, quantized so exact duplicate times occur often.
            let t = (sim.sample_unit() * 32.0).floor() / 8.0;
            times.push(t);
            sim.schedule_at(t, i).unwrap();
        }
        let mut expected: Vec<(f64, usize)> = times.iter().copied().zip(0..times.len()).collect();
        expected.sort_by(|a, b| a.0.total_cmp(&b.0)); // sort_by is stable
        let mut popped = Vec::new();
        while let Some(event) = sim.step() {
            popped.push((event.time, event.seq as usize));
            assert_eq!(event.payload, event.seq as usize);
        }
        assert_eq!(popped, expected);
    }

    #[test]
    fn exponential_sampling_matches_its_mean() {
        let mut sim: Simulation<u8> = Simulation::new(11);
        let n = 200_000;
        let mean = 0.25;
        let sum: f64 = (0..n).map(|_| sim.sample_exponential(mean).unwrap()).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() / mean < 0.02,
            "observed mean {observed} vs {mean}"
        );
        assert!(sim.sample_exponential(0.0).is_err());
        assert!(sim.sample_exponential(-1.0).is_err());
    }
}
