//! Strongly-typed physical units used throughout the toolkit.
//!
//! The simulation layers deal in four physical quantities: time (seconds),
//! energy (joules), power (watts) and data volume (megabytes, with rates in
//! megabytes per second). Wrapping them in newtypes keeps the arithmetic honest
//! (`Watts × Seconds = Joules`, `Megabytes ÷ MegabytesPerSec = Seconds`) while
//! still being cheap `f64` wrappers.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

macro_rules! unit {
    ($(#[$doc:meta])* $name:ident, $suffix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// Construct from a raw `f64` value.
            pub const fn new(v: f64) -> Self {
                Self(v)
            }

            /// The raw `f64` value.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// The zero value of this unit.
            pub const fn zero() -> Self {
                Self(0.0)
            }

            /// Whether the value is finite (not NaN or infinite).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Element-wise maximum.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Element-wise minimum.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                // Fold from +0.0: std's `Sum<f64>` starts at -0.0, which
                // leaks a "-0" into reports for empty sums (e.g. the network
                // bytes of a fully local transfer).
                Self(iter.map(|v| v.0).fold(0.0, |acc, v| acc + v))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $suffix)
                } else {
                    write!(f, "{:.3} {}", self.0, $suffix)
                }
            }
        }
    };
}

unit!(
    /// A duration in seconds.
    Seconds,
    "s"
);
unit!(
    /// An amount of energy in joules.
    Joules,
    "J"
);
unit!(
    /// An amount of power in watts.
    Watts,
    "W"
);
unit!(
    /// A data volume in megabytes (10^6 bytes).
    Megabytes,
    "MB"
);
unit!(
    /// A data rate in megabytes per second.
    MegabytesPerSec,
    "MB/s"
);

impl Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Div<MegabytesPerSec> for Megabytes {
    type Output = Seconds;
    fn div(self, rhs: MegabytesPerSec) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Div<Seconds> for Megabytes {
    type Output = MegabytesPerSec;
    fn div(self, rhs: Seconds) -> MegabytesPerSec {
        MegabytesPerSec(self.0 / rhs.0)
    }
}

impl Mul<Seconds> for MegabytesPerSec {
    type Output = Megabytes;
    fn mul(self, rhs: Seconds) -> Megabytes {
        Megabytes(self.0 * rhs.0)
    }
}

impl Joules {
    /// Convert to kilojoules.
    pub fn as_kilojoules(self) -> f64 {
        self.0 / 1_000.0
    }
}

impl Megabytes {
    /// Construct from gigabytes.
    pub fn from_gigabytes(gb: f64) -> Self {
        Megabytes(gb * 1_000.0)
    }

    /// Construct from terabytes.
    pub fn from_terabytes(tb: f64) -> Self {
        Megabytes(tb * 1_000_000.0)
    }

    /// Construct from raw bytes.
    pub fn from_bytes(bytes: u64) -> Self {
        Megabytes(bytes as f64 / 1.0e6)
    }

    /// Value in gigabytes.
    pub fn as_gigabytes(self) -> f64 {
        self.0 / 1_000.0
    }
}

impl MegabytesPerSec {
    /// Convert a link speed in gigabits per second to megabytes per second
    /// (decimal units: 1 Gb/s = 125 MB/s).
    pub fn from_gigabits_per_sec(gbps: f64) -> Self {
        MegabytesPerSec(gbps * 125.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts(100.0) * Seconds(10.0);
        assert_eq!(e, Joules(1000.0));
        let e = Seconds(10.0) * Watts(100.0);
        assert_eq!(e, Joules(1000.0));
    }

    #[test]
    fn energy_over_time_is_power() {
        assert_eq!(Joules(1000.0) / Seconds(10.0), Watts(100.0));
        assert_eq!(Joules(1000.0) / Watts(100.0), Seconds(10.0));
    }

    #[test]
    fn volume_over_rate_is_time() {
        assert_eq!(Megabytes(500.0) / MegabytesPerSec(100.0), Seconds(5.0));
        assert_eq!(Megabytes(500.0) / Seconds(5.0), MegabytesPerSec(100.0));
        assert_eq!(MegabytesPerSec(100.0) * Seconds(5.0), Megabytes(500.0));
    }

    #[test]
    fn unit_arithmetic_and_sum() {
        let total: Joules = [Joules(1.0), Joules(2.0), Joules(3.0)].into_iter().sum();
        assert_eq!(total, Joules(6.0));
        let empty: Joules = std::iter::empty().sum();
        assert!(empty.value().is_sign_positive(), "empty sum must be +0.0");
        assert_eq!(Seconds(3.0) + Seconds(2.0), Seconds(5.0));
        assert_eq!(Seconds(3.0) - Seconds(2.0), Seconds(1.0));
        assert_eq!(Seconds(3.0) * 2.0, Seconds(6.0));
        assert_eq!(Seconds(3.0) / 2.0, Seconds(1.5));
        assert!((Seconds(3.0) / Seconds(2.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn conversions() {
        assert_eq!(Megabytes::from_gigabytes(1.5), Megabytes(1500.0));
        assert_eq!(Megabytes::from_terabytes(2.8), Megabytes(2_800_000.0));
        assert_eq!(Megabytes::from_bytes(2_000_000), Megabytes(2.0));
        assert!((Megabytes(1500.0).as_gigabytes() - 1.5).abs() < 1e-12);
        assert_eq!(
            MegabytesPerSec::from_gigabits_per_sec(1.0),
            MegabytesPerSec(125.0)
        );
        assert!((Joules(2500.0).as_kilojoules() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_uses_suffix() {
        assert_eq!(format!("{}", Watts(12.5)), "12.500 W");
        assert_eq!(format!("{:.1}", Joules(1.25)), "1.2 J");
        assert_eq!(format!("{}", Megabytes(1.0)), "1.000 MB");
    }

    #[test]
    fn min_max_helpers() {
        assert_eq!(Seconds(1.0).max(Seconds(2.0)), Seconds(2.0));
        assert_eq!(Seconds(1.0).min(Seconds(2.0)), Seconds(1.0));
        assert!(Seconds(1.0).is_finite());
        assert!(!Seconds(f64::NAN).is_finite());
    }
}
