//! Hardware catalog containing the exact machines studied in the paper.
//!
//! The catalog reproduces:
//!
//! * **Table 1** — the Cluster-V node (HP ProLiant DL360G6, dual Intel X5550,
//!   48 GB RAM, 8×300 GB disks, 1 Gb/s network) with the published
//!   `SysPower = 130.03 · C^0.2369` power model,
//! * **Table 2** — the five single-node systems used in the Section 5.1
//!   micro-benchmark (Workstation A/B, the Atom desktop, Laptop A/B) with the
//!   published idle powers,
//! * **Table 3 / Section 5.2** — the "Beefy" HP SE326M1R2 prototype node
//!   (dual L5630 Xeon, 32 GB, `79.006 · (100c)^0.2451`, `C_B = 4034`) and the
//!   "Wimpy" Laptop B node (`10.994 · (100c)^0.2875`, `C_W = 1129`,
//!   `G_W = 0.13`), plus the modeled Cluster-V Beefy node (`C_B = 5037`,
//!   `G_B = 0.25`) used for the Section 5.4 design-space sweeps.
//!
//! The Table 2 machines additionally carry a calibrated hash-join processing
//! rate so that the Figure 6 single-node energy experiment can be regenerated;
//! the calibration (documented in `EXPERIMENTS.md`) preserves the paper's
//! qualitative result: the workstations are fastest, Laptop B consumes the
//! least energy.

use crate::error::SimError;
use crate::node::{NodeClass, NodeSpec};
use crate::power::PowerModel;
use crate::units::{Megabytes, MegabytesPerSec, Watts};
use std::collections::BTreeMap;

/// Well-known node names in the catalog.
pub mod names {
    /// Table 1 Cluster-V node (dual X5550, 48 GB).
    pub const CLUSTER_V: &str = "cluster-v";
    /// Section 5.2 Beefy prototype node (dual L5630, 32 GB).
    pub const BEEFY_L5630: &str = "beefy-l5630";
    /// Table 2 Workstation A (i7 920, 12 GB, 93 W idle).
    pub const WORKSTATION_A: &str = "workstation-a";
    /// Table 2 Workstation B (Xeon, 24 GB, 69 W idle).
    pub const WORKSTATION_B: &str = "workstation-b";
    /// Table 2 Atom desktop (2 cores / 4 threads, 4 GB, 28 W idle).
    pub const DESKTOP_ATOM: &str = "desktop-atom";
    /// Table 2 Laptop A (Core 2 Duo, 4 GB, 12 W idle).
    pub const LAPTOP_A: &str = "laptop-a";
    /// Table 2 / Section 5.2 Laptop B — the paper's "Wimpy" node
    /// (i7 620m, 8 GB, 11 W idle).
    pub const LAPTOP_B: &str = "laptop-b";
}

/// The Cluster-V node of Table 1: the machine behind every Vertica experiment
/// and the Beefy node of the Section 5.4 model sweeps (`C_B = 5037`,
/// `G_B = 0.25`, `f_B(c) = 130.03 · (100c)^0.2369`).
pub fn cluster_v_node() -> NodeSpec {
    NodeSpec::builder(names::CLUSTER_V, NodeClass::Beefy)
        .cpu(8, 16)
        .memory(Megabytes::from_gigabytes(48.0))
        // Section 5.4 models the I/O subsystem as four Crucial C300 SSDs.
        .disk_bandwidth(MegabytesPerSec(1200.0))
        .network_bandwidth(MegabytesPerSec(100.0))
        .cpu_bandwidth(MegabytesPerSec(5037.0))
        .hashjoin_bandwidth(MegabytesPerSec(180.0))
        .utilization_floor(0.25)
        .power_model(PowerModel::power_law(130.03, 0.2369))
        .build()
        .expect("cluster-v spec is valid")
}

/// The Beefy prototype node of Section 5.2: HP ProLiant SE326M1R2 with dual
/// low-power quad-core L5630 Xeons, 32 GB of memory and a Crucial C300 SSD
/// (`C_B = 4034`, `f_B(c) = 79.006 · (100c)^0.2451`, ~154 W average during the
/// prototype runs).
pub fn beefy_l5630_node() -> NodeSpec {
    NodeSpec::builder(names::BEEFY_L5630, NodeClass::Beefy)
        .cpu(8, 16)
        .memory(Megabytes::from_gigabytes(32.0))
        .disk_bandwidth(MegabytesPerSec(270.0))
        .network_bandwidth(MegabytesPerSec(95.0))
        .cpu_bandwidth(MegabytesPerSec(4034.0))
        .hashjoin_bandwidth(MegabytesPerSec(160.0))
        .utilization_floor(0.25)
        .power_model(PowerModel::power_law(79.006, 0.2451))
        .build()
        .expect("beefy-l5630 spec is valid")
}

/// Table 2 Workstation A: i7 920 (4 cores / 8 threads), 12 GB RAM, 93 W idle.
pub fn workstation_a() -> NodeSpec {
    NodeSpec::builder(names::WORKSTATION_A, NodeClass::Beefy)
        .cpu(4, 8)
        .memory(Megabytes::from_gigabytes(12.0))
        .disk_bandwidth(MegabytesPerSec(250.0))
        .network_bandwidth(MegabytesPerSec(100.0))
        .cpu_bandwidth(MegabytesPerSec(3800.0))
        // Figure 6: ~13 s for the 2 GB probe → ~160 MB/s through the
        // cache-conscious join, drawing ~103 W on average → ~1300 J.
        .hashjoin_bandwidth(MegabytesPerSec(160.0))
        .utilization_floor(0.2)
        .power_model(PowerModel::linear(93.0, 40.0))
        .idle_power(Watts(93.0))
        .build()
        .expect("workstation-a spec is valid")
}

/// Table 2 Workstation B: quad-core Xeon (no SMT), 24 GB RAM, 69 W idle.
pub fn workstation_b() -> NodeSpec {
    NodeSpec::builder(names::WORKSTATION_B, NodeClass::Beefy)
        .cpu(4, 4)
        .memory(Megabytes::from_gigabytes(24.0))
        .disk_bandwidth(MegabytesPerSec(250.0))
        .network_bandwidth(MegabytesPerSec(100.0))
        .cpu_bandwidth(MegabytesPerSec(3400.0))
        // Figure 6: slightly slower than Workstation A but lower power.
        .hashjoin_bandwidth(MegabytesPerSec(140.0))
        .utilization_floor(0.2)
        .power_model(PowerModel::linear(69.0, 28.0))
        .idle_power(Watts(69.0))
        .build()
        .expect("workstation-b spec is valid")
}

/// Table 2 Atom desktop: dual-core / 4-thread Atom, 4 GB RAM, 28 W idle.
pub fn desktop_atom() -> NodeSpec {
    NodeSpec::builder(names::DESKTOP_ATOM, NodeClass::Wimpy)
        .cpu(2, 4)
        .memory(Megabytes::from_gigabytes(4.0))
        .disk_bandwidth(MegabytesPerSec(120.0))
        .network_bandwidth(MegabytesPerSec(100.0))
        .cpu_bandwidth(MegabytesPerSec(600.0))
        // Figure 6: ~45 s for the join at ~29 W → ~1300 J; an in-order Atom is
        // the slowest of the five systems and not the most energy efficient.
        .hashjoin_bandwidth(MegabytesPerSec(45.0))
        .utilization_floor(0.15)
        .power_model(PowerModel::linear(28.0, 4.0))
        .idle_power(Watts(28.0))
        .build()
        .expect("desktop-atom spec is valid")
}

/// Table 2 Laptop A: Core 2 Duo (2 cores / 2 threads), 4 GB RAM, 12 W idle
/// (screen off).
pub fn laptop_a() -> NodeSpec {
    NodeSpec::builder(names::LAPTOP_A, NodeClass::Wimpy)
        .cpu(2, 2)
        .memory(Megabytes::from_gigabytes(4.0))
        .disk_bandwidth(MegabytesPerSec(200.0))
        .network_bandwidth(MegabytesPerSec(100.0))
        .cpu_bandwidth(MegabytesPerSec(700.0))
        // Figure 6: ~48 s at ~19 W → ~900 J.
        .hashjoin_bandwidth(MegabytesPerSec(42.0))
        .utilization_floor(0.13)
        .power_model(PowerModel::linear(12.0, 9.0))
        .idle_power(Watts(12.0))
        .build()
        .expect("laptop-a spec is valid")
}

/// Table 2 / Section 5.2 Laptop B: i7 620m (2 cores / 4 threads), 8 GB RAM,
/// Crucial C300 SSD, 11 W idle (screen off). This is the paper's "Wimpy" node:
/// `C_W = 1129`, `G_W = 0.13`, `f_W(c) = 10.994 · (100c)^0.2875`, ~37 W average
/// during the prototype runs.
pub fn laptop_b() -> NodeSpec {
    NodeSpec::builder(names::LAPTOP_B, NodeClass::Wimpy)
        .cpu(2, 4)
        .memory(Megabytes::from_gigabytes(8.0))
        .disk_bandwidth(MegabytesPerSec(270.0))
        .network_bandwidth(MegabytesPerSec(95.0))
        .cpu_bandwidth(MegabytesPerSec(1129.0))
        // Figure 6: ~20 s at ~39 W → ~800 J, the lowest-energy system.
        .hashjoin_bandwidth(MegabytesPerSec(100.0))
        .utilization_floor(0.13)
        .power_model(PowerModel::power_law(10.994, 0.2875))
        .idle_power(Watts(11.0))
        .build()
        .expect("laptop-b spec is valid")
}

/// A named collection of [`NodeSpec`]s with lookup by name.
///
/// [`HardwareCatalog::paper`] contains every machine used in the paper;
/// additional what-if hardware can be registered with
/// [`HardwareCatalog::insert`].
#[derive(Debug, Clone, Default)]
pub struct HardwareCatalog {
    specs: BTreeMap<String, NodeSpec>,
}

impl HardwareCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// The catalog of every machine described in the paper (Tables 1, 2 and
    /// the Section 5.2 prototype nodes).
    pub fn paper() -> Self {
        let mut catalog = Self::new();
        for spec in [
            cluster_v_node(),
            beefy_l5630_node(),
            workstation_a(),
            workstation_b(),
            desktop_atom(),
            laptop_a(),
            laptop_b(),
        ] {
            catalog.insert(spec);
        }
        catalog
    }

    /// Register (or replace) a node spec under its name.
    pub fn insert(&mut self, spec: NodeSpec) {
        self.specs.insert(spec.name.clone(), spec);
    }

    /// Look up a node spec by name.
    pub fn get(&self, name: &str) -> Result<&NodeSpec, SimError> {
        self.specs
            .get(name)
            .ok_or_else(|| SimError::UnknownHardware { name: name.into() })
    }

    /// Whether the catalog contains a spec with the given name.
    pub fn contains(&self, name: &str) -> bool {
        self.specs.contains_key(name)
    }

    /// All registered names, in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.specs.keys().map(String::as_str)
    }

    /// All registered specs, in name order.
    pub fn specs(&self) -> impl Iterator<Item = &NodeSpec> {
        self.specs.values()
    }

    /// The five single-node systems of Table 2, in the paper's order.
    pub fn table2_systems(&self) -> Vec<&NodeSpec> {
        [
            names::WORKSTATION_A,
            names::WORKSTATION_B,
            names::DESKTOP_ATOM,
            names::LAPTOP_A,
            names::LAPTOP_B,
        ]
        .iter()
        .filter_map(|name| self.specs.get(*name))
        .collect()
    }

    /// Number of registered specs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_catalog_contains_all_machines() {
        let catalog = HardwareCatalog::paper();
        assert_eq!(catalog.len(), 7);
        for name in [
            names::CLUSTER_V,
            names::BEEFY_L5630,
            names::WORKSTATION_A,
            names::WORKSTATION_B,
            names::DESKTOP_ATOM,
            names::LAPTOP_A,
            names::LAPTOP_B,
        ] {
            assert!(catalog.contains(name), "missing {name}");
        }
        assert_eq!(catalog.table2_systems().len(), 5);
    }

    #[test]
    fn unknown_hardware_is_an_error() {
        let catalog = HardwareCatalog::paper();
        let err = catalog.get("cray-1").unwrap_err();
        assert!(err.to_string().contains("cray-1"));
    }

    #[test]
    fn cluster_v_matches_table_1() {
        let n = cluster_v_node();
        assert_eq!(n.memory, Megabytes::from_gigabytes(48.0));
        assert_eq!(n.network_bandwidth, MegabytesPerSec(100.0));
        assert_eq!(n.cpu_bandwidth, MegabytesPerSec(5037.0));
        assert!((n.utilization_floor - 0.25).abs() < 1e-12);
        // SysPower = 130.03 · C^0.2369 ⇒ coefficient at 1% utilization.
        assert!((n.power_at(0.01).value() - 130.03).abs() < 1e-6);
    }

    #[test]
    fn laptop_b_matches_table_2_and_3() {
        let n = laptop_b();
        assert!(n.is_wimpy());
        assert_eq!(n.memory, Megabytes::from_gigabytes(8.0));
        assert_eq!(n.idle_power, Watts(11.0));
        assert_eq!(n.cpu_bandwidth, MegabytesPerSec(1129.0));
        assert!((n.utilization_floor - 0.13).abs() < 1e-12);
    }

    #[test]
    fn beefy_l5630_matches_section_5() {
        let n = beefy_l5630_node();
        assert_eq!(n.memory, Megabytes::from_gigabytes(32.0));
        assert_eq!(n.cpu_bandwidth, MegabytesPerSec(4034.0));
        // 79.006 · (100c)^0.2451 at full load ≈ 244 W; the paper reports an
        // average of 154 W during the (partially network-bound) runs.
        let peak = n.peak_power().value();
        assert!(peak > 200.0 && peak < 280.0, "peak {peak}");
    }

    #[test]
    fn table_2_idle_powers_match_the_paper() {
        assert_eq!(workstation_a().idle_power, Watts(93.0));
        assert_eq!(workstation_b().idle_power, Watts(69.0));
        assert_eq!(desktop_atom().idle_power, Watts(28.0));
        assert_eq!(laptop_a().idle_power, Watts(12.0));
        assert_eq!(laptop_b().idle_power, Watts(11.0));
    }

    #[test]
    fn wimpy_nodes_have_small_memory_and_low_power() {
        let catalog = HardwareCatalog::paper();
        for spec in catalog.specs() {
            if spec.is_wimpy() {
                assert!(spec.memory.as_gigabytes() <= 8.0, "{}", spec.name);
                assert!(spec.peak_power().value() < 60.0, "{}", spec.name);
            }
        }
    }

    #[test]
    fn figure6_shape_workstations_fast_laptop_b_lowest_energy() {
        // The catalog calibration must preserve the Figure 6 qualitative
        // result. The workload is a 10 MB build ⋈ 2 GB probe hash join.
        let catalog = HardwareCatalog::paper();
        let workload = Megabytes(2010.0);
        let mut times = BTreeMap::new();
        let mut energies = BTreeMap::new();
        for spec in catalog.table2_systems() {
            let t = workload / spec.hashjoin_bandwidth;
            let e = spec.power_at(0.85) * t;
            times.insert(spec.name.clone(), t.value());
            energies.insert(spec.name.clone(), e.value());
        }
        let fastest = times
            .iter()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, _)| k.clone())
            .unwrap();
        let lowest_energy = energies
            .iter()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, _)| k.clone())
            .unwrap();
        assert_eq!(fastest, names::WORKSTATION_A);
        assert_eq!(lowest_energy, names::LAPTOP_B);
    }

    #[test]
    fn insert_replaces_existing_entry() {
        let mut catalog = HardwareCatalog::new();
        assert!(catalog.is_empty());
        catalog.insert(laptop_b());
        let mut altered = laptop_b();
        altered.memory = Megabytes::from_gigabytes(16.0);
        catalog.insert(altered);
        assert_eq!(catalog.len(), 1);
        assert_eq!(
            catalog.get(names::LAPTOP_B).unwrap().memory,
            Megabytes::from_gigabytes(16.0)
        );
    }
}
