//! Error types for the simulation substrate.

use std::fmt;

/// Errors produced by the simulation substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A model was asked to evaluate an input outside its valid domain
    /// (for example, a negative CPU utilization or a zero-duration phase).
    InvalidInput {
        /// Human-readable description of what was invalid.
        reason: String,
    },
    /// Regression fitting was attempted with too few or degenerate samples.
    FitFailed {
        /// Human-readable description of why the fit failed.
        reason: String,
    },
    /// A named hardware profile was not found in the catalog.
    UnknownHardware {
        /// The name that was looked up.
        name: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            SimError::FitFailed { reason } => write!(f, "power model fit failed: {reason}"),
            SimError::UnknownHardware { name } => write!(f, "unknown hardware profile: {name}"),
        }
    }
}

impl std::error::Error for SimError {}

impl SimError {
    /// Convenience constructor for [`SimError::InvalidInput`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        SimError::InvalidInput {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`SimError::FitFailed`].
    pub fn fit(reason: impl Into<String>) -> Self {
        SimError::FitFailed {
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = SimError::invalid("negative utilization");
        assert!(e.to_string().contains("negative utilization"));
        let e = SimError::fit("only one sample");
        assert!(e.to_string().contains("fit failed"));
        let e = SimError::UnknownHardware {
            name: "laptop-z".into(),
        };
        assert!(e.to_string().contains("laptop-z"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(SimError::invalid("x"), SimError::invalid("x"));
        assert_ne!(SimError::invalid("x"), SimError::fit("x"));
    }
}
