//! Cluster-level energy metering.
//!
//! The paper's experiments report, for every query execution, the total
//! response time and the total energy consumed by all nodes of the cluster,
//! broken into execution phases (for a hash join: the build phase and the
//! probe phase). [`EnergyMeter`] is the simulated analogue of the per-node
//! WattsUp meters: execution engines record one [`PhaseEnergy`] per phase and
//! the meter aggregates them into a cluster-level
//! [`Measurement`].

use crate::error::SimError;
use crate::metrics::Measurement;
use crate::node::NodeSpec;
use crate::units::{Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Time and energy attributed to one named execution phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseEnergy {
    /// Phase label (e.g. `"build"`, `"probe"`, `"scan"`).
    pub label: String,
    /// Wall-clock duration of the phase.
    pub duration: Seconds,
    /// Energy consumed by the whole cluster during the phase.
    pub energy: Joules,
}

impl PhaseEnergy {
    /// Average cluster power during the phase.
    pub fn average_power(&self) -> Watts {
        if self.duration.value() <= f64::EPSILON {
            Watts::zero()
        } else {
            self.energy / self.duration
        }
    }
}

/// Accumulates per-phase cluster energy for one query execution.
///
/// Phases are assumed to be sequential (the paper's build phase completes on
/// every node before the probe phase starts), so the total response time is
/// the sum of the phase durations.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    phases: Vec<PhaseEnergy>,
}

impl EnergyMeter {
    /// A meter with no recorded phases.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a phase given its duration and the total cluster energy it
    /// consumed.
    pub fn record(
        &mut self,
        label: impl Into<String>,
        duration: Seconds,
        energy: Joules,
    ) -> Result<(), SimError> {
        if !duration.is_finite() || duration.value() < 0.0 {
            return Err(SimError::invalid(format!(
                "phase duration must be non-negative and finite, got {}",
                duration.value()
            )));
        }
        if !energy.is_finite() || energy.value() < 0.0 {
            return Err(SimError::invalid(format!(
                "phase energy must be non-negative and finite, got {}",
                energy.value()
            )));
        }
        self.phases.push(PhaseEnergy {
            label: label.into(),
            duration,
            energy,
        });
        Ok(())
    }

    /// Record a phase in which each listed node ran at a constant utilization
    /// for the full phase duration: the cluster energy is
    /// `duration · Σ_i power_i(utilization_i)` — exactly how the paper turns
    /// per-node utilization into cluster energy.
    pub fn record_phase_with_nodes<'a>(
        &mut self,
        label: impl Into<String>,
        duration: Seconds,
        nodes: impl IntoIterator<Item = (&'a NodeSpec, f64)>,
    ) -> Result<(), SimError> {
        let mut power = Watts::zero();
        for (spec, utilization) in nodes {
            if !(0.0..=1.0).contains(&utilization) {
                return Err(SimError::invalid(format!(
                    "utilization {utilization} for node {} outside [0, 1]",
                    spec.name
                )));
            }
            power += spec.power_at(utilization);
        }
        self.record(label, duration, power * duration)
    }

    /// The recorded phases in order.
    pub fn phases(&self) -> &[PhaseEnergy] {
        &self.phases
    }

    /// Total response time (sum of sequential phase durations).
    pub fn total_time(&self) -> Seconds {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// Total cluster energy over all phases.
    pub fn total_energy(&self) -> Joules {
        self.phases.iter().map(|p| p.energy).sum()
    }

    /// Average cluster power over the whole execution.
    pub fn average_power(&self) -> Watts {
        let t = self.total_time();
        if t.value() <= f64::EPSILON {
            Watts::zero()
        } else {
            self.total_energy() / t
        }
    }

    /// Collapse the meter into a [`Measurement`] (response time + energy).
    pub fn measurement(&self) -> Measurement {
        Measurement::new(self.total_time(), self.total_energy())
    }

    /// Merge another meter's phases into this one (e.g. combining the meters
    /// of independently-metered sub-plans).
    pub fn merge(&mut self, other: &EnergyMeter) {
        self.phases.extend_from_slice(&other.phases);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{cluster_v_node, laptop_b};

    #[test]
    fn totals_accumulate_across_phases() {
        let mut meter = EnergyMeter::new();
        meter
            .record("build", Seconds(10.0), Joules(2000.0))
            .unwrap();
        meter
            .record("probe", Seconds(30.0), Joules(5000.0))
            .unwrap();
        assert_eq!(meter.total_time(), Seconds(40.0));
        assert_eq!(meter.total_energy(), Joules(7000.0));
        assert!((meter.average_power().value() - 175.0).abs() < 1e-9);
        let m = meter.measurement();
        assert_eq!(m.response_time, Seconds(40.0));
        assert_eq!(m.energy, Joules(7000.0));
    }

    #[test]
    fn phase_average_power() {
        let phase = PhaseEnergy {
            label: "build".into(),
            duration: Seconds(4.0),
            energy: Joules(800.0),
        };
        assert_eq!(phase.average_power(), Watts(200.0));
        let empty = PhaseEnergy {
            label: "noop".into(),
            duration: Seconds(0.0),
            energy: Joules(0.0),
        };
        assert_eq!(empty.average_power(), Watts::zero());
    }

    #[test]
    fn record_phase_with_nodes_sums_node_power() {
        let beefy = cluster_v_node();
        let wimpy = laptop_b();
        let mut meter = EnergyMeter::new();
        meter
            .record_phase_with_nodes("probe", Seconds(10.0), [(&beefy, 0.5), (&wimpy, 1.0)])
            .unwrap();
        let expected = (beefy.power_at(0.5) + wimpy.power_at(1.0)) * Seconds(10.0);
        assert!((meter.total_energy().value() - expected.value()).abs() < 1e-9);
    }

    #[test]
    fn invalid_records_are_rejected() {
        let mut meter = EnergyMeter::new();
        assert!(meter.record("x", Seconds(-1.0), Joules(1.0)).is_err());
        assert!(meter.record("x", Seconds(1.0), Joules(-1.0)).is_err());
        assert!(meter.record("x", Seconds(f64::NAN), Joules(1.0)).is_err());
        let beefy = cluster_v_node();
        assert!(meter
            .record_phase_with_nodes("x", Seconds(1.0), [(&beefy, 1.4)])
            .is_err());
    }

    #[test]
    fn merge_concatenates_phases() {
        let mut a = EnergyMeter::new();
        a.record("build", Seconds(1.0), Joules(10.0)).unwrap();
        let mut b = EnergyMeter::new();
        b.record("probe", Seconds(2.0), Joules(20.0)).unwrap();
        a.merge(&b);
        assert_eq!(a.phases().len(), 2);
        assert_eq!(a.total_energy(), Joules(30.0));
    }

    #[test]
    fn empty_meter_is_zero() {
        let meter = EnergyMeter::new();
        assert_eq!(meter.total_time(), Seconds::zero());
        assert_eq!(meter.total_energy(), Joules::zero());
        assert_eq!(meter.average_power(), Watts::zero());
    }
}
