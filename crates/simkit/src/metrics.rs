//! Energy-efficiency metrics: response time, performance, energy, the
//! Energy-Delay-Product (EDP), and the normalized energy-vs-performance
//! points that every figure in the paper plots.
//!
//! The paper's convention (Section 1):
//!
//! * *performance* is the inverse of the query response time,
//! * *energy* is the total cluster energy for the query,
//! * every cluster design point is plotted as a pair of ratios relative to a
//!   reference configuration (the largest, or all-Beefy, cluster):
//!   `normalized performance = T_ref / T` and
//!   `normalized energy = E / E_ref`,
//! * the dotted *constant-EDP* curve marks the points where an `x%` loss in
//!   performance buys exactly an `x%` drop in energy
//!   (`E·T = E_ref·T_ref ⇔ normalized energy = normalized performance`);
//!   points **below** that curve trade proportionally less performance for
//!   more energy savings and are the interesting design points.

use crate::error::SimError;
use crate::units::{Joules, Seconds};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Tolerance used when classifying points against the constant-EDP curve.
const EDP_EPSILON: f64 = 1e-9;

/// One measured (or modeled) execution: the query response time and the total
/// cluster energy it consumed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Query response time.
    pub response_time: Seconds,
    /// Total cluster energy.
    pub energy: Joules,
}

impl Measurement {
    /// Construct a measurement.
    pub fn new(response_time: Seconds, energy: Joules) -> Self {
        Self {
            response_time,
            energy,
        }
    }

    /// Performance, defined as the inverse of the response time.
    pub fn performance(&self) -> f64 {
        if self.response_time.value() <= f64::EPSILON {
            f64::INFINITY
        } else {
            1.0 / self.response_time.value()
        }
    }

    /// The Energy-Delay Product in joule·seconds.
    pub fn edp(&self) -> f64 {
        self.energy.value() * self.response_time.value()
    }

    /// Normalize this measurement against a reference measurement, producing
    /// the (performance ratio, energy ratio) pair the paper plots.
    pub fn normalized_against(&self, reference: &Measurement) -> Result<NormalizedPoint, SimError> {
        if reference.response_time.value() <= 0.0 || reference.energy.value() <= 0.0 {
            return Err(SimError::invalid(
                "reference measurement must have positive response time and energy",
            ));
        }
        if self.response_time.value() <= 0.0 || self.energy.value() < 0.0 {
            return Err(SimError::invalid(
                "measurement must have positive response time and non-negative energy",
            ));
        }
        Ok(NormalizedPoint {
            performance: reference.response_time.value() / self.response_time.value(),
            energy: self.energy.value() / reference.energy.value(),
        })
    }
}

impl fmt::Display for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} s / {:.1} J",
            self.response_time.value(),
            self.energy.value()
        )
    }
}

/// A design point expressed relative to a reference configuration, exactly as
/// plotted in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormalizedPoint {
    /// `T_ref / T`: 1.0 means as fast as the reference, 0.5 means twice as
    /// slow.
    pub performance: f64,
    /// `E / E_ref`: 1.0 means the same energy as the reference, 0.5 means half
    /// the energy.
    pub energy: f64,
}

impl NormalizedPoint {
    /// The reference point itself: performance 1.0, energy 1.0.
    pub fn reference() -> Self {
        Self {
            performance: 1.0,
            energy: 1.0,
        }
    }

    /// Normalized EDP relative to the reference: `(E/E_ref)·(T/T_ref)`,
    /// i.e. `energy / performance`. The constant-EDP curve is the set of
    /// points where this equals 1.
    pub fn edp_ratio(&self) -> f64 {
        if self.performance <= f64::EPSILON {
            f64::INFINITY
        } else {
            self.energy / self.performance
        }
    }

    /// The energy a point at this performance would have if it sat exactly on
    /// the constant-EDP curve.
    pub fn edp_energy_at_same_performance(&self) -> f64 {
        self.performance
    }

    /// Whether the point lies strictly below the constant-EDP curve — the
    /// favourable region where the relative energy saving exceeds the relative
    /// performance loss.
    pub fn is_below_edp(&self) -> bool {
        self.energy + EDP_EPSILON < self.performance
    }

    /// Whether the point lies strictly above the constant-EDP curve — the
    /// unfavourable region where more performance is given up than energy is
    /// saved.
    pub fn is_above_edp(&self) -> bool {
        self.energy > self.performance + EDP_EPSILON
    }

    /// Fractional energy saving relative to the reference (positive is a
    /// saving). The paper quotes these as e.g. "a 16% decrease in energy".
    pub fn energy_saving(&self) -> f64 {
        1.0 - self.energy
    }

    /// Fractional performance loss relative to the reference (positive is a
    /// loss). The paper quotes these as e.g. "a 24% penalty in performance".
    pub fn performance_loss(&self) -> f64 {
        1.0 - self.performance
    }
}

impl fmt::Display for NormalizedPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "perf {:.3}, energy {:.3} ({})",
            self.performance,
            self.energy,
            if self.is_below_edp() {
                "below EDP"
            } else if self.is_above_edp() {
                "above EDP"
            } else {
                "on EDP"
            }
        )
    }
}

/// The constant-EDP reference curve drawn (dotted) in every figure.
///
/// In normalized coordinates the curve is simply `energy = performance`; this
/// type exists to make that reading explicit in harness code and to sample the
/// curve for plotting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EdpLine;

impl EdpLine {
    /// The normalized energy on the constant-EDP curve at the given normalized
    /// performance.
    pub fn energy_at(&self, performance: f64) -> f64 {
        performance
    }

    /// Sample the curve at `n` evenly spaced performance values in
    /// `[lo, hi]` (inclusive), for plotting.
    pub fn sample(&self, lo: f64, hi: f64, n: usize) -> Vec<(f64, f64)> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![(lo, self.energy_at(lo))];
        }
        (0..n)
            .map(|i| {
                let p = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (p, self.energy_at(p))
            })
            .collect()
    }
}

/// A labelled series of normalized design points relative to a single
/// reference configuration — one figure's worth of data.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NormalizedSeries {
    /// Label of the reference configuration (e.g. `"16B,0W"` or `"2B,2W"`).
    pub reference_label: String,
    /// Labelled points, in the order they were added.
    pub points: Vec<(String, NormalizedPoint)>,
}

impl NormalizedSeries {
    /// Start a series whose reference configuration carries the given label.
    /// The reference point itself (1.0, 1.0) is inserted automatically.
    pub fn with_reference(label: impl Into<String>) -> Self {
        let label = label.into();
        Self {
            reference_label: label.clone(),
            points: vec![(label, NormalizedPoint::reference())],
        }
    }

    /// Build a series from raw measurements: the first element of
    /// `measurements` tagged `reference_label` is used as the reference.
    pub fn from_measurements(
        reference_label: impl Into<String>,
        reference: Measurement,
        measurements: impl IntoIterator<Item = (String, Measurement)>,
    ) -> Result<Self, SimError> {
        let mut series = Self::with_reference(reference_label);
        for (label, m) in measurements {
            series.push(label, m.normalized_against(&reference)?);
        }
        Ok(series)
    }

    /// Append a labelled point.
    pub fn push(&mut self, label: impl Into<String>, point: NormalizedPoint) {
        self.points.push((label.into(), point));
    }

    /// The labelled points.
    pub fn points(&self) -> &[(String, NormalizedPoint)] {
        &self.points
    }

    /// Points lying strictly below the constant-EDP curve.
    pub fn below_edp(&self) -> impl Iterator<Item = &(String, NormalizedPoint)> {
        self.points.iter().filter(|(_, p)| p.is_below_edp())
    }

    /// The point with the lowest normalized energy, if any.
    pub fn lowest_energy(&self) -> Option<&(String, NormalizedPoint)> {
        self.points
            .iter()
            .min_by(|a, b| a.1.energy.total_cmp(&b.1.energy))
    }

    /// The point with the highest normalized performance, if any.
    pub fn highest_performance(&self) -> Option<&(String, NormalizedPoint)> {
        self.points
            .iter()
            .max_by(|a, b| a.1.performance.total_cmp(&b.1.performance))
    }

    /// Among points whose performance is at least `min_performance`, the one
    /// with the lowest energy — the paper's "pick the most efficient design
    /// that still meets the performance target" selection rule (Section 6).
    pub fn best_meeting_target(&self, min_performance: f64) -> Option<&(String, NormalizedPoint)> {
        self.points
            .iter()
            .filter(|(_, p)| p.performance + EDP_EPSILON >= min_performance)
            .min_by(|a, b| a.1.energy.total_cmp(&b.1.energy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement(t: f64, e: f64) -> Measurement {
        Measurement::new(Seconds(t), Joules(e))
    }

    #[test]
    fn performance_is_inverse_response_time() {
        let m = measurement(4.0, 100.0);
        assert!((m.performance() - 0.25).abs() < 1e-12);
        assert_eq!(m.edp(), 400.0);
    }

    #[test]
    fn normalization_matches_paper_convention() {
        // Reference: 16 nodes, 100 s, 10 kJ. Smaller cluster: 150 s, 8 kJ.
        let reference = measurement(100.0, 10_000.0);
        let smaller = measurement(150.0, 8_000.0);
        let p = smaller.normalized_against(&reference).unwrap();
        assert!((p.performance - 100.0 / 150.0).abs() < 1e-12);
        assert!((p.energy - 0.8).abs() < 1e-12);
        // 33% slower for 20% energy saving → above the EDP curve.
        assert!(p.is_above_edp());
        assert!(!p.is_below_edp());
        assert!((p.energy_saving() - 0.2).abs() < 1e-12);
        assert!((p.performance_loss() - (1.0 - 100.0 / 150.0)).abs() < 1e-12);
    }

    #[test]
    fn figure_1a_10n_point_is_above_edp() {
        // "the 10 node configuration pays a 24% penalty in performance for a
        // 16% decrease in energy consumption over the 16N case".
        let p = NormalizedPoint {
            performance: 0.76,
            energy: 0.84,
        };
        assert!(p.is_above_edp());
        assert!((p.edp_ratio() - 0.84 / 0.76).abs() < 1e-12);
    }

    #[test]
    fn figure_1b_heterogeneous_point_is_below_edp() {
        // Heterogeneous designs in Figure 1(b) save proportionally more energy
        // than they lose in performance.
        let p = NormalizedPoint {
            performance: 0.9,
            energy: 0.55,
        };
        assert!(p.is_below_edp());
        assert!(p.edp_ratio() < 1.0);
    }

    #[test]
    fn constant_edp_point_is_neither_above_nor_below() {
        let p = NormalizedPoint {
            performance: 0.7,
            energy: 0.7,
        };
        assert!(!p.is_below_edp());
        assert!(!p.is_above_edp());
        assert!((p.edp_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edp_line_is_the_diagonal() {
        let line = EdpLine;
        assert_eq!(line.energy_at(0.6), 0.6);
        let samples = line.sample(0.5, 1.0, 6);
        assert_eq!(samples.len(), 6);
        assert_eq!(samples.first().copied(), Some((0.5, 0.5)));
        assert_eq!(samples.last().copied(), Some((1.0, 1.0)));
        assert!(line.sample(0.0, 1.0, 0).is_empty());
        assert_eq!(line.sample(0.3, 1.0, 1), vec![(0.3, 0.3)]);
    }

    #[test]
    fn normalization_rejects_degenerate_reference() {
        let zero_t = measurement(0.0, 100.0);
        let zero_e = measurement(10.0, 0.0);
        let ok = measurement(10.0, 100.0);
        assert!(ok.normalized_against(&zero_t).is_err());
        assert!(ok.normalized_against(&zero_e).is_err());
        assert!(zero_t.normalized_against(&ok).is_err());
    }

    #[test]
    fn series_selection_helpers() {
        let reference = measurement(100.0, 10_000.0);
        let series = NormalizedSeries::from_measurements(
            "16B,0W",
            reference,
            vec![
                ("14B,0W".to_string(), measurement(110.0, 9_500.0)),
                ("12B,0W".to_string(), measurement(125.0, 9_000.0)),
                ("10B,0W".to_string(), measurement(132.0, 8_400.0)),
                ("8B,0W".to_string(), measurement(156.0, 8_000.0)),
            ],
        )
        .unwrap();
        assert_eq!(series.points().len(), 5);
        assert_eq!(series.lowest_energy().unwrap().0, "8B,0W");
        assert_eq!(series.highest_performance().unwrap().0, "16B,0W");
        // With a 0.75 performance floor, 10 nodes (perf 0.7576) is the most
        // efficient admissible configuration.
        assert_eq!(series.best_meeting_target(0.75).unwrap().0, "10B,0W");
        // An unreachable target returns the reference (perf 1.0) only.
        assert_eq!(series.best_meeting_target(1.0).unwrap().0, "16B,0W");
        // Homogeneous scale-down points sit above the EDP curve.
        assert_eq!(series.below_edp().count(), 0);
    }

    #[test]
    fn best_meeting_target_properties_hold_over_random_series() {
        // Property test over deterministic pseudo-random series: the
        // selection rule must (a) never return a point below the target and
        // (b) return a point of minimal energy among the qualifiers; when it
        // returns nothing, no point may qualify.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next_unit = || {
            // xorshift64*: cheap, deterministic, no external dependency.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let word = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (word >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..200 {
            let mut series = NormalizedSeries::with_reference("ref");
            let points = 1 + (next_unit() * 12.0) as usize;
            for i in 0..points {
                series.push(
                    format!("d{i}"),
                    NormalizedPoint {
                        performance: 0.05 + 1.5 * next_unit(),
                        energy: 0.05 + 1.5 * next_unit(),
                    },
                );
            }
            let target = 1.6 * next_unit();
            match series.best_meeting_target(target) {
                Some((label, pick)) => {
                    assert!(
                        pick.performance + EDP_EPSILON >= target,
                        "trial {trial}: pick {label} perf {} below target {target}",
                        pick.performance
                    );
                    for (other, point) in series.points() {
                        if point.performance + EDP_EPSILON >= target {
                            assert!(
                                pick.energy <= point.energy,
                                "trial {trial}: {other} (energy {}) beats pick {label} ({})",
                                point.energy,
                                pick.energy
                            );
                        }
                    }
                }
                None => {
                    assert!(
                        series
                            .points()
                            .iter()
                            .all(|(_, p)| p.performance + EDP_EPSILON < target),
                        "trial {trial}: a qualifying point was skipped"
                    );
                }
            }
        }
    }

    #[test]
    fn series_with_reference_contains_the_reference_point() {
        let series = NormalizedSeries::with_reference("8B,0W");
        assert_eq!(series.points().len(), 1);
        assert_eq!(series.points()[0].0, "8B,0W");
        assert_eq!(series.points()[0].1, NormalizedPoint::reference());
    }

    #[test]
    fn display_formats() {
        let m = measurement(12.345, 678.9);
        assert!(m.to_string().contains("12.35 s"));
        let p = NormalizedPoint {
            performance: 0.9,
            energy: 0.5,
        };
        assert!(p.to_string().contains("below EDP"));
    }
}
