//! Node power models mapping CPU utilization to wall power.
//!
//! The paper derives per-node "SysPower" models by loading a node with a
//! calibrated CPU-bound hash-join kernel at controlled utilization levels and
//! regressing the measured wall power against utilization. Table 1 gives the
//! Cluster-V model `130.03 · C^0.2369` (with `C` the CPU utilization in
//! percent), Table 3 gives the Beefy and Wimpy models
//! `f_B(c) = 130.03 · (100c)^0.2369` and `f_W(c) = 10.994 · (100c)^0.2875`,
//! and Section 5.3.1 uses `79.006 · (100c)^0.2451` for the L5630-based Beefy
//! prototype. This module implements those model families (power-law, linear,
//! exponential, logarithmic) together with least-squares fitting and an
//! `R²`-based model selection mirroring the paper's methodology ("we explored
//! exponential, power, and logarithmic regression models, and picked the one
//! with the best R² value").

use crate::error::SimError;
use crate::units::Watts;
use serde::{Deserialize, Serialize};

/// A single calibration measurement: CPU utilization (fraction in `[0, 1]`)
/// and the measured wall power at that utilization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// CPU utilization as a fraction in `[0, 1]`.
    pub utilization: f64,
    /// Measured wall power in watts.
    pub power: Watts,
}

impl PowerSample {
    /// Construct a new sample.
    pub fn new(utilization: f64, power_w: f64) -> Self {
        Self {
            utilization,
            power: Watts(power_w),
        }
    }
}

/// A regression model mapping CPU utilization (fraction in `[0, 1]`) to wall
/// power in watts.
///
/// All variants clamp the utilization argument into `[0, 1]` before
/// evaluating, matching how the paper's models are used (utilization is a
/// physical fraction; the engine constants `G_B`/`G_W` keep it strictly
/// positive during query execution).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PowerModel {
    /// `p(c) = coefficient · (100·c)^exponent` — the form published in the paper.
    PowerLaw {
        /// Multiplicative coefficient (watts).
        coefficient: f64,
        /// Exponent applied to the utilization percentage.
        exponent: f64,
    },
    /// `p(c) = idle + slope · c` — a linear (energy-proportional) model.
    Linear {
        /// Idle power at zero utilization (watts).
        idle: f64,
        /// Additional watts per unit utilization.
        slope: f64,
    },
    /// `p(c) = scale · exp(rate · c)` — an exponential model.
    Exponential {
        /// Power at zero utilization (watts).
        scale: f64,
        /// Exponential growth rate per unit utilization.
        rate: f64,
    },
    /// `p(c) = intercept + coefficient · ln(100·c + 1)` — a logarithmic model.
    Logarithmic {
        /// Intercept power (watts).
        intercept: f64,
        /// Coefficient of the logarithmic term.
        coefficient: f64,
    },
    /// A constant power draw regardless of utilization (useful for idle floors
    /// and non-CPU components).
    Constant {
        /// The constant power (watts).
        power: f64,
    },
}

impl PowerModel {
    /// The paper's published power-law form `a · (100c)^b`.
    pub fn power_law(coefficient: f64, exponent: f64) -> Self {
        PowerModel::PowerLaw {
            coefficient,
            exponent,
        }
    }

    /// A linear model `idle + slope·c`.
    pub fn linear(idle: f64, slope: f64) -> Self {
        PowerModel::Linear { idle, slope }
    }

    /// A constant model.
    pub fn constant(power: f64) -> Self {
        PowerModel::Constant { power }
    }

    /// Evaluate the model at a CPU utilization fraction, clamped to `[0, 1]`.
    pub fn power_at(&self, utilization: f64) -> Watts {
        let c = utilization.clamp(0.0, 1.0);
        let w = match *self {
            PowerModel::PowerLaw {
                coefficient,
                exponent,
            } => coefficient * (100.0 * c).powf(exponent),
            PowerModel::Linear { idle, slope } => idle + slope * c,
            PowerModel::Exponential { scale, rate } => scale * (rate * c).exp(),
            PowerModel::Logarithmic {
                intercept,
                coefficient,
            } => intercept + coefficient * (100.0 * c + 1.0).ln(),
            PowerModel::Constant { power } => power,
        };
        Watts(w.max(0.0))
    }

    /// Power at full (100%) utilization.
    pub fn peak_power(&self) -> Watts {
        self.power_at(1.0)
    }

    /// Power at 1% utilization — the paper's power-law models evaluate to their
    /// coefficient there, which is a useful proxy for near-idle power.
    pub fn near_idle_power(&self) -> Watts {
        self.power_at(0.01)
    }

    /// Dynamic range of the model: peak power divided by near-idle power.
    ///
    /// Energy-proportional hardware has a large dynamic range; the paper's
    /// server nodes have a small one (≈3×), which is why under-utilized nodes
    /// waste so much energy.
    pub fn dynamic_range(&self) -> f64 {
        let idle = self.near_idle_power().value();
        if idle <= f64::EPSILON {
            f64::INFINITY
        } else {
            self.peak_power().value() / idle
        }
    }
}

/// The outcome of a regression fit: the fitted model and its goodness of fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitReport {
    /// The fitted model.
    pub model: PowerModel,
    /// Coefficient of determination (R²) of the fit in the original
    /// (utilization, watts) space.
    pub r_squared: f64,
}

fn validate_samples(samples: &[PowerSample], need_positive_power: bool) -> Result<(), SimError> {
    if samples.len() < 2 {
        return Err(SimError::fit(format!(
            "need at least 2 samples, got {}",
            samples.len()
        )));
    }
    for s in samples {
        if !(0.0..=1.0).contains(&s.utilization) {
            return Err(SimError::invalid(format!(
                "utilization {} outside [0, 1]",
                s.utilization
            )));
        }
        if !s.power.value().is_finite() || s.power.value() < 0.0 {
            return Err(SimError::invalid(format!(
                "power {} is not a finite non-negative value",
                s.power.value()
            )));
        }
        if need_positive_power && s.power.value() <= 0.0 {
            return Err(SimError::fit(
                "power-law/exponential fits require strictly positive power samples",
            ));
        }
    }
    let first = samples[0].utilization;
    if samples
        .iter()
        .all(|s| (s.utilization - first).abs() < 1e-12)
    {
        return Err(SimError::fit("all samples share the same utilization"));
    }
    Ok(())
}

/// Ordinary least-squares fit of `y = a + b·x` returning `(a, b)`.
fn ols(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
    }
    let slope = if sxx.abs() < f64::EPSILON {
        0.0
    } else {
        sxy / sxx
    };
    let intercept = mean_y - slope * mean_x;
    (intercept, slope)
}

/// R² of `model` against `samples` in the original (utilization, watts) space.
pub fn r_squared(model: &PowerModel, samples: &[PowerSample]) -> f64 {
    let n = samples.len() as f64;
    if n < 1.0 {
        return 0.0;
    }
    let mean = samples.iter().map(|s| s.power.value()).sum::<f64>() / n;
    let ss_tot: f64 = samples
        .iter()
        .map(|s| (s.power.value() - mean).powi(2))
        .sum();
    let ss_res: f64 = samples
        .iter()
        .map(|s| (s.power.value() - model.power_at(s.utilization).value()).powi(2))
        .sum();
    if ss_tot.abs() < f64::EPSILON {
        // All samples equal: a perfect constant fit, else zero.
        return if ss_res.abs() < 1e-9 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Fit the paper's power-law form `p = a · (100c)^b` by linear regression in
/// log–log space.
pub fn fit_power_law(samples: &[PowerSample]) -> Result<FitReport, SimError> {
    validate_samples(samples, true)?;
    let filtered: Vec<&PowerSample> = samples.iter().filter(|s| s.utilization > 0.0).collect();
    if filtered.len() < 2 {
        return Err(SimError::fit(
            "power-law fit requires at least 2 samples with non-zero utilization",
        ));
    }
    let xs: Vec<f64> = filtered
        .iter()
        .map(|s| (100.0 * s.utilization).ln())
        .collect();
    let ys: Vec<f64> = filtered.iter().map(|s| s.power.value().ln()).collect();
    let (intercept, slope) = ols(&xs, &ys);
    let model = PowerModel::PowerLaw {
        coefficient: intercept.exp(),
        exponent: slope,
    };
    Ok(FitReport {
        model,
        r_squared: r_squared(&model, samples),
    })
}

/// Fit a linear model `p = idle + slope·c`.
pub fn fit_linear(samples: &[PowerSample]) -> Result<FitReport, SimError> {
    validate_samples(samples, false)?;
    let xs: Vec<f64> = samples.iter().map(|s| s.utilization).collect();
    let ys: Vec<f64> = samples.iter().map(|s| s.power.value()).collect();
    let (idle, slope) = ols(&xs, &ys);
    let model = PowerModel::Linear { idle, slope };
    Ok(FitReport {
        model,
        r_squared: r_squared(&model, samples),
    })
}

/// Fit an exponential model `p = scale · exp(rate·c)` by regression in
/// semi-log space.
pub fn fit_exponential(samples: &[PowerSample]) -> Result<FitReport, SimError> {
    validate_samples(samples, true)?;
    let xs: Vec<f64> = samples.iter().map(|s| s.utilization).collect();
    let ys: Vec<f64> = samples.iter().map(|s| s.power.value().ln()).collect();
    let (log_scale, rate) = ols(&xs, &ys);
    let model = PowerModel::Exponential {
        scale: log_scale.exp(),
        rate,
    };
    Ok(FitReport {
        model,
        r_squared: r_squared(&model, samples),
    })
}

/// Fit a logarithmic model `p = intercept + coefficient · ln(100c + 1)`.
pub fn fit_logarithmic(samples: &[PowerSample]) -> Result<FitReport, SimError> {
    validate_samples(samples, false)?;
    let xs: Vec<f64> = samples
        .iter()
        .map(|s| (100.0 * s.utilization + 1.0).ln())
        .collect();
    let ys: Vec<f64> = samples.iter().map(|s| s.power.value()).collect();
    let (intercept, coefficient) = ols(&xs, &ys);
    let model = PowerModel::Logarithmic {
        intercept,
        coefficient,
    };
    Ok(FitReport {
        model,
        r_squared: r_squared(&model, samples),
    })
}

/// Fit all candidate model families and return the one with the best R²,
/// replicating the paper's model-selection procedure.
pub fn fit_best(samples: &[PowerSample]) -> Result<FitReport, SimError> {
    let mut best: Option<FitReport> = None;
    let candidates = [
        fit_power_law(samples),
        fit_linear(samples),
        fit_exponential(samples),
        fit_logarithmic(samples),
    ];
    for candidate in candidates.into_iter().flatten() {
        best = match best {
            Some(current) if current.r_squared >= candidate.r_squared => Some(current),
            _ => Some(candidate),
        };
    }
    best.ok_or_else(|| SimError::fit("no model family could be fitted to the samples"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Cluster-V / Beefy model published in Tables 1 and 3.
    fn beefy() -> PowerModel {
        PowerModel::power_law(130.03, 0.2369)
    }

    /// The Wimpy (Laptop B) model published in Table 3.
    fn wimpy() -> PowerModel {
        PowerModel::power_law(10.994, 0.2875)
    }

    #[test]
    fn paper_beefy_model_values() {
        // At 1% utilization the power-law evaluates to its coefficient.
        let near_idle = beefy().power_at(0.01).value();
        assert!((near_idle - 130.03).abs() < 1e-9);
        // At 100% utilization: 130.03 * 100^0.2369 ≈ 387 W.
        let peak = beefy().peak_power().value();
        assert!((peak - 387.0).abs() < 5.0, "peak {peak}");
    }

    #[test]
    fn paper_wimpy_model_values() {
        let peak = wimpy().peak_power().value();
        // ≈ 41 W at full load; the paper reports ~37 W average laptop power
        // during the prototype runs (not fully loaded).
        assert!((peak - 41.3).abs() < 1.0, "peak {peak}");
        assert!(wimpy().power_at(0.5).value() < peak);
    }

    #[test]
    fn wimpy_draws_roughly_a_tenth_of_beefy() {
        // Figure 10(a): "a Wimpy node power footprint is almost 10% of the
        // Beefy node power footprint".
        let ratio = wimpy().peak_power().value() / beefy().peak_power().value();
        assert!(ratio > 0.05 && ratio < 0.15, "ratio {ratio}");
    }

    #[test]
    fn power_is_monotonic_in_utilization() {
        for model in [
            beefy(),
            wimpy(),
            PowerModel::linear(50.0, 100.0),
            PowerModel::Exponential {
                scale: 50.0,
                rate: 1.0,
            },
            PowerModel::Logarithmic {
                intercept: 20.0,
                coefficient: 10.0,
            },
        ] {
            let mut prev = model.power_at(0.0).value();
            for i in 1..=100 {
                let cur = model.power_at(i as f64 / 100.0).value();
                assert!(cur + 1e-9 >= prev, "{model:?} not monotonic at {i}");
                prev = cur;
            }
        }
    }

    #[test]
    fn utilization_is_clamped() {
        assert_eq!(beefy().power_at(1.5), beefy().power_at(1.0));
        assert_eq!(beefy().power_at(-0.5), beefy().power_at(0.0));
    }

    #[test]
    fn constant_model_ignores_utilization() {
        let m = PowerModel::constant(42.0);
        assert_eq!(m.power_at(0.0), Watts(42.0));
        assert_eq!(m.power_at(1.0), Watts(42.0));
        assert_eq!(m.dynamic_range(), 1.0);
    }

    fn synth_samples(model: &PowerModel, n: usize) -> Vec<PowerSample> {
        (1..=n)
            .map(|i| {
                let u = i as f64 / n as f64;
                PowerSample::new(u, model.power_at(u).value())
            })
            .collect()
    }

    #[test]
    fn power_law_fit_recovers_parameters() {
        let truth = beefy();
        let samples = synth_samples(&truth, 20);
        let fit = fit_power_law(&samples).unwrap();
        match fit.model {
            PowerModel::PowerLaw {
                coefficient,
                exponent,
            } => {
                assert!((coefficient - 130.03).abs() < 0.5, "coeff {coefficient}");
                assert!((exponent - 0.2369).abs() < 0.01, "exp {exponent}");
            }
            other => panic!("expected power law, got {other:?}"),
        }
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn linear_fit_recovers_parameters() {
        let truth = PowerModel::linear(69.0, 85.0);
        let samples = synth_samples(&truth, 10);
        let fit = fit_linear(&samples).unwrap();
        match fit.model {
            PowerModel::Linear { idle, slope } => {
                assert!((idle - 69.0).abs() < 1e-6);
                assert!((slope - 85.0).abs() < 1e-6);
            }
            other => panic!("expected linear, got {other:?}"),
        }
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn exponential_and_logarithmic_fits_recover_parameters() {
        let truth = PowerModel::Exponential {
            scale: 30.0,
            rate: 1.2,
        };
        let fit = fit_exponential(&synth_samples(&truth, 15)).unwrap();
        assert!(fit.r_squared > 0.999);

        let truth = PowerModel::Logarithmic {
            intercept: 12.0,
            coefficient: 6.0,
        };
        let fit = fit_logarithmic(&synth_samples(&truth, 15)).unwrap();
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn best_fit_selects_the_generating_family() {
        let truth = beefy();
        let best = fit_best(&synth_samples(&truth, 25)).unwrap();
        assert!(best.r_squared > 0.999);
        // The selected model must reproduce the truth closely at every point.
        for i in 1..=20 {
            let u = i as f64 / 20.0;
            let err = (best.model.power_at(u).value() - truth.power_at(u).value()).abs()
                / truth.power_at(u).value();
            assert!(err < 0.02, "relative error {err} at u={u}");
        }
    }

    #[test]
    fn fit_rejects_degenerate_input() {
        assert!(fit_power_law(&[PowerSample::new(0.5, 100.0)]).is_err());
        let same_util = vec![PowerSample::new(0.5, 100.0), PowerSample::new(0.5, 120.0)];
        assert!(fit_linear(&same_util).is_err());
        let bad_util = vec![PowerSample::new(-0.5, 100.0), PowerSample::new(0.7, 120.0)];
        assert!(fit_linear(&bad_util).is_err());
        let zero_power = vec![PowerSample::new(0.2, 0.0), PowerSample::new(0.7, 120.0)];
        assert!(fit_power_law(&zero_power).is_err());
        assert!(fit_exponential(&zero_power).is_err());
    }

    #[test]
    fn dynamic_range_matches_paper_intuition() {
        // Beefy servers: ~3x between near-idle and peak → poor proportionality.
        let beefy_range = beefy().dynamic_range();
        assert!(beefy_range > 2.0 && beefy_range < 4.0, "{beefy_range}");
        // Wimpy laptop: similar shape but far lower absolute power.
        let wimpy_range = wimpy().dynamic_range();
        assert!(wimpy_range > 2.0 && wimpy_range < 5.0, "{wimpy_range}");
    }

    #[test]
    fn r_squared_of_constant_data() {
        let samples = vec![PowerSample::new(0.1, 50.0), PowerSample::new(0.9, 50.0)];
        assert_eq!(r_squared(&PowerModel::constant(50.0), &samples), 1.0);
        assert_eq!(r_squared(&PowerModel::constant(10.0), &samples), 0.0);
    }
}
