//! Serving-layer benchmarks: the discrete-event kernel under an open-loop
//! Poisson load (~12k arrivals through the heap per iteration) and the
//! `Serving` estimator lens over a QPS sweep and a heterogeneous
//! energy-aware placement run.
//!
//! The case definitions live in `eedc_bench::cases` and also run under the
//! `bench_suite` regression binary; this target runs just this group.

use eedc_bench::cases;
use eedc_bench::harness::BenchSuite;

fn main() {
    let mut suite = BenchSuite::new();
    cases::register_serving(&mut suite);
    suite.run(None);
}
