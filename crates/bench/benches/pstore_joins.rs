//! Wall-clock timing of the three join strategies through the full cluster
//! runtime (engine execution + network simulation + energy model).

use eedc_bench::{bench_cluster, time_case};
use eedc_pstore::{JoinQuerySpec, JoinStrategy};

fn main() {
    let cluster = bench_cluster(4);
    let query = JoinQuerySpec::q3_dual_shuffle();
    for strategy in JoinStrategy::ALL {
        time_case(&format!("pstore_join/{strategy}"), 5, || {
            cluster.run(&query, strategy).expect("join runs");
        });
    }
}
