//! Wall-clock timing of the three join strategies through the experiment
//! API under the measured lens (engine execution + network simulation +
//! energy model).
//!
//! The case definitions live in `eedc_bench::cases` and also run under the
//! `bench_suite` regression binary; this target runs just this group.

use eedc_bench::cases;
use eedc_bench::harness::BenchSuite;

fn main() {
    let mut suite = BenchSuite::new();
    cases::register_pstore_joins(&mut suite);
    suite.run(None);
}
