//! Timing of the substrate layers in isolation: scans, partitioning, and
//! transfer simulation.
//!
//! The case definitions live in `eedc_bench::cases` and also run under the
//! `bench_suite` regression binary; this target runs just this group.

use eedc_bench::cases;
use eedc_bench::harness::BenchSuite;

fn main() {
    let mut suite = BenchSuite::new();
    cases::register_substrates(&mut suite);
    suite.run(None);
}
