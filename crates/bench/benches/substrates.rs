//! Timing of the substrate layers in isolation: scans, partitioning, and
//! transfer simulation.

use eedc_bench::time_case;
use eedc_netsim::{shuffle_flows, Fabric, TransferSimulator};
use eedc_simkit::units::{Megabytes, MegabytesPerSec};
use eedc_storage::{hash_partition, scan, Predicate, Table};
use eedc_tpch::gen::OrdersGenerator;
use eedc_tpch::ScaleFactor;

fn main() {
    let orders = Table::from_orders(OrdersGenerator::new(ScaleFactor(0.01), 1));

    time_case("substrates/scan_orders", 10, || {
        scan(&orders, &Predicate::orders_custkey_at_most(500), None).expect("scan runs");
    });

    time_case("substrates/hash_partition", 10, || {
        hash_partition(&orders, "O_ORDERKEY", 8).expect("partition runs");
    });

    let fabric = Fabric::uniform(16, MegabytesPerSec(100.0)).expect("fabric builds");
    let qualifying = vec![Megabytes(400.0); 16];
    let destinations: Vec<usize> = (0..16).collect();
    time_case("substrates/transfer_sim", 10, || {
        let flows = shuffle_flows(&qualifying, &destinations, 0);
        TransferSimulator::new(&fabric)
            .run(&flows)
            .expect("transfer runs");
    });
}
