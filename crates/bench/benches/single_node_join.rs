//! Wall-clock timing of the Section 5.1 single-node microbenchmark across
//! the Table 2 machines.

use eedc_bench::time_case;
use eedc_pstore::microbench::{single_node_hash_join, MicrobenchOptions};
use eedc_simkit::HardwareCatalog;

fn main() {
    let catalog = HardwareCatalog::paper();
    let options = MicrobenchOptions::default();
    for spec in catalog.table2_systems() {
        time_case(&format!("single_node_join/{}", spec.name), 5, || {
            single_node_hash_join(spec, &options).expect("microbench runs");
        });
    }
}
