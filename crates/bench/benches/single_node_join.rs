//! Wall-clock timing of the Section 5.1 single-node microbenchmark across
//! the Table 2 machines.
//!
//! The case definitions live in `eedc_bench::cases` and also run under the
//! `bench_suite` regression binary; this target runs just this group.

use eedc_bench::cases;
use eedc_bench::harness::BenchSuite;

fn main() {
    let mut suite = BenchSuite::new();
    cases::register_single_node_join(&mut suite);
    suite.run(None);
}
