//! Vertica cluster-scaling benchmark: the Section 3 homogeneous scale-down
//! study (Figures 1–2) through the behavioural estimator, with the study's
//! published shape pinned every iteration (Q1 scales linearly, Q12 flattens
//! against its 0.48 repartition floor, network-bound queries pay the
//! energy-proportionality gap).
//!
//! The case definitions live in `eedc_bench::cases` and also run under the
//! `bench_suite` regression binary; this target runs just this group.

use eedc_bench::cases;
use eedc_bench::harness::BenchSuite;

fn main() {
    let mut suite = BenchSuite::new();
    cases::register_vertica_scaling(&mut suite);
    suite.run(None);
}
