//! Placeholder for the Vertica cluster-scaling benchmark: replaying the
//! Section 3 homogeneous scale-down study through the behavioural DBMS
//! simulators once `eedc-dbmsim` grows beyond the first-order scaling law
//! (see ROADMAP.md).

fn main() {
    println!("vertica_scaling: pending the eedc-dbmsim behavioural simulators (see ROADMAP.md)");
}
