//! Vertica cluster-scaling benchmark: replay the Section 3 homogeneous
//! scale-down study (Figures 1–2) through the behavioural estimator of the
//! experiment API, timed.
//!
//! Each of the paper's profiled queries is extrapolated from the eight-node
//! Cluster-V reference across the full 1..=48-node range; the timed loop is
//! one full four-query sweep. The correctness spot-checks pin the study's
//! published shape: Q1 scales linearly, Q12 flattens against its 0.48
//! repartition floor, and network-bound queries pay the
//! energy-proportionality gap as the cluster grows.
//!
//! ```sh
//! cargo bench -p eedc-bench --bench vertica_scaling
//! ```

use eedc_bench::time_case;
use eedc_core::{Behavioural, Experiment, ExperimentReport, ProfiledQuery};
use eedc_pstore::ClusterSpec;
use eedc_simkit::catalog::cluster_v_node;
use eedc_tpch::QueryId;

const SIZES: [usize; 7] = [1, 2, 4, 8, 16, 32, 48];
const QUERIES: [QueryId; 4] = [QueryId::Q1, QueryId::Q3, QueryId::Q12, QueryId::Q21];

fn sweep() -> ExperimentReport {
    let designs: Vec<ClusterSpec> = SIZES
        .iter()
        .map(|&n| ClusterSpec::homogeneous(cluster_v_node(), n).expect("spec is valid"))
        .collect();
    let mut experiment = Experiment::new(&ProfiledQuery::vertica_sf1000(QUERIES[0]));
    for &query in &QUERIES[1..] {
        experiment = experiment.workload(&ProfiledQuery::vertica_sf1000(query));
    }
    experiment
        .designs(designs)
        .estimator(Behavioural::default())
        .run()
        .expect("behavioural sweep runs")
}

fn main() {
    println!(
        "vertica_scaling: SF-1000 scale-down study, {} queries x {} cluster sizes",
        QUERIES.len(),
        SIZES.len()
    );

    // Warm-up + correctness pass.
    let report = sweep();
    assert_eq!(report.series.len(), QUERIES.len());

    // The timed loop: one full four-query behavioural sweep per iteration.
    let mean = time_case("vertica_scaling/4_queries_x_7_sizes", 50, || {
        let timed = sweep();
        assert_eq!(timed.series.len(), QUERIES.len());
    });
    assert!(mean >= 0.0);

    for series in &report.series {
        let at = |n: usize| {
            series
                .record(&format!("{n}B,0W"))
                .expect("every size is feasible")
        };
        let rel = |n: usize| at(n).response_time.value();
        println!(
            "  {:<11} rel time @1/8/48 nodes: {:>6.2} / {:>4.2} / {:>5.3}",
            series.workload,
            rel(1),
            rel(8),
            rel(48),
        );
    }

    // Figure 2(a): Q1 is perfectly partitionable — linear speedup.
    let q1 = &report.series[0];
    let t = |s: &eedc_core::RunSeries, n: usize| {
        s.record(&format!("{n}B,0W")).unwrap().response_time.value()
    };
    assert!((t(q1, 16) - 0.5).abs() < 1e-9);
    assert!((t(q1, 4) - 2.0).abs() < 1e-9);

    // Figure 2(c): Q12 flattens against its 0.48 repartition floor.
    let q12 = &report.series[2];
    assert!(t(q12, 48) > 0.48);
    assert!(t(q12, 48) < t(q12, 16));
    assert!(t(q12, 16) > 0.5 * t(q12, 8));

    // The energy-proportionality gap: scaling Q12 out keeps buying less
    // time per joule — energy at 48 nodes exceeds the 8-node reference.
    let e =
        |s: &eedc_core::RunSeries, n: usize| s.record(&format!("{n}B,0W")).unwrap().energy.value();
    assert!(e(q12, 48) > e(q12, 8));
    // ...while the perfectly-local Q1 holds energy flat as it scales.
    assert!((e(q1, 48) / e(q1, 8) - 1.0).abs() < 1e-9);
    println!("  shape checks passed (Q1 linear, Q12 floored at 0.48, energy gap present)");
}
