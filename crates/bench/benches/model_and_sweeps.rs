//! Timing of the Figures 3–4 concurrency sweep (1/2/4 concurrent joins)
//! through the experiment API under the measured lens.
//!
//! The case definitions live in `eedc_bench::cases` and also run under the
//! `bench_suite` regression binary; this target runs just this group.

use eedc_bench::cases;
use eedc_bench::harness::BenchSuite;

fn main() {
    let mut suite = BenchSuite::new();
    cases::register_model_and_sweeps(&mut suite);
    suite.run(None);
}
