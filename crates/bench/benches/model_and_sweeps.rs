//! Timing of the model-level sweeps (concurrency levels through the cluster
//! runtime). Will grow with the analytical model in `eedc-core`.

use eedc_bench::{bench_cluster, time_case};
use eedc_pstore::concurrency::ConcurrencySweep;
use eedc_pstore::{JoinQuerySpec, JoinStrategy};

fn main() {
    let cluster = bench_cluster(4);
    let query = JoinQuerySpec::q3_dual_shuffle();
    time_case("sweeps/concurrency_1_2_4", 3, || {
        ConcurrencySweep::paper(&cluster, &query, JoinStrategy::DualShuffle).expect("sweep runs");
    });
}
