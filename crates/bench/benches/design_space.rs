//! Design-space enumeration benchmark: the Section 6 advisor sweeping the
//! `(b Beefy, w Wimpy)` grid with the Section 5.4 closed-form model through
//! the estimator-agnostic experiment API, at three grid sizes. The
//! paper-sized grid re-checks the recommendation at the paper's performance
//! targets every iteration.
//!
//! The case definitions live in `eedc_bench::cases` and also run under the
//! `bench_suite` regression binary; this target runs just this group.

use eedc_bench::cases;
use eedc_bench::harness::BenchSuite;

fn main() {
    let mut suite = BenchSuite::new();
    cases::register_design_space(&mut suite);
    suite.run(None);
}
