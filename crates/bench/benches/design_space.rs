//! Placeholder for the design-space enumeration benchmark: timing the
//! (b Beefy, w Wimpy) advisor of Section 6 once `eedc-core` grows the
//! analytical model (see ROADMAP.md).

fn main() {
    println!("design_space: pending the eedc-core analytical model (see ROADMAP.md)");
}
