//! Design-space enumeration benchmark: time the Section 6 advisor sweeping
//! the `(b Beefy, w Wimpy)` grid with the Section 5.4 closed-form model
//! through the estimator-agnostic experiment API.
//!
//! The sweep is the advisor's hot loop — one estimate per design — so this
//! reports designs/second at several grid sizes, plus the recommendation at
//! the paper's performance targets as a correctness spot-check.
//!
//! ```sh
//! cargo bench -p eedc-bench --bench design_space
//! ```

use eedc_core::{Analytical, DesignAdvisor, DesignSpace, SweepJoin};
use eedc_pstore::JoinQuerySpec;
use eedc_simkit::catalog::{cluster_v_node, laptop_b};
use std::time::Instant;

fn main() {
    let workload = SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle());
    let advisor = DesignAdvisor::new(Analytical, &workload);

    println!("design_space: (b Beefy, w Wimpy) grid sweep, dual-shuffle Q3 over 700 GB ⋈ 2.8 TB");
    for (max_beefy, max_wimpy) in [(8usize, 16usize), (16, 32), (32, 64)] {
        let space = DesignSpace::new(cluster_v_node(), laptop_b(), max_beefy, max_wimpy)
            .expect("catalog nodes form a valid design space");

        // Warm-up pass, then the timed passes.
        let report = advisor.evaluate(&space).expect("sweep evaluates");
        let passes = 10;
        let start = Instant::now();
        for _ in 0..passes {
            let timed = advisor.evaluate(&space).expect("sweep evaluates");
            assert_eq!(timed.series.points().len(), report.series.points().len());
        }
        let elapsed = start.elapsed();
        let per_pass = elapsed / passes;
        let designs_per_sec = space.len() as f64 / per_pass.as_secs_f64();

        println!(
            "  {max_beefy:>2}B x {max_wimpy:>2}W grid ({:>4} designs, {:>4} feasible): \
             {:>8.2?} per sweep, {:>9.0} designs/s",
            space.len(),
            report.series.points().len(),
            per_pass,
            designs_per_sec,
        );
    }

    // Correctness spot-check on the paper-sized grid.
    let space = DesignSpace::new(cluster_v_node(), laptop_b(), 8, 16).expect("space is valid");
    let report = advisor.evaluate(&space).expect("sweep evaluates");
    for target in [0.9, 0.75, 0.5] {
        let pick = report
            .recommend(target)
            .expect("the all-Beefy reference always qualifies for targets <= 1");
        assert!(pick.point.performance + 1e-9 >= target);
        println!("  target {target:.2}: {pick}");
    }
}
