fn main() {}
