//! Engine-behaviour comparison benchmark: DBMS-X versus P-store (Section
//! 3.2) through the trace-driven `Traced` estimator, timed.
//!
//! Each iteration sweeps the Section 5.4 join across the homogeneous
//! scale-down designs under three engine behaviours — the pipelined P-store
//! engine, a staging-only engine, and the full DBMS-X engine (staging plus
//! a mid-query restart) — synthesizing, shaping and replaying a utilization
//! trace per (engine, design) pair. The correctness spot-checks pin the
//! Section 3.2 shape: every behavioural addition strictly raises energy on
//! every design, and the full DBMS-X engine dominates P-store by more than
//! the restart factor alone.
//!
//! ```sh
//! cargo bench -p eedc-bench --bench engine_comparison
//! ```

use eedc_bench::time_case;
use eedc_core::{Experiment, ExperimentReport, SweepJoin, Traced};
use eedc_dbmsim::{EngineBehaviour, RestartPolicy};
use eedc_pstore::{ClusterSpec, JoinQuerySpec};
use eedc_simkit::catalog::cluster_v_node;

const SIZES: [usize; 4] = [16, 12, 8, 4];

fn staging_only() -> Traced {
    Traced::with_engine(
        EngineBehaviour::new("staging", true, RestartPolicy::none()).expect("policy is valid"),
    )
}

fn sweep() -> ExperimentReport {
    let workload = SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle());
    let designs =
        SIZES.map(|n| ClusterSpec::homogeneous(cluster_v_node(), n).expect("spec is valid"));
    Experiment::new(&workload)
        .designs(designs)
        .estimator(Traced::pstore())
        .estimator(staging_only())
        .estimator(Traced::dbms_x())
        .run()
        .expect("traced sweep runs")
}

fn main() {
    println!(
        "engine_comparison: 3 engine behaviours x {} cluster sizes",
        SIZES.len()
    );

    // Warm-up + correctness pass.
    let report = sweep();
    assert_eq!(report.series.len(), 3);

    // The timed loop: one full three-engine sweep per iteration.
    let mean = time_case("engine_comparison/3_engines_x_4_sizes", 30, || {
        let timed = sweep();
        assert_eq!(timed.series.len(), 3);
    });
    assert!(mean >= 0.0);

    let pstore = &report.series[0];
    let staging = &report.series[1];
    let dbms_x = &report.series[2];
    for ((p, s), x) in pstore
        .records
        .iter()
        .zip(&staging.records)
        .zip(&dbms_x.records)
    {
        println!(
            "  {:>7}: p-store {:7.1} kJ | +staging {:7.1} kJ | dbms-x {:7.1} kJ ({:4.2}x)",
            p.design,
            p.energy.as_kilojoules(),
            s.energy.as_kilojoules(),
            x.energy.as_kilojoules(),
            x.energy.value() / p.energy.value(),
        );
        // Section 3.2's shape, held strictly at every design point:
        // staging alone raises energy, and the mid-query restart raises it
        // further still.
        assert!(s.energy > p.energy, "{}: staging does not cost", p.design);
        assert!(x.energy > s.energy, "{}: restart does not cost", p.design);
        assert!(x.response_time > p.response_time, "{}", p.design);
        // The restart replays half of the staged run: the full engine pays
        // more than 1.5x the pipelined energy.
        assert!(
            x.energy.value() > 1.5 * p.energy.value(),
            "{}: ratio only {:.3}",
            p.design,
            x.energy.value() / p.energy.value(),
        );
        // The staged series carries the extra disk phases; the pipelined
        // series does not.
        assert!(x.phases.iter().any(|ph| ph.label.ends_with("/stage")));
        assert!(p.phases.iter().all(|ph| !ph.label.ends_with("/stage")));
    }
    println!("  shape checks passed (staging and restart each strictly add energy)");
}
