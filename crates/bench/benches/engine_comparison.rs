//! Engine-behaviour comparison benchmark: DBMS-X versus P-store (Section
//! 3.2) through the trace-driven `Traced` estimator, holding the section's
//! shape strictly at every design point (staging and the mid-query restart
//! each add energy).
//!
//! The case definitions live in `eedc_bench::cases` and also run under the
//! `bench_suite` regression binary; this target runs just this group.

use eedc_bench::cases;
use eedc_bench::harness::BenchSuite;

fn main() {
    let mut suite = BenchSuite::new();
    cases::register_engine_comparison(&mut suite);
    suite.run(None);
}
