//! Regenerate the paper's headline numbers as a text report: the Figure 5
//! strategy comparison and the Figure 6 single-node sweep.

use eedc_bench::bench_cluster;
use eedc_pstore::microbench::{table2_sweep, MicrobenchOptions};
use eedc_pstore::{JoinQuerySpec, JoinStrategy};
use eedc_simkit::HardwareCatalog;

fn main() {
    let cluster = bench_cluster(8);
    let query = JoinQuerySpec::q3_dual_shuffle();
    println!(
        "== Figure 5: join strategies on {} ({}) ==",
        cluster.spec().label(),
        query.label()
    );
    for strategy in JoinStrategy::ALL {
        match cluster.run(&query, strategy) {
            Ok(execution) => {
                let m = execution.measurement();
                println!(
                    "{strategy:>15}: {:.1} s, {:.1} kJ, {:.0} MB over network",
                    m.response_time.value(),
                    m.energy.as_kilojoules(),
                    execution.bytes_over_network().value(),
                );
            }
            Err(err) => println!("{strategy:>15}: {err}"),
        }
    }

    println!();
    println!("== Figure 6: single-node hash join (10 MB x 2 GB) ==");
    let catalog = HardwareCatalog::paper();
    match table2_sweep(&catalog, &MicrobenchOptions::default()) {
        Ok(results) => {
            for result in results {
                println!(
                    "{:>15}: {:.1} s, {:.0} J",
                    result.node,
                    result.duration.value(),
                    result.energy.value(),
                );
            }
        }
        Err(err) => println!("sweep failed: {err}"),
    }
}
