//! Regenerate the paper's headline numbers as a text report and land the
//! underlying `RunRecord` series on disk as JSON for the figures pipeline:
//! the Figure 5 strategy comparison, a design-space sweep under all four
//! estimator lenses (measured / analytical / behavioural / traced), the
//! Section 3.2 DBMS-X-vs-P-store engine comparison, the serving-layer
//! throughput–energy Pareto sweep, the availability-under-churn fault
//! sweep, and the Figure 6 single-node sweep.
//!
//! ```sh
//! cargo run --release -p eedc-bench --bin figures [output-dir]
//! ```
//!
//! JSON series are written to `output-dir` (default `figures-data/`).

use eedc_bench::bench_options;
use eedc_core::{
    Analytical, Behavioural, Estimator, Experiment, FaultModel, Measured, RecoveryPolicy,
    ScalePolicy, Serving, ServingWorkload, SweepJoin, Traced, Workload,
};
use eedc_pstore::microbench::{table2_sweep, MicrobenchOptions};
use eedc_pstore::{ClusterSpec, JoinQuerySpec, JoinStrategy};
use eedc_simkit::catalog::{cluster_v_node, laptop_b};
use eedc_simkit::HardwareCatalog;
use std::path::PathBuf;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("figures-data"), PathBuf::from);
    let workload = SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle());

    // ---- Figure 5: the three join strategies on eight Cluster-V nodes.
    println!("== Figure 5: join strategies on 8B,0W (O5%/L5%) ==");
    for strategy in JoinStrategy::ALL {
        let result = Experiment::new(&workload)
            .strategy(strategy)
            .design(ClusterSpec::homogeneous(cluster_v_node(), 8).expect("spec is valid"))
            .estimator(Measured::new(bench_options()))
            .run();
        match result {
            Ok(report) => {
                let record = &report.series[0].records[0];
                println!(
                    "{strategy:>15}: {:.1} s, {:.1} kJ, {:.0} MB over network",
                    record.response_time.value(),
                    record.energy.as_kilojoules(),
                    record
                        .phases
                        .iter()
                        .map(|p| p.bytes_over_network.value())
                        .sum::<f64>(),
                );
                let path = out_dir.join(format!("figure5_{strategy}.json"));
                match report.write_json(&path) {
                    Ok(()) => println!("{:>15}  -> {}", "", path.display()),
                    Err(err) => println!("{:>15}  !! JSON write failed: {err}", ""),
                }
            }
            Err(err) => println!("{strategy:>15}: {err}"),
        }
    }

    // ---- The design-space sweep, one Experiment invocation, all four
    // estimator lenses over the same designs.
    println!();
    println!("== Design-space sweep: measured vs analytical vs behavioural vs traced ==");
    let designs = [16usize, 8, 4]
        .map(|n| ClusterSpec::homogeneous(cluster_v_node(), n).expect("spec is valid"));
    match Experiment::new(&workload)
        .designs(designs.clone())
        .estimator(Measured::new(bench_options()))
        .estimator(Analytical)
        .estimator(Behavioural::default())
        .estimator(Traced::pstore())
        .run()
    {
        Ok(report) => {
            for series in &report.series {
                print!("{:>12}:", series.estimator);
                for record in &series.records {
                    let point = record.normalized.expect("records are normalized");
                    print!(
                        "  {} perf {:.2}/energy {:.2}",
                        record.design, point.performance, point.energy
                    );
                }
                println!();
            }
            let path = out_dir.join("design_space.json");
            match report.write_json(&path) {
                Ok(()) => println!("  -> {}", path.display()),
                Err(err) => println!("  !! JSON write failed: {err}"),
            }
        }
        Err(err) => println!("sweep failed: {err}"),
    }

    // ---- Section 3.2: the engine-behaviour comparison. Same designs, same
    // workload, but the trace is shaped by the DBMS-X behaviour — disk-staged
    // intermediates and a mid-query restart — before replay.
    println!();
    println!("== Section 3.2: P-store vs DBMS-X engine behaviour (traced) ==");
    match Experiment::new(&workload)
        .designs(designs)
        .estimator(Traced::pstore())
        .estimator(Traced::dbms_x())
        .run()
    {
        Ok(report) => {
            let pstore = &report.series[0];
            let dbms_x = &report.series[1];
            for (p, x) in pstore.records.iter().zip(&dbms_x.records) {
                println!(
                    "  {:>7}: p-store {:6.1} s / {:7.1} kJ  |  dbms-x {:6.1} s / {:7.1} kJ ({:4.2}x energy)",
                    p.design,
                    p.response_time.value(),
                    p.energy.as_kilojoules(),
                    x.response_time.value(),
                    x.energy.as_kilojoules(),
                    x.energy.value() / p.energy.value(),
                );
            }
            let path = out_dir.join("engine_behaviour.json");
            match report.write_json(&path) {
                Ok(()) => println!("  -> {}", path.display()),
                Err(err) => println!("  !! JSON write failed: {err}"),
            }
        }
        Err(err) => println!("engine comparison failed: {err}"),
    }

    // ---- The serving Pareto sweep: the same open-loop query stream offered
    // to three designs, each point a (tail latency, energy per query)
    // trade-off under energy-aware Beefy-vs-Wimpy placement and under
    // join-shortest-queue balancing.
    println!();
    println!("== Serving: latency vs energy-per-query across designs ==");
    let mut template = workload;
    template.build_bytes = eedc_simkit::units::Megabytes(2_000.0);
    template.probe_bytes = eedc_simkit::units::Megabytes(8_000.0);
    let serving_designs = [
        ClusterSpec::homogeneous(cluster_v_node(), 8),
        ClusterSpec::heterogeneous(cluster_v_node(), 4, laptop_b(), 8),
        ClusterSpec::heterogeneous(cluster_v_node(), 2, laptop_b(), 16),
    ]
    .map(|d| d.expect("spec is valid"));
    let serving_result = Analytical
        .estimate(&template.plans()[0], &serving_designs[0])
        .map(|reference| {
            let service_time = reference.response_time.value();
            let window = eedc_simkit::units::Seconds(2_000.0 * service_time);
            let serving = ServingWorkload::new(&template, 0.5 / service_time, window, 42);
            Experiment::new(&serving)
                .designs(serving_designs)
                .estimator(Serving::energy_aware())
                .estimator(Serving::jsq())
                .run()
        })
        .and_then(|r| r);
    match serving_result {
        Ok(report) => {
            for series in &report.series {
                println!("  [{}]", series.estimator);
                for record in &series.records {
                    let stats = record.serving.as_ref().expect("serving lens fills stats");
                    println!(
                        "  {:>7}: p50 {:6.2} s, p99 {:6.2} s, {:.4} qps, {:5.1}% lost, depth {:4.2}, {:6.0} J/query",
                        record.design,
                        stats.p50.value(),
                        stats.p99.value(),
                        stats.achieved_qps,
                        stats.drop_rate * 100.0,
                        stats.pool_mean_depth.iter().sum::<f64>(),
                        stats.energy_per_query.value(),
                    );
                }
            }
            let path = out_dir.join("serving_pareto.json");
            match report.write_json(&path) {
                Ok(()) => println!("  -> {}", path.display()),
                Err(err) => println!("  !! JSON write failed: {err}"),
            }
        }
        Err(err) => println!("serving sweep failed: {err}"),
    }

    // ---- Availability under churn: the same designs and stream, now with
    // node failures (hazard + scripted outages), checkpoint recovery, and an
    // elastic scale policy whose migration cost the lens derives from the
    // port-volume model. Closes with the availability objective.
    println!();
    println!("== Faults: availability and energy under churn ==");
    let churn_designs = [
        ClusterSpec::homogeneous(cluster_v_node(), 8),
        ClusterSpec::heterogeneous(cluster_v_node(), 4, laptop_b(), 8),
        ClusterSpec::heterogeneous(cluster_v_node(), 2, laptop_b(), 16),
    ]
    .map(|d| d.expect("spec is valid"));
    let churn_result = Analytical
        .estimate(&template.plans()[0], &churn_designs[0])
        .map(|reference| {
            let service_time = reference.response_time.value();
            let window = eedc_simkit::units::Seconds(1_000.0 * service_time);
            let rate = 6.0 * 3_600.0 / (8.0 * window.value());
            let model = FaultModel::new(rate)
                .repair_time(eedc_simkit::units::Seconds(2.0 * service_time))
                .recovery(RecoveryPolicy::Checkpoint {
                    interval: eedc_simkit::units::Seconds(service_time / 4.0),
                })
                .outage(
                    0,
                    eedc_simkit::units::Seconds(0.25 * window.value()),
                    eedc_simkit::units::Seconds(4.0 * service_time),
                )
                .scale(ScalePolicy::new(
                    12,
                    1,
                    eedc_simkit::units::Seconds(2.0 * service_time),
                ));
            let churned = ServingWorkload::new(&template, 0.4 / service_time, window, 4_242)
                .queue_capacity(256)
                .with_faults(model);
            let report = Experiment::new(&churned)
                .designs(churn_designs.clone())
                .estimator(Serving::fcfs())
                .run()?;
            let advisor = eedc_core::DesignAdvisor::new(Serving::fcfs(), &churned);
            let pick = advisor.cheapest_meeting_availability(&churn_designs, 0.98)?;
            Ok::<_, eedc_core::CoreError>((report, pick))
        })
        .and_then(|r| r);
    match churn_result {
        Ok((report, pick)) => {
            for record in &report.series[0].records {
                let stats = record.serving.as_ref().expect("serving lens fills stats");
                let faults = stats.faults.as_ref().expect("churned runs report faults");
                println!(
                    "  {:>7}: {:.5} available, {} failures, {}/{} killed/readmitted, {} scale events, {:6.0} J/query",
                    record.design,
                    faults.availability,
                    faults.failures,
                    faults.killed,
                    faults.readmitted,
                    faults.scale_out_events + faults.scale_in_events,
                    stats.energy_per_query.value(),
                );
            }
            match pick {
                Some(best) => println!(
                    "  cheapest design meeting availability >= 0.98: {}",
                    best.design
                ),
                None => println!("  no design meets availability >= 0.98"),
            }
            let path = out_dir.join("availability_churn.json");
            match report.write_json(&path) {
                Ok(()) => println!("  -> {}", path.display()),
                Err(err) => println!("  !! JSON write failed: {err}"),
            }
        }
        Err(err) => println!("churn sweep failed: {err}"),
    }

    // ---- Figure 6: the single-node microbenchmark (not a cluster workload;
    // stays on its dedicated path).
    println!();
    println!("== Figure 6: single-node hash join (10 MB x 2 GB) ==");
    let catalog = HardwareCatalog::paper();
    match table2_sweep(&catalog, &MicrobenchOptions::default()) {
        Ok(results) => {
            for result in results {
                println!(
                    "{:>15}: {:.1} s, {:.0} J",
                    result.node,
                    result.duration.value(),
                    result.energy.value(),
                );
            }
        }
        Err(err) => println!("sweep failed: {err}"),
    }
}
