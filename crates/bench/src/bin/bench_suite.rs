//! The benchmark-regression suite: every case from the shared registry,
//! plus baseline recording and the CI perf gate.
//!
//! ```sh
//! bench_suite [--list] [--filter <substr>] [--json <path>]
//!             [--record <dir>]
//!             [--check <dir>] [--threshold <pct>] [--min-delta-ms <ms>]
//! ```
//!
//! * with no mode flag: run the (optionally filtered) suite and print the
//!   per-case summaries,
//! * `--record <dir>`: run, then write one baseline file per case under
//!   `<dir>` (commit `crates/bench/baselines/` to update the gate),
//! * `--check <dir>`: run, compare each case's median against its
//!   committed baseline, and exit non-zero naming every regressed case.
//!   `--threshold` is the allowed slowdown in percent (default 100, i.e.
//!   2×); `--min-delta-ms` is the absolute jitter slack (default 1 ms),
//! * `--json <path>`: additionally write the run's full `BenchReport`
//!   (every sample, not just medians) — CI uploads this as an artifact so
//!   the perf trajectory accumulates per commit,
//! * `--filter <substr>`: only run cases whose name contains the substring,
//! * `--list`: print the registered case names and exit.

use eedc_bench::cases;
use eedc_bench::harness::{check, record_baselines, BaselineSet, BenchSuite, CheckConfig, Verdict};
use eedc_simkit::units::Seconds;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    list: bool,
    filter: Option<String>,
    json: Option<PathBuf>,
    record: Option<PathBuf>,
    check: Option<PathBuf>,
    threshold_pct: f64,
    min_delta_ms: f64,
}

const USAGE: &str = "usage: bench_suite [--list] [--filter <substr>] [--json <path>]\n\
                     \x20                 [--record <dir>]\n\
                     \x20                 [--check <dir>] [--threshold <pct>] [--min-delta-ms <ms>]";

/// `Ok(None)` means an explicit `--help` request: print usage and succeed.
fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut args = Args {
        list: false,
        filter: None,
        json: None,
        record: None,
        check: None,
        threshold_pct: 100.0,
        min_delta_ms: 1.0,
    };
    let mut iter = argv.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--list" => args.list = true,
            "--filter" => args.filter = Some(value("--filter")?),
            "--json" => args.json = Some(PathBuf::from(value("--json")?)),
            "--record" => args.record = Some(PathBuf::from(value("--record")?)),
            "--check" => args.check = Some(PathBuf::from(value("--check")?)),
            "--threshold" => {
                args.threshold_pct = value("--threshold")?
                    .parse()
                    .map_err(|_| "--threshold needs a number (percent)".to_string())?;
            }
            "--min-delta-ms" => {
                args.min_delta_ms = value("--min-delta-ms")?
                    .parse()
                    .map_err(|_| "--min-delta-ms needs a number (milliseconds)".to_string())?;
            }
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    if args.record.is_some() && args.check.is_some() {
        return Err("--record and --check are mutually exclusive".to_string());
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };

    let mut suite = BenchSuite::new();
    cases::register_all(&mut suite);

    if args.list {
        for name in suite.case_names() {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }

    println!(
        "bench_suite: {} cases{}",
        suite.len(),
        args.filter
            .as_deref()
            .map(|f| format!(" (filter: '{f}')"))
            .unwrap_or_default()
    );
    let report = suite.run(args.filter.as_deref());
    if report.cases.is_empty() {
        eprintln!("no case matches the filter");
        return ExitCode::from(2);
    }

    if let Some(path) = &args.json {
        if let Err(err) = report.write_json(path) {
            eprintln!("writing {}: {err}", path.display());
            return ExitCode::from(2);
        }
        println!("report -> {}", path.display());
    }

    if let Some(dir) = &args.record {
        match record_baselines(&report, dir) {
            Ok(written) => {
                println!(
                    "recorded {} baselines under {}",
                    written.len(),
                    dir.display()
                );
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("recording baselines: {err}");
                ExitCode::from(2)
            }
        }
    } else if let Some(dir) = &args.check {
        let baselines = match BaselineSet::load(dir) {
            Ok(baselines) => baselines,
            Err(err) => {
                eprintln!("loading baselines: {err}");
                return ExitCode::from(2);
            }
        };
        let config = CheckConfig {
            threshold_pct: args.threshold_pct,
            min_delta: Seconds(args.min_delta_ms / 1e3),
        };
        let outcome = check(&report, &baselines, config);
        println!();
        println!(
            "check vs {} (threshold +{}%, slack {} ms):",
            dir.display(),
            config.threshold_pct,
            args.min_delta_ms
        );
        for case in &outcome.checks {
            println!("  {case}");
        }
        let regressed: Vec<&str> = outcome.regressions().map(|c| c.name.as_str()).collect();
        let missing = outcome.missing().count();
        if missing > 0 {
            println!("{missing} case(s) have no baseline; refresh with --record");
        }
        if regressed.is_empty() {
            println!(
                "perf gate PASSED ({} case(s) within +{}% of baseline)",
                outcome
                    .checks
                    .iter()
                    .filter(|c| c.verdict == Verdict::Pass)
                    .count(),
                config.threshold_pct
            );
            ExitCode::SUCCESS
        } else {
            println!(
                "perf gate FAILED: {} regressed case(s): {}",
                regressed.len(),
                regressed.join(", ")
            );
            ExitCode::FAILURE
        }
    } else {
        ExitCode::SUCCESS
    }
}
