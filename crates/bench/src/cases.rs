//! The shared case registry: every benchmark case of the suite, defined
//! once and registered into a [`BenchSuite`].
//!
//! The eight `benches/*.rs` targets are thin wrappers that register their
//! own group and run it; the `bench_suite` binary registers
//! [`register_all`] and adds baseline recording and the regression check on
//! top. Keeping the definitions here means the standalone targets and the
//! CI perf gate can never drift apart.
//!
//! Every case goes through the public experiment API (or a substrate
//! layer's own public entry point) — none drives the `PStoreCluster`
//! kernel directly — and carries its correctness assertions *inside* the
//! timed closure, so a shape regression fails the suite no matter how fast
//! it runs.

use crate::harness::{BenchCase, BenchSuite};
use eedc_core::{
    Analytical, Behavioural, ConcurrencySweep, DesignAdvisor, DesignSpace, Estimator, Experiment,
    ExperimentReport, Measured, ProfiledQuery, RunSeries, Serving, ServingWorkload, SweepJoin,
    Traced, Workload,
};
use eedc_dbmsim::{
    simulate_serving, ArrivalProcess, EngineBehaviour, FaultModel, FcfsScheduler,
    JoinShortestQueue, RecoveryPolicy, RestartPolicy, ScalePolicy, ServiceProfile, ServingConfig,
    ServingServer, TransitionCost,
};
use eedc_netsim::{shuffle_flows, Fabric, TransferSimulator};
use eedc_pstore::microbench::{single_node_hash_join, MicrobenchOptions};
use eedc_pstore::{ClusterSpec, JoinQuerySpec, JoinStrategy};
use eedc_simkit::catalog::{cluster_v_node, laptop_b};
use eedc_simkit::units::{Joules, Megabytes, MegabytesPerSec, Seconds, Watts};
use eedc_simkit::HardwareCatalog;
use eedc_storage::{hash_partition, scan, Predicate, Table};
use eedc_tpch::gen::OrdersGenerator;
use eedc_tpch::{QueryId, ScaleFactor};
use std::rc::Rc;

/// Register every case of the suite, in group order.
pub fn register_all(suite: &mut BenchSuite) {
    register_pstore_joins(suite);
    register_model_and_sweeps(suite);
    register_single_node_join(suite);
    register_substrates(suite);
    register_design_space(suite);
    register_vertica_scaling(suite);
    register_engine_comparison(suite);
    register_serving(suite);
}

fn sweep_workload() -> SweepJoin {
    SweepJoin::section_5_4(JoinQuerySpec::q3_dual_shuffle())
}

fn bench_design(nodes: usize) -> ClusterSpec {
    ClusterSpec::homogeneous(cluster_v_node(), nodes).expect("bench cluster spec is valid")
}

/// The three join strategies through the full measured lens (engine
/// execution + network simulation + energy model) on four Cluster-V nodes.
/// The `Measured` estimator caches the loaded cluster, so the warmup
/// iteration absorbs table generation and the samples time execution.
pub fn register_pstore_joins(suite: &mut BenchSuite) {
    for strategy in JoinStrategy::ALL {
        let experiment = Experiment::new(&sweep_workload())
            .strategy(strategy)
            .design(bench_design(4))
            .estimator(Measured::new(crate::bench_options()));
        suite.register(
            BenchCase::new(format!("pstore_joins/{strategy}"), move || {
                let report = experiment.run().expect("join runs");
                let record = &report.series[0].records[0];
                assert!(record.output_rows.expect("measured runs verify rows") > 0);
            })
            .warmup(1)
            .iterations(5),
        );
    }
}

/// The Figures 3–4 concurrency sweep (1/2/4 concurrent joins) through the
/// experiment API under the measured lens.
pub fn register_model_and_sweeps(suite: &mut BenchSuite) {
    let workload = ConcurrencySweep::paper(sweep_workload());
    let experiment = Experiment::new(&workload)
        .design(bench_design(4))
        .estimator(Measured::new(crate::bench_options()));
    suite.register(
        BenchCase::new("model_and_sweeps/concurrency_1_2_4", move || {
            let report = experiment.run().expect("sweep runs");
            assert_eq!(report.series.len(), 3);
            assert_eq!(report.series[2].records[0].concurrency, 4);
        })
        .warmup(1)
        .iterations(3),
    );
}

/// The Section 5.1 single-node microbenchmark across the Table 2 machines.
pub fn register_single_node_join(suite: &mut BenchSuite) {
    let catalog = HardwareCatalog::paper();
    for spec in catalog.table2_systems() {
        let spec = spec.clone();
        suite.register(
            BenchCase::new(format!("single_node_join/{}", spec.name), move || {
                let options = MicrobenchOptions::default();
                let result = single_node_hash_join(&spec, &options).expect("microbench runs");
                assert!(result.duration.value() > 0.0);
            })
            .warmup(1)
            .iterations(5),
        );
    }
}

/// The substrate layers in isolation: scans, partitioning, and transfer
/// simulation.
pub fn register_substrates(suite: &mut BenchSuite) {
    let orders = Rc::new(Table::from_orders(OrdersGenerator::new(
        ScaleFactor(0.01),
        1,
    )));

    let table = Rc::clone(&orders);
    suite.register(
        BenchCase::new("substrates/scan_orders", move || {
            scan(&table, &Predicate::orders_custkey_at_most(500), None).expect("scan runs");
        })
        .warmup(1)
        .iterations(10),
    );

    let table = Rc::clone(&orders);
    suite.register(
        BenchCase::new("substrates/hash_partition", move || {
            hash_partition(&table, "O_ORDERKEY", 8).expect("partition runs");
        })
        .warmup(1)
        .iterations(10),
    );

    let fabric = Fabric::uniform(16, MegabytesPerSec(100.0)).expect("fabric builds");
    let qualifying = vec![Megabytes(400.0); 16];
    let destinations: Vec<usize> = (0..16).collect();
    suite.register(
        BenchCase::new("substrates/transfer_sim", move || {
            let flows = shuffle_flows(&qualifying, &destinations, 0);
            TransferSimulator::new(&fabric)
                .run(&flows)
                .expect("transfer runs");
        })
        .warmup(1)
        .iterations(10),
    );
}

/// The Section 6 advisor sweeping `(b Beefy, w Wimpy)` grids with the
/// closed-form model — one estimate per design, so these cases report the
/// advisor's hot loop at three grid sizes. The paper-sized grid also
/// re-checks the recommendation at the paper's performance targets.
pub fn register_design_space(suite: &mut BenchSuite) {
    for (max_beefy, max_wimpy, iterations) in
        [(8usize, 16usize, 10usize), (16, 32, 10), (32, 64, 5)]
    {
        let workload = sweep_workload();
        let space = DesignSpace::new(cluster_v_node(), laptop_b(), max_beefy, max_wimpy)
            .expect("catalog nodes form a valid design space");
        let check_targets = max_beefy == 8;
        suite.register(
            BenchCase::new(
                format!("design_space/grid_{max_beefy}x{max_wimpy}"),
                move || {
                    let advisor = DesignAdvisor::new(Analytical, &workload);
                    let report = advisor.evaluate(&space).expect("sweep evaluates");
                    assert!(!report.series.points().is_empty());
                    if check_targets {
                        for target in [0.9, 0.75, 0.5] {
                            let pick = report.recommend(target).expect(
                                "the all-Beefy reference always qualifies for targets <= 1",
                            );
                            assert!(pick.point.performance + 1e-9 >= target);
                        }
                    }
                },
            )
            .warmup(1)
            .iterations(iterations),
        );
    }
}

const VERTICA_SIZES: [usize; 7] = [1, 2, 4, 8, 16, 32, 48];
const VERTICA_QUERIES: [QueryId; 4] = [QueryId::Q1, QueryId::Q3, QueryId::Q12, QueryId::Q21];

fn vertica_sweep() -> ExperimentReport {
    let designs: Vec<ClusterSpec> = VERTICA_SIZES.iter().map(|&n| bench_design(n)).collect();
    let mut experiment = Experiment::new(&ProfiledQuery::vertica_sf1000(VERTICA_QUERIES[0]));
    for &query in &VERTICA_QUERIES[1..] {
        experiment = experiment.workload(&ProfiledQuery::vertica_sf1000(query));
    }
    experiment
        .designs(designs)
        .estimator(Behavioural::default())
        .run()
        .expect("behavioural sweep runs")
}

/// The Section 3 Vertica SF-1000 scale-down study (Figures 1–2) through
/// the behavioural estimator: one full four-query sweep per iteration, with
/// the study's published shape pinned each time (Q1 scales linearly, Q12
/// flattens against its 0.48 repartition floor, network-bound queries pay
/// the energy-proportionality gap).
pub fn register_vertica_scaling(suite: &mut BenchSuite) {
    suite.register(
        BenchCase::new("vertica_scaling/4_queries_x_7_sizes", || {
            let report = vertica_sweep();
            assert_eq!(report.series.len(), VERTICA_QUERIES.len());
            let t = |s: &RunSeries, n: usize| {
                s.record(&format!("{n}B,0W"))
                    .expect("every size is feasible")
                    .response_time
                    .value()
            };
            let e = |s: &RunSeries, n: usize| s.record(&format!("{n}B,0W")).unwrap().energy.value();
            // Figure 2(a): Q1 is perfectly partitionable — linear speedup.
            let q1 = &report.series[0];
            assert!((t(q1, 16) - 0.5).abs() < 1e-9);
            assert!((t(q1, 4) - 2.0).abs() < 1e-9);
            // Figure 2(c): Q12 flattens against its 0.48 repartition floor.
            let q12 = &report.series[2];
            assert!(t(q12, 48) > 0.48);
            assert!(t(q12, 48) < t(q12, 16));
            assert!(t(q12, 16) > 0.5 * t(q12, 8));
            // The energy-proportionality gap: scaling Q12 out keeps buying
            // less time per joule, while the perfectly-local Q1 holds
            // energy flat.
            assert!(e(q12, 48) > e(q12, 8));
            assert!((e(q1, 48) / e(q1, 8) - 1.0).abs() < 1e-9);
        })
        .warmup(1)
        .iterations(20),
    );
}

const ENGINE_SIZES: [usize; 4] = [16, 12, 8, 4];

fn engine_sweep() -> ExperimentReport {
    let staging_only = Traced::with_engine(
        EngineBehaviour::new("staging", true, RestartPolicy::none()).expect("policy is valid"),
    );
    Experiment::new(&sweep_workload())
        .designs(ENGINE_SIZES.map(bench_design))
        .estimator(Traced::pstore())
        .estimator(staging_only)
        .estimator(Traced::dbms_x())
        .run()
        .expect("traced sweep runs")
}

/// The Section 3.2 engine-behaviour comparison through the `Traced`
/// estimator: each iteration synthesizes, shapes and replays a utilization
/// trace per (engine, design) pair for three engine behaviours, holding the
/// section's shape strictly at every design point (staging and the
/// mid-query restart each add energy).
pub fn register_engine_comparison(suite: &mut BenchSuite) {
    suite.register(
        BenchCase::new("engine_comparison/3_engines_x_4_sizes", || {
            let report = engine_sweep();
            assert_eq!(report.series.len(), 3);
            let pstore = &report.series[0];
            let staging = &report.series[1];
            let dbms_x = &report.series[2];
            for ((p, s), x) in pstore
                .records
                .iter()
                .zip(&staging.records)
                .zip(&dbms_x.records)
            {
                assert!(s.energy > p.energy, "{}: staging does not cost", p.design);
                assert!(x.energy > s.energy, "{}: restart does not cost", p.design);
                assert!(x.response_time > p.response_time, "{}", p.design);
                // The restart replays half of the staged run: the full
                // engine pays more than 1.5x the pipelined energy.
                assert!(
                    x.energy.value() > 1.5 * p.energy.value(),
                    "{}: ratio only {:.3}",
                    p.design,
                    x.energy.value() / p.energy.value(),
                );
                assert!(x.phases.iter().any(|ph| ph.label.ends_with("/stage")));
                assert!(p.phases.iter().all(|ph| !ph.label.ends_with("/stage")));
            }
        })
        .warmup(1)
        .iterations(10),
    );
}

/// The discrete-event serving layer: the raw kernel under sustained load,
/// and the `Serving` estimator lens through the experiment API.
pub fn register_serving(suite: &mut BenchSuite) {
    // The event kernel end to end at M/M/1 scale: one server at 80% load
    // over a window long enough for ~12k Poisson arrivals, exponential
    // service — every arrival, admission, placement and completion is a
    // heap event, so this times the kernel's hot loop.
    suite.register(
        BenchCase::new("serving/open_loop_12k_arrivals", || {
            let server = ServingServer::new(
                "node",
                Watts(100.0),
                vec![Some(ServiceProfile {
                    time: Seconds(0.4),
                    energy: Joules(50.0),
                })],
            );
            let config = ServingConfig::new(2.0, Seconds(6_000.0), 99).exponential_service();
            let result = simulate_serving(&[server], &config, &mut FcfsScheduler)
                .expect("serving run is valid");
            assert!(result.arrivals >= 10_000, "got {}", result.arrivals);
            assert_eq!(
                result.arrivals,
                result.completed + result.dropped + result.timed_out
            );
        })
        .warmup(1)
        .iterations(5),
    );

    // The Serving lens over a QPS sweep: price the template once per pool
    // with the analytical model, then simulate three offered loads on a
    // 4-node design. The queueing-theory shape (tail grows with load) is
    // pinned inside the timed closure.
    let design = bench_design(4);
    let workload = sweep_workload();
    let service_time = Analytical
        .estimate(&workload.plans()[0], &design)
        .expect("4 Cluster-V nodes fit the sweep join")
        .response_time
        .value();
    let mu = 1.0 / service_time;
    let serving = ServingWorkload::new(&workload, mu * 0.3, Seconds(2_000.0 * service_time), 77)
        .qps_sweep([mu * 0.3, mu * 0.6, mu * 0.9]);
    let experiment = Experiment::new(&serving)
        .design(design)
        .estimator(Serving::fcfs());
    suite.register(
        BenchCase::new("serving/qps_sweep_3_levels", move || {
            let report = experiment.run().expect("serving sweep runs");
            assert_eq!(report.series.len(), 3);
            let p99: Vec<f64> = report
                .series
                .iter()
                .map(|s| {
                    s.records[0]
                        .serving
                        .as_ref()
                        .expect("serving stats recorded")
                        .p99
                        .value()
                })
                .collect();
            assert!(p99[0] < p99[1] && p99[1] < p99[2], "{p99:?}");
        })
        .warmup(1)
        .iterations(5),
    );

    // Energy-aware placement on a heterogeneous design: the scheduler's
    // per-query Beefy-vs-Wimpy choice, with a join small enough that both
    // pools are feasible.
    let mut small = sweep_workload();
    small.build_bytes = Megabytes(2_000.0);
    small.probe_bytes = Megabytes(8_000.0);
    let design = ClusterSpec::heterogeneous(cluster_v_node(), 4, laptop_b(), 4)
        .expect("bench cluster spec is valid");
    let slowest = Analytical
        .estimate(
            &small.plans()[0],
            &ClusterSpec::homogeneous(laptop_b(), 4).expect("bench cluster spec is valid"),
        )
        .expect("4 Laptop-B nodes fit the small join")
        .response_time
        .value();
    let serving = ServingWorkload::new(&small, 0.05 / slowest, Seconds(2_000.0 * slowest), 5);
    let experiment = Experiment::new(&serving)
        .design(design)
        .estimator(Serving::energy_aware());
    suite.register(
        BenchCase::new("serving/energy_aware_heterogeneous", move || {
            let report = experiment.run().expect("serving run succeeds");
            let stats = report.series[0].records[0]
                .serving
                .as_ref()
                .expect("serving stats recorded");
            assert_eq!(stats.scheduler, "energy-aware");
            assert!(stats.completed > 50);
        })
        .warmup(1)
        .iterations(5),
    );

    // Join-shortest-queue over 8 single-slot pools at 90% load, ~12k
    // arrivals: every placement scans all pool depths, so this times the
    // queue-feedback path of the scheduler seam.
    suite.register(
        BenchCase::new("serving/jsq_8_pools_12k_arrivals", || {
            let profile = Some(ServiceProfile {
                time: Seconds(1.0),
                energy: Joules(50.0),
            });
            let servers: Vec<ServingServer> = (0..8)
                .map(|i| ServingServer::new(format!("node{i}"), Watts(100.0), vec![profile]))
                .collect();
            let config = ServingConfig::new(7.2, Seconds(1_700.0), 4_242)
                .queue_capacity(usize::MAX)
                .exponential_service();
            let result = simulate_serving(&servers, &config, &mut JoinShortestQueue)
                // lint:allow(panic-policy): bench case must abort on an invalid run
                .expect("serving run is valid");
            assert!(result.arrivals >= 12_000, "got {}", result.arrivals);
            assert_eq!(result.completed, result.arrivals);
            assert_eq!(result.scheduler, "jsq");
        })
        .warmup(1)
        .iterations(5),
    );

    // A processor-sharing pool at 80% load: every start and completion
    // re-advances the in-flight set and re-arms the horizon event, so this
    // times the sharing engine rather than the dedicated-slot path.
    suite.register(
        BenchCase::new("serving/processor_sharing_pool", || {
            let server = ServingServer::new(
                "ps-pool",
                Watts(100.0),
                vec![Some(ServiceProfile {
                    time: Seconds(1.0),
                    energy: Joules(50.0),
                })],
            )
            .concurrency_limit(4_096)
            .processor_sharing();
            let config = ServingConfig::new(0.8, Seconds(10_000.0), 77)
                .queue_capacity(usize::MAX)
                .exponential_service();
            let result = simulate_serving(&[server], &config, &mut FcfsScheduler)
                // lint:allow(panic-policy): bench case must abort on an invalid run
                .expect("serving run is valid");
            assert!(result.arrivals >= 7_000, "got {}", result.arrivals);
            assert_eq!(result.completed, result.arrivals);
            // M/M/1-PS mean sojourn 1/(μ−λ) = 5 s, loosely pinned so a
            // broken sharing engine fails the suite inside the timed loop.
            let sojourn = result.mean_latency().value();
            assert!((sojourn - 5.0).abs() < 1.0, "mean sojourn {sojourn}");
        })
        .warmup(1)
        .iterations(5),
    );

    // Trace replay: a pre-built bursty arrival trace (pairs landing
    // together every 250 ms) driven through the trace cursor instead of
    // the Poisson sampler.
    let trace: Vec<Seconds> = (0..10_000)
        .map(|i| Seconds((i / 2) as f64 * 0.25 + (i % 2) as f64 * 0.001))
        .collect();
    suite.register(
        BenchCase::new("serving/trace_replay_10k_arrivals", move || {
            let server = ServingServer::new(
                "node",
                Watts(100.0),
                vec![Some(ServiceProfile {
                    time: Seconds(0.1),
                    energy: Joules(50.0),
                })],
            )
            .concurrency_limit(2);
            let config = ServingConfig::new(1.0, Seconds(1_300.0), 99)
                .arrival(ArrivalProcess::Trace(trace.clone()))
                .queue_capacity(usize::MAX);
            let result = simulate_serving(&[server], &config, &mut FcfsScheduler)
                // lint:allow(panic-policy): bench case must abort on an invalid run
                .expect("serving run is valid");
            assert_eq!(result.arrivals, 10_000);
            assert_eq!(result.completed, 10_000);
            assert_eq!(result.arrival, "trace");
        })
        .warmup(1)
        .iterations(5),
    );

    // The fault/lifecycle hot path: two pools under hazard failures with
    // checkpoint recovery and an elastic scale policy over ~12k arrivals —
    // every kill walks the in-flight set, every restore re-arms the hazard,
    // and the depth check fires every 5 simulated seconds. Conservation is
    // pinned inside the timed closure.
    suite.register(
        BenchCase::new("serving/churn_lifecycle_12k_arrivals", || {
            let profile = Some(ServiceProfile {
                time: Seconds(0.4),
                energy: Joules(50.0),
            });
            let servers: Vec<ServingServer> = (0..2)
                .map(|i| {
                    ServingServer::new(format!("pool{i}"), Watts(100.0), vec![profile])
                        .concurrency_limit(2)
                        .nodes(4)
                })
                .collect();
            let model = FaultModel::new(40.0)
                .repair_time(Seconds(3.0))
                .recovery(RecoveryPolicy::Checkpoint {
                    interval: Seconds(0.1),
                })
                .restart_cost(TransitionCost {
                    time: Seconds(0.5),
                    energy: Joules(200.0),
                })
                .scale(
                    ScalePolicy::new(6, 1, Seconds(5.0)).migration_cost(TransitionCost {
                        time: Seconds(1.0),
                        energy: Joules(100.0),
                    }),
                );
            let config = ServingConfig::new(4.0, Seconds(3_000.0), 99)
                .queue_capacity(usize::MAX)
                .exponential_service()
                .faults(model);
            let result = simulate_serving(&servers, &config, &mut JoinShortestQueue)
                // lint:allow(panic-policy): bench case must abort on an invalid run
                .expect("serving run is valid");
            assert!(result.arrivals >= 11_000, "got {}", result.arrivals);
            assert!(result.failures > 0, "the hazard must fire");
            assert!(result.availability > 0.0 && result.availability < 1.0);
            assert_eq!(
                result.completed
                    + result.dropped
                    + result.timed_out
                    + (result.killed - result.readmitted),
                result.arrivals,
                "conservation violated"
            );
        })
        .warmup(1)
        .iterations(5),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::case_slug;
    use std::collections::BTreeSet;

    #[test]
    fn registry_covers_all_eight_groups_with_unique_slugs() {
        let mut suite = BenchSuite::with_env("test-env");
        register_all(&mut suite);
        let names = suite.case_names();
        // 3 join strategies + 1 concurrency sweep + 5 Table 2 machines +
        // 3 substrates + 3 advisor grids + vertica + engine comparison +
        // 7 serving cases.
        assert_eq!(names.len(), 24);
        for group in [
            "pstore_joins/",
            "model_and_sweeps/",
            "single_node_join/",
            "substrates/",
            "design_space/",
            "vertica_scaling/",
            "engine_comparison/",
            "serving/",
        ] {
            assert!(
                names.iter().any(|n| n.starts_with(group)),
                "no case in group {group}"
            );
        }
        // Baseline file names derived from case names must not collide.
        let slugs: BTreeSet<String> = names.iter().map(|n| case_slug(n)).collect();
        assert_eq!(slugs.len(), names.len());
    }

    #[test]
    fn fast_model_cases_execute_under_the_harness() {
        // Run the cheapest pure-model group end to end through a suite to
        // make sure registered closures are actually executable (the
        // measured groups are exercised by the bench targets and CI).
        let mut suite = BenchSuite::with_env("test-env");
        register_vertica_scaling(&mut suite);
        let mut report = suite.run(Some("vertica_scaling"));
        assert_eq!(report.cases.len(), 1);
        let case = report.cases.remove(0);
        assert_eq!(case.summary.iterations, 20);
        assert!(case.summary.min.value() > 0.0);
        assert!(case.summary.median >= case.summary.min);
        assert!(case.summary.max >= case.summary.median);
    }
}
