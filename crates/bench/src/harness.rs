//! The `BenchSuite` regression harness: warmed-up, per-iteration sampled
//! timing with robust statistics, JSON reports, and baseline comparison.
//!
//! The paper's contribution is quantitative, so the repo's benches have to
//! be too: a timing that is one aggregate span across all iterations folds
//! first-iteration cache fill into the mean and
//! cannot say anything about spread. A [`BenchCase`] instead runs `warmup`
//! untimed iterations, then times each of `iterations` runs individually
//! into [`Sample`]s, and a [`Summary`] reduces them with *robust* statistics
//! — min, median, and the median absolute deviation (MAD) — so one noisy
//! shared-runner iteration cannot move the number a regression check
//! compares.
//!
//! The pipeline end to end:
//!
//! ```text
//! BenchCase ── execute ──▶ CaseResult (samples + Summary)
//!     registered in             │
//! BenchSuite ──── run ────▶ BenchReport ── write_json ──▶ bench-report.json
//!                               │                         (CI artifact)
//!                               │   record_baselines
//!                               ├──────────────────▶ baselines/<case>.json
//!                               │   check(..)            (committed)
//!                               ▼
//!                          CheckReport ─▶ exit code for the CI perf gate
//! ```
//!
//! Reports serialize through [`eedc_core::json`] (the workspace `serde` is a
//! no-op stand-in) and read back via [`JsonValue::parse`], exactly like the
//! figures pipeline's [`ExperimentReport`](eedc_core::ExperimentReport).

use eedc_core::error::CoreError;
use eedc_core::json::JsonValue;
use eedc_simkit::units::Seconds;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Schema version stamped into every serialized [`BenchReport`]; bump it
/// when the JSON shape changes so stale committed baselines fail loudly
/// instead of comparing garbage.
pub const SCHEMA_VERSION: usize = 1;

/// Errors raised by the harness: report I/O, malformed JSON, or a baseline
/// the current schema cannot compare against.
#[derive(Debug)]
pub enum BenchError {
    /// Reading or writing a report file failed.
    Io(PathBuf, io::Error),
    /// A report failed to parse or was missing required fields.
    Json(CoreError),
    /// A structurally valid report the harness must refuse (wrong schema
    /// version, empty sample list, …).
    Invalid(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Io(path, err) => write!(f, "{}: {err}", path.display()),
            BenchError::Json(err) => write!(f, "{err}"),
            BenchError::Invalid(message) => write!(f, "invalid bench report: {message}"),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Io(_, err) => Some(err),
            BenchError::Json(err) => Some(err),
            BenchError::Invalid(_) => None,
        }
    }
}

impl From<CoreError> for BenchError {
    fn from(err: CoreError) -> Self {
        BenchError::Json(err)
    }
}

/// One timed iteration of a case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample(pub Seconds);

impl Sample {
    /// The sample's duration.
    pub fn duration(self) -> Seconds {
        self.0
    }
}

/// Robust statistics over a case's samples. The regression check compares
/// *medians*: a single stalled iteration on a noisy shared runner moves the
/// mean and max but not the median, and the MAD gives the check a spread to
/// report alongside the verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of timed iterations.
    pub iterations: usize,
    /// Fastest iteration.
    pub min: Seconds,
    /// Slowest iteration.
    pub max: Seconds,
    /// Arithmetic mean.
    pub mean: Seconds,
    /// Median (midpoint average for even counts).
    pub median: Seconds,
    /// Median absolute deviation from the median.
    pub mad: Seconds,
}

impl Summary {
    /// Reduce samples to a summary. Errors on an empty sample list — a case
    /// always runs at least one timed iteration, so an empty list only
    /// occurs in a hand-built (malformed) report.
    pub fn from_samples(samples: &[Sample]) -> Result<Self, BenchError> {
        if samples.is_empty() {
            return Err(BenchError::Invalid("summary over zero samples".into()));
        }
        let values: Vec<f64> = samples.iter().map(|s| s.0.value()).collect();
        let median = median_of(values.clone());
        let mad = median_of(values.iter().map(|v| (v - median).abs()).collect());
        Ok(Self {
            iterations: values.len(),
            min: Seconds(values.iter().copied().fold(f64::INFINITY, f64::min)),
            max: Seconds(values.iter().copied().fold(f64::NEG_INFINITY, f64::max)),
            mean: Seconds(values.iter().sum::<f64>() / values.len() as f64),
            median: Seconds(median),
            mad: Seconds(mad),
        })
    }
}

fn median_of(mut values: Vec<f64>) -> f64 {
    values.sort_by(f64::total_cmp);
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2.0
    }
}

/// A named benchmark case: a closure timed per iteration after untimed
/// warmup runs. Correctness assertions belong *inside* the closure — a
/// failing shape check panics the suite regardless of any timing threshold.
pub struct BenchCase {
    name: String,
    warmup: usize,
    iterations: usize,
    run: Box<dyn FnMut()>,
}

impl BenchCase {
    /// A case with the default 1 warmup + 5 timed iterations.
    pub fn new(name: impl Into<String>, run: impl FnMut() + 'static) -> Self {
        Self {
            name: name.into(),
            warmup: 1,
            iterations: 5,
            run: Box::new(run),
        }
    }

    /// Set the number of untimed warmup iterations (cache fill, lazy
    /// fixture loads).
    pub fn warmup(mut self, warmup: usize) -> Self {
        self.warmup = warmup;
        self
    }

    /// Set the number of timed iterations (clamped to at least 1).
    pub fn iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations.max(1);
        self
    }

    /// The case name (`group/case` by convention).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Run the case: warmup untimed, then one [`Sample`] per iteration.
    pub fn execute(&mut self) -> CaseResult {
        for _ in 0..self.warmup {
            (self.run)();
        }
        let samples: Vec<Sample> = (0..self.iterations)
            .map(|_| {
                let start = Instant::now();
                (self.run)();
                Sample(Seconds(start.elapsed().as_secs_f64()))
            })
            .collect();
        let summary = Summary::from_samples(&samples).expect("iterations >= 1");
        CaseResult {
            name: self.name.clone(),
            samples,
            summary,
        }
    }
}

impl fmt::Debug for BenchCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BenchCase")
            .field("name", &self.name)
            .field("warmup", &self.warmup)
            .field("iterations", &self.iterations)
            .finish_non_exhaustive()
    }
}

/// The timed result of one case: the raw samples and their [`Summary`].
#[derive(Debug, Clone, PartialEq)]
pub struct CaseResult {
    /// The case name.
    pub name: String,
    /// Per-iteration samples, in execution order.
    pub samples: Vec<Sample>,
    /// Robust statistics over `samples`.
    pub summary: Summary,
}

impl CaseResult {
    /// Build a result from raw sample durations (summarizing them) — the
    /// constructor tests and baseline tooling use.
    pub fn from_durations(
        name: impl Into<String>,
        durations: impl IntoIterator<Item = Seconds>,
    ) -> Result<Self, BenchError> {
        let samples: Vec<Sample> = durations.into_iter().map(Sample).collect();
        let summary = Summary::from_samples(&samples)?;
        Ok(Self {
            name: name.into(),
            samples,
            summary,
        })
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut summary = JsonValue::object();
        summary
            .set("iterations", self.summary.iterations)
            .set("min_s", self.summary.min.value())
            .set("max_s", self.summary.max.value())
            .set("mean_s", self.summary.mean.value())
            .set("median_s", self.summary.median.value())
            .set("mad_s", self.summary.mad.value());
        let mut obj = JsonValue::object();
        obj.set("name", self.name.clone())
            .set(
                "samples_s",
                self.samples.iter().map(|s| s.0.value()).collect::<Vec<_>>(),
            )
            .set("summary", summary);
        obj
    }

    /// Reconstruct from the JSON shape [`to_json`](Self::to_json) emits.
    pub fn from_json(value: &JsonValue) -> Result<Self, BenchError> {
        let samples: Vec<Sample> = value
            .array_field("samples_s")?
            .iter()
            .map(|v| {
                v.as_f64().map(|s| Sample(Seconds(s))).ok_or_else(|| {
                    BenchError::Json(CoreError::invalid("'samples_s' holds a non-number"))
                })
            })
            .collect::<Result<_, _>>()?;
        let summary = value.field("summary")?;
        Ok(Self {
            name: value.str_field("name")?.to_string(),
            samples,
            summary: Summary {
                iterations: summary.usize_field("iterations")?,
                min: Seconds(summary.f64_field("min_s")?),
                max: Seconds(summary.f64_field("max_s")?),
                mean: Seconds(summary.f64_field("mean_s")?),
                median: Seconds(summary.f64_field("median_s")?),
                mad: Seconds(summary.f64_field("mad_s")?),
            },
        })
    }
}

/// A suite run's full output: every executed case's samples and summary,
/// plus the environment tag and schema version that make a serialized
/// report comparable later.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Serialization schema version ([`SCHEMA_VERSION`]).
    pub schema_version: usize,
    /// Where the run happened (`os-arch-<n>cpu` by default) — recorded so a
    /// baseline mismatch across machines is visible in the report diff.
    pub env: String,
    /// Per-case results, in registration order.
    pub cases: Vec<CaseResult>,
}

impl BenchReport {
    /// The result for a case, if the report holds it.
    pub fn case(&self, name: &str) -> Option<&CaseResult> {
        self.cases.iter().find(|c| c.name == name)
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut cases = JsonValue::array();
        for case in &self.cases {
            cases.push(case.to_json());
        }
        let mut obj = JsonValue::object();
        obj.set("schema_version", self.schema_version)
            .set("env", self.env.clone())
            .set("cases", cases);
        obj
    }

    /// Reconstruct from the JSON shape [`to_json`](Self::to_json) emits.
    /// A schema version newer than [`SCHEMA_VERSION`] is refused.
    pub fn from_json(value: &JsonValue) -> Result<Self, BenchError> {
        let schema_version = value.usize_field("schema_version")?;
        if schema_version > SCHEMA_VERSION {
            return Err(BenchError::Invalid(format!(
                "schema version {schema_version} is newer than this harness ({SCHEMA_VERSION}); \
                 refresh the harness or re-record the baseline"
            )));
        }
        Ok(Self {
            schema_version,
            env: value.str_field("env")?.to_string(),
            cases: value
                .array_field("cases")?
                .iter()
                .map(CaseResult::from_json)
                .collect::<Result<_, _>>()?,
        })
    }

    /// Parse a serialized report.
    pub fn parse(src: &str) -> Result<Self, BenchError> {
        Self::from_json(&JsonValue::parse(src)?)
    }

    /// Write the report to `path` as pretty-printed JSON, creating parent
    /// directories as needed.
    pub fn write_json(&self, path: impl AsRef<Path>) -> Result<(), BenchError> {
        let path = path.as_ref();
        let io_err = |err| BenchError::Io(path.to_path_buf(), err);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(io_err)?;
            }
        }
        let mut text = self.to_json().to_json_pretty();
        text.push('\n');
        std::fs::write(path, text).map_err(io_err)
    }

    /// Read a report back from disk.
    pub fn read_json(path: impl AsRef<Path>) -> Result<Self, BenchError> {
        let path = path.as_ref();
        let text =
            std::fs::read_to_string(path).map_err(|err| BenchError::Io(path.to_path_buf(), err))?;
        // Prefix every parse-side failure with the file, so a bad baseline
        // among many names itself instead of failing the whole load mutely.
        Self::parse(&text).map_err(|err| match err {
            BenchError::Json(inner) => {
                BenchError::Json(CoreError::invalid(format!("{}: {inner}", path.display())))
            }
            BenchError::Invalid(message) => {
                BenchError::Invalid(format!("{}: {message}", path.display()))
            }
            other => other,
        })
    }
}

/// The case registry: register [`BenchCase`]s, then [`run`](Self::run) them
/// (optionally filtered) into a [`BenchReport`].
pub struct BenchSuite {
    cases: Vec<BenchCase>,
    env: String,
}

impl BenchSuite {
    /// An empty suite tagged with the default environment
    /// (`os-arch-<n>cpu`).
    pub fn new() -> Self {
        Self::with_env(default_env_tag())
    }

    /// An empty suite with an explicit environment tag.
    pub fn with_env(env: impl Into<String>) -> Self {
        Self {
            cases: Vec::new(),
            env: env.into(),
        }
    }

    /// Register a case. Panics on a duplicate name — the name is the
    /// baseline key, so a collision is a programming error in the registry.
    pub fn register(&mut self, case: BenchCase) -> &mut Self {
        assert!(
            !self.cases.iter().any(|c| c.name == case.name),
            "duplicate bench case '{}'",
            case.name
        );
        self.cases.push(case);
        self
    }

    /// Registered case names, in registration order.
    pub fn case_names(&self) -> Vec<&str> {
        self.cases.iter().map(|c| c.name()).collect()
    }

    /// Number of registered cases.
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// Whether the suite has no cases.
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }

    /// Run every case whose name contains `filter` (all cases when `None`),
    /// printing a one-line summary per case as it completes.
    pub fn run(&mut self, filter: Option<&str>) -> BenchReport {
        let mut cases = Vec::new();
        for case in &mut self.cases {
            if let Some(needle) = filter {
                if !case.name.contains(needle) {
                    continue;
                }
            }
            let result = case.execute();
            println!(
                "{:<44} median {:>9.3} ms  (min {:.3}, mad {:.3}, n={})",
                result.name,
                result.summary.median.value() * 1e3,
                result.summary.min.value() * 1e3,
                result.summary.mad.value() * 1e3,
                result.summary.iterations,
            );
            cases.push(result);
        }
        BenchReport {
            schema_version: SCHEMA_VERSION,
            env: self.env.clone(),
            cases,
        }
    }
}

impl Default for BenchSuite {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for BenchSuite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BenchSuite")
            .field("env", &self.env)
            .field("cases", &self.case_names())
            .finish()
    }
}

/// The default environment tag: `os-arch-<n>cpu`.
pub fn default_env_tag() -> String {
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    format!(
        "{}-{}-{cpus}cpu",
        std::env::consts::OS,
        std::env::consts::ARCH
    )
}

/// File-name slug of a case name: lowercased, every non-alphanumeric run
/// collapsed to one `-`.
pub fn case_slug(name: &str) -> String {
    let mut slug = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            slug.extend(c.to_lowercase());
        } else if !slug.ends_with('-') {
            slug.push('-');
        }
    }
    slug.trim_matches('-').to_string()
}

/// Write one baseline file per case of `report` under `dir`
/// (`<dir>/<case_slug>.json`, each a single-case [`BenchReport`]), creating
/// the directory as needed. Cases not in `report` (e.g. filtered out of the
/// run) keep their existing baseline files. Returns the written paths.
pub fn record_baselines(
    report: &BenchReport,
    dir: impl AsRef<Path>,
) -> Result<Vec<PathBuf>, BenchError> {
    let dir = dir.as_ref();
    let mut written = Vec::new();
    for case in &report.cases {
        let single = BenchReport {
            schema_version: report.schema_version,
            env: report.env.clone(),
            cases: vec![case.clone()],
        };
        let path = dir.join(format!("{}.json", case_slug(&case.name)));
        single.write_json(&path)?;
        written.push(path);
    }
    Ok(written)
}

/// The committed baselines a check run compares against: every case found
/// in a baseline directory's `*.json` files.
#[derive(Debug, Clone, Default)]
pub struct BaselineSet {
    cases: Vec<CaseResult>,
}

impl BaselineSet {
    /// An empty set (every check verdict becomes `MissingBaseline`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or replace) a baseline case.
    pub fn insert(&mut self, case: CaseResult) {
        self.cases.retain(|c| c.name != case.name);
        self.cases.push(case);
    }

    /// The baseline for a case name.
    pub fn get(&self, name: &str) -> Option<&CaseResult> {
        self.cases.iter().find(|c| c.name == name)
    }

    /// Number of baseline cases.
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }

    /// Load every `*.json` report under `dir` (non-recursive). A missing
    /// directory is an empty set — the caller decides whether that is an
    /// error; a malformed or schema-incompatible file always is.
    pub fn load(dir: impl AsRef<Path>) -> Result<Self, BenchError> {
        let dir = dir.as_ref();
        let mut set = Self::new();
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(set),
            Err(err) => return Err(BenchError::Io(dir.to_path_buf(), err)),
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        paths.sort();
        for path in paths {
            let report = BenchReport::read_json(&path)?;
            for case in report.cases {
                set.insert(case);
            }
        }
        Ok(set)
    }
}

/// How a check run compares current medians against baseline medians.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckConfig {
    /// Allowed slowdown in percent: a case regresses when its median
    /// exceeds the baseline median by more than this. 100 means "2× is
    /// still a pass" — generous enough for shared CI runners.
    pub threshold_pct: f64,
    /// Absolute slack: deltas below this never regress, so microsecond
    /// cases cannot fail on timer jitter alone.
    pub min_delta: Seconds,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            threshold_pct: 25.0,
            min_delta: Seconds(0.001),
        }
    }
}

/// Verdict for one case of a check run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within threshold (or faster than baseline).
    Pass,
    /// Median slowed past the threshold and the absolute slack.
    Regressed,
    /// The baseline directory has no entry for this case; record one with
    /// `bench_suite --record`.
    MissingBaseline,
}

/// One case's comparison against its baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseCheck {
    /// The case name.
    pub name: String,
    /// The verdict.
    pub verdict: Verdict,
    /// Current run's median.
    pub current_median: Seconds,
    /// Baseline median, when a baseline exists.
    pub baseline_median: Option<Seconds>,
    /// `current / baseline`, when a baseline exists.
    pub ratio: Option<f64>,
}

impl fmt::Display for CaseCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.verdict {
            Verdict::Pass => "ok       ",
            Verdict::Regressed => "REGRESSED",
            Verdict::MissingBaseline => "missing  ",
        };
        write!(
            f,
            "{tag} {:<44} {:>9.3} ms",
            self.name,
            self.current_median.value() * 1e3
        )?;
        match (self.baseline_median, self.ratio) {
            (Some(baseline), Some(ratio)) => write!(
                f,
                " vs {:>9.3} ms  ({:+.1}%)",
                baseline.value() * 1e3,
                (ratio - 1.0) * 100.0
            ),
            _ => write!(f, " (no baseline; record with --record)"),
        }
    }
}

/// The outcome of comparing a [`BenchReport`] against a [`BaselineSet`].
#[derive(Debug, Clone, PartialEq)]
pub struct CheckReport {
    /// The configuration the check ran under.
    pub config: CheckConfig,
    /// Per-case outcomes, in report order.
    pub checks: Vec<CaseCheck>,
}

impl CheckReport {
    /// The cases that regressed.
    pub fn regressions(&self) -> impl Iterator<Item = &CaseCheck> {
        self.checks
            .iter()
            .filter(|c| c.verdict == Verdict::Regressed)
    }

    /// The cases with no committed baseline.
    pub fn missing(&self) -> impl Iterator<Item = &CaseCheck> {
        self.checks
            .iter()
            .filter(|c| c.verdict == Verdict::MissingBaseline)
    }

    /// Whether the gate passes: no regressed case. Missing baselines warn
    /// but do not fail — a freshly added case would otherwise break CI
    /// before its baseline can be recorded on the same commit.
    pub fn passed(&self) -> bool {
        self.regressions().next().is_none()
    }
}

/// Compare a run's medians against baselines: the heart of the CI perf
/// gate. Each current case regresses when
/// `current > baseline * (1 + threshold/100)` *and* the absolute delta
/// exceeds `min_delta`; improvements and sub-slack jitter pass.
pub fn check(current: &BenchReport, baselines: &BaselineSet, config: CheckConfig) -> CheckReport {
    let checks = current
        .cases
        .iter()
        .map(|case| {
            let current_median = case.summary.median;
            match baselines.get(&case.name) {
                None => CaseCheck {
                    name: case.name.clone(),
                    verdict: Verdict::MissingBaseline,
                    current_median,
                    baseline_median: None,
                    ratio: None,
                },
                Some(baseline) => {
                    let baseline_median = baseline.summary.median;
                    let limit = baseline_median * (1.0 + config.threshold_pct / 100.0);
                    let delta = current_median - baseline_median;
                    let verdict = if current_median > limit && delta > config.min_delta {
                        Verdict::Regressed
                    } else {
                        Verdict::Pass
                    };
                    CaseCheck {
                        name: case.name.clone(),
                        verdict,
                        current_median,
                        baseline_median: Some(baseline_median),
                        ratio: Some(current_median.value() / baseline_median.value()),
                    }
                }
            }
        })
        .collect();
    CheckReport { config, checks }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &str, millis: &[f64]) -> CaseResult {
        CaseResult::from_durations(name, millis.iter().map(|&ms| Seconds(ms / 1e3))).unwrap()
    }

    fn report_of(cases: Vec<CaseResult>) -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            env: "test-env".into(),
            cases,
        }
    }

    #[test]
    fn summary_is_robust_to_one_outlier() {
        let r = result("stats/odd", &[10.0, 11.0, 12.0, 10.5, 500.0]);
        let s = r.summary;
        assert_eq!(s.iterations, 5);
        assert!((s.median.value() * 1e3 - 11.0).abs() < 1e-9);
        assert!((s.min.value() * 1e3 - 10.0).abs() < 1e-9);
        assert!((s.max.value() * 1e3 - 500.0).abs() < 1e-9);
        // The outlier drags the mean far above the median...
        assert!(s.mean.value() > 5.0 * s.median.value());
        // ...but the MAD stays at the scale of the inliers:
        // deviations from 11 are [1, 0, 1, 0.5, 489] → median 1.
        assert!((s.mad.value() * 1e3 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn even_sample_counts_average_the_central_pair() {
        let s = result("stats/even", &[1.0, 2.0, 4.0, 8.0]).summary;
        assert!((s.median.value() * 1e3 - 3.0).abs() < 1e-9);
        assert!((s.mean.value() * 1e3 - 3.75).abs() < 1e-9);
    }

    #[test]
    fn empty_samples_are_refused() {
        assert!(Summary::from_samples(&[]).is_err());
        assert!(CaseResult::from_durations("x", []).is_err());
    }

    #[test]
    fn warmup_runs_are_not_sampled() {
        use std::cell::Cell;
        use std::rc::Rc;
        let calls = Rc::new(Cell::new(0usize));
        let counter = Rc::clone(&calls);
        let mut case = BenchCase::new("harness/count", move || {
            counter.set(counter.get() + 1);
        })
        .warmup(2)
        .iterations(3);
        let result = case.execute();
        assert_eq!(calls.get(), 5, "2 warmup + 3 timed");
        assert_eq!(result.samples.len(), 3);
        assert_eq!(result.summary.iterations, 3);
        assert!(result.summary.min.value() >= 0.0);
        // Iterations are clamped to at least one.
        let mut zero = BenchCase::new("harness/zero", || ()).iterations(0);
        assert_eq!(zero.execute().samples.len(), 1);
    }

    #[test]
    fn suite_runs_registered_cases_with_filter() {
        let mut suite = BenchSuite::with_env("test-env");
        suite
            .register(BenchCase::new("group_a/one", || ()).iterations(1).warmup(0))
            .register(BenchCase::new("group_b/two", || ()).iterations(1).warmup(0));
        assert_eq!(suite.len(), 2);
        assert_eq!(suite.case_names(), vec!["group_a/one", "group_b/two"]);
        let all = suite.run(None);
        assert_eq!(all.cases.len(), 2);
        assert_eq!(all.env, "test-env");
        assert_eq!(all.schema_version, SCHEMA_VERSION);
        let filtered = suite.run(Some("group_b"));
        assert_eq!(filtered.cases.len(), 1);
        assert_eq!(filtered.cases[0].name, "group_b/two");
        assert!(suite.run(Some("no-such-case")).cases.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate bench case")]
    fn duplicate_case_names_panic() {
        let mut suite = BenchSuite::with_env("test-env");
        suite.register(BenchCase::new("dup", || ()));
        suite.register(BenchCase::new("dup", || ()));
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = report_of(vec![
            result("a/one", &[1.5, 2.5, 3.5]),
            result("b/two", &[10.0, 10.0]),
        ]);
        let parsed = BenchReport::parse(&report.to_json().to_json_pretty()).unwrap();
        assert_eq!(parsed, report);
        let compact = BenchReport::parse(&report.to_json().to_json()).unwrap();
        assert_eq!(compact, report);
        assert!(report.case("a/one").is_some());
        assert!(report.case("missing").is_none());
    }

    #[test]
    fn newer_schema_versions_are_refused() {
        let mut json = report_of(vec![result("a", &[1.0])]).to_json();
        // Rewrite the version field to a future one.
        if let JsonValue::Object(fields) = &mut json {
            fields[0].1 = JsonValue::Number((SCHEMA_VERSION + 1) as f64);
        }
        let err = BenchReport::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("schema version"), "{err}");
    }

    #[test]
    fn case_slugs_are_filesystem_safe() {
        assert_eq!(
            case_slug("pstore_joins/dual-shuffle"),
            "pstore-joins-dual-shuffle"
        );
        assert_eq!(case_slug("Design Space (8x16)"), "design-space-8x16");
        assert_eq!(case_slug("//x//"), "x");
    }

    #[test]
    fn check_passes_within_threshold_and_fails_past_it() {
        let mut baselines = BaselineSet::new();
        baselines.insert(result("case/fast", &[10.0, 10.0, 10.0]));
        baselines.insert(result("case/slow", &[10.0, 10.0, 10.0]));
        baselines.insert(result("case/improved", &[10.0, 10.0, 10.0]));
        let current = report_of(vec![
            result("case/fast", &[11.0, 11.0, 11.0]), // +10%: within 25%
            result("case/slow", &[30.0, 30.0, 30.0]), // 3x: regressed
            result("case/improved", &[5.0, 5.0, 5.0]), // faster: pass
            result("case/new", &[1.0, 1.0, 1.0]),     // no baseline
        ]);
        let outcome = check(&current, &baselines, CheckConfig::default());
        assert!(!outcome.passed());
        let verdicts: Vec<Verdict> = outcome.checks.iter().map(|c| c.verdict).collect();
        assert_eq!(
            verdicts,
            vec![
                Verdict::Pass,
                Verdict::Regressed,
                Verdict::Pass,
                Verdict::MissingBaseline
            ]
        );
        let regressed: Vec<&str> = outcome.regressions().map(|c| c.name.as_str()).collect();
        assert_eq!(regressed, vec!["case/slow"]);
        let missing: Vec<&str> = outcome.missing().map(|c| c.name.as_str()).collect();
        assert_eq!(missing, vec!["case/new"]);
        let slow = &outcome.checks[1];
        assert!((slow.ratio.unwrap() - 3.0).abs() < 1e-9);
        assert!(slow.to_string().contains("REGRESSED"), "{slow}");
        assert!(slow.to_string().contains("case/slow"), "{slow}");
        // A regression-free report passes even with missing baselines.
        let clean = check(
            &report_of(vec![result("case/new", &[1.0])]),
            &baselines,
            CheckConfig::default(),
        );
        assert!(clean.passed());
        assert_eq!(clean.missing().count(), 1);
    }

    #[test]
    fn sub_slack_jitter_never_regresses() {
        // 3x slower but only 60 µs absolute: under the 1 ms default slack.
        let mut baselines = BaselineSet::new();
        baselines.insert(result("micro/tiny", &[0.03]));
        let current = report_of(vec![result("micro/tiny", &[0.09])]);
        assert!(check(&current, &baselines, CheckConfig::default()).passed());
        // With the slack off, the same delta regresses.
        let strict = CheckConfig {
            min_delta: Seconds(0.0),
            ..CheckConfig::default()
        };
        assert!(!check(&current, &baselines, strict).passed());
    }

    #[test]
    fn baselines_record_and_load_from_disk() {
        let dir =
            std::env::temp_dir().join(format!("eedc-bench-harness-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = report_of(vec![
            result("disk/one", &[1.0, 2.0, 3.0]),
            result("disk/two", &[4.0, 5.0]),
        ]);
        let written = record_baselines(&report, &dir).unwrap();
        assert_eq!(written.len(), 2);
        assert!(written[0].ends_with("disk-one.json"));
        let set = BaselineSet::load(&dir).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.get("disk/one").unwrap().summary.iterations, 3);
        assert!(set.get("absent").is_none());
        // Re-recording a subset leaves the other baseline file in place.
        let partial = report_of(vec![result("disk/one", &[9.0])]);
        record_baselines(&partial, &dir).unwrap();
        let set = BaselineSet::load(&dir).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.get("disk/one").unwrap().summary.iterations, 1);
        // A missing directory loads as an empty set; a malformed file errors.
        assert!(BaselineSet::load(dir.join("no-such-subdir"))
            .unwrap()
            .is_empty());
        std::fs::write(dir.join("broken.json"), "{not json").unwrap();
        assert!(BaselineSet::load(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
