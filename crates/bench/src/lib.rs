//! # eedc-bench
//!
//! The benchmark-regression subsystem. The `benches/` targets are plain
//! `harness = false` binaries (no external bench framework is available in
//! this build environment); all of them register their cases from the
//! shared [`cases`] registry and time them through the [`harness`] —
//! warmed-up, per-iteration sampling reduced with robust statistics
//! (min/median/MAD) into JSON [`harness::BenchReport`]s.
//!
//! The `bench_suite` binary runs the whole registry and adds the
//! regression workflow on top:
//!
//! ```sh
//! # refresh the committed baselines
//! cargo run --release -p eedc-bench --bin bench_suite -- --record crates/bench/baselines
//! # the CI perf gate: exit non-zero when a case's median regresses
//! cargo run --release -p eedc-bench --bin bench_suite -- \
//!     --check crates/bench/baselines --threshold 100
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cases;
pub mod harness;

use eedc_pstore::{ClusterSpec, PStoreCluster, RunOptions};
use eedc_simkit::catalog::cluster_v_node;
use eedc_tpch::ScaleFactor;

/// The engine-scale run options every measured bench case loads clusters
/// with: small enough to iterate, large enough that the joins are real.
pub fn bench_options() -> RunOptions {
    RunOptions {
        engine_scale: ScaleFactor(0.002),
        ..RunOptions::default()
    }
}

/// A small uniform Cluster-V cluster loaded with engine-scale data — the
/// shared fixture of kernel-level experiments outside the suite (the
/// suite's own cases go through the experiment API instead).
pub fn bench_cluster(nodes: usize) -> PStoreCluster {
    let spec =
        ClusterSpec::homogeneous(cluster_v_node(), nodes).expect("bench cluster spec is valid");
    PStoreCluster::load(spec, bench_options()).expect("bench cluster loads")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_loads_a_small_cluster() {
        let cluster = bench_cluster(2);
        assert_eq!(cluster.spec().len(), 2);
    }
}
