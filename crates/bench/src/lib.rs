//! Placeholder — implemented incrementally.
