//! # eedc-bench
//!
//! Benchmark harness for the toolkit. The `benches/` targets are plain
//! `harness = false` binaries (no external bench framework is available in
//! this build environment); they share the helpers here. Fleshing the
//! harness out into timed regression benchmarks is an open item in
//! `ROADMAP.md`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use eedc_pstore::{ClusterSpec, PStoreCluster, RunOptions};
use eedc_simkit::catalog::cluster_v_node;
use eedc_tpch::ScaleFactor;
use std::time::Instant;

/// A small uniform Cluster-V cluster loaded with engine-scale data — the
/// shared fixture of the join benchmarks.
pub fn bench_cluster(nodes: usize) -> PStoreCluster {
    let spec =
        ClusterSpec::homogeneous(cluster_v_node(), nodes).expect("bench cluster spec is valid");
    let options = RunOptions {
        engine_scale: ScaleFactor(0.002),
        ..RunOptions::default()
    };
    PStoreCluster::load(spec, options).expect("bench cluster loads")
}

/// Time a closure over `iterations` runs and print a one-line report.
/// Returns the mean wall-clock seconds per iteration.
pub fn time_case<F: FnMut()>(label: &str, iterations: usize, mut case: F) -> f64 {
    let iterations = iterations.max(1);
    let start = Instant::now();
    for _ in 0..iterations {
        case();
    }
    let mean = start.elapsed().as_secs_f64() / iterations as f64;
    println!("{label}: {:.3} ms/iter over {iterations} iters", mean * 1e3);
    mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_and_timer_work() {
        let cluster = bench_cluster(2);
        assert_eq!(cluster.spec().len(), 2);
        let mut runs = 0;
        let mean = time_case("noop", 3, || runs += 1);
        assert_eq!(runs, 3);
        assert!(mean >= 0.0);
    }
}
