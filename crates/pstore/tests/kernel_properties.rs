//! Property tests for the morsel-driven join kernel: no combination of
//! worker count, morsel size, or radix bits may change the join's output row
//! multiset, and morsel stealing must actually distribute work.

use eedc_pstore::op::kernel::JoinKernelConfig;
use eedc_pstore::op::{aggregate_par, hash_join_with, AggregateFn, AggregateSpec};
use eedc_storage::{ColumnType, Schema, Table, Value};
use eedc_tpch::gen::{LineitemGenerator, OrdersGenerator};
use eedc_tpch::ScaleFactor;

const SCALE: ScaleFactor = ScaleFactor(0.002);

/// The full-row multiset signature of a join output.
fn signature(output: &Table) -> Vec<Vec<Value>> {
    let names: Vec<&str> = output
        .schema()
        .columns()
        .iter()
        .map(|(name, _)| name.as_str())
        .collect();
    output.sorted_row_signature(&names).unwrap()
}

#[test]
fn join_output_multiset_is_invariant_across_the_kernel_grid() {
    let lineitem = Table::from_lineitem(LineitemGenerator::new(SCALE, 11));
    let orders = Table::from_orders(OrdersGenerator::new(SCALE, 11));
    let reference = hash_join_with(
        &lineitem,
        "L_ORDERKEY",
        &orders,
        "O_ORDERKEY",
        1,
        JoinKernelConfig::default(),
    )
    .unwrap();
    let expected = signature(&reference.output);
    assert!(!expected.is_empty());

    // Small morsels force heavy stealing; a huge morsel degenerates to one
    // chunk; radix bits of 0 disable partitioning entirely.
    for workers in [1usize, 2, 8] {
        for morsel_rows in [64usize, 1 << 20] {
            for radix_bits in [0u8, 4, 8] {
                let config = JoinKernelConfig {
                    morsel_rows,
                    radix_bits,
                };
                let joined = hash_join_with(
                    &lineitem,
                    "L_ORDERKEY",
                    &orders,
                    "O_ORDERKEY",
                    workers,
                    config,
                )
                .unwrap();
                assert_eq!(
                    signature(&joined.output),
                    expected,
                    "workers={workers} morsel_rows={morsel_rows} radix_bits={radix_bits}"
                );
                assert_eq!(joined.output_rows, reference.output_rows);
            }
        }
    }
}

#[test]
fn duplicate_heavy_join_is_invariant_across_the_kernel_grid() {
    // Build side with duplicate keys (fan-out 3) plus probe misses, so the
    // invariance property also covers chained duplicate emission.
    let mut build = Table::empty(
        "B",
        Schema::new([("B_KEY", ColumnType::Int64), ("B_VAL", ColumnType::Int32)]),
    );
    for key in 0..200_i64 {
        for copy in 0..3_i32 {
            build
                .append_row(&[Value::Int64(key), Value::Int32(copy)])
                .unwrap();
        }
    }
    let mut probe = Table::empty("P", Schema::new([("P_KEY", ColumnType::Int64)]));
    for row in 0..5_000_i64 {
        // Roughly half the probe keys miss the build side entirely.
        probe.append_row(&[Value::Int64(row % 400)]).unwrap();
    }
    let reference = hash_join_with(
        &probe,
        "P_KEY",
        &build,
        "B_KEY",
        1,
        JoinKernelConfig::default(),
    )
    .unwrap();
    // 5000 probe rows cycle keys 0..400; 12 full cycles contribute 200
    // matching rows each, the 200-row tail all matches: 2600 hits × 3 copies.
    assert_eq!(reference.output_rows, 2_600 * 3);
    let expected = signature(&reference.output);

    for workers in [2usize, 8] {
        for morsel_rows in [17usize, 4_096] {
            for radix_bits in [0u8, 4, 8] {
                let joined = hash_join_with(
                    &probe,
                    "P_KEY",
                    &build,
                    "B_KEY",
                    workers,
                    JoinKernelConfig {
                        morsel_rows,
                        radix_bits,
                    },
                )
                .unwrap();
                assert_eq!(
                    signature(&joined.output),
                    expected,
                    "workers={workers} morsel_rows={morsel_rows} radix_bits={radix_bits}"
                );
            }
        }
    }
}

#[test]
fn skewed_probe_still_spreads_morsels_across_all_workers() {
    // Pathological skew: every probe row hits the same single build key, so
    // all matching work lands in one radix partition. Morsel stealing (plus
    // the first-claim guarantee) must still hand every worker at least one
    // morsel instead of serialising behind the hot partition.
    let mut build = Table::empty("B", Schema::new([("B_KEY", ColumnType::Int64)]));
    build.append_row(&[Value::Int64(42)]).unwrap();
    let mut probe = Table::empty("P", Schema::new([("P_KEY", ColumnType::Int64)]));
    for _ in 0..10_000 {
        probe.append_row(&[Value::Int64(42)]).unwrap();
    }

    let workers = 8;
    let config = JoinKernelConfig {
        morsel_rows: 256, // 40 morsels >> 8 workers
        ..JoinKernelConfig::default()
    };
    let joined = hash_join_with(&probe, "P_KEY", &build, "B_KEY", workers, config).unwrap();
    assert_eq!(joined.output_rows, 10_000);
    assert_eq!(joined.morsels_per_worker.len(), workers);
    let retired: usize = joined.morsels_per_worker.iter().sum();
    assert_eq!(retired, 10_000_usize.div_ceil(256));
    for (worker, &morsels) in joined.morsels_per_worker.iter().enumerate() {
        assert!(
            morsels >= 1,
            "worker {worker} retired no morsels: {:?}",
            joined.morsels_per_worker
        );
    }
}

#[test]
fn aggregation_is_invariant_across_thread_counts() {
    let lineitem = Table::from_lineitem(LineitemGenerator::new(SCALE, 13));
    let specs = [
        AggregateSpec::new("L_EXTENDEDPRICE", AggregateFn::Sum),
        AggregateSpec::new("L_EXTENDEDPRICE", AggregateFn::Count),
        AggregateSpec::new("L_EXTENDEDPRICE", AggregateFn::Min),
        AggregateSpec::new("L_EXTENDEDPRICE", AggregateFn::Max),
    ];
    let serial = aggregate_par(&lineitem, "L_DISCOUNT", &specs, 1).unwrap();
    for threads in [2usize, 3, 8] {
        let parallel = aggregate_par(&lineitem, "L_DISCOUNT", &specs, threads).unwrap();
        assert_eq!(parallel, serial, "threads={threads}");
    }
}
