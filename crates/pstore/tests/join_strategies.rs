//! Cross-strategy integration test: all three join strategies must agree on
//! the join result, and their network footprints must order the way the
//! paper's analysis predicts.

use eedc_pstore::{ClusterSpec, JoinQuerySpec, JoinStrategy, PStoreCluster, RunOptions};
use eedc_simkit::catalog::cluster_v_node;

fn cluster(nodes: usize) -> PStoreCluster {
    let spec = ClusterSpec::homogeneous(cluster_v_node(), nodes).unwrap();
    PStoreCluster::load(spec, RunOptions::default()).unwrap()
}

#[test]
fn all_strategies_produce_identical_cardinalities() {
    let cluster = cluster(4);
    for query in [
        JoinQuerySpec::q3_dual_shuffle(),
        JoinQuerySpec::q3_broadcast(),
        JoinQuerySpec::new(0.5, 0.05),
    ] {
        let reference = cluster.reference_join_rows(&query).unwrap();
        assert!(reference > 0, "query {} matched nothing", query.label());
        for strategy in JoinStrategy::ALL {
            let execution = cluster.run(&query, strategy).unwrap();
            assert_eq!(
                execution.output_rows,
                reference,
                "strategy {strategy} disagrees with the reference join for {}",
                query.label()
            );
        }
    }
}

#[test]
fn broadcast_moves_more_bytes_than_shuffle_for_a_large_build_side() {
    // Shuffle moves ~(N-1)/N of both qualifying inputs; broadcast moves
    // (N-1) copies of the qualifying build side. With a 50%-selectivity
    // ORDERS build side, the broadcast volume dominates.
    let cluster = cluster(4);
    let query = JoinQuerySpec::new(0.5, 0.05);
    let shuffle = cluster.run(&query, JoinStrategy::DualShuffle).unwrap();
    let broadcast = cluster.run(&query, JoinStrategy::Broadcast).unwrap();
    let shuffle_bytes = shuffle.bytes_over_network();
    let broadcast_bytes = broadcast.bytes_over_network();
    assert!(
        broadcast_bytes.value() > shuffle_bytes.value(),
        "broadcast {broadcast_bytes} vs shuffle {shuffle_bytes}"
    );

    // And the prepartitioned baseline of Figure 5 moves nothing at all.
    let prepartitioned = cluster.run(&query, JoinStrategy::PrePartitioned).unwrap();
    assert_eq!(prepartitioned.bytes_over_network().value(), 0.0);
}

#[test]
fn small_build_sides_favour_broadcast() {
    // The paper's broadcast variant (Section 4.3.2) tightens ORDERS to 1%
    // exactly so the probe side never moves: with a small build side the
    // broadcast join ships fewer bytes than the dual shuffle.
    let cluster = cluster(4);
    let query = JoinQuerySpec::q3_broadcast();
    let shuffle = cluster.run(&query, JoinStrategy::DualShuffle).unwrap();
    let broadcast = cluster.run(&query, JoinStrategy::Broadcast).unwrap();
    assert!(broadcast.bytes_over_network().value() < shuffle.bytes_over_network().value());
    // The broadcast probe phase is fully local.
    assert_eq!(
        broadcast.phase("probe").unwrap().bytes_over_network.value(),
        0.0
    );
}

#[test]
fn executions_report_complete_phase_breakdowns() {
    let cluster = cluster(5);
    let execution = cluster
        .run(&JoinQuerySpec::q3_dual_shuffle(), JoinStrategy::DualShuffle)
        .unwrap();
    assert_eq!(execution.phases.len(), 2);
    assert!(execution.phase("build").is_some());
    assert!(execution.phase("probe").is_some());
    assert_eq!(execution.cluster_label, "5B,0W");
    let total = execution.response_time();
    assert!(
        (total.value()
            - execution
                .phases
                .iter()
                .map(|p| p.duration.value())
                .sum::<f64>())
        .abs()
            < 1e-12
    );
    let measurement = execution.measurement();
    assert_eq!(measurement.response_time, total);
    assert_eq!(measurement.energy, execution.energy());
}
