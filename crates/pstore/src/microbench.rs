//! The single-node hash-join microbenchmark of Section 5.1 / Figure 6.
//!
//! The paper joins a 10 MB build table against a 2 GB probe table on five
//! single-node systems (Table 2) and reports response time and energy for
//! each: the workstations are fastest, the Atom desktop is slowest *without*
//! being the most efficient, and Laptop B — the eventual "Wimpy" cluster
//! node — consumes the least energy. This module reproduces that experiment:
//! a real (engine-scale) hash join for correctness, with time modeled from
//! the node's calibrated [`NodeSpec::hashjoin_bandwidth`] and energy from its
//! power model.

use crate::error::PStoreError;
use crate::op::hashjoin::hash_join_with;
use crate::op::kernel::{default_worker_threads, JoinKernelConfig};
use eedc_simkit::metrics::Measurement;
use eedc_simkit::units::{Joules, Megabytes, Seconds};
use eedc_simkit::{HardwareCatalog, NodeSpec};
use eedc_storage::Table;
use eedc_tpch::gen::{LineitemGenerator, OrdersGenerator};
use eedc_tpch::ScaleFactor;

/// Tunables for the single-node microbenchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicrobenchOptions {
    /// Nominal build-table size (Figure 6 uses 10 MB).
    pub build_megabytes: Megabytes,
    /// Nominal probe-table size (Figure 6 uses 2 GB).
    pub probe_megabytes: Megabytes,
    /// Scale factor of the data actually joined for correctness.
    pub engine_scale: ScaleFactor,
    /// CPU utilization sustained during the CPU-bound join. The paper's
    /// kernel keeps the machine busy but not pegged; 0.85 matches the
    /// calibration notes in the hardware catalog.
    pub utilization: f64,
    /// Probe worker threads. Defaults to the machine's available parallelism
    /// via [`default_worker_threads`]; set an explicit value (the benchmark
    /// used to hard-code `2`) to pin it.
    pub threads: usize,
    /// Morsel / radix tunables of the join kernel.
    pub kernel: JoinKernelConfig,
    /// Seed for the deterministic generators.
    pub seed: u64,
}

impl Default for MicrobenchOptions {
    fn default() -> Self {
        Self {
            build_megabytes: Megabytes(10.0),
            probe_megabytes: Megabytes(2000.0),
            engine_scale: ScaleFactor(0.001),
            utilization: 0.85,
            threads: default_worker_threads(),
            kernel: JoinKernelConfig::default(),
            seed: 5,
        }
    }
}

impl MicrobenchOptions {
    fn validate(&self) -> Result<(), PStoreError> {
        for (label, v) in [
            ("build size", self.build_megabytes.value()),
            ("probe size", self.probe_megabytes.value()),
            ("engine scale", self.engine_scale.value()),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(PStoreError::planning(format!(
                    "{label} must be positive and finite, got {v}"
                )));
            }
        }
        if !(0.0..=1.0).contains(&self.utilization) {
            return Err(PStoreError::planning(format!(
                "utilization {} outside [0, 1]",
                self.utilization
            )));
        }
        self.kernel.validate()?;
        Ok(())
    }
}

/// Result of running the microbenchmark on one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MicrobenchResult {
    /// Name of the machine (from its [`NodeSpec`]).
    pub node: String,
    /// Modeled response time at the nominal data size.
    pub duration: Seconds,
    /// Modeled energy at the nominal data size.
    pub energy: Joules,
    /// Build rows of the engine-scale correctness join.
    pub build_rows: usize,
    /// Probe rows of the engine-scale correctness join.
    pub probe_rows: usize,
    /// Output rows of the engine-scale correctness join.
    pub output_rows: usize,
}

impl MicrobenchResult {
    /// Collapse into a response-time / energy [`Measurement`].
    pub fn measurement(&self) -> Measurement {
        Measurement::new(self.duration, self.energy)
    }

    /// The Energy-Delay Product of the run.
    pub fn edp(&self) -> f64 {
        self.measurement().edp()
    }
}

/// Row counts of the engine-scale correctness join. The join depends only on
/// the options (scale, seed, threads), never on the machine, so sweeps run it
/// once and reuse the counts across nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct JoinCounts {
    build_rows: usize,
    probe_rows: usize,
    output_rows: usize,
}

/// Engine-scale correctness join: every LINEITEM row references exactly one
/// ORDERS row, so the unfiltered join must return one output row per probe
/// row.
fn correctness_join(options: &MicrobenchOptions) -> Result<JoinCounts, PStoreError> {
    let orders = Table::from_orders(OrdersGenerator::new(options.engine_scale, options.seed));
    let lineitem = Table::from_lineitem(LineitemGenerator::new(options.engine_scale, options.seed));
    let joined = hash_join_with(
        &lineitem,
        "L_ORDERKEY",
        &orders,
        "O_ORDERKEY",
        options.threads,
        options.kernel,
    )?;
    Ok(JoinCounts {
        build_rows: joined.build_rows,
        probe_rows: joined.probe_rows,
        output_rows: joined.output_rows,
    })
}

/// Model one machine's run: memory check, then time from the calibrated
/// hash-join rate and energy from the power model.
fn model_node(
    node: &NodeSpec,
    options: &MicrobenchOptions,
    counts: JoinCounts,
) -> Result<MicrobenchResult, PStoreError> {
    if !node.fits_hash_table(options.build_megabytes, 0.0) {
        return Err(PStoreError::planning(format!(
            "build table of {:.0} exceeds the memory of {}",
            options.build_megabytes, node.name
        )));
    }
    let workload = options.build_megabytes + options.probe_megabytes;
    let duration = workload / node.hashjoin_bandwidth;
    let energy = node.power_at(options.utilization) * duration;
    Ok(MicrobenchResult {
        node: node.name.clone(),
        duration,
        energy,
        build_rows: counts.build_rows,
        probe_rows: counts.probe_rows,
        output_rows: counts.output_rows,
    })
}

/// Run the Section 5.1 microbenchmark on one machine: an unfiltered
/// LINEITEM ⋈ ORDERS hash join executed at engine scale for correctness,
/// with time and energy modeled at the nominal build/probe sizes through the
/// node's calibrated hash-join rate and power model.
pub fn single_node_hash_join(
    node: &NodeSpec,
    options: &MicrobenchOptions,
) -> Result<MicrobenchResult, PStoreError> {
    options.validate()?;
    model_node(node, options, correctness_join(options)?)
}

/// Run the microbenchmark on every Table 2 machine of the catalog, in the
/// paper's order — one Figure 6 worth of data. The correctness join runs
/// once and is shared across the machines.
pub fn table2_sweep(
    catalog: &HardwareCatalog,
    options: &MicrobenchOptions,
) -> Result<Vec<MicrobenchResult>, PStoreError> {
    options.validate()?;
    let counts = correctness_join(options)?;
    catalog
        .table2_systems()
        .into_iter()
        .map(|spec| model_node(spec, options, counts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eedc_simkit::catalog::{self, names};

    #[test]
    fn figure6_shape_is_reproduced() {
        // Workstation A is the fastest system; Laptop B consumes the least
        // energy — the paper's core single-node observation.
        let catalog = HardwareCatalog::paper();
        let results = table2_sweep(&catalog, &MicrobenchOptions::default()).unwrap();
        assert_eq!(results.len(), 5);
        let fastest = results
            .iter()
            .min_by(|a, b| a.duration.value().total_cmp(&b.duration.value()))
            .unwrap();
        let lowest_energy = results
            .iter()
            .min_by(|a, b| a.energy.value().total_cmp(&b.energy.value()))
            .unwrap();
        assert_eq!(fastest.node, names::WORKSTATION_A);
        assert_eq!(lowest_energy.node, names::LAPTOP_B);
        // The fastest machine is not the most efficient one.
        assert_ne!(fastest.node, lowest_energy.node);
    }

    #[test]
    fn correctness_join_matches_foreign_key_fanout() {
        let result =
            single_node_hash_join(&catalog::workstation_a(), &MicrobenchOptions::default())
                .unwrap();
        assert!(result.build_rows > 0);
        assert_eq!(result.output_rows, result.probe_rows);
        assert!(result.duration.value() > 0.0);
        assert!(result.energy.value() > 0.0);
        assert!((result.edp() - result.duration.value() * result.energy.value()).abs() < 1e-9);
        let m = result.measurement();
        assert_eq!(m.response_time, result.duration);
        assert_eq!(m.energy, result.energy);
    }

    #[test]
    fn modeled_time_follows_the_calibrated_rate() {
        let node = catalog::laptop_b();
        let options = MicrobenchOptions::default();
        let result = single_node_hash_join(&node, &options).unwrap();
        let expected =
            (options.build_megabytes + options.probe_megabytes) / node.hashjoin_bandwidth;
        assert!((result.duration.value() - expected.value()).abs() < 1e-9);
    }

    #[test]
    fn oversized_builds_and_bad_options_are_rejected() {
        let node = catalog::laptop_a(); // 4 GB of memory
        let oversized = MicrobenchOptions {
            build_megabytes: Megabytes::from_gigabytes(8.0),
            ..MicrobenchOptions::default()
        };
        assert!(single_node_hash_join(&node, &oversized).is_err());
        let bad = MicrobenchOptions {
            probe_megabytes: Megabytes(0.0),
            ..MicrobenchOptions::default()
        };
        assert!(single_node_hash_join(&node, &bad).is_err());
        let bad = MicrobenchOptions {
            utilization: 1.5,
            ..MicrobenchOptions::default()
        };
        assert!(single_node_hash_join(&node, &bad).is_err());
    }
}
