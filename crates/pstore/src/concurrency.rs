//! Concurrent join execution over the shared interconnect.
//!
//! Figures 3 and 4 of the paper run 1, 2, and 4 identical joins at the same
//! time: the queries share every NIC port and the node CPUs, so a
//! network-bound join's batch completion time grows roughly linearly with
//! the concurrency level while per-query throughput stays flat — the
//! signature of an interconnect-saturated cluster. This module wraps
//! [`PStoreCluster::run_batch`] with the paper's sweep and the derived
//! per-query metrics.

use crate::cluster::PStoreCluster;
use crate::error::PStoreError;
use crate::plan::{JoinQuerySpec, JoinStrategy};
use crate::stats::QueryExecution;
use eedc_simkit::units::{Joules, Seconds};

/// The concurrency levels of the paper's Figures 3 and 4.
pub const PAPER_LEVELS: [usize; 3] = [1, 2, 4];

/// Run `concurrency` identical queries at once. Equivalent to
/// [`PStoreCluster::run_batch`]; provided so call sites read like the
/// paper's experiment description.
pub fn run_concurrent(
    cluster: &PStoreCluster,
    query: &JoinQuerySpec,
    strategy: JoinStrategy,
    concurrency: usize,
) -> Result<QueryExecution, PStoreError> {
    cluster.run_batch(query, strategy, concurrency)
}

/// One batch execution per requested concurrency level.
#[derive(Debug, Clone)]
pub struct ConcurrencySweep {
    /// The batch executions, in the order the levels were requested.
    pub executions: Vec<QueryExecution>,
}

impl ConcurrencySweep {
    /// Run the same query at every concurrency level in `levels`.
    pub fn run(
        cluster: &PStoreCluster,
        query: &JoinQuerySpec,
        strategy: JoinStrategy,
        levels: &[usize],
    ) -> Result<Self, PStoreError> {
        let executions = levels
            .iter()
            .map(|&level| cluster.run_batch(query, strategy, level))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { executions })
    }

    /// Run the paper's 1/2/4 sweep.
    pub fn paper(
        cluster: &PStoreCluster,
        query: &JoinQuerySpec,
        strategy: JoinStrategy,
    ) -> Result<Self, PStoreError> {
        Self::run(cluster, query, strategy, &PAPER_LEVELS)
    }

    /// Batch completion time at each level.
    pub fn batch_times(&self) -> Vec<Seconds> {
        self.executions
            .iter()
            .map(QueryExecution::response_time)
            .collect()
    }

    /// Cluster energy divided by the number of queries in the batch — the
    /// per-query energy cost at each level.
    pub fn energy_per_query(&self) -> Vec<Joules> {
        self.executions
            .iter()
            .map(|e| e.energy() / e.concurrency.max(1) as f64)
            .collect()
    }

    /// Completed queries per second at each level.
    pub fn throughput(&self) -> Vec<f64> {
        self.executions
            .iter()
            .map(|e| {
                let t = e.response_time().value();
                if t <= f64::EPSILON {
                    0.0
                } else {
                    e.concurrency as f64 / t
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterSpec, RunOptions};
    use eedc_simkit::catalog::cluster_v_node;

    fn cluster() -> PStoreCluster {
        let spec = ClusterSpec::homogeneous(cluster_v_node(), 4).unwrap();
        PStoreCluster::load(spec, RunOptions::default()).unwrap()
    }

    #[test]
    fn concurrent_shuffles_share_the_interconnect() {
        // Figure 3: doubling the number of concurrent network-bound joins
        // roughly doubles the batch completion time — the queries split the
        // same ports, so no extra throughput materialises.
        let cluster = cluster();
        let query = JoinQuerySpec::q3_dual_shuffle();
        let sweep = ConcurrencySweep::paper(&cluster, &query, JoinStrategy::DualShuffle).unwrap();
        let times = sweep.batch_times();
        assert_eq!(times.len(), 3);
        assert!(times[1] > times[0]);
        assert!(times[2] > times[1]);
        // No super-linear slowdown either: 4 queries take at most ~4x one.
        assert!(times[2].value() <= times[0].value() * 4.0 + 1e-6);

        // Throughput stays roughly flat across the sweep.
        let throughput = sweep.throughput();
        let ratio = throughput[2] / throughput[0];
        assert!((0.8..=1.3).contains(&ratio), "throughput ratio {ratio}");
    }

    #[test]
    fn batches_preserve_per_query_cardinality() {
        let cluster = cluster();
        let query = JoinQuerySpec::q3_dual_shuffle();
        let reference = cluster.reference_join_rows(&query).unwrap();
        for level in PAPER_LEVELS {
            let execution =
                run_concurrent(&cluster, &query, JoinStrategy::DualShuffle, level).unwrap();
            assert_eq!(execution.concurrency, level);
            assert_eq!(execution.output_rows, reference, "level {level}");
        }
    }

    #[test]
    fn per_query_energy_is_reported_per_level() {
        let cluster = cluster();
        let sweep = ConcurrencySweep::paper(
            &cluster,
            &JoinQuerySpec::q3_dual_shuffle(),
            JoinStrategy::DualShuffle,
        )
        .unwrap();
        for energy in sweep.energy_per_query() {
            assert!(energy.value() > 0.0);
        }
        // Total batch energy grows with concurrency.
        let totals: Vec<f64> = sweep
            .executions
            .iter()
            .map(|e| e.energy().value())
            .collect();
        assert!(totals[1] > totals[0]);
        assert!(totals[2] > totals[1]);
    }
}
