//! # eedc-pstore
//!
//! P-store: the custom parallel query execution kernel of the paper
//! (Section 4.2), re-implemented as a library.
//!
//! P-store exists to isolate the *fundamental* bottlenecks of parallel
//! analytic query processing — network repartitioning, broadcast, and data
//! skew — without the implementation noise of a full DBMS. It is built on the
//! block-iterator columnar storage engine of `eedc-storage` and adds:
//!
//! * physical [`op`]erators: a cache-conscious, morsel-driven parallel hash
//!   join (partitioned radix build, morsel-stealing probe, columnar batch
//!   materialization — see [`op`] for the full pipeline), a grouped
//!   aggregate, and the network [`op::exchange`] operator (shuffle /
//!   broadcast / gather) that is the paper's "workhorse",
//! * [`plan`]s for the three ways the paper executes a two-table join:
//!   dual-shuffle repartitioning, small-table broadcast, and pre-partitioned
//!   (partition-compatible) execution,
//! * a [`cluster`] runtime that executes a plan against real partitioned data
//!   for correctness while *simultaneously* driving the flow-level network
//!   simulator and the node power models, producing the response-time and
//!   energy measurements of Figures 3, 4, 5 and 7,
//! * [`concurrency`] support for running several independent joins at once
//!   over the shared interconnect (the 1/2/4-query sweeps of Figures 3
//!   and 4),
//! * the single-node [`microbench`] hash join of Section 5.1 / Figure 6.
//!
//! ## Homogeneous versus heterogeneous execution
//!
//! Exactly as in Section 5.2, the cluster runtime picks between two execution
//! modes based on whether the build-side hash table fits in every node's
//! memory (`H` in Table 3): *homogeneous* execution has every node build and
//! probe; *heterogeneous* execution uses memory-poor Wimpy nodes purely as
//! scan-and-filter producers that forward qualifying tuples to the Beefy
//! nodes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod concurrency;
pub mod error;
pub mod microbench;
pub mod op;
pub mod plan;
pub mod stats;

pub use cluster::{select_execution_mode, ClusterSpec, PStoreCluster, RunOptions};
pub use error::PStoreError;
pub use microbench::{single_node_hash_join, MicrobenchResult};
pub use op::{default_worker_threads, JoinKernelConfig};
pub use plan::{JoinQuerySpec, JoinSkew, JoinStrategy};
pub use stats::{ExecutionMode, PhaseStats, QueryExecution};
