//! Join strategies and query specifications.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How a partition-incompatible two-table join moves data, mirroring the two
/// execution methods of Section 4.3 plus the partition-compatible baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinStrategy {
    /// Repartition (shuffle) both inputs on the join key — Section 4.3.1.
    DualShuffle,
    /// Broadcast the qualifying build-side tuples to every participating
    /// node so the probe side never moves — Section 4.3.2.
    Broadcast,
    /// The inputs are already co-partitioned on the join key; no network
    /// traffic at all (the "prepartitioned" baseline of Figure 5).
    PrePartitioned,
}

impl fmt::Display for JoinStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinStrategy::DualShuffle => write!(f, "dual-shuffle"),
            JoinStrategy::Broadcast => write!(f, "broadcast"),
            JoinStrategy::PrePartitioned => write!(f, "prepartitioned"),
        }
    }
}

impl JoinStrategy {
    /// All strategies, in the order Figure 5 presents them.
    pub const ALL: [JoinStrategy; 3] = [
        JoinStrategy::DualShuffle,
        JoinStrategy::Broadcast,
        JoinStrategy::PrePartitioned,
    ];
}

/// Parameters of the LINEITEM ⋈ ORDERS hash join the paper studies: the
/// predicate selectivities on the two inputs.
///
/// Following the paper's convention, ORDERS is always the (smaller) build
/// side and LINEITEM the probe side, joined on `ORDERKEY`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JoinQuerySpec {
    /// Selectivity of the predicate on the build (ORDERS) input, in `(0, 1]`.
    pub build_selectivity: f64,
    /// Selectivity of the predicate on the probe (LINEITEM) input, in
    /// `(0, 1]`.
    pub probe_selectivity: f64,
}

impl JoinQuerySpec {
    /// A join with the given ORDERS (build) and LINEITEM (probe)
    /// selectivities.
    pub fn new(build_selectivity: f64, probe_selectivity: f64) -> Self {
        Self {
            build_selectivity,
            probe_selectivity,
        }
    }

    /// The TPC-H Q3-style join of Section 4.3: 5% selectivity on both inputs.
    pub fn q3_dual_shuffle() -> Self {
        Self::new(0.05, 0.05)
    }

    /// The broadcast variant of Section 4.3.2: ORDERS tightened to 1% so the
    /// full hash table fits in memory on every node, LINEITEM kept at 5%.
    pub fn q3_broadcast() -> Self {
        Self::new(0.01, 0.05)
    }

    /// Compact label such as `"O5%/L5%"`, used in reports.
    pub fn label(&self) -> String {
        format!(
            "O{}%/L{}%",
            format_pct(self.build_selectivity),
            format_pct(self.probe_selectivity)
        )
    }
}

fn format_pct(fraction: f64) -> String {
    let pct = fraction * 100.0;
    if (pct - pct.round()).abs() < 1e-9 {
        format!("{}", pct.round() as i64)
    } else {
        format!("{pct}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_display_and_all() {
        assert_eq!(JoinStrategy::DualShuffle.to_string(), "dual-shuffle");
        assert_eq!(JoinStrategy::Broadcast.to_string(), "broadcast");
        assert_eq!(JoinStrategy::PrePartitioned.to_string(), "prepartitioned");
        assert_eq!(JoinStrategy::ALL.len(), 3);
    }

    #[test]
    fn paper_specs() {
        let dual = JoinQuerySpec::q3_dual_shuffle();
        assert_eq!(dual.build_selectivity, 0.05);
        assert_eq!(dual.probe_selectivity, 0.05);
        let broadcast = JoinQuerySpec::q3_broadcast();
        assert_eq!(broadcast.build_selectivity, 0.01);
        assert_eq!(broadcast.label(), "O1%/L5%");
        assert_eq!(JoinQuerySpec::new(0.125, 0.5).label(), "O12.5%/L50%");
    }
}
