//! Join strategies, query specifications, and join-key skew.

use eedc_tpch::ZipfKeys;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a partition-incompatible two-table join moves data, mirroring the two
/// execution methods of Section 4.3 plus the partition-compatible baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinStrategy {
    /// Repartition (shuffle) both inputs on the join key — Section 4.3.1.
    DualShuffle,
    /// Broadcast the qualifying build-side tuples to every participating
    /// node so the probe side never moves — Section 4.3.2.
    Broadcast,
    /// The inputs are already co-partitioned on the join key; no network
    /// traffic at all (the "prepartitioned" baseline of Figure 5).
    PrePartitioned,
}

impl fmt::Display for JoinStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinStrategy::DualShuffle => write!(f, "dual-shuffle"),
            JoinStrategy::Broadcast => write!(f, "broadcast"),
            JoinStrategy::PrePartitioned => write!(f, "prepartitioned"),
        }
    }
}

impl JoinStrategy {
    /// All strategies, in the order Figure 5 presents them.
    pub const ALL: [JoinStrategy; 3] = [
        JoinStrategy::DualShuffle,
        JoinStrategy::Broadcast,
        JoinStrategy::PrePartitioned,
    ];
}

/// Inverse of the `Display` labels, so serialized run records (the
/// `eedc_core::json` reader) round-trip.
impl std::str::FromStr for JoinStrategy {
    type Err = crate::error::PStoreError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dual-shuffle" => Ok(JoinStrategy::DualShuffle),
            "broadcast" => Ok(JoinStrategy::Broadcast),
            "prepartitioned" => Ok(JoinStrategy::PrePartitioned),
            other => Err(crate::error::PStoreError::planning(format!(
                "unknown join strategy '{other}'"
            ))),
        }
    }
}

/// Parameters of the LINEITEM ⋈ ORDERS hash join the paper studies: the
/// predicate selectivities on the two inputs.
///
/// Following the paper's convention, ORDERS is always the (smaller) build
/// side and LINEITEM the probe side, joined on `ORDERKEY`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JoinQuerySpec {
    /// Selectivity of the predicate on the build (ORDERS) input, in `(0, 1]`.
    pub build_selectivity: f64,
    /// Selectivity of the predicate on the probe (LINEITEM) input, in
    /// `(0, 1]`.
    pub probe_selectivity: f64,
}

impl JoinQuerySpec {
    /// A join with the given ORDERS (build) and LINEITEM (probe)
    /// selectivities.
    pub fn new(build_selectivity: f64, probe_selectivity: f64) -> Self {
        Self {
            build_selectivity,
            probe_selectivity,
        }
    }

    /// The TPC-H Q3-style join of Section 4.3: 5% selectivity on both inputs.
    pub fn q3_dual_shuffle() -> Self {
        Self::new(0.05, 0.05)
    }

    /// The broadcast variant of Section 4.3.2: ORDERS tightened to 1% so the
    /// full hash table fits in memory on every node, LINEITEM kept at 5%.
    pub fn q3_broadcast() -> Self {
        Self::new(0.01, 0.05)
    }

    /// Compact label such as `"O5%/L5%"`, used in reports.
    pub fn label(&self) -> String {
        format!(
            "O{}%/L{}%",
            format_pct(self.build_selectivity),
            format_pct(self.probe_selectivity)
        )
    }
}

/// Zipf skew on the join-key distribution — Section 4.1's deferred "third
/// bottleneck". Hash partitioning on a skewed key no longer splits work
/// `1/n`: the partition holding the hottest keys receives a
/// disproportionate share of the shuffled bytes, the hash-table build, and
/// the probe work, which surfaces as per-node utilization and energy
/// imbalance.
///
/// The runtime keeps executing the *engine-scale* join against the real
/// (uniform) generated keys — correctness is unchanged — and reweights the
/// *nominal-scale* volumes it feeds the time/energy models by the Zipf
/// partition weights, exactly as the engine/nominal scale split already
/// works for byte volumes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JoinSkew {
    /// Zipf exponent of the join-key popularity distribution. `0` is
    /// uniform; `~1` is the classic heavy skew.
    pub theta: f64,
    /// Number of distinct join keys the distribution ranges over.
    pub key_domain: u64,
    /// Seed of the deterministic generator (kept so that workloads replaying
    /// a skewed run reproduce the same weights).
    pub seed: u64,
}

impl JoinSkew {
    /// Default join-key domain: the ORDERS key space of a small engine-scale
    /// run is O(10^5) distinct keys, which keeps weight evaluation cheap.
    pub const DEFAULT_KEY_DOMAIN: u64 = 100_000;

    /// A Zipf skew with the given exponent over the default key domain.
    pub fn zipf(theta: f64) -> Self {
        Self {
            theta,
            key_domain: Self::DEFAULT_KEY_DOMAIN,
            seed: 7,
        }
    }

    /// Whether the skew degenerates to the uniform distribution.
    pub fn is_uniform(&self) -> bool {
        self.theta == 0.0
    }

    /// The load fraction each of `partitions` hash partitions receives
    /// (sums to 1; uniform is `1 / partitions` everywhere).
    pub fn partition_weights(&self, partitions: usize) -> Vec<f64> {
        ZipfKeys::new(self.key_domain, self.theta, self.seed).partition_weights(partitions)
    }

    /// Per-destination *relative* load factors: 1.0 everywhere for a uniform
    /// distribution, above 1.0 on hot partitions. This is the multiplier the
    /// cluster runtime applies to the uniform-share volumes.
    pub fn partition_factors(&self, partitions: usize) -> Vec<f64> {
        self.partition_weights(partitions)
            .into_iter()
            .map(|w| w * partitions as f64)
            .collect()
    }

    /// Validate the skew parameters.
    pub fn validate(&self) -> Result<(), crate::error::PStoreError> {
        if !(self.theta.is_finite() && self.theta >= 0.0) {
            return Err(crate::error::PStoreError::planning(format!(
                "skew theta must be finite and non-negative, got {}",
                self.theta
            )));
        }
        if self.key_domain == 0 {
            return Err(crate::error::PStoreError::planning(
                "skew key domain must be at least 1",
            ));
        }
        Ok(())
    }
}

fn format_pct(fraction: f64) -> String {
    let pct = fraction * 100.0;
    if (pct - pct.round()).abs() < 1e-9 {
        format!("{}", pct.round() as i64)
    } else {
        format!("{pct}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_display_and_all() {
        assert_eq!(JoinStrategy::DualShuffle.to_string(), "dual-shuffle");
        assert_eq!(JoinStrategy::Broadcast.to_string(), "broadcast");
        assert_eq!(JoinStrategy::PrePartitioned.to_string(), "prepartitioned");
        for strategy in JoinStrategy::ALL {
            assert_eq!(
                strategy.to_string().parse::<JoinStrategy>().unwrap(),
                strategy
            );
        }
        assert!("shuffle".parse::<JoinStrategy>().is_err());
        assert_eq!(JoinStrategy::ALL.len(), 3);
    }

    #[test]
    fn paper_specs() {
        let dual = JoinQuerySpec::q3_dual_shuffle();
        assert_eq!(dual.build_selectivity, 0.05);
        assert_eq!(dual.probe_selectivity, 0.05);
        let broadcast = JoinQuerySpec::q3_broadcast();
        assert_eq!(broadcast.build_selectivity, 0.01);
        assert_eq!(broadcast.label(), "O1%/L5%");
        assert_eq!(JoinQuerySpec::new(0.125, 0.5).label(), "O12.5%/L50%");
    }

    #[test]
    fn skew_weights_and_factors_are_consistent() {
        let uniform = JoinSkew::zipf(0.0);
        assert!(uniform.is_uniform());
        for f in uniform.partition_factors(4) {
            assert!((f - 1.0).abs() < 1e-3, "uniform factor {f}");
        }
        let skewed = JoinSkew::zipf(1.0);
        assert!(!skewed.is_uniform());
        let weights = skewed.partition_weights(4);
        let factors = skewed.partition_factors(4);
        assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for (w, f) in weights.iter().zip(&factors) {
            assert!((w * 4.0 - f).abs() < 1e-12);
        }
        // The hot partition is loaded above its uniform share. Round-robin
        // rank placement over the large default domain bounds the imbalance
        // (each partition holds hot and cold ranks alike)...
        assert!(factors[0] > 1.1, "hot factor {}", factors[0]);
        // ...while a tight key domain under heavier skew concentrates hard.
        let tight = JoinSkew {
            theta: 1.5,
            key_domain: 1_000,
            seed: 7,
        };
        let hot = tight.partition_factors(4)[0];
        assert!(hot > 1.8, "tight-domain hot factor {hot}");
        assert!(skewed.validate().is_ok());
        assert!(JoinSkew {
            theta: f64::NAN,
            ..skewed
        }
        .validate()
        .is_err());
        assert!(JoinSkew {
            theta: -0.5,
            ..skewed
        }
        .validate()
        .is_err());
        assert!(JoinSkew {
            key_domain: 0,
            ..skewed
        }
        .validate()
        .is_err());
    }
}
