//! The P-store cluster runtime.
//!
//! [`PStoreCluster`] executes a [`JoinQuerySpec`] under a chosen
//! [`JoinStrategy`] against *real* partitioned tables — so join output
//! cardinalities are exact and verifiable against a scalar reference join —
//! while *simultaneously* driving the flow-level network simulator of
//! `eedc-netsim` for transfer times and the `eedc-simkit` power models for
//! per-phase joules. This dual execution is the paper's methodology in
//! miniature: engine-level correctness at laptop scale, time/energy modeled
//! at the nominal (paper) scale.
//!
//! ## Engine scale versus nominal scale
//!
//! Materialising SF-400 (let alone SF-1000) in memory is neither possible nor
//! necessary. The runtime generates data at a small *engine* scale factor for
//! relational correctness and multiplies every byte volume by
//! `nominal_scale / engine_scale` before it reaches the network simulator,
//! the scan/compute time model, or the hash-table memory check. TPC-H
//! cardinalities scale linearly in the scale factor, so the modeled volumes
//! are exactly what a nominal-scale run would move.
//!
//! ## Homogeneous versus heterogeneous execution
//!
//! Exactly as in Section 5.2 of the paper, the runtime picks the execution
//! mode from the build-side hash-table size: if the (nominal-scale) hash
//! table fits in every node's memory, every node builds and probes
//! (*homogeneous*); otherwise memory-poor Wimpy nodes are demoted to
//! scan-and-filter producers that forward qualifying tuples to the Beefy
//! nodes (*heterogeneous*).

use crate::error::PStoreError;
use crate::op::exchange::{broadcast_exchange, shuffle_exchange};
use crate::op::hashjoin::hash_join_with;
use crate::op::kernel::{default_worker_threads, JoinKernelConfig};
use crate::plan::{JoinQuerySpec, JoinSkew, JoinStrategy};
use crate::stats::{Bottleneck, ExecutionMode, PhaseStats, QueryExecution};
use eedc_netsim::{Fabric, Flow, FlowSet, NodeId, TransferSimulator};
use eedc_simkit::units::{Joules, Megabytes, MegabytesPerSec, Seconds};
use eedc_simkit::{NodeClass, NodeSpec};
use eedc_storage::{hash_partition, round_robin_partition, scan, Partitioned, Predicate, Table};
use eedc_tpch::gen::{
    custkey_cutoff_for_selectivity, date_cutoff_for_selectivity, LineitemGenerator, OrdersGenerator,
};
use eedc_tpch::ScaleFactor;

/// The hardware composition of a P-store cluster: the per-node specs plus the
/// interconnect fabric derived from their NIC bandwidths.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    nodes: Vec<NodeSpec>,
    fabric: Fabric,
}

impl ClusterSpec {
    /// A cluster of `count` identical nodes.
    pub fn homogeneous(node: NodeSpec, count: usize) -> Result<Self, PStoreError> {
        Self::from_nodes(vec![node; count])
    }

    /// A mixed cluster of `beefy_count` Beefy nodes followed by `wimpy_count`
    /// Wimpy nodes (the `bB,wW` designs of Section 5).
    pub fn heterogeneous(
        beefy: NodeSpec,
        beefy_count: usize,
        wimpy: NodeSpec,
        wimpy_count: usize,
    ) -> Result<Self, PStoreError> {
        let mut nodes = vec![beefy; beefy_count];
        nodes.extend(std::iter::repeat_n(wimpy, wimpy_count));
        Self::from_nodes(nodes)
    }

    /// A cluster from an explicit node list. The fabric gives every node a
    /// full-duplex port at its own NIC bandwidth over an unconstrained
    /// switch.
    pub fn from_nodes(nodes: Vec<NodeSpec>) -> Result<Self, PStoreError> {
        if nodes.is_empty() {
            return Err(PStoreError::planning("a cluster needs at least one node"));
        }
        let mut builder = Fabric::builder(nodes.len());
        for (id, node) in nodes.iter().enumerate() {
            builder = builder.port(id, node.network_bandwidth);
        }
        let fabric = builder.build()?;
        Ok(Self { nodes, fabric })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes (never true for a built spec).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node specs, in cluster node order.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// The interconnect fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Ids of the Beefy nodes.
    pub fn beefy_ids(&self) -> Vec<NodeId> {
        self.ids_of(NodeClass::Beefy)
    }

    /// Ids of the Wimpy nodes.
    pub fn wimpy_ids(&self) -> Vec<NodeId> {
        self.ids_of(NodeClass::Wimpy)
    }

    fn ids_of(&self, class: NodeClass) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.class == class)
            .map(|(id, _)| id)
            .collect()
    }

    /// Human-readable label in the `bB,wW` convention of Section 5: `"2B,2W"`
    /// for a mixed cluster, `"8B,0W"` for all-Beefy, `"0B,8W"` for all-Wimpy.
    ///
    /// Uniform clusters deliberately keep an explicit zero count: the earlier
    /// `"{n}N"` shorthand made an all-Wimpy cluster indistinguishable from an
    /// all-Beefy one of the same size in advisor output and figure legends.
    pub fn label(&self) -> String {
        let beefy = self.beefy_ids().len();
        let wimpy = self.wimpy_ids().len();
        format!("{beefy}B,{wimpy}W")
    }
}

/// Tunables for loading and running a [`PStoreCluster`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Scale factor of the data actually materialised in memory (relational
    /// correctness). Keep this laptop-sized.
    pub engine_scale: ScaleFactor,
    /// Scale factor whose byte volumes drive the time / energy / memory
    /// models (the paper's experiment scale).
    pub nominal_scale: ScaleFactor,
    /// Probe worker threads per node for the hash join. Defaults to the
    /// machine's available parallelism via [`default_worker_threads`]; set an
    /// explicit value (the runtime used to hard-code `2`) to pin it.
    pub threads: usize,
    /// Morsel / radix tunables of the join kernel. Every configuration
    /// produces the same join output; see [`JoinKernelConfig`].
    pub kernel: JoinKernelConfig,
    /// Fraction of node memory reserved for everything that is not the
    /// build-side hash table (buffers, probe working set, OS).
    pub hash_table_headroom: f64,
    /// Hash-table bytes per qualifying build-side byte (table of pointers,
    /// padding, load factor).
    pub hash_table_expansion: f64,
    /// Whether the tables are memory-resident, as in the paper's P-store
    /// experiments (Section 4.2): scans then run at the CPU pipeline rate.
    /// Set to `false` to model disk-resident data gated by the storage
    /// bandwidth.
    pub in_memory: bool,
    /// Optional Zipf skew on the join-key distribution (Section 4.1's
    /// deferred third bottleneck). When set, the nominal-scale volumes that
    /// hash-partitioning routes to each consumer are reweighted by the Zipf
    /// partition weights, so hot nodes receive more bytes, run hotter, and
    /// burn more energy. Engine-scale correctness is unaffected.
    pub skew: Option<JoinSkew>,
    /// Seed for the deterministic data generators.
    pub seed: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            engine_scale: ScaleFactor(0.002),
            nominal_scale: ScaleFactor::SF400,
            threads: default_worker_threads(),
            kernel: JoinKernelConfig::default(),
            hash_table_headroom: 0.2,
            hash_table_expansion: 2.0,
            in_memory: true,
            skew: None,
            seed: 7,
        }
    }
}

impl RunOptions {
    /// Validate the option values.
    fn validate(&self) -> Result<(), PStoreError> {
        for (label, scale) in [
            ("engine", self.engine_scale.value()),
            ("nominal", self.nominal_scale.value()),
        ] {
            if !scale.is_finite() || scale <= 0.0 {
                return Err(PStoreError::planning(format!(
                    "{label} scale must be positive and finite, got {scale}"
                )));
            }
        }
        if !(0.0..1.0).contains(&self.hash_table_headroom) {
            return Err(PStoreError::planning(
                "hash table headroom must be in [0, 1)",
            ));
        }
        if !(self.hash_table_expansion.is_finite() && self.hash_table_expansion >= 1.0) {
            return Err(PStoreError::planning(
                "hash table expansion must be at least 1",
            ));
        }
        if let Some(skew) = &self.skew {
            skew.validate()?;
        }
        self.kernel.validate()?;
        Ok(())
    }
}

/// A loaded cluster: hardware, interconnect, and the LINEITEM / ORDERS data
/// in every physical layout the three join strategies need.
///
/// The *partition-incompatible* layout of the paper's Q3 experiments stores
/// LINEITEM round-robin and ORDERS hash-partitioned on `O_CUSTKEY`, so a join
/// on `ORDERKEY` must shuffle or broadcast. The *partition-compatible* layout
/// co-partitions both tables on the join key (same hash, same node count), so
/// the pre-partitioned baseline runs without any network traffic.
#[derive(Debug, Clone)]
pub struct PStoreCluster {
    spec: ClusterSpec,
    options: RunOptions,
    /// Nominal-scale bytes per engine-scale byte.
    scale_ratio: f64,
    /// Full engine-scale tables, kept for the scalar reference join.
    lineitem: Table,
    orders: Table,
    /// Partition-incompatible layout (shuffle / broadcast strategies).
    probe_incompatible: Partitioned,
    build_incompatible: Partitioned,
    /// Co-partitioned layout (pre-partitioned baseline).
    probe_copartitioned: Partitioned,
    build_copartitioned: Partitioned,
}

impl PStoreCluster {
    /// Generate engine-scale TPC-H data and lay it out across the cluster.
    pub fn load(spec: ClusterSpec, options: RunOptions) -> Result<Self, PStoreError> {
        options.validate()?;
        let lineitem =
            Table::from_lineitem(LineitemGenerator::new(options.engine_scale, options.seed));
        let orders = Table::from_orders(OrdersGenerator::new(options.engine_scale, options.seed));
        if lineitem.is_empty() || orders.is_empty() {
            return Err(PStoreError::planning(
                "engine scale too small: generated tables are empty",
            ));
        }
        let n = spec.len();
        let probe_incompatible = round_robin_partition(&lineitem, n)?;
        let build_incompatible = hash_partition(&orders, "O_CUSTKEY", n)?;
        let probe_copartitioned = hash_partition(&lineitem, "L_ORDERKEY", n)?;
        let build_copartitioned = hash_partition(&orders, "O_ORDERKEY", n)?;
        let scale_ratio = options.nominal_scale.value() / options.engine_scale.value();
        Ok(Self {
            spec,
            options,
            scale_ratio,
            lineitem,
            orders,
            probe_incompatible,
            build_incompatible,
            probe_copartitioned,
            build_copartitioned,
        })
    }

    /// The cluster's hardware spec.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The options the cluster was loaded with.
    pub fn options(&self) -> &RunOptions {
        &self.options
    }

    /// Nominal-scale bytes modeled per engine-scale byte moved.
    pub fn scale_ratio(&self) -> f64 {
        self.scale_ratio
    }

    /// Total build-side (ORDERS) bytes at the nominal scale — the working-set
    /// size the time/energy models see. Derived from the engine-scale table
    /// actually materialised, so an analytical model fed this value predicts
    /// over exactly the volumes the runtime moves.
    pub fn nominal_build_bytes(&self) -> Megabytes {
        self.orders.byte_size() * self.scale_ratio
    }

    /// Total probe-side (LINEITEM) bytes at the nominal scale.
    pub fn nominal_probe_bytes(&self) -> Megabytes {
        self.lineitem.byte_size() * self.scale_ratio
    }

    /// Nominal-scale bytes of the build side that qualify under the query's
    /// predicate. The engine-scale predicate cutoffs quantize the requested
    /// selectivity, so this *realized* volume (not `selectivity ×
    /// total bytes`) is what the runtime actually moves and hashes.
    pub fn nominal_qualifying_build_bytes(
        &self,
        query: &JoinQuerySpec,
    ) -> Result<Megabytes, PStoreError> {
        validate_query(query)?;
        let result = scan(&self.orders, &self.build_predicate(query), None)?;
        Ok(result.output.byte_size() * self.scale_ratio)
    }

    /// Nominal-scale bytes of the probe side that qualify under the query's
    /// predicate.
    pub fn nominal_qualifying_probe_bytes(
        &self,
        query: &JoinQuerySpec,
    ) -> Result<Megabytes, PStoreError> {
        validate_query(query)?;
        let result = scan(&self.lineitem, &self.probe_predicate(query), None)?;
        Ok(result.output.byte_size() * self.scale_ratio)
    }

    fn build_predicate(&self, query: &JoinQuerySpec) -> Predicate {
        Predicate::orders_custkey_at_most(custkey_cutoff_for_selectivity(
            self.options.engine_scale,
            query.build_selectivity,
        ))
    }

    fn probe_predicate(&self, query: &JoinQuerySpec) -> Predicate {
        Predicate::lineitem_shipdate_below(date_cutoff_for_selectivity(query.probe_selectivity))
    }

    /// Join output cardinality of a scalar (single-table, single-node)
    /// reference execution of the query — the ground truth every distributed
    /// strategy must reproduce.
    pub fn reference_join_rows(&self, query: &JoinQuerySpec) -> Result<usize, PStoreError> {
        validate_query(query)?;
        let build = scan(&self.orders, &self.build_predicate(query), None)?;
        let probe = scan(&self.lineitem, &self.probe_predicate(query), None)?;
        let joined = hash_join_with(
            &probe.output,
            "L_ORDERKEY",
            &build.output,
            "O_ORDERKEY",
            self.options.threads,
            self.options.kernel,
        )?;
        Ok(joined.output_rows)
    }

    /// Execute one query under the given strategy.
    pub fn run(
        &self,
        query: &JoinQuerySpec,
        strategy: JoinStrategy,
    ) -> Result<QueryExecution, PStoreError> {
        self.run_batch(query, strategy, 1)
    }

    /// Execute a batch of `concurrency` identical queries that share the
    /// interconnect and the node CPUs (the 1/2/4-query sweeps of Figures 3
    /// and 4). The returned execution describes the whole batch: its
    /// response time is the batch completion time, while `output_rows` stays
    /// per-query.
    pub fn run_batch(
        &self,
        query: &JoinQuerySpec,
        strategy: JoinStrategy,
        concurrency: usize,
    ) -> Result<QueryExecution, PStoreError> {
        validate_query(query)?;
        if concurrency == 0 {
            return Err(PStoreError::planning("concurrency must be at least 1"));
        }
        let n = self.spec.len();
        let batch = concurrency as f64;

        let (build_layout, probe_layout) = match strategy {
            JoinStrategy::DualShuffle | JoinStrategy::Broadcast => {
                (&self.build_incompatible, &self.probe_incompatible)
            }
            JoinStrategy::PrePartitioned => (&self.build_copartitioned, &self.probe_copartitioned),
        };

        // ---- Build phase: scan + filter ORDERS, move it, build hash tables.
        let build_pred = self.build_predicate(query);
        let mut build_scanned = Vec::with_capacity(n);
        let mut filtered_build = Vec::with_capacity(n);
        for fragment in &build_layout.fragments {
            let result = scan(fragment, &build_pred, None)?;
            build_scanned.push(result.bytes_scanned);
            filtered_build.push(result.output);
        }
        let qualifying_build_nominal = Megabytes(
            filtered_build
                .iter()
                .map(|t| t.byte_size().value())
                .sum::<f64>()
                * self.scale_ratio,
        );

        let (mode, destinations) =
            self.select_mode(strategy, qualifying_build_nominal, concurrency)?;
        let hash_factors = self.hash_skew_factors(&destinations);

        let (build_received, build_flows) = match strategy {
            JoinStrategy::DualShuffle => {
                let ex = shuffle_exchange(&filtered_build, "O_ORDERKEY", &destinations, 0)?;
                (ex.received, ex.flows)
            }
            JoinStrategy::Broadcast => {
                let ex = broadcast_exchange(&filtered_build, &destinations, 0)?;
                (ex.received, ex.flows)
            }
            JoinStrategy::PrePartitioned => (filtered_build, FlowSet::new()),
        };

        // Broadcast replicates the whole build side onto every destination,
        // so key skew cannot unbalance it; hash-partitioned movement (shuffle
        // and the co-partitioned layout) routes hot keys to hot nodes.
        let build_skew = match strategy {
            JoinStrategy::DualShuffle | JoinStrategy::PrePartitioned => hash_factors.as_deref(),
            JoinStrategy::Broadcast => None,
        };
        let build_phase = self.phase_stats(
            "build",
            &scale_volumes(&build_scanned, self.scale_ratio * batch),
            &apply_factors(
                &scale_volumes(&table_sizes(&build_received), self.scale_ratio * batch),
                build_skew,
            ),
            &self.batch_flows(&build_flows, concurrency, build_skew),
        )?;

        // ---- Probe phase: scan + filter LINEITEM, move it, probe.
        let probe_pred = self.probe_predicate(query);
        let mut probe_scanned = Vec::with_capacity(n);
        let mut filtered_probe = Vec::with_capacity(n);
        for fragment in &probe_layout.fragments {
            let result = scan(fragment, &probe_pred, None)?;
            probe_scanned.push(result.bytes_scanned);
            filtered_probe.push(result.output);
        }

        let (probe_received, probe_flows) = match (strategy, mode) {
            (JoinStrategy::DualShuffle, _)
            | (JoinStrategy::Broadcast, ExecutionMode::Heterogeneous) => {
                let ex = shuffle_exchange(&filtered_probe, "L_ORDERKEY", &destinations, 0)?;
                (ex.received, ex.flows)
            }
            (JoinStrategy::Broadcast, ExecutionMode::Homogeneous)
            | (JoinStrategy::PrePartitioned, _) => (filtered_probe, FlowSet::new()),
        };

        // The probe side is hash-partitioned in every case except the
        // homogeneous broadcast (which probes the local round-robin layout).
        let probe_skew = match (strategy, mode) {
            (JoinStrategy::Broadcast, ExecutionMode::Homogeneous) => None,
            _ => hash_factors.as_deref(),
        };
        let probe_phase = self.phase_stats(
            "probe",
            &scale_volumes(&probe_scanned, self.scale_ratio * batch),
            &apply_factors(
                &scale_volumes(&table_sizes(&probe_received), self.scale_ratio * batch),
                probe_skew,
            ),
            &self.batch_flows(&probe_flows, concurrency, probe_skew),
        )?;

        // ---- Correctness: actually join on every node that holds data.
        let mut output_rows = 0usize;
        for node in 0..n {
            let probe_table = &probe_received[node];
            let build_table = &build_received[node];
            if probe_table.is_empty() || build_table.is_empty() {
                continue;
            }
            let joined = hash_join_with(
                probe_table,
                "L_ORDERKEY",
                build_table,
                "O_ORDERKEY",
                self.options.threads,
                self.options.kernel,
            )?;
            output_rows += joined.output_rows;
        }

        Ok(QueryExecution {
            cluster_label: self.spec.label(),
            strategy,
            mode,
            concurrency,
            phases: vec![build_phase, probe_phase],
            output_rows,
        })
    }

    /// Pick homogeneous vs heterogeneous execution from the build-side
    /// hash-table footprint, as in Section 5.2: demote Wimpy nodes to
    /// scan-and-filter producers only when the hash table does not fit their
    /// memory.
    fn select_mode(
        &self,
        strategy: JoinStrategy,
        qualifying_build_nominal: Megabytes,
        concurrency: usize,
    ) -> Result<(ExecutionMode, Vec<NodeId>), PStoreError> {
        // Concurrent queries each build their own table.
        let total_ht =
            qualifying_build_nominal * self.options.hash_table_expansion * concurrency as f64;
        select_execution_mode(
            self.spec.nodes(),
            strategy,
            total_ht,
            self.options.hash_table_headroom,
        )
    }

    /// Per-node multipliers on hash-partitioned consumer volumes under the
    /// configured join-key skew: each destination's Zipf partition weight
    /// relative to its uniform share. `None` when the runtime is unskewed;
    /// non-destination nodes keep a factor of 1 (they receive nothing).
    fn hash_skew_factors(&self, destinations: &[NodeId]) -> Option<Vec<f64>> {
        let skew = self.options.skew.filter(|s| !s.is_uniform())?;
        let per_destination = skew.partition_factors(destinations.len());
        let mut factors = vec![1.0; self.spec.len()];
        for (slot, &id) in destinations.iter().enumerate() {
            factors[id] = per_destination[slot];
        }
        Some(factors)
    }

    /// Replicate a per-query engine-scale flow set into `concurrency` groups
    /// of nominal-scale flows, optionally reweighting each flow by its
    /// destination's skew factor. Local flows never touch the network and
    /// are dropped.
    fn batch_flows(
        &self,
        per_query: &FlowSet,
        concurrency: usize,
        skew: Option<&[f64]>,
    ) -> FlowSet {
        let mut set = FlowSet::new();
        for group in 0..concurrency {
            for flow in per_query.flows() {
                if flow.is_local() {
                    continue;
                }
                let factor = skew.map_or(1.0, |f| f[flow.destination]);
                set.push(Flow::with_group(
                    flow.source,
                    flow.destination,
                    flow.bytes * self.scale_ratio * factor,
                    group,
                ));
            }
        }
        set
    }

    /// Model one execution phase: scanning `scanned` bytes per node while
    /// `flows` cross the fabric and `computed` bytes per node flow through
    /// the build/probe CPU path. Scanning, transfer, and compute are
    /// pipelined, so the phase lasts as long as its slowest component; node
    /// utilization follows from the rate each node actually sustained.
    fn phase_stats(
        &self,
        label: &str,
        scanned: &[Megabytes],
        computed: &[Megabytes],
        flows: &FlowSet,
    ) -> Result<PhaseStats, PStoreError> {
        let nodes = self.spec.nodes();
        let network_time = if flows.is_empty() {
            Seconds::zero()
        } else {
            TransferSimulator::new(self.spec.fabric())
                .run(flows)?
                .total_time
        };

        let mut scan_time = Seconds::zero();
        let mut compute_time = Seconds::zero();
        for (id, node) in nodes.iter().enumerate() {
            let scan_rate = if self.options.in_memory {
                node.cpu_bandwidth
            } else {
                node.disk_bandwidth.min(node.cpu_bandwidth)
            };
            scan_time = scan_time.max(scanned[id] / scan_rate);
            compute_time = compute_time.max(computed[id] / node.cpu_bandwidth);
        }

        let duration = network_time.max(scan_time).max(compute_time);
        let bottleneck = if network_time >= scan_time && network_time >= compute_time {
            Bottleneck::Network
        } else if scan_time >= compute_time {
            Bottleneck::Scan
        } else {
            Bottleneck::Compute
        };

        // Per-node port accounting: what each node pushed and received, and
        // how long its port was serializing the busier direction. The phase's
        // `network_time` stays the fabric-level completion time (congestion
        // included); the per-node times bound it from below and give trace
        // exports the per-node fidelity synthesized traces already have.
        let mut node_egress = Vec::with_capacity(nodes.len());
        let mut node_ingress = Vec::with_capacity(nodes.len());
        let mut node_network_time = Vec::with_capacity(nodes.len());
        for (id, node) in nodes.iter().enumerate() {
            let egress = flows.bytes_out_of(id);
            let ingress = flows.bytes_into(id);
            node_egress.push(egress);
            node_ingress.push(ingress);
            node_network_time.push(egress.max(ingress) / node.network_bandwidth);
        }

        let mut energy = Joules::zero();
        let mut node_utilization = Vec::with_capacity(nodes.len());
        let mut node_energy = Vec::with_capacity(nodes.len());
        for (id, node) in nodes.iter().enumerate() {
            let processed = scanned[id] + computed[id];
            let rate = if duration.value() > f64::EPSILON {
                processed / duration
            } else {
                MegabytesPerSec::zero()
            };
            let utilization = node.utilization_at_rate(rate);
            node_utilization.push(utilization);
            let joules = node.power_at(utilization) * duration;
            node_energy.push(joules);
            energy += joules;
        }

        Ok(PhaseStats {
            label: label.into(),
            duration,
            energy,
            bytes_scanned: scanned.iter().copied().sum(),
            bytes_over_network: flows.network_bytes(),
            scan_time,
            network_time,
            compute_time,
            bottleneck,
            node_utilization,
            node_energy,
            node_egress,
            node_ingress,
            node_network_time,
        })
    }
}

/// The Section 5.2 execution-mode selection rule as a pure function over the
/// node specs, shared by the runtime above and by the closed-form analytical
/// model in `eedc-core` (which must select modes exactly as the runtime does
/// for its predictions to be comparable).
///
/// `total_hash_table` is the full build-side hash-table footprint across all
/// concurrent queries (qualifying bytes × expansion × concurrency). The per
/// destination share depends on the strategy: a broadcast replicates the whole
/// table onto every destination, while shuffled or co-partitioned tables split
/// across them. If the table fits every node, execution is homogeneous;
/// otherwise the Wimpy nodes are demoted and the Beefy subset must hold it —
/// for *both* repartitioning strategies, not just broadcast.
pub fn select_execution_mode(
    nodes: &[NodeSpec],
    strategy: JoinStrategy,
    total_hash_table: Megabytes,
    headroom: f64,
) -> Result<(ExecutionMode, Vec<NodeId>), PStoreError> {
    if nodes.is_empty() {
        return Err(PStoreError::planning(
            "mode selection needs at least one node",
        ));
    }
    let all: Vec<NodeId> = (0..nodes.len()).collect();
    let per_destination = |destinations: &[NodeId]| match strategy {
        // Broadcast puts the whole table on every destination.
        JoinStrategy::Broadcast => total_hash_table,
        // Shuffled / co-partitioned tables split across destinations.
        JoinStrategy::DualShuffle | JoinStrategy::PrePartitioned => {
            total_hash_table / destinations.len() as f64
        }
    };
    let fits = |destinations: &[NodeId]| {
        let ht = per_destination(destinations);
        destinations
            .iter()
            .all(|&id| nodes[id].fits_hash_table(ht, headroom))
    };

    if fits(&all) {
        return Ok((ExecutionMode::Homogeneous, all));
    }
    if strategy == JoinStrategy::PrePartitioned {
        return Err(PStoreError::planning(format!(
            "hash table of {:.0} does not fit the cluster and pre-partitioned data cannot be re-routed",
            per_destination(&all)
        )));
    }
    let beefy: Vec<NodeId> = all
        .iter()
        .copied()
        .filter(|&id| nodes[id].is_beefy())
        .collect();
    if !beefy.is_empty() && beefy.len() < nodes.len() && fits(&beefy) {
        return Ok((ExecutionMode::Heterogeneous, beefy));
    }
    let wimpy = nodes.len() - beefy.len();
    Err(PStoreError::planning(format!(
        "build-side hash table ({:.0} total) does not fit any execution mode on a cluster of {} Beefy / {wimpy} Wimpy nodes",
        total_hash_table,
        beefy.len(),
    )))
}

fn validate_query(query: &JoinQuerySpec) -> Result<(), PStoreError> {
    for (label, s) in [
        ("build", query.build_selectivity),
        ("probe", query.probe_selectivity),
    ] {
        if !(s.is_finite() && s > 0.0 && s <= 1.0) {
            return Err(PStoreError::planning(format!(
                "{label} selectivity {s} outside (0, 1]"
            )));
        }
    }
    Ok(())
}

fn table_sizes(tables: &[Table]) -> Vec<Megabytes> {
    tables.iter().map(Table::byte_size).collect()
}

fn scale_volumes(volumes: &[Megabytes], factor: f64) -> Vec<Megabytes> {
    volumes.iter().map(|&v| v * factor).collect()
}

/// Apply per-node skew factors to a volume vector (identity when unskewed).
fn apply_factors(volumes: &[Megabytes], factors: Option<&[f64]>) -> Vec<Megabytes> {
    match factors {
        None => volumes.to_vec(),
        Some(f) => volumes.iter().zip(f).map(|(&v, &x)| v * x).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eedc_simkit::catalog::{cluster_v_node, laptop_b};
    use eedc_simkit::units::Watts;

    fn uniform_cluster(n: usize) -> PStoreCluster {
        let spec = ClusterSpec::homogeneous(cluster_v_node(), n).unwrap();
        PStoreCluster::load(spec, RunOptions::default()).unwrap()
    }

    #[test]
    fn cluster_spec_labels_follow_paper_convention() {
        let uniform = ClusterSpec::homogeneous(cluster_v_node(), 8).unwrap();
        assert_eq!(uniform.label(), "8B,0W");
        assert_eq!(uniform.len(), 8);
        let mixed = ClusterSpec::heterogeneous(cluster_v_node(), 2, laptop_b(), 6).unwrap();
        assert_eq!(mixed.label(), "2B,6W");
        assert_eq!(mixed.beefy_ids(), vec![0, 1]);
        assert_eq!(mixed.wimpy_ids(), vec![2, 3, 4, 5, 6, 7]);
        assert!(ClusterSpec::from_nodes(Vec::new()).is_err());
    }

    #[test]
    fn uniform_labels_distinguish_the_design_families() {
        // The regression this guards: all-Wimpy used to be labeled "{n}N",
        // exactly like all-Beefy, so a 4-laptop cluster and a 4-server
        // cluster were indistinguishable in advisor output and figures.
        let all_beefy = ClusterSpec::homogeneous(cluster_v_node(), 4).unwrap();
        let all_wimpy = ClusterSpec::homogeneous(laptop_b(), 4).unwrap();
        assert_eq!(all_beefy.label(), "4B,0W");
        assert_eq!(all_wimpy.label(), "0B,4W");
        assert_ne!(all_beefy.label(), all_wimpy.label());
    }

    #[test]
    fn shuffle_join_moves_data_consumes_energy_and_matches_reference() {
        // The acceptance experiment: a dual-shuffle join on four nodes must
        // report nonzero network transfer time and nonzero joules in both
        // phases, and its distributed output cardinality must equal the
        // scalar reference join.
        let cluster = uniform_cluster(4);
        let query = JoinQuerySpec::q3_dual_shuffle();
        let execution = cluster.run(&query, JoinStrategy::DualShuffle).unwrap();

        assert_eq!(execution.phases.len(), 2);
        for phase in &execution.phases {
            assert!(
                phase.network_time.value() > 0.0,
                "{} phase network time is zero",
                phase.label
            );
            assert!(
                phase.energy.value() > 0.0,
                "{} phase energy is zero",
                phase.label
            );
            assert!(phase.bytes_over_network.value() > 0.0);
            assert_eq!(phase.node_utilization.len(), 4);
            // The paper's central observation: with memory-resident data the
            // repartitioning join is gated by the interconnect.
            assert_eq!(phase.bottleneck, Bottleneck::Network);
        }
        let reference = cluster.reference_join_rows(&query).unwrap();
        assert!(reference > 0);
        assert_eq!(execution.output_rows, reference);
        assert_eq!(execution.mode, ExecutionMode::Homogeneous);
        assert_eq!(execution.cluster_label, "4B,0W");
        assert!(execution.response_time().value() > 0.0);
    }

    #[test]
    fn prepartitioned_join_never_touches_the_network() {
        let cluster = uniform_cluster(4);
        let query = JoinQuerySpec::q3_dual_shuffle();
        let execution = cluster.run(&query, JoinStrategy::PrePartitioned).unwrap();
        assert_eq!(execution.bytes_over_network(), Megabytes::zero());
        for phase in &execution.phases {
            assert_eq!(phase.network_time, Seconds::zero());
            assert!(phase.energy.value() > 0.0);
        }
        assert_eq!(
            execution.output_rows,
            cluster.reference_join_rows(&query).unwrap()
        );
    }

    #[test]
    fn all_strategies_agree_on_cardinality() {
        let cluster = uniform_cluster(3);
        let query = JoinQuerySpec::new(0.10, 0.05);
        let reference = cluster.reference_join_rows(&query).unwrap();
        for strategy in JoinStrategy::ALL {
            let execution = cluster.run(&query, strategy).unwrap();
            assert_eq!(execution.output_rows, reference, "strategy {strategy}");
        }
    }

    #[test]
    fn oversized_hash_table_demotes_wimpy_nodes() {
        // At SF-1000, a 50%-selectivity broadcast build side is a ~30 GB hash
        // table: it fits the 48 GB Beefy nodes (with 20% headroom) but not
        // the 8 GB Wimpy laptops, so execution must go heterogeneous.
        let spec = ClusterSpec::heterogeneous(cluster_v_node(), 2, laptop_b(), 2).unwrap();
        let options = RunOptions {
            nominal_scale: ScaleFactor::SF1000,
            ..RunOptions::default()
        };
        let cluster = PStoreCluster::load(spec, options).unwrap();
        let query = JoinQuerySpec::new(0.5, 0.05);
        let execution = cluster.run(&query, JoinStrategy::Broadcast).unwrap();
        assert_eq!(execution.mode, ExecutionMode::Heterogeneous);
        // Wimpy nodes still scanned, so the probe phase shuffles their
        // qualifying tuples to the Beefy nodes.
        let probe = execution.phase("probe").unwrap();
        assert!(probe.network_time.value() > 0.0);
        assert_eq!(
            execution.output_rows,
            cluster.reference_join_rows(&query).unwrap()
        );
        // The same query at the default small nominal scale is homogeneous.
        let small = uniform_cluster(4)
            .run(&query, JoinStrategy::Broadcast)
            .unwrap();
        assert_eq!(small.mode, ExecutionMode::Homogeneous);
    }

    #[test]
    fn oversized_hash_table_demotes_wimpy_nodes_under_dual_shuffle() {
        // The demotion rule is not broadcast-specific. Under DualShuffle the
        // hash table splits across the destinations, so on 2 Beefy + 2 Wimpy
        // nodes a ~30 GB table is ~7.5 GB per node — over the 8 GB Wimpy
        // laptops' usable memory (20% headroom → 6.4 GB) but fine for the two
        // 48 GB Beefy nodes at ~15 GB each. The Wimpy nodes must be demoted
        // to scan-and-filter producers and the join must still be exact.
        let spec = ClusterSpec::heterogeneous(cluster_v_node(), 2, laptop_b(), 2).unwrap();
        let options = RunOptions {
            nominal_scale: ScaleFactor::SF1000,
            ..RunOptions::default()
        };
        let cluster = PStoreCluster::load(spec, options).unwrap();
        let query = JoinQuerySpec::new(0.5, 0.05);
        let execution = cluster.run(&query, JoinStrategy::DualShuffle).unwrap();
        assert_eq!(execution.mode, ExecutionMode::Heterogeneous);
        // Both phases shuffle into the Beefy subset only, so both cross the
        // network.
        for phase in &execution.phases {
            assert!(
                phase.network_time.value() > 0.0,
                "{} phase network time is zero",
                phase.label
            );
        }
        assert_eq!(
            execution.output_rows,
            cluster.reference_join_rows(&query).unwrap()
        );
        // The same cluster under the same query stays heterogeneous for
        // broadcast too (the existing demotion path), and the two modes agree
        // on cardinality.
        let broadcast = cluster.run(&query, JoinStrategy::Broadcast).unwrap();
        assert_eq!(broadcast.mode, ExecutionMode::Heterogeneous);
        assert_eq!(broadcast.output_rows, execution.output_rows);
    }

    #[test]
    fn impossible_hash_tables_are_planning_errors() {
        // An all-Wimpy cluster cannot hold a 30 GB broadcast hash table in
        // any mode.
        let spec = ClusterSpec::homogeneous(laptop_b(), 4).unwrap();
        let options = RunOptions {
            nominal_scale: ScaleFactor::SF1000,
            ..RunOptions::default()
        };
        let cluster = PStoreCluster::load(spec, options).unwrap();
        let query = JoinQuerySpec::new(0.5, 0.05);
        let err = cluster.run(&query, JoinStrategy::Broadcast).unwrap_err();
        assert!(err.to_string().contains("does not fit"), "{err}");
    }

    #[test]
    fn invalid_queries_and_options_are_rejected() {
        let cluster = uniform_cluster(2);
        assert!(cluster
            .run(&JoinQuerySpec::new(0.0, 0.5), JoinStrategy::DualShuffle)
            .is_err());
        assert!(cluster
            .run(&JoinQuerySpec::new(0.5, 1.5), JoinStrategy::DualShuffle)
            .is_err());
        assert!(cluster
            .run_batch(
                &JoinQuerySpec::q3_dual_shuffle(),
                JoinStrategy::DualShuffle,
                0
            )
            .is_err());

        let spec = ClusterSpec::homogeneous(cluster_v_node(), 2).unwrap();
        let bad = RunOptions {
            engine_scale: ScaleFactor(0.0),
            ..RunOptions::default()
        };
        assert!(PStoreCluster::load(spec.clone(), bad).is_err());
        let bad = RunOptions {
            hash_table_headroom: 1.5,
            ..RunOptions::default()
        };
        assert!(PStoreCluster::load(spec.clone(), bad).is_err());
        let bad = RunOptions {
            hash_table_expansion: 0.5,
            ..RunOptions::default()
        };
        assert!(PStoreCluster::load(spec, bad).is_err());
    }

    #[test]
    fn skewed_keys_unbalance_the_hottest_node() {
        // Section 4.1's deferred third bottleneck: a Zipf-skewed join key
        // routes a disproportionate share of the shuffled bytes to the node
        // owning the hot partition. The skewed run must dominate the uniform
        // run on the hottest node — higher peak utilization and a higher
        // utilization spread — while the engine-scale join stays exact.
        let spec = ClusterSpec::homogeneous(cluster_v_node(), 4).unwrap();
        let uniform = PStoreCluster::load(spec.clone(), RunOptions::default()).unwrap();
        // A tight key domain under heavy skew: the hot partition receives
        // roughly double its uniform share.
        let skew = JoinSkew {
            theta: 1.5,
            key_domain: 1_000,
            seed: 7,
        };
        let skewed = PStoreCluster::load(
            spec,
            RunOptions {
                skew: Some(skew),
                ..RunOptions::default()
            },
        )
        .unwrap();
        // Wide 50% predicates so the hash-partitioned (shuffled) volumes are
        // comparable to the scanned volumes — with Q3's 5% predicates the
        // qualifying bytes are a rounding error next to the scans and the
        // imbalance would be invisible in utilization.
        let query = JoinQuerySpec::new(0.5, 0.5);

        let u = uniform.run(&query, JoinStrategy::DualShuffle).unwrap();
        let s = skewed.run(&query, JoinStrategy::DualShuffle).unwrap();

        for (up, sp) in u.phases.iter().zip(&s.phases) {
            // The hottest node burns strictly more energy under skew: it
            // receives a disproportionate share of the shuffled bytes and the
            // whole (stretched) phase runs at its pace.
            let hot_energy = |p: &PhaseStats| {
                p.node_energy
                    .iter()
                    .map(|e| e.value())
                    .fold(0.0_f64, f64::max)
            };
            assert!(
                hot_energy(sp) > hot_energy(up),
                "{}: skewed hottest-node energy {:.1} does not dominate uniform {:.1}",
                sp.label,
                hot_energy(sp),
                hot_energy(up),
            );
            // Per-node energies always sum to the phase energy.
            let total: f64 = sp.node_energy.iter().map(|e| e.value()).sum();
            assert!((total - sp.energy.value()).abs() < 1e-6 * sp.energy.value().max(1.0));
        }
        // The imbalance also shows in utilization where hash-partitioned
        // volume carries real weight (the probe phase moves 4x the build
        // bytes): the hottest node's share of total utilization exceeds the
        // uniform run's ~1/4.
        let hot_share =
            |xs: &[f64]| xs.iter().copied().fold(0.0_f64, f64::max) / xs.iter().sum::<f64>();
        let u_probe = u.phase("probe").unwrap();
        let s_probe = s.phase("probe").unwrap();
        assert!(
            hot_share(&s_probe.node_utilization) > hot_share(&u_probe.node_utilization) + 0.01,
            "probe: skewed hot share {:.3} vs uniform {:.3}",
            hot_share(&s_probe.node_utilization),
            hot_share(&u_probe.node_utilization),
        );
        // The hot port also stretches the network-bound response time.
        assert!(s.response_time() > u.response_time());
        // Correctness is untouched: skew reweights modeled volumes only.
        assert_eq!(s.output_rows, u.output_rows);
        assert_eq!(s.output_rows, uniform.reference_join_rows(&query).unwrap());

        // theta = 0 must behave exactly like the unskewed default.
        let zero = PStoreCluster::load(
            ClusterSpec::homogeneous(cluster_v_node(), 4).unwrap(),
            RunOptions {
                skew: Some(JoinSkew::zipf(0.0)),
                ..RunOptions::default()
            },
        )
        .unwrap();
        let z = zero.run(&query, JoinStrategy::DualShuffle).unwrap();
        assert_eq!(z.measurement(), u.measurement());

        // Invalid skew parameters are planning errors.
        let bad = RunOptions {
            skew: Some(JoinSkew {
                theta: f64::NAN,
                ..JoinSkew::zipf(1.0)
            }),
            ..RunOptions::default()
        };
        let spec = ClusterSpec::homogeneous(cluster_v_node(), 2).unwrap();
        assert!(PStoreCluster::load(spec, bad).is_err());
    }

    #[test]
    fn broadcast_build_side_is_immune_to_skew() {
        // A replicated build table puts the same bytes on every destination
        // no matter how the keys are distributed; only the (shuffled) probe
        // side of a heterogeneous broadcast can skew.
        let spec = ClusterSpec::homogeneous(cluster_v_node(), 4).unwrap();
        let uniform = PStoreCluster::load(spec.clone(), RunOptions::default()).unwrap();
        let skewed = PStoreCluster::load(
            spec,
            RunOptions {
                skew: Some(JoinSkew::zipf(1.2)),
                ..RunOptions::default()
            },
        )
        .unwrap();
        let query = JoinQuerySpec::q3_broadcast();
        let u = uniform.run(&query, JoinStrategy::Broadcast).unwrap();
        let s = skewed.run(&query, JoinStrategy::Broadcast).unwrap();
        // Homogeneous broadcast: build replicated, probe local — identical.
        assert_eq!(u.mode, ExecutionMode::Homogeneous);
        assert_eq!(s.measurement(), u.measurement());
    }

    #[test]
    fn average_power_stays_within_the_node_envelope() {
        let cluster = uniform_cluster(4);
        let execution = cluster
            .run(&JoinQuerySpec::q3_dual_shuffle(), JoinStrategy::DualShuffle)
            .unwrap();
        let node = cluster_v_node();
        let peak_cluster: Watts = node.peak_power() * 4.0;
        for phase in &execution.phases {
            let power = phase.average_power();
            assert!(power.value() > 0.0);
            assert!(power.value() <= peak_cluster.value() + 1e-9);
        }
    }
}
