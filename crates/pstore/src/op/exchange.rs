//! The network exchange operator.
//!
//! The exchange operator is P-store's "workhorse" (Section 4.3): it moves
//! qualifying tuples between nodes, either *shuffling* them by a hash of the
//! join key or *broadcasting* them to every participant. This module performs
//! the real data movement (so downstream joins operate on exactly the rows
//! they would in a distributed run) and simultaneously emits the
//! [`FlowSet`] describing the bytes that crossed the network, which the
//! cluster runtime feeds to the flow-level simulator to obtain transfer
//! times.

use crate::error::PStoreError;
use eedc_netsim::{Flow, FlowSet, NodeId};
use eedc_storage::{hash_of_value, Table};

/// Output of an exchange: what every node received, and the flows that moved.
#[derive(Debug, Clone)]
pub struct ExchangeOutput {
    /// One received table per cluster node (nodes that are not destinations
    /// receive an empty table).
    pub received: Vec<Table>,
    /// The flows describing the data movement, including local (same-node)
    /// flows for exact byte accounting.
    pub flows: FlowSet,
}

impl ExchangeOutput {
    /// Total rows received across all nodes.
    pub fn total_received_rows(&self) -> usize {
        self.received.iter().map(Table::row_count).sum()
    }
}

fn empty_like(template: &Table, node: usize, label: &str) -> Table {
    Table::with_capacity(
        format!("{}_{label}_node{node}", template.name()),
        template.schema().clone(),
        0,
    )
}

/// Hash-shuffle the per-node `inputs` on integer key column `key` across
/// `destinations`. `inputs` must hold one (possibly empty) table per cluster
/// node, all with identical schemas.
pub fn shuffle_exchange(
    inputs: &[Table],
    key: &str,
    destinations: &[NodeId],
    group: usize,
) -> Result<ExchangeOutput, PStoreError> {
    if destinations.is_empty() {
        return Err(PStoreError::planning(
            "shuffle needs at least one destination node",
        ));
    }
    let nodes = inputs.len();
    for &d in destinations {
        if d >= nodes {
            return Err(PStoreError::planning(format!(
                "destination node {d} outside cluster of {nodes} nodes"
            )));
        }
    }
    let template = inputs
        .first()
        .ok_or_else(|| PStoreError::planning("shuffle needs at least one input fragment"))?;
    let mut received: Vec<Table> = (0..nodes)
        .map(|n| empty_like(template, n, "shuffle"))
        .collect();
    let mut flows = FlowSet::new();

    for (source, input) in inputs.iter().enumerate() {
        let key_col = input.column_by_name(key)?;
        // Scatter: one pass computes each row's destination slot, then every
        // outgoing fragment is materialised with a per-column gather.
        let mut indices: Vec<Vec<u32>> = vec![Vec::new(); destinations.len()];
        for row in 0..input.row_count() {
            let value = key_col
                .get(row)
                .ok_or_else(|| PStoreError::planning("row index out of bounds during shuffle"))?;
            let slot = (hash_of_value(&value) % destinations.len() as u64) as usize;
            indices[slot].push(row as u32);
        }
        for (slot, rows) in indices.iter().enumerate() {
            let destination = destinations[slot];
            let fragment = input.gather_rows(
                format!("{}_shuffle_frag_node{destination}", input.name()),
                rows,
            );
            flows.push(Flow::with_group(
                source,
                destination,
                fragment.byte_size(),
                group,
            ));
            received[destination].append_table(&fragment)?;
        }
    }

    Ok(ExchangeOutput { received, flows })
}

/// Broadcast the per-node `inputs` to every destination: each destination
/// receives the concatenation of every node's input.
pub fn broadcast_exchange(
    inputs: &[Table],
    destinations: &[NodeId],
    group: usize,
) -> Result<ExchangeOutput, PStoreError> {
    if destinations.is_empty() {
        return Err(PStoreError::planning(
            "broadcast needs at least one destination node",
        ));
    }
    let nodes = inputs.len();
    for &d in destinations {
        if d >= nodes {
            return Err(PStoreError::planning(format!(
                "destination node {d} outside cluster of {nodes} nodes"
            )));
        }
    }
    let template = inputs
        .first()
        .ok_or_else(|| PStoreError::planning("broadcast needs at least one input fragment"))?;
    let mut received: Vec<Table> = (0..nodes)
        .map(|n| empty_like(template, n, "broadcast"))
        .collect();
    let mut flows = FlowSet::new();

    for (source, input) in inputs.iter().enumerate() {
        for &destination in destinations {
            flows.push(Flow::with_group(
                source,
                destination,
                input.byte_size(),
                group,
            ));
            received[destination].append_table(input)?;
        }
    }

    Ok(ExchangeOutput { received, flows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eedc_storage::{hash_partition, PartitionSpec};
    use eedc_tpch::gen::OrdersGenerator;
    use eedc_tpch::scale::ScaleFactor;

    const SCALE: ScaleFactor = ScaleFactor(0.002);

    /// ORDERS hash-partitioned on O_CUSTKEY across 4 nodes — the
    /// partition-incompatible layout of the paper's Q3 experiments.
    fn orders_fragments() -> Vec<Table> {
        let orders = Table::from_orders(OrdersGenerator::new(SCALE, 1));
        hash_partition(&orders, "O_CUSTKEY", 4).unwrap().fragments
    }

    #[test]
    fn shuffle_preserves_every_row_exactly_once() {
        let fragments = orders_fragments();
        let total: usize = fragments.iter().map(Table::row_count).sum();
        let exchanged = shuffle_exchange(&fragments, "O_ORDERKEY", &[0, 1, 2, 3], 0).unwrap();
        assert_eq!(exchanged.total_received_rows(), total);
        // Rows with the same key land on the same node: every row received
        // by node `d` must hash to destination `d`.
        for (node, node_table) in exchanged.received.iter().enumerate() {
            let keys = node_table.column_by_name("O_ORDERKEY").unwrap();
            for i in 0..node_table.row_count() {
                let key = keys.get(i).unwrap();
                let expected = (hash_of_value(&key) % 4) as usize;
                assert_eq!(expected, node);
            }
        }
    }

    #[test]
    fn shuffle_to_subset_only_populates_destinations() {
        // Heterogeneous execution: only the two Beefy nodes (0, 1) build hash
        // tables; Wimpy nodes end up with empty received tables.
        let fragments = orders_fragments();
        let total: usize = fragments.iter().map(Table::row_count).sum();
        let exchanged = shuffle_exchange(&fragments, "O_ORDERKEY", &[0, 1], 0).unwrap();
        assert_eq!(exchanged.total_received_rows(), total);
        assert!(exchanged.received[2].is_empty());
        assert!(exchanged.received[3].is_empty());
        assert!(!exchanged.received[0].is_empty());
        assert!(!exchanged.received[1].is_empty());
    }

    #[test]
    fn shuffle_flow_bytes_match_moved_data() {
        let fragments = orders_fragments();
        let total_bytes: f64 = fragments.iter().map(|t| t.byte_size().value()).sum();
        let exchanged = shuffle_exchange(&fragments, "O_ORDERKEY", &[0, 1, 2, 3], 0).unwrap();
        let flow_bytes = exchanged.flows.total_bytes().value();
        assert!((flow_bytes - total_bytes).abs() / total_bytes < 1e-9);
        // Roughly (N-1)/N of the data crosses the network.
        let network_fraction = exchanged.flows.network_bytes().value() / total_bytes;
        assert!((network_fraction - 0.75).abs() < 0.05, "{network_fraction}");
    }

    #[test]
    fn broadcast_replicates_everything_to_every_destination() {
        let fragments = orders_fragments();
        let total: usize = fragments.iter().map(Table::row_count).sum();
        let exchanged = broadcast_exchange(&fragments, &[0, 1, 2, 3], 0).unwrap();
        for node in 0..4 {
            assert_eq!(exchanged.received[node].row_count(), total);
        }
        // Each destination receives (N-1)/N of the data over the network; its
        // own fragment is local.
        let total_bytes: f64 = fragments.iter().map(|t| t.byte_size().value()).sum();
        let network = exchanged.flows.network_bytes().value();
        assert!((network - 3.0 * total_bytes).abs() / total_bytes < 1e-9);
    }

    #[test]
    fn exchange_rejects_bad_arguments() {
        let fragments = orders_fragments();
        assert!(shuffle_exchange(&fragments, "O_ORDERKEY", &[], 0).is_err());
        assert!(shuffle_exchange(&fragments, "O_ORDERKEY", &[9], 0).is_err());
        assert!(shuffle_exchange(&fragments, "O_NOPE", &[0], 0).is_err());
        assert!(broadcast_exchange(&fragments, &[], 0).is_err());
        assert!(broadcast_exchange(&fragments, &[7], 0).is_err());
        let empty: Vec<Table> = Vec::new();
        assert!(shuffle_exchange(&empty, "X", &[0], 0).is_err());
        assert!(broadcast_exchange(&empty, &[0], 0).is_err());
    }

    #[test]
    fn shuffle_after_partitioning_matches_direct_partitioning() {
        // Shuffling fragments partitioned on the "wrong" key yields the same
        // global multiset of rows per destination as hash-partitioning the
        // original table on the join key directly (up to row order).
        let orders = Table::from_orders(OrdersGenerator::new(SCALE, 2));
        let wrong = hash_partition(&orders, "O_CUSTKEY", 3).unwrap();
        let exchanged = shuffle_exchange(&wrong.fragments, "O_ORDERKEY", &[0, 1, 2], 0).unwrap();
        let direct = hash_partition(&orders, "O_ORDERKEY", 3).unwrap();
        assert_eq!(direct.spec, PartitionSpec::hash("O_ORDERKEY"));
        // Row counts per node won't be identical (different modulus bases),
        // but totals must agree and every row must be present exactly once.
        assert_eq!(exchanged.total_received_rows(), direct.total_rows());
    }
}
