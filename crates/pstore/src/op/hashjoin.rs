//! The morsel-driven in-memory hash join operator.
//!
//! This is the paper's workhorse compute operator: "our hash join code is
//! cache-conscious and multi-threaded" (Section 5.1). The kernel runs in
//! three stages:
//!
//! 1. **Partitioned radix build** — build-side keys are hashed once, rows are
//!    radix-partitioned on the low hash bits (counting sort, no per-key
//!    allocations), and workers steal partitions to build private
//!    open-addressing [`RadixTable`]s over `(key, row)` pairs.
//! 2. **Morsel-stealing probe** — probe rows are consumed in fixed-size
//!    *morsels* claimed from a shared atomic [`MorselCursor`], so fast
//!    workers steal work from slow ones instead of idling at a static chunk
//!    boundary.
//! 3. **Columnar batch materialization** — each worker accumulates matching
//!    `(probe_row, build_row)` index pairs per morsel and flushes them with a
//!    per-column gather into a reusable [`BatchBuilder`]; no row-at-a-time
//!    `Value` boxing anywhere on the hot path.
//!
//! Worker fragments are concatenated column-wise at the end — operators never
//! materialise intermediate tuples beyond their own output.

use crate::error::PStoreError;
use crate::op::kernel::{JoinKernelConfig, KeySlice, MorselCursor, RadixTable};
use eedc_storage::{hash_i64, BatchBuilder, Schema, Table};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Output of a hash join.
#[derive(Debug, Clone, PartialEq)]
pub struct HashJoinOutput {
    /// The joined rows: probe columns followed by build columns.
    pub output: Table,
    /// Number of rows in the build-side hash table.
    pub build_rows: usize,
    /// Number of probe-side rows scanned.
    pub probe_rows: usize,
    /// Number of output (matching) rows.
    pub output_rows: usize,
    /// Morsels retired by each probe worker, in worker order. With the
    /// first-claim scheme every worker retires at least one morsel whenever
    /// there are at least as many morsels as workers.
    pub morsels_per_worker: Vec<usize>,
}

/// The output-table name of a join, with bounded growth under chaining.
///
/// A naive `{probe}_join_{build}` doubles in length on every chained join
/// (the previous output becomes the next probe). Instead, a probe name that
/// is itself a join output is compacted to its original base plus a depth
/// counter: `LINEITEM_join_ORDERS` joined with `CUSTOMER` becomes
/// `LINEITEM_join2_CUSTOMER`, then `LINEITEM_join3_…`, and the result is
/// capped at 64 bytes.
fn join_output_name(probe: &str, build: &str) -> String {
    const MAX_LEN: usize = 64;
    let (base, depth) = match probe.find("_join") {
        Some(i) => {
            let digits: String = probe[i + 5..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            (&probe[..i], digits.parse::<u64>().unwrap_or(1))
        }
        None => (probe, 0),
    };
    let mut name = if depth == 0 {
        format!("{base}_join_{build}")
    } else {
        format!("{base}_join{}_{build}", depth + 1)
    };
    if name.len() > MAX_LEN {
        let mut cut = MAX_LEN;
        while !name.is_char_boundary(cut) {
            cut -= 1;
        }
        name.truncate(cut);
    }
    name
}

/// Join `probe` against `build` on integer key columns `probe_key` /
/// `build_key` with the default [`JoinKernelConfig`], producing probe columns
/// followed by build columns.
///
/// `threads` controls the number of probe workers; values of 0 or 1 run the
/// probe on the calling thread. The output row order depends on the thread
/// count and morsel schedule (fragments are concatenated in worker order),
/// but the output row *set* does not.
pub fn hash_join(
    probe: &Table,
    probe_key: &str,
    build: &Table,
    build_key: &str,
    threads: usize,
) -> Result<HashJoinOutput, PStoreError> {
    hash_join_with(
        probe,
        probe_key,
        build,
        build_key,
        threads,
        JoinKernelConfig::default(),
    )
}

/// [`hash_join`] with explicit kernel tunables (morsel size, radix bits).
/// Every configuration produces the same output row multiset; the tunables
/// trade cache locality against scheduling overhead.
pub fn hash_join_with(
    probe: &Table,
    probe_key: &str,
    build: &Table,
    build_key: &str,
    threads: usize,
    config: JoinKernelConfig,
) -> Result<HashJoinOutput, PStoreError> {
    config.validate()?;
    // Resolve both key columns to typed slices up front: unknown columns and
    // non-integer key types are rejected before any work runs.
    let build_keys = KeySlice::try_from_column(build.column_by_name(build_key)?)?;
    let probe_keys = KeySlice::try_from_column(probe.column_by_name(probe_key)?)?;

    let workers = threads.max(1);
    let partitions = config.partitions();
    let partition_mask = (partitions - 1) as u64;

    // ---- Stage 1: partitioned radix build -------------------------------
    let build_rows = build_keys.len();
    let mut hashes = vec![0u64; build_rows];
    let hash_range = |hashes: &mut [u64], start: usize| {
        for (i, hash) in hashes.iter_mut().enumerate() {
            *hash = hash_i64(build_keys.get(start + i));
        }
    };
    let hash_chunk = build_rows.div_ceil(workers).max(1);
    if workers <= 1 || build_rows <= hash_chunk {
        hash_range(&mut hashes, 0);
    } else {
        std::thread::scope(|scope| {
            for (index, chunk) in hashes.chunks_mut(hash_chunk).enumerate() {
                let hash_range = &hash_range;
                scope.spawn(move || hash_range(chunk, index * hash_chunk));
            }
        });
    }

    // Counting sort by partition id (the low radix bits of the hash): one
    // flat `ordered_rows` array replaces any per-partition or per-key Vecs.
    let mut offsets = vec![0usize; partitions + 1];
    for &hash in &hashes {
        offsets[(hash & partition_mask) as usize + 1] += 1;
    }
    for p in 0..partitions {
        offsets[p + 1] += offsets[p];
    }
    let mut cursors: Vec<usize> = offsets[..partitions].to_vec();
    let mut ordered_rows = vec![0u32; build_rows];
    let mut ordered_hashes = vec![0u64; build_rows];
    for (row, &hash) in hashes.iter().enumerate() {
        let p = (hash & partition_mask) as usize;
        ordered_rows[cursors[p]] = row as u32;
        ordered_hashes[cursors[p]] = hash;
        cursors[p] += 1;
    }
    drop(hashes);

    // Workers steal whole partitions and build private open-addressing
    // tables; nothing is shared mutably, so no locks anywhere.
    let build_partition = |p: usize| {
        let range = offsets[p]..offsets[p + 1];
        let mut table = RadixTable::with_capacity(range.len(), config.radix_bits);
        for i in range {
            let row = ordered_rows[i];
            table.insert(build_keys.get(row as usize), row, ordered_hashes[i]);
        }
        table
    };
    let build_workers = workers.min(partitions);
    let tables: Vec<RadixTable> = if build_workers <= 1 {
        (0..partitions).map(build_partition).collect()
    } else {
        let next = AtomicUsize::new(build_workers);
        let mut slots: Vec<Option<RadixTable>> = (0..partitions).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..build_workers)
                .map(|w| {
                    let build_partition = &build_partition;
                    let next = &next;
                    scope.spawn(move || {
                        let mut built = vec![(w, build_partition(w))];
                        loop {
                            let p = next.fetch_add(1, Ordering::Relaxed);
                            if p >= partitions {
                                break;
                            }
                            built.push((p, build_partition(p)));
                        }
                        built
                    })
                })
                .collect();
            for handle in handles {
                for (p, table) in handle.join().expect("build worker must not panic") {
                    slots[p] = Some(table);
                }
            }
        });
        slots
            .into_iter()
            .map(|t| t.expect("every partition was built"))
            .collect()
    };

    // ---- Stages 2 + 3: morsel-stealing probe, columnar materialization --
    let output_schema = Schema::new(
        probe
            .schema()
            .columns()
            .iter()
            .chain(build.schema().columns())
            .map(|(name, ty)| (name.clone(), *ty)),
    );
    let probe_rows = probe_keys.len();
    let probe_width = probe.schema().len();
    let cursor = MorselCursor::new(probe_rows, config.morsel_rows, workers);
    let tables = &tables;

    let probe_worker = |worker: usize| -> Result<(Table, usize), PStoreError> {
        let mut batch = BatchBuilder::new(output_schema.clone());
        let mut probe_idx: Vec<u32> = Vec::new();
        let mut build_idx: Vec<u32> = Vec::new();
        let mut retired = 0usize;
        // First-claim morsel, then steal from the shared cursor until drained.
        let mut morsel = (worker < cursor.morsels()).then_some(worker);
        while let Some(m) = morsel {
            for row in cursor.range_of(m) {
                let key = probe_keys.get(row);
                let hash = hash_i64(key);
                let matched =
                    tables[(hash & partition_mask) as usize].probe_into(key, hash, &mut build_idx);
                probe_idx.extend(std::iter::repeat_n(row as u32, matched));
            }
            if !probe_idx.is_empty() {
                batch.gather_table(probe, &probe_idx, 0)?;
                batch.gather_table(build, &build_idx, probe_width)?;
                probe_idx.clear();
                build_idx.clear();
            }
            retired += 1;
            morsel = cursor.claim();
        }
        Ok((batch.finish("join_fragment")?, retired))
    };

    let results: Vec<(Table, usize)> = if workers <= 1 {
        vec![probe_worker(0)?]
    } else {
        let mut slots: Vec<Option<Result<(Table, usize), PStoreError>>> =
            (0..workers).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let probe_worker = &probe_worker;
                    scope.spawn(move || probe_worker(w))
                })
                .collect();
            for (slot, handle) in slots.iter_mut().zip(handles) {
                *slot = Some(handle.join().expect("probe worker must not panic"));
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every worker produced a result"))
            .collect::<Result<Vec<_>, _>>()?
    };

    let mut output = Table::with_capacity(
        join_output_name(probe.name(), build.name()),
        output_schema,
        results
            .iter()
            .map(|(fragment, _)| fragment.row_count())
            .sum(),
    );
    let mut morsels_per_worker = Vec::with_capacity(results.len());
    for (fragment, retired) in &results {
        output.append_table(fragment)?;
        morsels_per_worker.push(*retired);
    }

    Ok(HashJoinOutput {
        build_rows,
        probe_rows,
        output_rows: output.row_count(),
        output,
        morsels_per_worker,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eedc_storage::{ColumnType, Predicate, Value};
    use eedc_tpch::gen::{LineitemGenerator, OrdersGenerator};
    use eedc_tpch::scale::ScaleFactor;

    const SCALE: ScaleFactor = ScaleFactor(0.002);

    fn lineitem() -> Table {
        Table::from_lineitem(LineitemGenerator::new(SCALE, 1))
    }

    fn orders() -> Table {
        Table::from_orders(OrdersGenerator::new(SCALE, 1))
    }

    #[test]
    fn every_lineitem_row_finds_its_order() {
        // LINEITEM.L_ORDERKEY is a foreign key into ORDERS, so an unfiltered
        // join returns exactly one output row per LINEITEM row.
        let li = lineitem();
        let ord = orders();
        let joined = hash_join(&li, "L_ORDERKEY", &ord, "O_ORDERKEY", 1).unwrap();
        assert_eq!(joined.output_rows, li.row_count());
        assert_eq!(joined.build_rows, ord.row_count());
        assert_eq!(joined.probe_rows, li.row_count());
        // Output schema is probe columns then build columns.
        assert_eq!(joined.output.schema().len(), 8);
        assert_eq!(joined.output.schema().columns()[0].0, "L_ORDERKEY");
        assert_eq!(joined.output.schema().columns()[4].0, "O_ORDERKEY");
    }

    #[test]
    fn join_keys_match_on_every_output_row() {
        let joined = hash_join(&lineitem(), "L_ORDERKEY", &orders(), "O_ORDERKEY", 2).unwrap();
        let l_keys = joined.output.column_by_name("L_ORDERKEY").unwrap();
        let o_keys = joined.output.column_by_name("O_ORDERKEY").unwrap();
        for i in 0..joined.output_rows {
            assert_eq!(
                l_keys.get(i).unwrap().as_i64(),
                o_keys.get(i).unwrap().as_i64()
            );
        }
    }

    #[test]
    fn thread_count_does_not_change_the_result_set() {
        let li = lineitem();
        let ord = orders();
        let serial = hash_join(&li, "L_ORDERKEY", &ord, "O_ORDERKEY", 1).unwrap();
        let parallel = hash_join(&li, "L_ORDERKEY", &ord, "O_ORDERKEY", 8).unwrap();
        assert_eq!(serial.output_rows, parallel.output_rows);
        // Compare multisets of full output rows.
        let columns = ["L_ORDERKEY", "L_EXTENDEDPRICE", "O_ORDERKEY", "O_CUSTKEY"];
        assert_eq!(
            serial.output.sorted_row_signature(&columns).unwrap(),
            parallel.output.sorted_row_signature(&columns).unwrap()
        );
    }

    #[test]
    fn kernel_config_does_not_change_the_result_set() {
        let li = lineitem();
        let ord = orders();
        let reference = hash_join(&li, "L_ORDERKEY", &ord, "O_ORDERKEY", 1).unwrap();
        let columns = ["L_ORDERKEY", "L_EXTENDEDPRICE", "O_ORDERKEY", "O_CUSTKEY"];
        let expected = reference.output.sorted_row_signature(&columns).unwrap();
        for (morsel_rows, radix_bits) in [(64, 0), (1 << 20, 8), (100, 4)] {
            let config = JoinKernelConfig {
                morsel_rows,
                radix_bits,
            };
            let joined = hash_join_with(&li, "L_ORDERKEY", &ord, "O_ORDERKEY", 3, config).unwrap();
            assert_eq!(
                joined.output.sorted_row_signature(&columns).unwrap(),
                expected,
                "config {config:?} changed the result set"
            );
        }
    }

    #[test]
    fn morsel_accounting_covers_the_probe_side() {
        let li = lineitem();
        let config = JoinKernelConfig {
            morsel_rows: 100,
            ..JoinKernelConfig::default()
        };
        let joined = hash_join_with(&li, "L_ORDERKEY", &orders(), "O_ORDERKEY", 4, config).unwrap();
        assert_eq!(joined.morsels_per_worker.len(), 4);
        let total: usize = joined.morsels_per_worker.iter().sum();
        assert_eq!(total, li.row_count().div_ceil(100));
    }

    #[test]
    fn invalid_kernel_configs_are_rejected() {
        let li = lineitem();
        let ord = orders();
        let zero_morsels = JoinKernelConfig {
            morsel_rows: 0,
            ..JoinKernelConfig::default()
        };
        assert!(hash_join_with(&li, "L_ORDERKEY", &ord, "O_ORDERKEY", 1, zero_morsels).is_err());
        let too_many_bits = JoinKernelConfig {
            radix_bits: 13,
            ..JoinKernelConfig::default()
        };
        assert!(hash_join_with(&li, "L_ORDERKEY", &ord, "O_ORDERKEY", 1, too_many_bits).is_err());
    }

    #[test]
    fn filtered_join_respects_selectivity() {
        // 1% of ORDERS qualify; only LINEITEM rows referencing those orders
        // survive the join.
        let li = lineitem();
        let ord = orders();
        let cutoff = eedc_tpch::gen::custkey_cutoff_for_selectivity(SCALE, 0.01);
        let filtered =
            eedc_storage::scan(&ord, &Predicate::orders_custkey_at_most(cutoff), None).unwrap();
        let joined = hash_join(&li, "L_ORDERKEY", &filtered.output, "O_ORDERKEY", 2).unwrap();
        let ratio = joined.output_rows as f64 / li.row_count() as f64;
        let build_ratio = filtered.rows_passed as f64 / ord.row_count() as f64;
        assert!(
            (ratio - build_ratio).abs() < 0.02,
            "ratio {ratio} vs {build_ratio}"
        );
    }

    #[test]
    fn empty_inputs_produce_empty_output() {
        let li = lineitem();
        let empty_orders = Table::empty("ORDERS", Schema::orders_projection());
        let joined = hash_join(&li, "L_ORDERKEY", &empty_orders, "O_ORDERKEY", 4).unwrap();
        assert_eq!(joined.output_rows, 0);
        let empty_li = Table::empty("LINEITEM", Schema::lineitem_projection());
        let joined = hash_join(&empty_li, "L_ORDERKEY", &orders(), "O_ORDERKEY", 4).unwrap();
        assert_eq!(joined.output_rows, 0);
    }

    #[test]
    fn duplicate_build_keys_fan_out() {
        let mut build = Table::empty(
            "B",
            Schema::new([("B_KEY", ColumnType::Int64), ("B_VAL", ColumnType::Int32)]),
        );
        build
            .append_row(&[Value::Int64(1), Value::Int32(10)])
            .unwrap();
        build
            .append_row(&[Value::Int64(1), Value::Int32(11)])
            .unwrap();
        build
            .append_row(&[Value::Int64(2), Value::Int32(20)])
            .unwrap();
        let mut probe = Table::empty("P", Schema::new([("P_KEY", ColumnType::Int64)]));
        probe.append_row(&[Value::Int64(1)]).unwrap();
        probe.append_row(&[Value::Int64(2)]).unwrap();
        probe.append_row(&[Value::Int64(3)]).unwrap();
        let joined = hash_join(&probe, "P_KEY", &build, "B_KEY", 1).unwrap();
        assert_eq!(joined.output_rows, 3); // key 1 matches twice, key 2 once, key 3 never
    }

    #[test]
    fn unknown_or_non_integer_keys_are_errors() {
        let li = lineitem();
        let ord = orders();
        assert!(hash_join(&li, "L_NOPE", &ord, "O_ORDERKEY", 1).is_err());
        assert!(hash_join(&li, "L_ORDERKEY", &ord, "O_NOPE", 1).is_err());
        // A float column cannot be a join key.
        let mut build = Table::empty("B", Schema::new([("B_KEY", ColumnType::Float64)]));
        build.append_row(&[Value::Float64(1.0)]).unwrap();
        let mut probe = Table::empty("P", Schema::new([("P_KEY", ColumnType::Int64)]));
        probe.append_row(&[Value::Int64(1)]).unwrap();
        assert!(hash_join(&probe, "P_KEY", &build, "B_KEY", 1).is_err());
    }

    #[test]
    fn chained_join_names_stay_bounded() {
        assert_eq!(
            join_output_name("LINEITEM", "ORDERS"),
            "LINEITEM_join_ORDERS"
        );
        assert_eq!(
            join_output_name("LINEITEM_join_ORDERS", "CUSTOMER"),
            "LINEITEM_join2_CUSTOMER"
        );
        assert_eq!(
            join_output_name("LINEITEM_join2_CUSTOMER", "NATION"),
            "LINEITEM_join3_NATION"
        );
        // Names never exceed the cap even for pathological inputs.
        let long = "X".repeat(200);
        assert!(join_output_name(&long, &long).len() <= 64);
        // And the output table actually carries the compacted name.
        let mut t = Table::empty("A_join_B", Schema::new([("K", ColumnType::Int64)]));
        t.append_row(&[Value::Int64(1)]).unwrap();
        let mut u = Table::empty("C", Schema::new([("K2", ColumnType::Int64)]));
        u.append_row(&[Value::Int64(1)]).unwrap();
        let joined = hash_join(&t, "K", &u, "K2", 1).unwrap();
        assert_eq!(joined.output.name(), "A_join2_C");
    }
}
