//! The in-memory hash join operator.
//!
//! This is the paper's workhorse compute operator: "our hash join code is
//! cache-conscious and multi-threaded" (Section 5.1). The build side is
//! hashed into a partitioned hash table keyed on an integer join key; the
//! probe side is scanned block-by-block and probed in parallel worker threads
//! (one per hardware thread by default), with each worker producing an
//! independent output fragment that is concatenated at the end — operators
//! never materialise intermediate tuples beyond their own output.

use crate::error::PStoreError;
use eedc_storage::{Column, Schema, Table, Value};
use std::collections::HashMap;

/// Output of a hash join.
#[derive(Debug, Clone, PartialEq)]
pub struct HashJoinOutput {
    /// The joined rows: probe columns followed by build columns.
    pub output: Table,
    /// Number of rows in the build-side hash table.
    pub build_rows: usize,
    /// Number of probe-side rows scanned.
    pub probe_rows: usize,
    /// Number of output (matching) rows.
    pub output_rows: usize,
}

/// Extract the i64 join key of `row` from `column`.
fn key_at(column: &Column, row: usize) -> Result<i64, PStoreError> {
    column
        .get(row)
        .and_then(|v| v.as_i64())
        .ok_or_else(|| PStoreError::planning("join keys must be integer columns"))
}

/// Join `probe` against `build` on integer key columns `probe_key` /
/// `build_key`, producing probe columns followed by build columns.
///
/// `threads` controls the number of probe workers; values of 0 or 1 run the
/// probe on the calling thread. The output row order depends on the thread
/// count (fragments are concatenated in worker order), but the output row
/// *set* does not.
pub fn hash_join(
    probe: &Table,
    probe_key: &str,
    build: &Table,
    build_key: &str,
    threads: usize,
) -> Result<HashJoinOutput, PStoreError> {
    let build_key_col = build.column_by_name(build_key)?;
    let probe_key_col = probe.column_by_name(probe_key)?;

    // Build phase: key -> list of build row indices.
    let mut hash_table: HashMap<i64, Vec<u32>> = HashMap::with_capacity(build.row_count());
    for row in 0..build.row_count() {
        let key = key_at(build_key_col, row)?;
        hash_table.entry(key).or_default().push(row as u32);
    }

    // The output schema is probe columns followed by build columns.
    let output_schema = Schema::new(
        probe
            .schema()
            .columns()
            .iter()
            .chain(build.schema().columns())
            .map(|(name, ty)| (name.clone(), *ty)),
    );

    let probe_rows = probe.row_count();
    let workers = threads.max(1).min(probe_rows.max(1));
    let chunk = probe_rows.div_ceil(workers.max(1)).max(1);

    // Each worker probes an independent row range and produces its own output
    // fragment; fragments are concatenated afterwards.
    let probe_fragment = |range: std::ops::Range<usize>| -> Result<Table, PStoreError> {
        let mut fragment =
            Table::with_capacity("join_fragment", output_schema.clone(), range.len());
        for probe_row in range {
            let key = key_at(probe_key_col, probe_row)?;
            if let Some(matches) = hash_table.get(&key) {
                let probe_values: Vec<Value> =
                    probe.row(probe_row).expect("probe row index in range");
                for &build_row in matches {
                    let mut values = probe_values.clone();
                    values.extend(
                        build
                            .row(build_row as usize)
                            .expect("build row index from hash table"),
                    );
                    fragment.append_row(&values)?;
                }
            }
        }
        Ok(fragment)
    };

    let fragments: Vec<Table> = if workers <= 1 || probe_rows == 0 {
        vec![probe_fragment(0..probe_rows)?]
    } else {
        let ranges: Vec<std::ops::Range<usize>> = (0..workers)
            .map(|w| (w * chunk).min(probe_rows)..((w + 1) * chunk).min(probe_rows))
            .filter(|r| !r.is_empty())
            .collect();
        let mut results: Vec<Option<Result<Table, PStoreError>>> =
            (0..ranges.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(ranges.len());
            for range in &ranges {
                let range = range.clone();
                let probe_fragment = &probe_fragment;
                handles.push(scope.spawn(move || probe_fragment(range)));
            }
            for (slot, handle) in results.iter_mut().zip(handles) {
                *slot = Some(handle.join().expect("probe worker must not panic"));
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every worker produced a result"))
            .collect::<Result<Vec<_>, _>>()?
    };

    let mut output = Table::with_capacity(
        format!("{}_join_{}", probe.name(), build.name()),
        output_schema,
        fragments.iter().map(Table::row_count).sum(),
    );
    for fragment in &fragments {
        output.append_table(fragment)?;
    }

    Ok(HashJoinOutput {
        build_rows: build.row_count(),
        probe_rows,
        output_rows: output.row_count(),
        output,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eedc_storage::{ColumnType, Predicate};
    use eedc_tpch::gen::{LineitemGenerator, OrdersGenerator};
    use eedc_tpch::scale::ScaleFactor;

    const SCALE: ScaleFactor = ScaleFactor(0.002);

    fn lineitem() -> Table {
        Table::from_lineitem(LineitemGenerator::new(SCALE, 1))
    }

    fn orders() -> Table {
        Table::from_orders(OrdersGenerator::new(SCALE, 1))
    }

    #[test]
    fn every_lineitem_row_finds_its_order() {
        // LINEITEM.L_ORDERKEY is a foreign key into ORDERS, so an unfiltered
        // join returns exactly one output row per LINEITEM row.
        let li = lineitem();
        let ord = orders();
        let joined = hash_join(&li, "L_ORDERKEY", &ord, "O_ORDERKEY", 1).unwrap();
        assert_eq!(joined.output_rows, li.row_count());
        assert_eq!(joined.build_rows, ord.row_count());
        assert_eq!(joined.probe_rows, li.row_count());
        // Output schema is probe columns then build columns.
        assert_eq!(joined.output.schema().len(), 8);
        assert_eq!(joined.output.schema().columns()[0].0, "L_ORDERKEY");
        assert_eq!(joined.output.schema().columns()[4].0, "O_ORDERKEY");
    }

    #[test]
    fn join_keys_match_on_every_output_row() {
        let joined = hash_join(&lineitem(), "L_ORDERKEY", &orders(), "O_ORDERKEY", 2).unwrap();
        let l_keys = joined.output.column_by_name("L_ORDERKEY").unwrap();
        let o_keys = joined.output.column_by_name("O_ORDERKEY").unwrap();
        for i in 0..joined.output_rows {
            assert_eq!(
                l_keys.get(i).unwrap().as_i64(),
                o_keys.get(i).unwrap().as_i64()
            );
        }
    }

    #[test]
    fn thread_count_does_not_change_the_result_set() {
        let li = lineitem();
        let ord = orders();
        let serial = hash_join(&li, "L_ORDERKEY", &ord, "O_ORDERKEY", 1).unwrap();
        let parallel = hash_join(&li, "L_ORDERKEY", &ord, "O_ORDERKEY", 8).unwrap();
        assert_eq!(serial.output_rows, parallel.output_rows);
        // Compare multisets of (orderkey, extendedprice) pairs.
        let signature = |t: &Table| {
            let mut sig: Vec<(i64, i64)> = (0..t.row_count())
                .map(|i| {
                    (
                        t.column_by_name("L_ORDERKEY")
                            .unwrap()
                            .get(i)
                            .unwrap()
                            .as_i64()
                            .unwrap(),
                        t.column_by_name("L_EXTENDEDPRICE")
                            .unwrap()
                            .get(i)
                            .unwrap()
                            .as_i64()
                            .unwrap(),
                    )
                })
                .collect();
            sig.sort_unstable();
            sig
        };
        assert_eq!(signature(&serial.output), signature(&parallel.output));
    }

    #[test]
    fn filtered_join_respects_selectivity() {
        // 1% of ORDERS qualify; only LINEITEM rows referencing those orders
        // survive the join.
        let li = lineitem();
        let ord = orders();
        let cutoff = eedc_tpch::gen::custkey_cutoff_for_selectivity(SCALE, 0.01);
        let filtered =
            eedc_storage::scan(&ord, &Predicate::orders_custkey_at_most(cutoff), None).unwrap();
        let joined = hash_join(&li, "L_ORDERKEY", &filtered.output, "O_ORDERKEY", 2).unwrap();
        let ratio = joined.output_rows as f64 / li.row_count() as f64;
        let build_ratio = filtered.rows_passed as f64 / ord.row_count() as f64;
        assert!(
            (ratio - build_ratio).abs() < 0.02,
            "ratio {ratio} vs {build_ratio}"
        );
    }

    #[test]
    fn empty_inputs_produce_empty_output() {
        let li = lineitem();
        let empty_orders = Table::empty("ORDERS", Schema::orders_projection());
        let joined = hash_join(&li, "L_ORDERKEY", &empty_orders, "O_ORDERKEY", 4).unwrap();
        assert_eq!(joined.output_rows, 0);
        let empty_li = Table::empty("LINEITEM", Schema::lineitem_projection());
        let joined = hash_join(&empty_li, "L_ORDERKEY", &orders(), "O_ORDERKEY", 4).unwrap();
        assert_eq!(joined.output_rows, 0);
    }

    #[test]
    fn duplicate_build_keys_fan_out() {
        let mut build = Table::empty(
            "B",
            Schema::new([("B_KEY", ColumnType::Int64), ("B_VAL", ColumnType::Int32)]),
        );
        build
            .append_row(&[Value::Int64(1), Value::Int32(10)])
            .unwrap();
        build
            .append_row(&[Value::Int64(1), Value::Int32(11)])
            .unwrap();
        build
            .append_row(&[Value::Int64(2), Value::Int32(20)])
            .unwrap();
        let mut probe = Table::empty("P", Schema::new([("P_KEY", ColumnType::Int64)]));
        probe.append_row(&[Value::Int64(1)]).unwrap();
        probe.append_row(&[Value::Int64(2)]).unwrap();
        probe.append_row(&[Value::Int64(3)]).unwrap();
        let joined = hash_join(&probe, "P_KEY", &build, "B_KEY", 1).unwrap();
        assert_eq!(joined.output_rows, 3); // key 1 matches twice, key 2 once, key 3 never
    }

    #[test]
    fn unknown_or_non_integer_keys_are_errors() {
        let li = lineitem();
        let ord = orders();
        assert!(hash_join(&li, "L_NOPE", &ord, "O_ORDERKEY", 1).is_err());
        assert!(hash_join(&li, "L_ORDERKEY", &ord, "O_NOPE", 1).is_err());
        // A float column cannot be a join key.
        let mut build = Table::empty("B", Schema::new([("B_KEY", ColumnType::Float64)]));
        build.append_row(&[Value::Float64(1.0)]).unwrap();
        let mut probe = Table::empty("P", Schema::new([("P_KEY", ColumnType::Int64)]));
        probe.append_row(&[Value::Int64(1)]).unwrap();
        assert!(hash_join(&probe, "P_KEY", &build, "B_KEY", 1).is_err());
    }
}
