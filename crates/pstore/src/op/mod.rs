//! Physical operators.
//!
//! P-store's operator set is deliberately small (Section 4.2): scans,
//! selections and projections come from the storage engine; this module adds
//! the operators the paper built on top of it — the multi-threaded
//! [`hashjoin`], the grouped [`mod@aggregate`] used by scan-heavy queries such as
//! TPC-H Q1, and the network [`exchange`] operator (shuffle, broadcast,
//! gather) whose behaviour under load is the subject of the whole study.

pub mod aggregate;
pub mod exchange;
pub mod hashjoin;

pub use aggregate::{aggregate, AggregateFn, AggregateResult, AggregateSpec};
pub use exchange::{broadcast_exchange, shuffle_exchange, ExchangeOutput};
pub use hashjoin::{hash_join, HashJoinOutput};
