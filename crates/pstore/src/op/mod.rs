//! Physical operators.
//!
//! P-store's operator set is deliberately small (Section 4.2): scans,
//! selections and projections come from the storage engine; this module adds
//! the operators the paper built on top of it — the morsel-driven
//! [`hashjoin`], the grouped [`mod@aggregate`] used by scan-heavy queries such as
//! TPC-H Q1, and the network [`exchange`] operator (shuffle, broadcast,
//! gather) whose behaviour under load is the subject of the whole study.
//!
//! # The morsel-driven execution kernel
//!
//! The compute operators share one execution discipline, implemented in
//! [`kernel`] and wired through the join and aggregate:
//!
//! 1. **Build: partitioned radix build.** Build-side keys are hashed once
//!    (`hash_i64`, the same splitmix64 mix used for cluster placement) and
//!    rows are radix-partitioned on the low `radix_bits` hash bits with a
//!    counting sort — one flat index array, no per-key `Vec`s. Workers steal
//!    whole partitions and build private open-addressing
//!    [`kernel::RadixTable`]s over `(key: i64, row: u32)` entries with
//!    intrusive duplicate chains; nothing is shared mutably, so the build
//!    needs no locks.
//! 2. **Probe: morsel stealing.** The probe side is consumed in fixed-size
//!    row ranges (*morsels*) claimed from a shared atomic
//!    [`kernel::MorselCursor`]. Each worker is pre-assigned one first-claim
//!    morsel and then steals until the input is drained, so a slow worker
//!    delays the join by at most one morsel instead of a whole static chunk.
//! 3. **Materialize: columnar gather.** Workers accumulate matching
//!    `(probe_row, build_row)` index pairs per morsel and flush them with a
//!    per-column gather into a reusable
//!    [`BatchBuilder`](eedc_storage::BatchBuilder) — one typed slice append
//!    per column per flush, never a row-at-a-time `Value` round-trip.
//!
//! Defaults ([`kernel::DEFAULT_MORSEL_ROWS`] = 16384 rows,
//! [`kernel::DEFAULT_RADIX_BITS`] = 4): a 16K-row morsel of the paper's
//! 20-byte tuples is ~320 KB (cache-resident, one atomic claim per ~16K
//! rows), and 16 partitions keep each partition's table small enough to stay
//! cache-resident at the paper's 10 MB build sizes without making tiny
//! builds pay for partitioning. Both are overridable per join via
//! [`kernel::JoinKernelConfig`]; every configuration yields the same output
//! row multiset.

pub mod aggregate;
pub mod exchange;
pub mod hashjoin;
pub mod kernel;

pub use aggregate::{aggregate, aggregate_par, AggregateFn, AggregateResult, AggregateSpec};
pub use exchange::{broadcast_exchange, shuffle_exchange, ExchangeOutput};
pub use hashjoin::{hash_join, hash_join_with, HashJoinOutput};
pub use kernel::{default_worker_threads, JoinKernelConfig};
