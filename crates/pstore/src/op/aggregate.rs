//! Grouped aggregation.
//!
//! Scan-heavy queries such as TPC-H Q1 ("simple aggregations on the LINEITEM
//! table", Section 3.1) spend all of their time in local scan + aggregate
//! work, which is why they scale linearly and keep their energy consumption
//! flat across cluster sizes. This operator provides the aggregate side of
//! that workload: group by one integer column, compute SUM / COUNT / AVG /
//! MIN / MAX over value columns.
//!
//! The implementation follows the same discipline as the join kernel: group
//! keys are resolved to a typed slice once, the key → group-id map is an
//! open-addressing [`GroupMap`] (no `BTreeMap` node allocations on the hot
//! path), accumulator state lives in one flat array indexed by
//! `group_id * aggregates + aggregate`, and the output is materialised
//! column-wise. [`aggregate_par`] splits the input into per-worker row
//! ranges whose private maps are merged at the end — grouped aggregation is
//! trivially mergeable, so the parallel result is bit-identical to the
//! serial one.

use crate::error::PStoreError;
use crate::op::kernel::{GroupMap, KeySlice};
use eedc_storage::{Column, ColumnType, Schema, Table};

/// An aggregate function over a single column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateFn {
    /// Sum of the column (as f64).
    Sum,
    /// Count of rows in the group.
    Count,
    /// Arithmetic mean of the column.
    Avg,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
}

/// One requested aggregate: a function applied to a column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregateSpec {
    /// The aggregated column (ignored for `Count`).
    pub column: String,
    /// The aggregate function.
    pub function: AggregateFn,
}

impl AggregateSpec {
    /// Construct an aggregate spec.
    pub fn new(column: impl Into<String>, function: AggregateFn) -> Self {
        Self {
            column: column.into(),
            function,
        }
    }

    fn output_name(&self) -> String {
        let prefix = match self.function {
            AggregateFn::Sum => "SUM",
            AggregateFn::Count => "COUNT",
            AggregateFn::Avg => "AVG",
            AggregateFn::Min => "MIN",
            AggregateFn::Max => "MAX",
        };
        format!("{prefix}({})", self.column)
    }
}

/// Running state of one aggregate within one group.
#[derive(Debug, Clone, Copy, Default)]
struct Accumulator {
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl Accumulator {
    fn update(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.sum += value;
        self.count += 1;
    }

    /// Fold another accumulator's state in — the merge step of parallel
    /// aggregation.
    fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.count += other.count;
    }

    fn finish(&self, function: AggregateFn) -> f64 {
        match function {
            AggregateFn::Sum => self.sum,
            AggregateFn::Count => self.count as f64,
            AggregateFn::Avg => {
                if self.count == 0 {
                    0.0
                } else {
                    self.sum / self.count as f64
                }
            }
            AggregateFn::Min => self.min,
            AggregateFn::Max => self.max,
        }
    }
}

/// A numeric column borrowed as a typed slice, converted to `f64` per access
/// — the aggregate-input analogue of [`KeySlice`].
#[derive(Clone, Copy)]
enum NumericSlice<'a> {
    I64(&'a [i64]),
    I32(&'a [i32]),
    F64(&'a [f64]),
}

impl<'a> NumericSlice<'a> {
    fn from_column(column: &'a Column) -> Self {
        if let Some(values) = column.as_i64_slice() {
            NumericSlice::I64(values)
        } else if let Some(values) = column.as_i32_slice() {
            NumericSlice::I32(values)
        } else {
            NumericSlice::F64(
                column
                    .as_f64_slice()
                    .expect("columns hold one of three types"),
            )
        }
    }

    #[inline]
    fn get(&self, row: usize) -> f64 {
        match self {
            NumericSlice::I64(values) => values[row] as f64,
            NumericSlice::I32(values) => f64::from(values[row]),
            NumericSlice::F64(values) => values[row],
        }
    }
}

/// Result of a grouped aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateResult {
    /// One row per group: the group key followed by each aggregate.
    pub output: Table,
    /// Number of input rows consumed.
    pub input_rows: usize,
    /// Number of groups produced.
    pub groups: usize,
}

/// Per-worker aggregation state: a private key map plus the flat accumulator
/// array (`group_id * aggregates + aggregate`).
struct LocalAggregation {
    map: GroupMap,
    accumulators: Vec<Accumulator>,
}

impl LocalAggregation {
    fn over_range(
        keys: KeySlice<'_>,
        inputs: &[NumericSlice<'_>],
        range: std::ops::Range<usize>,
    ) -> Self {
        let mut map = GroupMap::new();
        let mut accumulators: Vec<Accumulator> = Vec::new();
        let width = inputs.len();
        for row in range {
            let group = map.get_or_insert(keys.get(row));
            if group * width == accumulators.len() {
                accumulators.resize((group + 1) * width, Accumulator::default());
            }
            for (offset, input) in inputs.iter().enumerate() {
                accumulators[group * width + offset].update(input.get(row));
            }
        }
        Self { map, accumulators }
    }

    fn merge_into(&self, map: &mut GroupMap, accumulators: &mut Vec<Accumulator>, width: usize) {
        for (local_group, &key) in self.map.keys().iter().enumerate() {
            let group = map.get_or_insert(key);
            if group * width == accumulators.len() {
                accumulators.resize((group + 1) * width, Accumulator::default());
            }
            for offset in 0..width {
                accumulators[group * width + offset]
                    .merge(&self.accumulators[local_group * width + offset]);
            }
        }
    }
}

/// Group `table` by the integer column `group_by` and evaluate `aggregates`
/// within each group on the calling thread. Groups appear in ascending key
/// order.
pub fn aggregate(
    table: &Table,
    group_by: &str,
    aggregates: &[AggregateSpec],
) -> Result<AggregateResult, PStoreError> {
    aggregate_par(table, group_by, aggregates, 1)
}

/// [`aggregate`] with `threads` parallel workers, each aggregating a private
/// row range before a final merge. The output (including group order) is
/// identical for every thread count.
pub fn aggregate_par(
    table: &Table,
    group_by: &str,
    aggregates: &[AggregateSpec],
    threads: usize,
) -> Result<AggregateResult, PStoreError> {
    let keys = KeySlice::try_from_column(table.column_by_name(group_by)?)
        .map_err(|_| PStoreError::planning("group-by column must be an integer column"))?;
    // Resolve aggregate input columns up front.
    let inputs: Vec<NumericSlice<'_>> = aggregates
        .iter()
        .map(|spec| {
            table
                .column_by_name(&spec.column)
                .map(NumericSlice::from_column)
        })
        .collect::<Result<Vec<_>, _>>()?;

    let rows = table.row_count();
    let width = aggregates.len();
    let workers = threads.max(1).min(rows.max(1));
    let chunk = rows.div_ceil(workers).max(1);

    let locals: Vec<LocalAggregation> = if workers <= 1 {
        vec![LocalAggregation::over_range(keys, &inputs, 0..rows)]
    } else {
        let inputs = &inputs;
        let mut slots: Vec<Option<LocalAggregation>> = (0..workers).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let range = (w * chunk).min(rows)..((w + 1) * chunk).min(rows);
                    scope.spawn(move || LocalAggregation::over_range(keys, inputs, range))
                })
                .collect();
            for (slot, handle) in slots.iter_mut().zip(handles) {
                *slot = Some(handle.join().expect("aggregate worker must not panic"));
            }
        });
        slots
            .into_iter()
            .map(|l| l.expect("every worker produced a result"))
            .collect()
    };

    let (map, accumulators) = if locals.len() == 1 {
        let local = locals.into_iter().next().expect("one local aggregation");
        (local.map, local.accumulators)
    } else {
        let mut map = GroupMap::new();
        let mut accumulators = Vec::new();
        for local in &locals {
            local.merge_into(&mut map, &mut accumulators, width);
        }
        (map, accumulators)
    };

    // Emit groups in ascending key order, column-wise.
    let mut order: Vec<usize> = (0..map.len()).collect();
    order.sort_unstable_by_key(|&g| map.keys()[g]);

    let mut schema_columns: Vec<(String, ColumnType)> =
        vec![(group_by.to_string(), ColumnType::Int64)];
    schema_columns.extend(
        aggregates
            .iter()
            .map(|spec| (spec.output_name(), ColumnType::Float64)),
    );
    let groups = order.len();
    let mut columns: Vec<Column> = Vec::with_capacity(1 + width);
    columns.push(Column::Int64(
        order.iter().map(|&g| map.keys()[g]).collect(),
    ));
    for (offset, spec) in aggregates.iter().enumerate() {
        columns.push(Column::Float64(
            order
                .iter()
                .map(|&g| accumulators[g * width + offset].finish(spec.function))
                .collect(),
        ));
    }
    let output = Table::from_columns(
        format!("{}_agg", table.name()),
        Schema::new(schema_columns),
        columns,
    )?;

    Ok(AggregateResult {
        input_rows: rows,
        groups,
        output,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eedc_storage::Value;
    use eedc_tpch::gen::LineitemGenerator;
    use eedc_tpch::scale::ScaleFactor;

    fn small_table() -> Table {
        let mut t = Table::empty(
            "T",
            Schema::new([("K", ColumnType::Int64), ("V", ColumnType::Int32)]),
        );
        for (k, v) in [(1, 10), (1, 20), (2, 5), (2, 15), (2, 40), (3, 7)] {
            t.append_row(&[Value::Int64(k), Value::Int32(v)]).unwrap();
        }
        t
    }

    #[test]
    fn sums_counts_and_averages() {
        let result = aggregate(
            &small_table(),
            "K",
            &[
                AggregateSpec::new("V", AggregateFn::Sum),
                AggregateSpec::new("V", AggregateFn::Count),
                AggregateSpec::new("V", AggregateFn::Avg),
                AggregateSpec::new("V", AggregateFn::Min),
                AggregateSpec::new("V", AggregateFn::Max),
            ],
        )
        .unwrap();
        assert_eq!(result.groups, 3);
        assert_eq!(result.input_rows, 6);
        let row = result.output.row(1).unwrap(); // group key 2
        assert_eq!(row[0], Value::Int64(2));
        assert_eq!(row[1], Value::Float64(60.0));
        assert_eq!(row[2], Value::Float64(3.0));
        assert_eq!(row[3], Value::Float64(20.0));
        assert_eq!(row[4], Value::Float64(5.0));
        assert_eq!(row[5], Value::Float64(40.0));
        // Output column names include the function.
        assert_eq!(result.output.schema().columns()[1].0, "SUM(V)");
    }

    #[test]
    fn groups_are_emitted_in_key_order() {
        let result = aggregate(
            &small_table(),
            "K",
            &[AggregateSpec::new("V", AggregateFn::Count)],
        )
        .unwrap();
        let keys: Vec<i64> = (0..result.groups)
            .map(|i| result.output.row(i).unwrap()[0].as_i64().unwrap())
            .collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn parallel_aggregation_matches_serial_exactly() {
        let table = Table::from_lineitem(LineitemGenerator::new(ScaleFactor(0.002), 3));
        let specs = [
            AggregateSpec::new("L_EXTENDEDPRICE", AggregateFn::Sum),
            AggregateSpec::new("L_EXTENDEDPRICE", AggregateFn::Min),
            AggregateSpec::new("L_EXTENDEDPRICE", AggregateFn::Max),
            AggregateSpec::new("L_EXTENDEDPRICE", AggregateFn::Count),
        ];
        let serial = aggregate_par(&table, "L_DISCOUNT", &specs, 1).unwrap();
        for threads in [2, 5, 8] {
            let parallel = aggregate_par(&table, "L_DISCOUNT", &specs, threads).unwrap();
            // Sorted group order plus exact (non-Avg) accumulator merges make
            // the whole output table identical, not just equivalent.
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn q1_style_aggregation_over_lineitem() {
        // Group the LINEITEM projection by discount and sum prices — the same
        // scan + aggregate shape as TPC-H Q1, entirely node-local.
        let table = Table::from_lineitem(LineitemGenerator::new(ScaleFactor(0.001), 9));
        let result = aggregate(
            &table,
            "L_DISCOUNT",
            &[
                AggregateSpec::new("L_EXTENDEDPRICE", AggregateFn::Sum),
                AggregateSpec::new("L_EXTENDEDPRICE", AggregateFn::Count),
            ],
        )
        .unwrap();
        assert!(result.groups > 100);
        assert_eq!(result.input_rows, table.row_count());
        // Total count across groups equals the input row count.
        let counts = result
            .output
            .column_by_name("COUNT(L_EXTENDEDPRICE)")
            .unwrap();
        let total: f64 = (0..result.groups)
            .map(|i| counts.get(i).unwrap().as_f64())
            .sum();
        assert_eq!(total as usize, table.row_count());
    }

    #[test]
    fn empty_input_produces_no_groups() {
        let empty = Table::empty(
            "E",
            Schema::new([("K", ColumnType::Int64), ("V", ColumnType::Int32)]),
        );
        let result = aggregate(&empty, "K", &[AggregateSpec::new("V", AggregateFn::Sum)]).unwrap();
        assert_eq!(result.groups, 0);
        assert_eq!(result.output.row_count(), 0);
    }

    #[test]
    fn grouping_without_aggregates_yields_distinct_keys() {
        let result = aggregate(&small_table(), "K", &[]).unwrap();
        assert_eq!(result.groups, 3);
        assert_eq!(result.output.schema().len(), 1);
        let result_par = aggregate_par(&small_table(), "K", &[], 4).unwrap();
        assert_eq!(result_par, result);
    }

    #[test]
    fn unknown_columns_are_errors() {
        let t = small_table();
        assert!(aggregate(&t, "NOPE", &[]).is_err());
        assert!(aggregate(&t, "K", &[AggregateSpec::new("NOPE", AggregateFn::Sum)]).is_err());
    }

    #[test]
    fn float_group_keys_are_rejected() {
        let mut t = Table::empty("T", Schema::new([("K", ColumnType::Float64)]));
        t.append_row(&[Value::Float64(1.5)]).unwrap();
        assert!(aggregate(&t, "K", &[]).is_err());
    }
}
