//! Grouped aggregation.
//!
//! Scan-heavy queries such as TPC-H Q1 ("simple aggregations on the LINEITEM
//! table", Section 3.1) spend all of their time in local scan + aggregate
//! work, which is why they scale linearly and keep their energy consumption
//! flat across cluster sizes. This operator provides the aggregate side of
//! that workload: group by one integer column, compute SUM / COUNT / AVG /
//! MIN / MAX over value columns.

use crate::error::PStoreError;
use eedc_storage::{ColumnType, Schema, Table, Value};
use std::collections::BTreeMap;

/// An aggregate function over a single column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateFn {
    /// Sum of the column (as f64).
    Sum,
    /// Count of rows in the group.
    Count,
    /// Arithmetic mean of the column.
    Avg,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
}

/// One requested aggregate: a function applied to a column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregateSpec {
    /// The aggregated column (ignored for `Count`).
    pub column: String,
    /// The aggregate function.
    pub function: AggregateFn,
}

impl AggregateSpec {
    /// Construct an aggregate spec.
    pub fn new(column: impl Into<String>, function: AggregateFn) -> Self {
        Self {
            column: column.into(),
            function,
        }
    }

    fn output_name(&self) -> String {
        let prefix = match self.function {
            AggregateFn::Sum => "SUM",
            AggregateFn::Count => "COUNT",
            AggregateFn::Avg => "AVG",
            AggregateFn::Min => "MIN",
            AggregateFn::Max => "MAX",
        };
        format!("{prefix}({})", self.column)
    }
}

/// Running state of one aggregate within one group.
#[derive(Debug, Clone, Copy, Default)]
struct Accumulator {
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl Accumulator {
    fn update(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.sum += value;
        self.count += 1;
    }

    fn finish(&self, function: AggregateFn) -> f64 {
        match function {
            AggregateFn::Sum => self.sum,
            AggregateFn::Count => self.count as f64,
            AggregateFn::Avg => {
                if self.count == 0 {
                    0.0
                } else {
                    self.sum / self.count as f64
                }
            }
            AggregateFn::Min => self.min,
            AggregateFn::Max => self.max,
        }
    }
}

/// Result of a grouped aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateResult {
    /// One row per group: the group key followed by each aggregate.
    pub output: Table,
    /// Number of input rows consumed.
    pub input_rows: usize,
    /// Number of groups produced.
    pub groups: usize,
}

/// Group `table` by the integer column `group_by` and evaluate `aggregates`
/// within each group. Groups appear in ascending key order.
pub fn aggregate(
    table: &Table,
    group_by: &str,
    aggregates: &[AggregateSpec],
) -> Result<AggregateResult, PStoreError> {
    let group_col = table.column_by_name(group_by)?;
    // Resolve aggregate input columns up front.
    let agg_cols: Vec<_> = aggregates
        .iter()
        .map(|spec| table.column_by_name(&spec.column))
        .collect::<Result<Vec<_>, _>>()?;

    let mut groups: BTreeMap<i64, Vec<Accumulator>> = BTreeMap::new();
    for row in 0..table.row_count() {
        let key = group_col
            .get(row)
            .and_then(|v| v.as_i64())
            .ok_or_else(|| PStoreError::planning("group-by column must be an integer column"))?;
        let accumulators = groups
            .entry(key)
            .or_insert_with(|| vec![Accumulator::default(); aggregates.len()]);
        for (accumulator, column) in accumulators.iter_mut().zip(&agg_cols) {
            let value = column.get(row).expect("row index is in range").as_f64();
            accumulator.update(value);
        }
    }

    let mut schema_columns: Vec<(String, ColumnType)> =
        vec![(group_by.to_string(), ColumnType::Int64)];
    schema_columns.extend(
        aggregates
            .iter()
            .map(|spec| (spec.output_name(), ColumnType::Float64)),
    );
    let mut output = Table::with_capacity(
        format!("{}_agg", table.name()),
        Schema::new(schema_columns),
        groups.len(),
    );
    for (key, accumulators) in &groups {
        let mut row: Vec<Value> = Vec::with_capacity(1 + aggregates.len());
        row.push(Value::Int64(*key));
        for (accumulator, spec) in accumulators.iter().zip(aggregates) {
            row.push(Value::Float64(accumulator.finish(spec.function)));
        }
        output.append_row(&row)?;
    }

    Ok(AggregateResult {
        input_rows: table.row_count(),
        groups: groups.len(),
        output,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eedc_tpch::gen::LineitemGenerator;
    use eedc_tpch::scale::ScaleFactor;

    fn small_table() -> Table {
        let mut t = Table::empty(
            "T",
            Schema::new([("K", ColumnType::Int64), ("V", ColumnType::Int32)]),
        );
        for (k, v) in [(1, 10), (1, 20), (2, 5), (2, 15), (2, 40), (3, 7)] {
            t.append_row(&[Value::Int64(k), Value::Int32(v)]).unwrap();
        }
        t
    }

    #[test]
    fn sums_counts_and_averages() {
        let result = aggregate(
            &small_table(),
            "K",
            &[
                AggregateSpec::new("V", AggregateFn::Sum),
                AggregateSpec::new("V", AggregateFn::Count),
                AggregateSpec::new("V", AggregateFn::Avg),
                AggregateSpec::new("V", AggregateFn::Min),
                AggregateSpec::new("V", AggregateFn::Max),
            ],
        )
        .unwrap();
        assert_eq!(result.groups, 3);
        assert_eq!(result.input_rows, 6);
        let row = result.output.row(1).unwrap(); // group key 2
        assert_eq!(row[0], Value::Int64(2));
        assert_eq!(row[1], Value::Float64(60.0));
        assert_eq!(row[2], Value::Float64(3.0));
        assert_eq!(row[3], Value::Float64(20.0));
        assert_eq!(row[4], Value::Float64(5.0));
        assert_eq!(row[5], Value::Float64(40.0));
        // Output column names include the function.
        assert_eq!(result.output.schema().columns()[1].0, "SUM(V)");
    }

    #[test]
    fn groups_are_emitted_in_key_order() {
        let result = aggregate(
            &small_table(),
            "K",
            &[AggregateSpec::new("V", AggregateFn::Count)],
        )
        .unwrap();
        let keys: Vec<i64> = (0..result.groups)
            .map(|i| result.output.row(i).unwrap()[0].as_i64().unwrap())
            .collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn q1_style_aggregation_over_lineitem() {
        // Group the LINEITEM projection by discount and sum prices — the same
        // scan + aggregate shape as TPC-H Q1, entirely node-local.
        let table = Table::from_lineitem(LineitemGenerator::new(ScaleFactor(0.001), 9));
        let result = aggregate(
            &table,
            "L_DISCOUNT",
            &[
                AggregateSpec::new("L_EXTENDEDPRICE", AggregateFn::Sum),
                AggregateSpec::new("L_EXTENDEDPRICE", AggregateFn::Count),
            ],
        )
        .unwrap();
        assert!(result.groups > 100);
        assert_eq!(result.input_rows, table.row_count());
        // Total count across groups equals the input row count.
        let counts = result
            .output
            .column_by_name("COUNT(L_EXTENDEDPRICE)")
            .unwrap();
        let total: f64 = (0..result.groups)
            .map(|i| counts.get(i).unwrap().as_f64())
            .sum();
        assert_eq!(total as usize, table.row_count());
    }

    #[test]
    fn empty_input_produces_no_groups() {
        let empty = Table::empty(
            "E",
            Schema::new([("K", ColumnType::Int64), ("V", ColumnType::Int32)]),
        );
        let result = aggregate(&empty, "K", &[AggregateSpec::new("V", AggregateFn::Sum)]).unwrap();
        assert_eq!(result.groups, 0);
        assert_eq!(result.output.row_count(), 0);
    }

    #[test]
    fn unknown_columns_are_errors() {
        let t = small_table();
        assert!(aggregate(&t, "NOPE", &[]).is_err());
        assert!(aggregate(&t, "K", &[AggregateSpec::new("NOPE", AggregateFn::Sum)]).is_err());
    }

    #[test]
    fn float_group_keys_are_rejected() {
        let mut t = Table::empty("T", Schema::new([("K", ColumnType::Float64)]));
        t.append_row(&[Value::Float64(1.5)]).unwrap();
        assert!(aggregate(&t, "K", &[]).is_err());
    }
}
