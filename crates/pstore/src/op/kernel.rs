//! Shared primitives of the morsel-driven execution kernel.
//!
//! The paper's kernel is "cache-conscious and multi-threaded" (Section 5.1).
//! This module holds the pieces the operators share to earn that description:
//!
//! * [`JoinKernelConfig`] — the two tunables of the join kernel (morsel size
//!   and radix bits) with validated, benchmarked defaults,
//! * [`KeySlice`] — an integer key column borrowed as a typed slice, so the
//!   hot loops hash raw `i64`/`i32` values instead of boxed [`Value`]s,
//! * [`MorselCursor`] — the shared atomic cursor workers steal fixed-size
//!   row ranges (*morsels*) from until the probe side is drained,
//! * [`RadixTable`] — an open-addressing hash table over `(key, row)` pairs
//!   with intrusive duplicate chains: one flat allocation per partition, no
//!   per-key `Vec`s,
//! * [`GroupMap`] — the same open-addressing scheme specialised for grouped
//!   aggregation (key → dense group id).
//!
//! [`Value`]: eedc_storage::Value

use crate::error::PStoreError;
use eedc_storage::Column;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default morsel size in rows. 16K rows of the paper's 20-byte projected
/// tuples is ~320 KB — comfortably inside an L2 cache while still coarse
/// enough that cursor traffic is negligible (one atomic op per ~16K rows).
pub const DEFAULT_MORSEL_ROWS: usize = 16_384;

/// Default number of radix bits. 2^4 = 16 partitions keeps each partition's
/// open-addressing table small enough to stay cache-resident for the
/// paper-scale build sides (10 MB) without paying partitioning overhead on
/// tiny inputs.
pub const DEFAULT_RADIX_BITS: u8 = 4;

/// Upper bound on radix bits (4096 partitions); beyond this the per-partition
/// bookkeeping dominates any locality win at the data sizes this engine runs.
pub const MAX_RADIX_BITS: u8 = 12;

/// Number of probe worker threads to use when the caller does not pin one:
/// the machine's available parallelism, clamped to `[1, 16]`.
///
/// The pre-morsel kernel hard-coded 2 workers; callers that want that exact
/// behaviour back set `threads: 2` explicitly instead of relying on the
/// default.
pub fn default_worker_threads() -> usize {
    // lint:allow(determinism): the thread-count *default* is deliberately machine-sized; join results are thread-count invariant (pinned by kernel_properties.rs)
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 16)
}

/// Tunables of the morsel-driven join kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinKernelConfig {
    /// Rows per morsel claimed from the shared probe cursor.
    pub morsel_rows: usize,
    /// log2 of the number of radix partitions the build side is split into
    /// before per-partition hash tables are built. `0` disables partitioning
    /// (a single table).
    pub radix_bits: u8,
}

impl Default for JoinKernelConfig {
    fn default() -> Self {
        Self {
            morsel_rows: DEFAULT_MORSEL_ROWS,
            radix_bits: DEFAULT_RADIX_BITS,
        }
    }
}

impl JoinKernelConfig {
    /// Reject configurations the kernel cannot run with.
    pub fn validate(&self) -> Result<(), PStoreError> {
        if self.morsel_rows == 0 {
            return Err(PStoreError::planning("morsel size must be at least 1 row"));
        }
        if self.radix_bits > MAX_RADIX_BITS {
            return Err(PStoreError::planning(format!(
                "radix bits {} exceed the maximum of {MAX_RADIX_BITS}",
                self.radix_bits
            )));
        }
        Ok(())
    }

    /// Number of radix partitions (`2^radix_bits`).
    pub fn partitions(&self) -> usize {
        1 << self.radix_bits
    }
}

/// An integer key column borrowed as a typed slice. Resolving the column to a
/// slice once up front is what lets the build and probe loops hash raw
/// integers; a non-integer key column is rejected here, before any work runs.
#[derive(Debug, Clone, Copy)]
pub enum KeySlice<'a> {
    /// A 64-bit integer key column.
    I64(&'a [i64]),
    /// A 32-bit integer key column (widened to `i64` per access, matching the
    /// `Value`-level conversion so mixed-width joins keep working).
    I32(&'a [i32]),
}

impl<'a> KeySlice<'a> {
    /// Borrow `column` as a key slice, rejecting non-integer columns.
    pub fn try_from_column(column: &'a Column) -> Result<Self, PStoreError> {
        if let Some(values) = column.as_i64_slice() {
            Ok(KeySlice::I64(values))
        } else if let Some(values) = column.as_i32_slice() {
            Ok(KeySlice::I32(values))
        } else {
            Err(PStoreError::planning("join keys must be integer columns"))
        }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        match self {
            KeySlice::I64(values) => values.len(),
            KeySlice::I32(values) => values.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The key of `row`, widened to `i64`.
    #[inline]
    pub fn get(&self, row: usize) -> i64 {
        match self {
            KeySlice::I64(values) => values[row],
            KeySlice::I32(values) => i64::from(values[row]),
        }
    }
}

/// The shared morsel cursor. Workers are pre-assigned one *first-claim*
/// morsel each (worker `w` starts on morsel `w`) and the atomic cursor hands
/// out the rest, so every worker is guaranteed to retire at least one morsel
/// whenever there are at least as many morsels as workers — even on a single
/// hardware thread, where a purely shared cursor would let the first worker
/// drain everything before the others get scheduled.
#[derive(Debug)]
pub struct MorselCursor {
    next: AtomicUsize,
    morsels: usize,
    morsel_rows: usize,
    total_rows: usize,
}

impl MorselCursor {
    /// A cursor over `total_rows` rows in morsels of `morsel_rows`, with the
    /// first `reserved` morsels pre-assigned (one per worker).
    pub fn new(total_rows: usize, morsel_rows: usize, reserved: usize) -> Self {
        let morsels = total_rows.div_ceil(morsel_rows.max(1));
        Self {
            next: AtomicUsize::new(reserved),
            morsels,
            morsel_rows: morsel_rows.max(1),
            total_rows,
        }
    }

    /// Total number of morsels.
    pub fn morsels(&self) -> usize {
        self.morsels
    }

    /// The row range of `morsel`.
    pub fn range_of(&self, morsel: usize) -> std::ops::Range<usize> {
        let start = morsel * self.morsel_rows;
        start..(start + self.morsel_rows).min(self.total_rows)
    }

    /// Steal the next unclaimed morsel, or `None` once the input is drained.
    pub fn claim(&self) -> Option<usize> {
        let morsel = self.next.fetch_add(1, Ordering::Relaxed);
        (morsel < self.morsels).then_some(morsel)
    }
}

/// An open-addressing hash table over `(key: i64, row: u32)` pairs with
/// intrusive duplicate chains, covering one radix partition of the build
/// side.
///
/// Layout: `slots` is a power-of-two probe array holding entry indices (`-1`
/// for empty); `keys`/`rows`/`next` are parallel entry arrays appended in
/// insertion order. Duplicate keys share one slot and chain through `next`,
/// so fan-out probes walk a flat array instead of a per-key `Vec`.
///
/// Slot indices are taken from the hash bits *above* the radix bits
/// (`hash >> radix_bits`); the low bits already picked the partition, so
/// reusing them would collapse every key in a partition onto a few slots.
#[derive(Debug)]
pub struct RadixTable {
    slots: Vec<i32>,
    keys: Vec<i64>,
    rows: Vec<u32>,
    next: Vec<i32>,
    mask: u64,
    radix_bits: u8,
}

impl RadixTable {
    /// A table sized for `expected` entries in a partition selected by
    /// `radix_bits` low hash bits.
    pub fn with_capacity(expected: usize, radix_bits: u8) -> Self {
        // Keep the load factor at or below 0.5.
        let slot_count = (expected.max(1) * 2).next_power_of_two();
        Self {
            slots: vec![-1; slot_count],
            keys: Vec::with_capacity(expected),
            rows: Vec::with_capacity(expected),
            next: Vec::with_capacity(expected),
            mask: (slot_count - 1) as u64,
            radix_bits,
        }
    }

    /// Number of `(key, row)` entries inserted.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    #[inline]
    fn slot_of(&self, hash: u64) -> usize {
        ((hash >> self.radix_bits) & self.mask) as usize
    }

    /// Insert a build row. `hash` must be the key's full hash (the same one
    /// that selected this partition).
    pub fn insert(&mut self, key: i64, row: u32, hash: u64) {
        debug_assert!(
            self.keys.len() * 2 <= self.slots.len(),
            "RadixTable sized for {} entries overfilled",
            self.slots.len() / 2
        );
        let mut slot = self.slot_of(hash);
        loop {
            let entry = self.slots[slot];
            if entry < 0 {
                self.slots[slot] = self.push_entry(key, row, -1);
                return;
            }
            if self.keys[entry as usize] == key {
                // Duplicate key: new entry becomes the chain head.
                self.slots[slot] = self.push_entry(key, row, entry);
                return;
            }
            slot = (slot + 1) & self.mask as usize;
        }
    }

    fn push_entry(&mut self, key: i64, row: u32, next: i32) -> i32 {
        let index = self.keys.len() as i32;
        self.keys.push(key);
        self.rows.push(row);
        self.next.push(next);
        index
    }

    /// Append every build row matching `key` to `matches`, returning how many
    /// were appended.
    #[inline]
    pub fn probe_into(&self, key: i64, hash: u64, matches: &mut Vec<u32>) -> usize {
        let mut slot = self.slot_of(hash);
        loop {
            let entry = self.slots[slot];
            if entry < 0 {
                return 0;
            }
            if self.keys[entry as usize] == key {
                let before = matches.len();
                let mut e = entry;
                while e >= 0 {
                    matches.push(self.rows[e as usize]);
                    e = self.next[e as usize];
                }
                return matches.len() - before;
            }
            slot = (slot + 1) & self.mask as usize;
        }
    }
}

/// An open-addressing map from `i64` group key to a dense group id
/// (`0..len`), the hash-table half of grouped aggregation. Grows by
/// rehashing when the load factor passes 0.5; keys are retained in insertion
/// order so accumulator state can live in flat arrays indexed by group id.
#[derive(Debug)]
pub struct GroupMap {
    slots: Vec<i32>,
    keys: Vec<i64>,
    mask: u64,
}

impl GroupMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::with_capacity(16)
    }

    /// An empty map sized for `expected` distinct keys.
    pub fn with_capacity(expected: usize) -> Self {
        let slot_count = (expected.max(8) * 2).next_power_of_two();
        Self {
            slots: vec![-1; slot_count],
            keys: Vec::with_capacity(expected),
            mask: (slot_count - 1) as u64,
        }
    }

    /// Number of distinct keys seen.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no keys have been seen.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The distinct keys in insertion (group-id) order.
    pub fn keys(&self) -> &[i64] {
        &self.keys
    }

    /// The dense group id of `key`, inserting it if new.
    #[inline]
    pub fn get_or_insert(&mut self, key: i64) -> usize {
        if self.keys.len() * 2 >= self.slots.len() {
            self.grow();
        }
        let hash = eedc_storage::hash_i64(key);
        let mut slot = (hash & self.mask) as usize;
        loop {
            let entry = self.slots[slot];
            if entry < 0 {
                let id = self.keys.len();
                self.slots[slot] = id as i32;
                self.keys.push(key);
                return id;
            }
            if self.keys[entry as usize] == key {
                return entry as usize;
            }
            slot = (slot + 1) & self.mask as usize;
        }
    }

    fn grow(&mut self) {
        let slot_count = self.slots.len() * 2;
        self.slots = vec![-1; slot_count];
        self.mask = (slot_count - 1) as u64;
        for (id, &key) in self.keys.iter().enumerate() {
            let hash = eedc_storage::hash_i64(key);
            let mut slot = (hash & self.mask) as usize;
            while self.slots[slot] >= 0 {
                slot = (slot + 1) & self.mask as usize;
            }
            self.slots[slot] = id as i32;
        }
    }
}

impl Default for GroupMap {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eedc_storage::hash_i64;

    #[test]
    fn config_defaults_and_validation() {
        let config = JoinKernelConfig::default();
        assert_eq!(config.morsel_rows, DEFAULT_MORSEL_ROWS);
        assert_eq!(config.radix_bits, DEFAULT_RADIX_BITS);
        assert_eq!(config.partitions(), 16);
        config.validate().unwrap();
        assert!(JoinKernelConfig {
            morsel_rows: 0,
            ..config
        }
        .validate()
        .is_err());
        assert!(JoinKernelConfig {
            radix_bits: MAX_RADIX_BITS + 1,
            ..config
        }
        .validate()
        .is_err());
        assert_eq!(
            JoinKernelConfig {
                radix_bits: 0,
                ..config
            }
            .partitions(),
            1
        );
    }

    #[test]
    fn key_slice_widens_i32_and_rejects_floats() {
        let narrow = Column::Int32(vec![-3, 7]);
        let keys = KeySlice::try_from_column(&narrow).unwrap();
        assert_eq!(keys.len(), 2);
        assert!(!keys.is_empty());
        assert_eq!(keys.get(0), -3_i64);
        let wide = Column::Int64(vec![i64::MIN]);
        let keys = KeySlice::try_from_column(&wide).unwrap();
        assert_eq!(keys.get(0), i64::MIN);
        assert!(KeySlice::try_from_column(&Column::Float64(vec![1.0])).is_err());
    }

    #[test]
    fn morsel_cursor_covers_every_row_exactly_once() {
        let cursor = MorselCursor::new(100, 32, 2);
        assert_eq!(cursor.morsels(), 4);
        // First-claim morsels 0 and 1 are reserved; the cursor serves 2, 3.
        let mut claimed = vec![0, 1];
        while let Some(m) = cursor.claim() {
            claimed.push(m);
        }
        claimed.sort_unstable();
        assert_eq!(claimed, vec![0, 1, 2, 3]);
        let rows: usize = claimed.iter().map(|&m| cursor.range_of(m).len()).sum();
        assert_eq!(rows, 100);
        assert_eq!(cursor.range_of(3), 96..100);
        // Empty input has zero morsels.
        assert_eq!(MorselCursor::new(0, 32, 1).morsels(), 0);
        assert!(MorselCursor::new(0, 32, 0).claim().is_none());
    }

    #[test]
    fn radix_table_probes_duplicates_and_misses() {
        let mut table = RadixTable::with_capacity(4, 0);
        for (key, row) in [(10, 0), (11, 1), (10, 2), (10, 3)] {
            table.insert(key, row, hash_i64(key));
        }
        assert_eq!(table.len(), 4);
        assert!(!table.is_empty());
        let mut matches = Vec::new();
        assert_eq!(table.probe_into(10, hash_i64(10), &mut matches), 3);
        matches.sort_unstable();
        assert_eq!(matches, vec![0, 2, 3]);
        matches.clear();
        assert_eq!(table.probe_into(11, hash_i64(11), &mut matches), 1);
        assert_eq!(table.probe_into(99, hash_i64(99), &mut matches), 0);
    }

    #[test]
    fn radix_table_survives_slot_collisions() {
        // A tightly sized slot array (load factor 0.5 over 128 keys) makes
        // slot collisions certain; linear probing must keep every distinct
        // key retrievable.
        let keys: Vec<i64> = (0..128).map(|i| (i as i64 - 64) * 7919).collect();
        let mut table = RadixTable::with_capacity(keys.len(), 4);
        for (row, &key) in keys.iter().enumerate() {
            table.insert(key, row as u32, hash_i64(key));
        }
        for (row, &key) in keys.iter().enumerate() {
            let mut matches = Vec::new();
            assert_eq!(table.probe_into(key, hash_i64(key), &mut matches), 1);
            assert_eq!(matches, vec![row as u32]);
        }
    }

    #[test]
    fn group_map_assigns_dense_ids_and_grows() {
        let mut map = GroupMap::new();
        assert!(map.is_empty());
        // More keys than the initial capacity, including negatives.
        for i in 0..1000_i64 {
            let id = map.get_or_insert(i - 500);
            assert_eq!(id, i as usize);
        }
        assert_eq!(map.len(), 1000);
        // Re-inserting returns the existing id.
        assert_eq!(map.get_or_insert(-500), 0);
        assert_eq!(map.get_or_insert(499), 999);
        assert_eq!(map.keys()[0], -500);
        assert_eq!(GroupMap::default().len(), 0);
    }

    #[test]
    fn default_worker_threads_is_clamped() {
        let threads = default_worker_threads();
        assert!((1..=16).contains(&threads));
    }
}
