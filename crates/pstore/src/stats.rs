//! Execution statistics: per-phase breakdowns and whole-query measurements.

use crate::plan::JoinStrategy;
use eedc_simkit::metrics::Measurement;
use eedc_simkit::units::{Joules, Megabytes, Seconds, Watts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether every node executed the full operator tree or the Wimpy nodes were
/// demoted to scan-and-filter producers (Section 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Every node scans, builds and probes.
    Homogeneous,
    /// Wimpy nodes only scan and filter; Beefy nodes build and probe.
    Heterogeneous,
}

impl fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionMode::Homogeneous => write!(f, "homogeneous"),
            ExecutionMode::Heterogeneous => write!(f, "heterogeneous"),
        }
    }
}

/// Inverse of the `Display` labels, so serialized run records round-trip.
impl std::str::FromStr for ExecutionMode {
    type Err = crate::error::PStoreError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "homogeneous" => Ok(ExecutionMode::Homogeneous),
            "heterogeneous" => Ok(ExecutionMode::Heterogeneous),
            other => Err(crate::error::PStoreError::planning(format!(
                "unknown execution mode '{other}'"
            ))),
        }
    }
}

/// The resource that bounded a phase's duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bottleneck {
    /// The storage subsystem (or in-memory scan CPU path) of a producer node.
    Scan,
    /// The cluster interconnect.
    Network,
    /// The hash-table build / probe CPU path of a consumer node.
    Compute,
}

impl fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bottleneck::Scan => write!(f, "scan"),
            Bottleneck::Network => write!(f, "network"),
            Bottleneck::Compute => write!(f, "compute"),
        }
    }
}

/// Inverse of the `Display` labels, so serialized run records round-trip.
impl std::str::FromStr for Bottleneck {
    type Err = crate::error::PStoreError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scan" => Ok(Bottleneck::Scan),
            "network" => Ok(Bottleneck::Network),
            "compute" => Ok(Bottleneck::Compute),
            other => Err(crate::error::PStoreError::planning(format!(
                "unknown bottleneck '{other}'"
            ))),
        }
    }
}

/// Time, energy and data-volume breakdown of one execution phase (build or
/// probe).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Phase label (`"build"` / `"probe"`).
    pub label: String,
    /// Wall-clock duration of the phase.
    pub duration: Seconds,
    /// Cluster energy consumed during the phase.
    pub energy: Joules,
    /// Bytes scanned from the source fragments (at nominal scale).
    pub bytes_scanned: Megabytes,
    /// Qualifying bytes that crossed the network (at nominal scale).
    pub bytes_over_network: Megabytes,
    /// Time the slowest producer spent scanning/filtering.
    pub scan_time: Seconds,
    /// Completion time of the network transfer.
    pub network_time: Seconds,
    /// Time the slowest consumer spent building/probing.
    pub compute_time: Seconds,
    /// The component that bounded the phase.
    pub bottleneck: Bottleneck,
    /// Per-node CPU utilization during the phase, in cluster node order.
    pub node_utilization: Vec<f64>,
    /// Per-node energy over the phase, in cluster node order. Sums to
    /// `energy`; under join-key skew the hot node's share dominates.
    pub node_energy: Vec<Joules>,
    /// Bytes each node pushed out of its egress port during the phase (at
    /// nominal scale), in cluster node order.
    pub node_egress: Vec<Megabytes>,
    /// Bytes each node received on its ingress port during the phase (at
    /// nominal scale), in cluster node order.
    pub node_ingress: Vec<Megabytes>,
    /// Port-serialization time per node — the busier of its two directions
    /// over its port bandwidth — in cluster node order.
    pub node_network_time: Vec<Seconds>,
}

impl PhaseStats {
    /// Average cluster power during the phase.
    pub fn average_power(&self) -> Watts {
        if self.duration.value() <= f64::EPSILON {
            Watts::zero()
        } else {
            self.energy / self.duration
        }
    }

    /// Fraction of the phase the slowest producer/consumer CPUs were stalled
    /// waiting on the bottleneck resource (0 when the phase is CPU bound).
    pub fn stall_fraction(&self) -> f64 {
        if self.duration.value() <= f64::EPSILON {
            return 0.0;
        }
        let busy = self.scan_time.max(self.compute_time);
        (1.0 - busy.value() / self.duration.value()).max(0.0)
    }

    /// Fraction of the phase the slowest producer spent scanning, in
    /// `[0, 1]` — the scan busy share a utilization-trace export carries
    /// (see `eedc_dbmsim::trace`).
    pub fn scan_fraction(&self) -> f64 {
        self.busy_fraction(self.scan_time)
    }

    /// Fraction of the phase the network transfer was in flight, in
    /// `[0, 1]`.
    pub fn network_fraction(&self) -> f64 {
        self.busy_fraction(self.network_time)
    }

    /// Fraction of the phase the slowest consumer spent building or
    /// probing, in `[0, 1]`.
    pub fn compute_fraction(&self) -> f64 {
        self.busy_fraction(self.compute_time)
    }

    /// Fraction of the phase node `id`'s network port was serializing data,
    /// in `[0, 1]`. Falls back to the phase-level [`network_fraction`]
    /// (the completion time of the whole transfer) for stats recorded
    /// before per-node volumes were exported.
    ///
    /// [`network_fraction`]: PhaseStats::network_fraction
    pub fn node_network_fraction(&self, id: usize) -> f64 {
        match self.node_network_time.get(id) {
            Some(busy) => self.busy_fraction(*busy),
            None => self.network_fraction(),
        }
    }

    fn busy_fraction(&self, busy: Seconds) -> f64 {
        if self.duration.value() <= f64::EPSILON {
            return 0.0;
        }
        (busy.value() / self.duration.value()).clamp(0.0, 1.0)
    }
}

/// The complete result of executing one query (or one batch of concurrent
/// queries) on a P-store cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryExecution {
    /// Human-readable cluster label (e.g. `"8B,0W"`, `"2B,2W"`).
    pub cluster_label: String,
    /// The join strategy that was executed.
    pub strategy: JoinStrategy,
    /// Homogeneous or heterogeneous execution.
    pub mode: ExecutionMode,
    /// Number of identical concurrent queries in the batch.
    pub concurrency: usize,
    /// Per-phase statistics, in execution order.
    pub phases: Vec<PhaseStats>,
    /// Join output rows (per query, verified against the engine-scale data).
    pub output_rows: usize,
}

impl QueryExecution {
    /// Total response time (phases are sequential).
    pub fn response_time(&self) -> Seconds {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// Total cluster energy.
    pub fn energy(&self) -> Joules {
        self.phases.iter().map(|p| p.energy).sum()
    }

    /// Collapse into a [`Measurement`] for normalization / EDP analysis.
    pub fn measurement(&self) -> Measurement {
        Measurement::new(self.response_time(), self.energy())
    }

    /// Total bytes that crossed the network across all phases.
    pub fn bytes_over_network(&self) -> Megabytes {
        self.phases.iter().map(|p| p.bytes_over_network).sum()
    }

    /// The phase with the given label, if present.
    pub fn phase(&self, label: &str) -> Option<&PhaseStats> {
        self.phases.iter().find(|p| p.label == label)
    }

    /// Fraction of the total response time spent in network-bound phases.
    pub fn network_bound_fraction(&self) -> f64 {
        let total = self.response_time().value();
        if total <= f64::EPSILON {
            return 0.0;
        }
        self.phases
            .iter()
            .filter(|p| p.bottleneck == Bottleneck::Network)
            .map(|p| p.duration.value())
            .sum::<f64>()
            / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(label: &str, duration: f64, energy: f64, bottleneck: Bottleneck) -> PhaseStats {
        PhaseStats {
            label: label.into(),
            duration: Seconds(duration),
            energy: Joules(energy),
            bytes_scanned: Megabytes(1000.0),
            bytes_over_network: Megabytes(100.0),
            scan_time: Seconds(duration * 0.5),
            network_time: Seconds(duration),
            compute_time: Seconds(duration * 0.1),
            bottleneck,
            node_utilization: vec![0.5, 0.5],
            node_energy: vec![Joules(energy / 2.0), Joules(energy / 2.0)],
            node_egress: vec![Megabytes(60.0), Megabytes(40.0)],
            node_ingress: vec![Megabytes(50.0), Megabytes(50.0)],
            node_network_time: vec![Seconds(duration), Seconds(duration * 0.25)],
        }
    }

    fn execution() -> QueryExecution {
        QueryExecution {
            cluster_label: "8B,0W".into(),
            strategy: JoinStrategy::DualShuffle,
            mode: ExecutionMode::Homogeneous,
            concurrency: 1,
            phases: vec![
                phase("build", 2.0, 500.0, Bottleneck::Network),
                phase("probe", 8.0, 2000.0, Bottleneck::Network),
            ],
            output_rows: 1234,
        }
    }

    #[test]
    fn totals_aggregate_phases() {
        let e = execution();
        assert_eq!(e.response_time(), Seconds(10.0));
        assert_eq!(e.energy(), Joules(2500.0));
        assert_eq!(e.measurement().response_time, Seconds(10.0));
        assert_eq!(e.bytes_over_network(), Megabytes(200.0));
        assert!(e.phase("build").is_some());
        assert!(e.phase("shuffle").is_none());
        assert_eq!(e.network_bound_fraction(), 1.0);
    }

    #[test]
    fn phase_helpers() {
        let p = phase("build", 4.0, 1000.0, Bottleneck::Network);
        assert_eq!(p.average_power(), Watts(250.0));
        assert!((p.stall_fraction() - 0.5).abs() < 1e-12);
        let idle = PhaseStats {
            duration: Seconds(0.0),
            ..p.clone()
        };
        assert_eq!(idle.average_power(), Watts::zero());
        assert_eq!(idle.stall_fraction(), 0.0);
    }

    #[test]
    fn busy_fractions_are_clamped_shares_of_the_duration() {
        // The fixture sets scan = duration/2, network = duration, compute =
        // duration/10 — exactly the busy shares a trace export carries.
        let p = phase("build", 4.0, 1000.0, Bottleneck::Network);
        assert!((p.scan_fraction() - 0.5).abs() < 1e-12);
        assert!((p.network_fraction() - 1.0).abs() < 1e-12);
        assert!((p.compute_fraction() - 0.1).abs() < 1e-12);
        // A component that outlasts the recorded duration clamps to 1, and a
        // zero-duration phase reads as fully idle.
        let long_scan = PhaseStats {
            scan_time: Seconds(10.0),
            ..p.clone()
        };
        assert_eq!(long_scan.scan_fraction(), 1.0);
        let idle = PhaseStats {
            duration: Seconds(0.0),
            ..p
        };
        assert_eq!(idle.network_fraction(), 0.0);
    }

    #[test]
    fn node_network_fraction_is_per_node_with_phase_level_fallback() {
        // The fixture gives node 0 a port busy for the whole phase and node 1
        // a port busy for a quarter of it.
        let p = phase("build", 4.0, 1000.0, Bottleneck::Network);
        assert!((p.node_network_fraction(0) - 1.0).abs() < 1e-12);
        assert!((p.node_network_fraction(1) - 0.25).abs() < 1e-12);
        // Stats recorded before per-node volumes were exported carry empty
        // vectors; every node then reads the phase-level transfer fraction.
        let legacy = PhaseStats {
            node_egress: Vec::new(),
            node_ingress: Vec::new(),
            node_network_time: Vec::new(),
            ..p.clone()
        };
        assert_eq!(legacy.node_network_fraction(0), legacy.network_fraction());
        assert_eq!(legacy.node_network_fraction(1), legacy.network_fraction());
    }

    #[test]
    fn display_of_enums() {
        assert_eq!(ExecutionMode::Homogeneous.to_string(), "homogeneous");
        assert_eq!(ExecutionMode::Heterogeneous.to_string(), "heterogeneous");
        assert_eq!(Bottleneck::Scan.to_string(), "scan");
        assert_eq!(Bottleneck::Network.to_string(), "network");
        assert_eq!(Bottleneck::Compute.to_string(), "compute");
    }

    #[test]
    fn enum_labels_round_trip_through_from_str() {
        for mode in [ExecutionMode::Homogeneous, ExecutionMode::Heterogeneous] {
            assert_eq!(mode.to_string().parse::<ExecutionMode>().unwrap(), mode);
        }
        for bottleneck in [Bottleneck::Scan, Bottleneck::Network, Bottleneck::Compute] {
            assert_eq!(
                bottleneck.to_string().parse::<Bottleneck>().unwrap(),
                bottleneck
            );
        }
        assert!("homo".parse::<ExecutionMode>().is_err());
        assert!("disk".parse::<Bottleneck>().is_err());
    }
}
