//! Error type for the P-store execution engine.

use eedc_netsim::NetError;
use eedc_simkit::SimError;
use eedc_storage::StorageError;
use std::fmt;

/// Errors produced while planning or executing a P-store query.
#[derive(Debug, Clone, PartialEq)]
pub enum PStoreError {
    /// An error bubbled up from the storage engine.
    Storage(StorageError),
    /// An error bubbled up from the network simulator.
    Network(NetError),
    /// An error bubbled up from the simulation substrate.
    Sim(SimError),
    /// The requested plan cannot be executed on the given cluster (e.g. no
    /// node has enough memory for the build-side hash table).
    Planning {
        /// Human-readable description.
        reason: String,
    },
}

impl PStoreError {
    /// Convenience constructor for [`PStoreError::Planning`].
    pub fn planning(reason: impl Into<String>) -> Self {
        PStoreError::Planning {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for PStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PStoreError::Storage(e) => write!(f, "storage error: {e}"),
            PStoreError::Network(e) => write!(f, "network error: {e}"),
            PStoreError::Sim(e) => write!(f, "simulation error: {e}"),
            PStoreError::Planning { reason } => write!(f, "planning error: {reason}"),
        }
    }
}

impl std::error::Error for PStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PStoreError::Storage(e) => Some(e),
            PStoreError::Network(e) => Some(e),
            PStoreError::Sim(e) => Some(e),
            PStoreError::Planning { .. } => None,
        }
    }
}

impl From<StorageError> for PStoreError {
    fn from(e: StorageError) -> Self {
        PStoreError::Storage(e)
    }
}

impl From<NetError> for PStoreError {
    fn from(e: NetError) -> Self {
        PStoreError::Network(e)
    }
}

impl From<SimError> for PStoreError {
    fn from(e: SimError) -> Self {
        PStoreError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: PStoreError = StorageError::invalid("x").into();
        assert!(e.to_string().contains("storage error"));
        let e: PStoreError = NetError::invalid("y").into();
        assert!(e.to_string().contains("network error"));
        let e: PStoreError = SimError::invalid("z").into();
        assert!(e.to_string().contains("simulation error"));
        let e = PStoreError::planning("hash table too large");
        assert!(e.to_string().contains("hash table too large"));
        use std::error::Error;
        assert!(PStoreError::planning("x").source().is_none());
        assert!(PStoreError::from(StorageError::invalid("x"))
            .source()
            .is_some());
    }
}
