//! Error types for the network simulator.

use std::fmt;

/// Errors produced by the network simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// A flow or capacity referenced a node outside the fabric.
    UnknownNode {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the fabric.
        fabric_size: usize,
    },
    /// A physical parameter (bandwidth, bytes) was not a positive finite
    /// number.
    InvalidParameter {
        /// Human-readable description.
        reason: String,
    },
    /// The simulation could not make progress (e.g. every remaining flow has
    /// zero allocated rate because a port has zero capacity).
    Stalled {
        /// Human-readable description.
        reason: String,
    },
}

impl NetError {
    /// Convenience constructor for [`NetError::InvalidParameter`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        NetError::InvalidParameter {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`NetError::Stalled`].
    pub fn stalled(reason: impl Into<String>) -> Self {
        NetError::Stalled {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode { node, fabric_size } => {
                write!(f, "node {node} outside fabric of {fabric_size} nodes")
            }
            NetError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            NetError::Stalled { reason } => write!(f, "transfer simulation stalled: {reason}"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetError::UnknownNode {
            node: 9,
            fabric_size: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(NetError::invalid("zero bandwidth")
            .to_string()
            .contains("zero bandwidth"));
        assert!(NetError::stalled("no capacity")
            .to_string()
            .contains("stalled"));
    }
}
