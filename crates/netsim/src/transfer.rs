//! Transfer plans and the flow-completion simulator.
//!
//! A *transfer* is a set of flows executed concurrently over the fabric: the
//! repartitioning shuffle of a partition-incompatible join, the broadcast of a
//! small build table, or the gather of filtered tuples into the Beefy nodes of
//! a heterogeneous plan. The [`TransferSimulator`] advances simulated time
//! from flow completion to flow completion, recomputing the max–min fair
//! rates whenever a flow finishes, and reports per-flow and per-node
//! completion times.

use crate::error::NetError;
use crate::fabric::{Fabric, NodeId};
use crate::fairshare::max_min_fair_share;
use crate::flow::{Flow, FlowSet};
use eedc_simkit::units::{Megabytes, Seconds};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Numerical floor below which a flow is considered complete.
const BYTES_EPSILON: f64 = 1e-9;

/// Build the flow set of a hash-repartition *shuffle*: every node `i` holds
/// `qualifying[i]` MB of predicate-passing tuples and hash-partitions them
/// uniformly across `destinations`. Data hashed to the local node never
/// crosses the network and is recorded as a local flow.
///
/// With `destinations` equal to all nodes this is the dual-shuffle pattern of
/// Section 4.3.1; with `destinations` restricted to the Beefy nodes it is the
/// heterogeneous scan-and-forward pattern of Section 5.2.2.
pub fn shuffle_flows(qualifying: &[Megabytes], destinations: &[NodeId], group: usize) -> FlowSet {
    let mut set = FlowSet::new();
    if destinations.is_empty() {
        return set;
    }
    let share = 1.0 / destinations.len() as f64;
    for (source, &bytes) in qualifying.iter().enumerate() {
        if bytes.value() <= 0.0 {
            continue;
        }
        for &destination in destinations {
            set.push(Flow::with_group(source, destination, bytes * share, group));
        }
    }
    set
}

/// Build the flow set of a *broadcast*: every node sends its full qualifying
/// data to every destination other than itself. This reproduces the paper's
/// algorithmic bottleneck (Section 4.1): each of the `N` destinations must
/// receive roughly the entire table — `(N−1)/N` of it — regardless of how
/// many nodes participate, so broadcasts do not get faster with more nodes.
pub fn broadcast_flows(qualifying: &[Megabytes], destinations: &[NodeId], group: usize) -> FlowSet {
    let mut set = FlowSet::new();
    for (source, &bytes) in qualifying.iter().enumerate() {
        if bytes.value() <= 0.0 {
            continue;
        }
        for &destination in destinations {
            if destination == source {
                // The local copy is free; record it so byte accounting stays
                // exact, as a local flow.
                set.push(Flow::with_group(source, source, bytes, group));
            } else {
                set.push(Flow::with_group(source, destination, bytes, group));
            }
        }
    }
    set
}

/// Build the flow set of a *gather*: every node ships its full qualifying
/// data to a single coordinator node (e.g. the final aggregation step of a
/// scan-heavy query).
pub fn gather_flows(qualifying: &[Megabytes], destination: NodeId, group: usize) -> FlowSet {
    let mut set = FlowSet::new();
    for (source, &bytes) in qualifying.iter().enumerate() {
        if bytes.value() <= 0.0 {
            continue;
        }
        set.push(Flow::with_group(source, destination, bytes, group));
    }
    set
}

/// The result of simulating a transfer to completion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferOutcome {
    /// Time at which the last flow finished.
    pub total_time: Seconds,
    /// Completion time of each flow, indexed like the input flow set. Local
    /// flows complete at time zero.
    pub flow_completion: Vec<Seconds>,
    /// Completion time of each flow group (query), keyed by group id.
    pub group_completion: BTreeMap<usize, Seconds>,
    /// Per-node time until the node finished sending all of its outbound
    /// flows.
    pub node_send_completion: Vec<Seconds>,
    /// Per-node time until the node finished receiving all of its inbound
    /// flows.
    pub node_receive_completion: Vec<Seconds>,
}

impl TransferOutcome {
    /// The time at which a node has neither outstanding sends nor receives.
    pub fn node_completion(&self, node: NodeId) -> Seconds {
        let send = self
            .node_send_completion
            .get(node)
            .copied()
            .unwrap_or(Seconds::zero());
        let recv = self
            .node_receive_completion
            .get(node)
            .copied()
            .unwrap_or(Seconds::zero());
        send.max(recv)
    }

    /// Average effective throughput of the whole transfer (network bytes over
    /// total time); zero for an instantaneous transfer.
    pub fn effective_throughput(&self, flows: &FlowSet) -> f64 {
        if self.total_time.value() <= f64::EPSILON {
            0.0
        } else {
            flows.network_bytes().value() / self.total_time.value()
        }
    }
}

/// Flow-completion simulator over one fabric.
#[derive(Debug, Clone)]
pub struct TransferSimulator<'a> {
    fabric: &'a Fabric,
}

impl<'a> TransferSimulator<'a> {
    /// Create a simulator over the given fabric.
    pub fn new(fabric: &'a Fabric) -> Self {
        Self { fabric }
    }

    /// Simulate the flow set to completion.
    ///
    /// The simulation recomputes the max–min fair allocation each time a flow
    /// finishes; between completions the rates are constant, so each step
    /// advances time by the smallest remaining-bytes / rate among the active
    /// flows. The loop terminates in at most `flows.len()` steps because at
    /// least one flow completes per step.
    pub fn run(&self, flows: &FlowSet) -> Result<TransferOutcome, NetError> {
        flows.validate(self.fabric)?;
        let n_flows = flows.len();
        let n_nodes = self.fabric.len();
        let mut remaining: Vec<f64> = flows.flows().iter().map(|f| f.bytes.value()).collect();
        let mut completion = vec![Seconds::zero(); n_flows];
        let mut now = 0.0_f64;

        // Local flows and empty flows complete immediately.
        for (idx, flow) in flows.flows().iter().enumerate() {
            if flow.is_local() || remaining[idx] <= BYTES_EPSILON {
                remaining[idx] = 0.0;
            }
        }

        loop {
            let active: Vec<(usize, Flow)> = flows
                .flows()
                .iter()
                .enumerate()
                .filter(|(idx, flow)| remaining[*idx] > BYTES_EPSILON && !flow.is_local())
                .map(|(idx, flow)| (idx, *flow))
                .collect();
            if active.is_empty() {
                break;
            }
            let allocation = max_min_fair_share(self.fabric, &active)?;

            // Time until the first active flow completes at the current rates.
            let mut dt = f64::INFINITY;
            for rate in allocation.rates() {
                let r = rate.rate.value();
                if r > 0.0 {
                    dt = dt.min(remaining[rate.flow] / r);
                }
            }
            if !dt.is_finite() {
                return Err(NetError::stalled(
                    "every active flow has zero allocated rate",
                ));
            }

            now += dt;
            for rate in allocation.rates() {
                let r = rate.rate.value();
                if r <= 0.0 {
                    continue;
                }
                remaining[rate.flow] -= r * dt;
                if remaining[rate.flow] <= BYTES_EPSILON {
                    remaining[rate.flow] = 0.0;
                    completion[rate.flow] = Seconds(now);
                }
            }
        }

        let total_time = Seconds(now);
        let mut group_completion: BTreeMap<usize, Seconds> = BTreeMap::new();
        let mut node_send_completion = vec![Seconds::zero(); n_nodes];
        let mut node_receive_completion = vec![Seconds::zero(); n_nodes];
        for (idx, flow) in flows.flows().iter().enumerate() {
            let done = completion[idx];
            let entry = group_completion
                .entry(flow.group)
                .or_insert(Seconds::zero());
            *entry = entry.max(done);
            if !flow.is_local() {
                node_send_completion[flow.source] = node_send_completion[flow.source].max(done);
                node_receive_completion[flow.destination] =
                    node_receive_completion[flow.destination].max(done);
            }
        }

        Ok(TransferOutcome {
            total_time,
            flow_completion: completion,
            group_completion,
            node_send_completion,
            node_receive_completion,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eedc_simkit::units::MegabytesPerSec;

    fn uniform(megabytes: f64, nodes: usize) -> Vec<Megabytes> {
        vec![Megabytes(megabytes); nodes]
    }

    #[test]
    fn single_flow_time_is_bytes_over_port() {
        let fabric = Fabric::uniform(2, MegabytesPerSec(100.0)).unwrap();
        let flows = FlowSet::from_flows([Flow::new(0, 1, Megabytes(500.0))]);
        let outcome = TransferSimulator::new(&fabric).run(&flows).unwrap();
        assert!((outcome.total_time.value() - 5.0).abs() < 1e-9);
        assert!((outcome.effective_throughput(&flows) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn local_flows_are_instant() {
        let fabric = Fabric::gigabit(2).unwrap();
        let flows = FlowSet::from_flows([Flow::new(0, 0, Megabytes(10_000.0))]);
        let outcome = TransferSimulator::new(&fabric).run(&flows).unwrap();
        assert_eq!(outcome.total_time, Seconds::zero());
        assert_eq!(outcome.flow_completion[0], Seconds::zero());
    }

    #[test]
    fn empty_flow_set_completes_instantly() {
        let fabric = Fabric::gigabit(2).unwrap();
        let outcome = TransferSimulator::new(&fabric)
            .run(&FlowSet::new())
            .unwrap();
        assert_eq!(outcome.total_time, Seconds::zero());
        assert!(outcome.group_completion.is_empty());
    }

    #[test]
    fn shuffle_time_matches_closed_form() {
        // N nodes each shuffle D MB across all N nodes: each node sends
        // D·(N−1)/N over its egress port while receiving the same amount, so
        // the transfer takes D·(N−1)/(N·L).
        let n = 4;
        let d = 400.0;
        let l = 100.0;
        let fabric = Fabric::uniform(n, MegabytesPerSec(l)).unwrap();
        let dests: Vec<NodeId> = (0..n).collect();
        let flows = shuffle_flows(&uniform(d, n), &dests, 0);
        let outcome = TransferSimulator::new(&fabric).run(&flows).unwrap();
        let expected = d * (n as f64 - 1.0) / (n as f64 * l);
        assert!((outcome.total_time.value() - expected).abs() < 1e-6);
    }

    #[test]
    fn broadcast_time_is_independent_of_cluster_size() {
        // The algorithmic bottleneck: each receiver must ingest almost the
        // whole table, so going from 4 to 8 nodes barely changes the time.
        let total_table = 800.0;
        let l = 100.0;
        let mut times = Vec::new();
        for n in [4usize, 8usize] {
            let fabric = Fabric::uniform(n, MegabytesPerSec(l)).unwrap();
            let dests: Vec<NodeId> = (0..n).collect();
            let per_node = total_table / n as f64;
            let flows = broadcast_flows(&uniform(per_node, n), &dests, 0);
            let outcome = TransferSimulator::new(&fabric).run(&flows).unwrap();
            // Each node receives (n-1)/n of the table over its ingress port.
            let expected = total_table * (n as f64 - 1.0) / (n as f64 * l);
            assert!((outcome.total_time.value() - expected).abs() < 1e-6);
            times.push(outcome.total_time.value());
        }
        // 4 nodes: 6.0 s, 8 nodes: 7.0 s — more nodes is *slower*, never
        // faster, for a broadcast of a fixed-size table.
        assert!(times[1] > times[0]);
    }

    #[test]
    fn gather_is_limited_by_the_receiver_ingress() {
        let fabric = Fabric::uniform(4, MegabytesPerSec(100.0)).unwrap();
        let flows = gather_flows(&uniform(300.0, 4), 0, 0);
        let outcome = TransferSimulator::new(&fabric).run(&flows).unwrap();
        // Node 0's own 300 MB are local; 900 MB arrive through its 100 MB/s
        // ingress port.
        assert!((outcome.total_time.value() - 9.0).abs() < 1e-6);
        assert_eq!(outcome.node_receive_completion[0], outcome.total_time);
        assert_eq!(outcome.node_receive_completion[1], Seconds::zero());
    }

    #[test]
    fn heterogeneous_shuffle_is_bound_by_beefy_ingestion() {
        // 2 Beefy receivers (nodes 0, 1) ingest data scanned by all 4 nodes.
        // Paper, Section 5.3: "the Beefy nodes that are building the hash
        // tables can only receive data at the network's capacity even though
        // there may be many Wimpy nodes trying to send data to them".
        let fabric = Fabric::uniform(4, MegabytesPerSec(100.0)).unwrap();
        let flows = shuffle_flows(&uniform(400.0, 4), &[0, 1], 0);
        let outcome = TransferSimulator::new(&fabric).run(&flows).unwrap();
        // Each Beefy node receives 200 MB from each of the 3 other nodes
        // (its own 200 MB are local) = 600 MB at 100 MB/s = 6 s.
        assert!((outcome.total_time.value() - 6.0).abs() < 1e-6);
    }

    #[test]
    fn group_completion_tracks_concurrent_queries() {
        let fabric = Fabric::uniform(2, MegabytesPerSec(100.0)).unwrap();
        let mut flows = FlowSet::new();
        flows.push(Flow::with_group(0, 1, Megabytes(100.0), 1));
        flows.push(Flow::with_group(0, 1, Megabytes(300.0), 2));
        let outcome = TransferSimulator::new(&fabric).run(&flows).unwrap();
        let g1 = outcome.group_completion[&1];
        let g2 = outcome.group_completion[&2];
        // Both flows share the port; the smaller one finishes first, after
        // which the bigger one gets the full port.
        assert!(g1 < g2);
        assert!((g2.value() - 4.0).abs() < 1e-6);
        assert_eq!(outcome.total_time, g2);
        assert_eq!(outcome.node_completion(1), g2);
    }

    #[test]
    fn concurrency_slows_completion_but_not_throughput() {
        // Two concurrent all-to-all shuffles take twice as long as one, since
        // they share the same ports (Figure 3's concurrency sweep).
        let n = 4;
        let fabric = Fabric::uniform(n, MegabytesPerSec(100.0)).unwrap();
        let dests: Vec<NodeId> = (0..n).collect();
        let one = shuffle_flows(&uniform(400.0, n), &dests, 0);
        let t1 = TransferSimulator::new(&fabric)
            .run(&one)
            .unwrap()
            .total_time;
        let mut two = shuffle_flows(&uniform(400.0, n), &dests, 0);
        two.extend(&shuffle_flows(&uniform(400.0, n), &dests, 1));
        let t2 = TransferSimulator::new(&fabric)
            .run(&two)
            .unwrap()
            .total_time;
        assert!((t2.value() / t1.value() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn shuffle_with_no_destinations_is_empty() {
        assert!(shuffle_flows(&uniform(100.0, 3), &[], 0).is_empty());
    }

    #[test]
    fn invalid_flows_are_rejected() {
        let fabric = Fabric::gigabit(2).unwrap();
        let flows = FlowSet::from_flows([Flow::new(0, 5, Megabytes(1.0))]);
        assert!(TransferSimulator::new(&fabric).run(&flows).is_err());
    }

    #[test]
    fn byte_accounting_of_constructors() {
        let qualifying = [Megabytes(100.0), Megabytes(200.0), Megabytes(300.0)];
        let all: Vec<NodeId> = vec![0, 1, 2];
        let shuffle = shuffle_flows(&qualifying, &all, 0);
        assert!((shuffle.total_bytes().value() - 600.0).abs() < 1e-9);
        // Shuffle network bytes: each node keeps 1/3 locally.
        assert!((shuffle.network_bytes().value() - 400.0).abs() < 1e-9);
        let broadcast = broadcast_flows(&qualifying, &all, 0);
        // Broadcast: every node receives the full 600 MB (local copy included).
        assert!((broadcast.total_bytes().value() - 1800.0).abs() < 1e-9);
        assert!((broadcast.network_bytes().value() - 1200.0).abs() < 1e-9);
        let gather = gather_flows(&qualifying, 1, 0);
        assert!((gather.network_bytes().value() - 400.0).abs() < 1e-9);
    }
}
