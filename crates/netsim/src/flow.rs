//! Flows: the unit of network work.

use crate::error::NetError;
use crate::fabric::{Fabric, NodeId};
use eedc_simkit::units::Megabytes;
use serde::{Deserialize, Serialize};

/// Identifier of a flow within a [`FlowSet`] (its insertion index).
pub type FlowId = usize;

/// A single point-to-point transfer of `bytes` from `source` to
/// `destination`.
///
/// Flows whose source and destination are the same node represent local data
/// movement that never touches the network; the transfer simulator completes
/// them instantly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// Sending node.
    pub source: NodeId,
    /// Receiving node.
    pub destination: NodeId,
    /// Data volume to move.
    pub bytes: Megabytes,
    /// Tag grouping flows that belong to the same logical query / operator;
    /// used by the concurrency experiments to attribute completion times back
    /// to individual queries.
    pub group: usize,
}

impl Flow {
    /// A flow belonging to group 0.
    pub fn new(source: NodeId, destination: NodeId, bytes: Megabytes) -> Self {
        Self {
            source,
            destination,
            bytes,
            group: 0,
        }
    }

    /// A flow tagged with a query / operator group.
    pub fn with_group(source: NodeId, destination: NodeId, bytes: Megabytes, group: usize) -> Self {
        Self {
            source,
            destination,
            bytes,
            group,
        }
    }

    /// Whether the flow stays on its source node and never crosses the
    /// network.
    pub fn is_local(&self) -> bool {
        self.source == self.destination
    }
}

/// An ordered collection of flows making up one transfer (or several
/// concurrent transfers).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FlowSet {
    flows: Vec<Flow>,
}

impl FlowSet {
    /// An empty flow set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a flow set from an iterator of flows.
    pub fn from_flows(flows: impl IntoIterator<Item = Flow>) -> Self {
        Self {
            flows: flows.into_iter().collect(),
        }
    }

    /// Append a flow, returning its id.
    pub fn push(&mut self, flow: Flow) -> FlowId {
        self.flows.push(flow);
        self.flows.len() - 1
    }

    /// Append every flow of `other`, preserving their order.
    pub fn extend(&mut self, other: &FlowSet) {
        self.flows.extend_from_slice(&other.flows);
    }

    /// The flows in insertion order.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the set contains no flows.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Total bytes across all flows (including local flows).
    pub fn total_bytes(&self) -> Megabytes {
        self.flows.iter().map(|f| f.bytes).sum()
    }

    /// Total bytes that actually cross the network (excluding local flows).
    pub fn network_bytes(&self) -> Megabytes {
        self.flows
            .iter()
            .filter(|f| !f.is_local())
            .map(|f| f.bytes)
            .sum()
    }

    /// Total bytes received by one node over the network.
    pub fn bytes_into(&self, node: NodeId) -> Megabytes {
        self.flows
            .iter()
            .filter(|f| f.destination == node && !f.is_local())
            .map(|f| f.bytes)
            .sum()
    }

    /// Total bytes sent by one node over the network.
    pub fn bytes_out_of(&self, node: NodeId) -> Megabytes {
        self.flows
            .iter()
            .filter(|f| f.source == node && !f.is_local())
            .map(|f| f.bytes)
            .sum()
    }

    /// Validate every flow against a fabric: node ids in range, byte counts
    /// finite and non-negative.
    pub fn validate(&self, fabric: &Fabric) -> Result<(), NetError> {
        for flow in &self.flows {
            fabric.check_node(flow.source)?;
            fabric.check_node(flow.destination)?;
            if !flow.bytes.value().is_finite() || flow.bytes.value() < 0.0 {
                return Err(NetError::invalid(format!(
                    "flow {} -> {} has invalid byte count {}",
                    flow.source,
                    flow.destination,
                    flow.bytes.value()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_flows_are_detected() {
        assert!(Flow::new(2, 2, Megabytes(10.0)).is_local());
        assert!(!Flow::new(2, 3, Megabytes(10.0)).is_local());
    }

    #[test]
    fn per_node_accounting() {
        let set = FlowSet::from_flows([
            Flow::new(0, 1, Megabytes(10.0)),
            Flow::new(0, 2, Megabytes(20.0)),
            Flow::new(1, 2, Megabytes(5.0)),
            Flow::new(2, 2, Megabytes(100.0)), // local, never on the wire
        ]);
        assert_eq!(set.len(), 4);
        assert_eq!(set.total_bytes(), Megabytes(135.0));
        assert_eq!(set.network_bytes(), Megabytes(35.0));
        assert_eq!(set.bytes_out_of(0), Megabytes(30.0));
        assert_eq!(set.bytes_into(2), Megabytes(25.0));
        assert_eq!(set.bytes_into(1), Megabytes(10.0));
        assert_eq!(set.bytes_out_of(2), Megabytes(0.0));
    }

    #[test]
    fn validation_against_fabric() {
        let fabric = Fabric::gigabit(3).unwrap();
        let ok = FlowSet::from_flows([Flow::new(0, 2, Megabytes(1.0))]);
        assert!(ok.validate(&fabric).is_ok());
        let bad_node = FlowSet::from_flows([Flow::new(0, 3, Megabytes(1.0))]);
        assert!(bad_node.validate(&fabric).is_err());
        let bad_bytes = FlowSet::from_flows([Flow::new(0, 1, Megabytes(-1.0))]);
        assert!(bad_bytes.validate(&fabric).is_err());
    }

    #[test]
    fn extend_and_push_preserve_order() {
        let mut a = FlowSet::new();
        assert!(a.is_empty());
        let id = a.push(Flow::new(0, 1, Megabytes(1.0)));
        assert_eq!(id, 0);
        let b = FlowSet::from_flows([Flow::with_group(1, 0, Megabytes(2.0), 7)]);
        a.extend(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.flows()[1].group, 7);
    }
}
