//! # eedc-netsim
//!
//! Flow-level network simulator for shared-nothing database clusters.
//!
//! The paper identifies the cluster interconnect as the dominant hardware
//! bottleneck behind sub-linear speedup ("the repartitioning step is often
//! gated by the speed of the network interconnect", Section 4.1). This crate
//! simulates exactly the two effects the paper attributes that behaviour to:
//!
//! * **per-NIC capacity limits** — every node has a finite ingress and egress
//!   bandwidth (1 Gb/s ≈ 100 MB/s in the paper's clusters), so a node that
//!   must ingest data from the entire cluster (the Beefy nodes of a
//!   heterogeneous plan, or every node of a broadcast join) is limited by its
//!   inbound port no matter how many senders there are;
//! * **switch interference** — concurrent flows through the shared switch
//!   degrade each other ("an increase in network traffic on the cluster
//!   switches causes interference and further delays in communication").
//!
//! The simulator is *flow-level*: it never models individual packets. A
//! [`flow::Flow`] is a (source, destination, bytes) triple; the
//! [`fairshare`] module allocates max–min fair rates to all concurrently
//! active flows subject to the port and switch capacities of a
//! [`fabric::Fabric`]; and the [`transfer::TransferSimulator`] advances time
//! from flow completion to flow completion, producing per-flow finish times
//! and per-node busy intervals that the execution layers convert into CPU
//! stall time (and therefore energy).
//!
//! The [`transfer`] module also contains constructors for the two transfer
//! patterns that the paper's joins need: hash-repartition *shuffles* and
//! small-table *broadcasts*, both in homogeneous (all nodes build hash
//! tables) and heterogeneous (only Beefy nodes build) variants.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod fabric;
pub mod fairshare;
pub mod flow;
pub mod interference;
pub mod transfer;

pub use error::NetError;
pub use fabric::{Fabric, FabricBuilder, NodeId};
pub use fairshare::{FairShareAllocation, FlowRate};
pub use flow::{Flow, FlowId, FlowSet};
pub use interference::InterferenceModel;
pub use transfer::{
    broadcast_flows, gather_flows, shuffle_flows, TransferOutcome, TransferSimulator,
};
