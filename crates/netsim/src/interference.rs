//! Switch interference models.
//!
//! Section 4.1 of the paper notes that "an increase in network traffic on the
//! cluster switches causes interference and further delays in communication".
//! At the flow level we model this as a multiplicative *efficiency factor* on
//! every port capacity that degrades as the number of concurrently active
//! flows grows: with `k` concurrent flows every port delivers
//! `capacity · factor(k)` instead of its nominal capacity.

use serde::{Deserialize, Serialize};

/// How concurrent flows through the shared switch degrade effective port
/// capacity.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum InterferenceModel {
    /// An ideal, non-blocking switch: no degradation.
    #[default]
    None,
    /// A fixed efficiency factor applied regardless of load (e.g. 0.95 to
    /// model protocol overhead).
    Constant {
        /// Efficiency in `(0, 1]`.
        efficiency: f64,
    },
    /// Efficiency degrades hyperbolically with concurrency:
    /// `factor(k) = 1 / (1 + alpha · (k - 1))`. With `alpha = 0` this is a
    /// perfect switch; with `alpha = 0.02` sixteen concurrent flows lose ~23%
    /// of the port capacity.
    PerFlow {
        /// Marginal degradation per additional concurrent flow.
        alpha: f64,
    },
}

impl InterferenceModel {
    /// The effective capacity multiplier when `concurrent_flows` flows are
    /// simultaneously active. Always in `(0, 1]`; zero or one active flows
    /// never degrade.
    pub fn factor(&self, concurrent_flows: usize) -> f64 {
        if concurrent_flows <= 1 {
            return match *self {
                InterferenceModel::Constant { efficiency } => {
                    efficiency.clamp(f64::MIN_POSITIVE, 1.0)
                }
                _ => 1.0,
            };
        }
        match *self {
            InterferenceModel::None => 1.0,
            InterferenceModel::Constant { efficiency } => efficiency.clamp(f64::MIN_POSITIVE, 1.0),
            InterferenceModel::PerFlow { alpha } => {
                let alpha = alpha.max(0.0);
                1.0 / (1.0 + alpha * (concurrent_flows as f64 - 1.0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_interference_is_unity() {
        let m = InterferenceModel::None;
        assert_eq!(m.factor(0), 1.0);
        assert_eq!(m.factor(1), 1.0);
        assert_eq!(m.factor(64), 1.0);
        assert_eq!(InterferenceModel::default(), InterferenceModel::None);
    }

    #[test]
    fn constant_efficiency_applies_at_any_load() {
        let m = InterferenceModel::Constant { efficiency: 0.9 };
        assert!((m.factor(1) - 0.9).abs() < 1e-12);
        assert!((m.factor(10) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn per_flow_degradation_grows_with_concurrency() {
        let m = InterferenceModel::PerFlow { alpha: 0.02 };
        assert_eq!(m.factor(1), 1.0);
        let f2 = m.factor(2);
        let f16 = m.factor(16);
        assert!(f2 < 1.0 && f16 < f2);
        assert!((f16 - 1.0 / 1.3).abs() < 1e-9);
    }

    #[test]
    fn pathological_parameters_are_clamped() {
        let m = InterferenceModel::PerFlow { alpha: -1.0 };
        assert_eq!(m.factor(10), 1.0);
        let m = InterferenceModel::Constant { efficiency: 2.0 };
        assert_eq!(m.factor(10), 1.0);
    }
}
