//! The physical cluster interconnect: per-node NIC capacities, an optional
//! switch backplane limit, and an interference model.

use crate::error::NetError;
use crate::interference::InterferenceModel;
use eedc_simkit::units::MegabytesPerSec;
use serde::{Deserialize, Serialize};

/// Index of a node within the fabric (0-based).
pub type NodeId = usize;

/// The cluster interconnect.
///
/// The paper's clusters use a single 1 Gb/s switch (a 10/100/1000 SMCGS5 in
/// the prototype), so the default fabric is a uniform full-duplex 1 Gb/s port
/// per node and an unconstrained backplane. All parameters can be overridden
/// through the [`FabricBuilder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fabric {
    ingress: Vec<MegabytesPerSec>,
    egress: Vec<MegabytesPerSec>,
    switch_capacity: Option<MegabytesPerSec>,
    interference: InterferenceModel,
}

impl Fabric {
    /// A fabric of `nodes` identical full-duplex ports of `port_bandwidth`
    /// each, with an unconstrained switch backplane and no interference.
    pub fn uniform(nodes: usize, port_bandwidth: MegabytesPerSec) -> Result<Self, NetError> {
        FabricBuilder::new(nodes)
            .uniform_ports(port_bandwidth)
            .build()
    }

    /// The paper's 1 Gb/s gigabit-switch fabric (100 MB/s full-duplex ports).
    pub fn gigabit(nodes: usize) -> Result<Self, NetError> {
        Self::uniform(nodes, MegabytesPerSec::from_gigabits_per_sec(0.8))
    }

    /// Start building a fabric of `nodes` nodes.
    pub fn builder(nodes: usize) -> FabricBuilder {
        FabricBuilder::new(nodes)
    }

    /// Number of nodes attached to the fabric.
    pub fn len(&self) -> usize {
        self.ingress.len()
    }

    /// Whether the fabric has no nodes.
    pub fn is_empty(&self) -> bool {
        self.ingress.is_empty()
    }

    /// Ingress (receive) capacity of a node's port.
    pub fn ingress(&self, node: NodeId) -> Result<MegabytesPerSec, NetError> {
        self.ingress
            .get(node)
            .copied()
            .ok_or(NetError::UnknownNode {
                node,
                fabric_size: self.len(),
            })
    }

    /// Egress (send) capacity of a node's port.
    pub fn egress(&self, node: NodeId) -> Result<MegabytesPerSec, NetError> {
        self.egress.get(node).copied().ok_or(NetError::UnknownNode {
            node,
            fabric_size: self.len(),
        })
    }

    /// The switch backplane capacity, if constrained.
    pub fn switch_capacity(&self) -> Option<MegabytesPerSec> {
        self.switch_capacity
    }

    /// The interference model applied to concurrent flows.
    pub fn interference(&self) -> &InterferenceModel {
        &self.interference
    }

    /// Validate that a node id refers to a node of this fabric.
    pub fn check_node(&self, node: NodeId) -> Result<(), NetError> {
        if node < self.len() {
            Ok(())
        } else {
            Err(NetError::UnknownNode {
                node,
                fabric_size: self.len(),
            })
        }
    }
}

/// Builder for [`Fabric`].
#[derive(Debug, Clone)]
pub struct FabricBuilder {
    nodes: usize,
    ingress: Vec<MegabytesPerSec>,
    egress: Vec<MegabytesPerSec>,
    switch_capacity: Option<MegabytesPerSec>,
    interference: InterferenceModel,
}

impl FabricBuilder {
    /// Start a builder for a fabric of `nodes` nodes with default 1 Gb/s
    /// full-duplex ports.
    pub fn new(nodes: usize) -> Self {
        let default_port = MegabytesPerSec::from_gigabits_per_sec(0.8);
        Self {
            nodes,
            ingress: vec![default_port; nodes],
            egress: vec![default_port; nodes],
            switch_capacity: None,
            interference: InterferenceModel::None,
        }
    }

    /// Give every node the same full-duplex port bandwidth.
    pub fn uniform_ports(mut self, bandwidth: MegabytesPerSec) -> Self {
        self.ingress = vec![bandwidth; self.nodes];
        self.egress = vec![bandwidth; self.nodes];
        self
    }

    /// Set one node's port bandwidth (both directions).
    pub fn port(mut self, node: NodeId, bandwidth: MegabytesPerSec) -> Self {
        if node < self.nodes {
            self.ingress[node] = bandwidth;
            self.egress[node] = bandwidth;
        }
        self
    }

    /// Set one node's ingress and egress bandwidths independently.
    pub fn asymmetric_port(
        mut self,
        node: NodeId,
        ingress: MegabytesPerSec,
        egress: MegabytesPerSec,
    ) -> Self {
        if node < self.nodes {
            self.ingress[node] = ingress;
            self.egress[node] = egress;
        }
        self
    }

    /// Constrain the total traffic through the switch backplane.
    pub fn switch_capacity(mut self, capacity: MegabytesPerSec) -> Self {
        self.switch_capacity = Some(capacity);
        self
    }

    /// Set the interference model applied to concurrent flows.
    pub fn interference(mut self, model: InterferenceModel) -> Self {
        self.interference = model;
        self
    }

    /// Validate and produce the fabric.
    pub fn build(self) -> Result<Fabric, NetError> {
        if self.nodes == 0 {
            return Err(NetError::invalid("a fabric needs at least one node"));
        }
        for (label, values) in [("ingress", &self.ingress), ("egress", &self.egress)] {
            for (node, bw) in values.iter().enumerate() {
                if !bw.value().is_finite() || bw.value() <= 0.0 {
                    return Err(NetError::invalid(format!(
                        "{label} bandwidth of node {node} must be positive and finite, got {}",
                        bw.value()
                    )));
                }
            }
        }
        if let Some(cap) = self.switch_capacity {
            if !cap.value().is_finite() || cap.value() <= 0.0 {
                return Err(NetError::invalid(format!(
                    "switch capacity must be positive and finite, got {}",
                    cap.value()
                )));
            }
        }
        Ok(Fabric {
            ingress: self.ingress,
            egress: self.egress,
            switch_capacity: self.switch_capacity,
            interference: self.interference,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_fabric_has_identical_ports() {
        let fabric = Fabric::uniform(4, MegabytesPerSec(100.0)).unwrap();
        assert_eq!(fabric.len(), 4);
        for node in 0..4 {
            assert_eq!(fabric.ingress(node).unwrap(), MegabytesPerSec(100.0));
            assert_eq!(fabric.egress(node).unwrap(), MegabytesPerSec(100.0));
        }
        assert!(fabric.switch_capacity().is_none());
        assert_eq!(*fabric.interference(), InterferenceModel::None);
    }

    #[test]
    fn gigabit_fabric_matches_paper_port_speed() {
        // The paper's 1 Gb/s interconnect sustains roughly 95-100 MB/s of
        // payload; we use 0.8 Gb/s of goodput = 100 MB/s.
        let fabric = Fabric::gigabit(8).unwrap();
        assert!((fabric.ingress(0).unwrap().value() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_nodes_are_errors() {
        let fabric = Fabric::gigabit(4).unwrap();
        assert!(fabric.ingress(4).is_err());
        assert!(fabric.egress(7).is_err());
        assert!(fabric.check_node(3).is_ok());
        assert!(fabric.check_node(4).is_err());
    }

    #[test]
    fn builder_overrides_individual_ports() {
        let fabric = Fabric::builder(3)
            .uniform_ports(MegabytesPerSec(100.0))
            .port(1, MegabytesPerSec(50.0))
            .asymmetric_port(2, MegabytesPerSec(200.0), MegabytesPerSec(25.0))
            .switch_capacity(MegabytesPerSec(400.0))
            .build()
            .unwrap();
        assert_eq!(fabric.ingress(1).unwrap(), MegabytesPerSec(50.0));
        assert_eq!(fabric.ingress(2).unwrap(), MegabytesPerSec(200.0));
        assert_eq!(fabric.egress(2).unwrap(), MegabytesPerSec(25.0));
        assert_eq!(fabric.switch_capacity(), Some(MegabytesPerSec(400.0)));
    }

    #[test]
    fn builder_ignores_out_of_range_overrides() {
        // Overriding a node that does not exist is a no-op rather than a
        // panic; validation still happens at build time.
        let fabric = Fabric::builder(2)
            .port(9, MegabytesPerSec(1.0))
            .build()
            .unwrap();
        assert_eq!(fabric.len(), 2);
    }

    #[test]
    fn builder_rejects_degenerate_parameters() {
        assert!(Fabric::builder(0).build().is_err());
        assert!(Fabric::builder(2)
            .uniform_ports(MegabytesPerSec(0.0))
            .build()
            .is_err());
        assert!(Fabric::builder(2)
            .port(0, MegabytesPerSec(-5.0))
            .build()
            .is_err());
        assert!(Fabric::builder(2)
            .switch_capacity(MegabytesPerSec(f64::NAN))
            .build()
            .is_err());
    }
}
