//! Max–min fair-share bandwidth allocation.
//!
//! Given the set of currently active flows and the fabric's port / switch
//! capacities, this module computes the classic max–min fair allocation by
//! progressive filling: every unfrozen flow's rate is raised uniformly until
//! some resource (a sender's egress port, a receiver's ingress port, or the
//! switch backplane) saturates; the flows crossing that resource are frozen at
//! their current rate and the process repeats. This is the standard
//! steady-state abstraction of per-connection TCP fairness over a shared
//! switch, and it reproduces the ingestion bottleneck the paper highlights for
//! heterogeneous plans: a Beefy node receiving from seven senders caps the
//! *sum* of their rates at its ingress capacity.

use crate::error::NetError;
use crate::fabric::Fabric;
use crate::flow::{Flow, FlowId};
use eedc_simkit::units::MegabytesPerSec;
use serde::{Deserialize, Serialize};

/// The rate allocated to one flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowRate {
    /// The flow's id within the flow set passed to the allocator.
    pub flow: FlowId,
    /// Allocated transfer rate.
    pub rate: MegabytesPerSec,
}

/// A complete allocation: one rate per requested flow, in the same order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairShareAllocation {
    rates: Vec<FlowRate>,
}

impl FairShareAllocation {
    /// The per-flow rates, ordered like the input flows.
    pub fn rates(&self) -> &[FlowRate] {
        &self.rates
    }

    /// The rate allocated to a specific flow id, if it was part of the
    /// allocation.
    pub fn rate_of(&self, flow: FlowId) -> Option<MegabytesPerSec> {
        self.rates.iter().find(|r| r.flow == flow).map(|r| r.rate)
    }

    /// Sum of all allocated rates.
    pub fn total_rate(&self) -> MegabytesPerSec {
        self.rates.iter().map(|r| r.rate).sum()
    }
}

/// Resources that can constrain an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Resource {
    Egress(usize),
    Ingress(usize),
    Switch,
}

/// Compute the max–min fair allocation for `active` flows over `fabric`.
///
/// `active` carries `(FlowId, Flow)` pairs: only *network* flows should be
/// passed (local flows have no rate). The interference factor is evaluated at
/// the number of active flows and applied to every port and the switch.
pub fn max_min_fair_share(
    fabric: &Fabric,
    active: &[(FlowId, Flow)],
) -> Result<FairShareAllocation, NetError> {
    if active.is_empty() {
        return Ok(FairShareAllocation { rates: Vec::new() });
    }
    for (_, flow) in active {
        fabric.check_node(flow.source)?;
        fabric.check_node(flow.destination)?;
        if flow.is_local() {
            return Err(NetError::invalid(format!(
                "local flow on node {} passed to the fair-share allocator",
                flow.source
            )));
        }
    }

    let factor = fabric.interference().factor(active.len());
    let nodes = fabric.len();

    // Remaining capacity per resource, after interference.
    let mut egress_left: Vec<f64> = (0..nodes)
        .map(|n| fabric.egress(n).map(|c| c.value() * factor))
        .collect::<Result<_, _>>()?;
    let mut ingress_left: Vec<f64> = (0..nodes)
        .map(|n| fabric.ingress(n).map(|c| c.value() * factor))
        .collect::<Result<_, _>>()?;
    let mut switch_left = fabric.switch_capacity().map(|c| c.value() * factor);

    let mut rate = vec![0.0_f64; active.len()];
    let mut frozen = vec![false; active.len()];
    let mut remaining = active.len();

    // Progressive filling: at each step, find the resource that saturates
    // first if all unfrozen flows are raised uniformly; raise by that
    // increment and freeze the flows crossing the saturated resource.
    while remaining > 0 {
        // Count unfrozen flows per resource.
        let mut egress_count = vec![0usize; nodes];
        let mut ingress_count = vec![0usize; nodes];
        let mut switch_count = 0usize;
        for (idx, (_, flow)) in active.iter().enumerate() {
            if frozen[idx] {
                continue;
            }
            egress_count[flow.source] += 1;
            ingress_count[flow.destination] += 1;
            switch_count += 1;
        }

        // Smallest per-flow headroom across all constrained resources.
        let mut increment = f64::INFINITY;
        let mut bottlenecks: Vec<Resource> = Vec::new();
        let mut consider = |resource: Resource, left: f64, count: usize| {
            if count == 0 {
                return;
            }
            let headroom = left / count as f64;
            if headroom < increment - 1e-12 {
                increment = headroom;
                bottlenecks.clear();
                bottlenecks.push(resource);
            } else if (headroom - increment).abs() <= 1e-12 {
                bottlenecks.push(resource);
            }
        };
        for n in 0..nodes {
            consider(Resource::Egress(n), egress_left[n], egress_count[n]);
            consider(Resource::Ingress(n), ingress_left[n], ingress_count[n]);
        }
        if let Some(left) = switch_left {
            consider(Resource::Switch, left, switch_count);
        }

        if !increment.is_finite() {
            return Err(NetError::stalled(
                "no constrained resource found for the remaining flows",
            ));
        }
        let increment = increment.max(0.0);

        // Raise every unfrozen flow and charge the resources it crosses.
        for (idx, (_, flow)) in active.iter().enumerate() {
            if frozen[idx] {
                continue;
            }
            rate[idx] += increment;
            egress_left[flow.source] = (egress_left[flow.source] - increment).max(0.0);
            ingress_left[flow.destination] = (ingress_left[flow.destination] - increment).max(0.0);
            if let Some(left) = switch_left.as_mut() {
                *left = (*left - increment).max(0.0);
            }
        }

        // Freeze flows crossing a saturated resource.
        let mut froze_any = false;
        for (idx, (_, flow)) in active.iter().enumerate() {
            if frozen[idx] {
                continue;
            }
            let hit = bottlenecks.iter().any(|b| match *b {
                Resource::Egress(n) => flow.source == n,
                Resource::Ingress(n) => flow.destination == n,
                Resource::Switch => true,
            });
            if hit {
                frozen[idx] = true;
                remaining -= 1;
                froze_any = true;
            }
        }
        if !froze_any {
            return Err(NetError::stalled(
                "progressive filling failed to freeze any flow",
            ));
        }
    }

    let rates = active
        .iter()
        .enumerate()
        .map(|(idx, (id, _))| FlowRate {
            flow: *id,
            rate: MegabytesPerSec(rate[idx]),
        })
        .collect();
    Ok(FairShareAllocation { rates })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Flow;
    use eedc_simkit::units::Megabytes;

    fn flows(pairs: &[(usize, usize)]) -> Vec<(FlowId, Flow)> {
        pairs
            .iter()
            .enumerate()
            .map(|(i, &(s, d))| (i, Flow::new(s, d, Megabytes(100.0))))
            .collect()
    }

    #[test]
    fn single_flow_gets_full_port() {
        let fabric = Fabric::uniform(2, MegabytesPerSec(100.0)).unwrap();
        let alloc = max_min_fair_share(&fabric, &flows(&[(0, 1)])).unwrap();
        assert_eq!(alloc.rates().len(), 1);
        assert!((alloc.rate_of(0).unwrap().value() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn ingress_port_is_shared_by_senders() {
        // Three senders into one receiver: each gets a third of the ingress.
        let fabric = Fabric::uniform(4, MegabytesPerSec(90.0)).unwrap();
        let alloc = max_min_fair_share(&fabric, &flows(&[(0, 3), (1, 3), (2, 3)])).unwrap();
        for id in 0..3 {
            assert!((alloc.rate_of(id).unwrap().value() - 30.0).abs() < 1e-9);
        }
        assert!((alloc.total_rate().value() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn egress_port_is_shared_by_receivers() {
        let fabric = Fabric::uniform(3, MegabytesPerSec(100.0)).unwrap();
        let alloc = max_min_fair_share(&fabric, &flows(&[(0, 1), (0, 2)])).unwrap();
        assert!((alloc.rate_of(0).unwrap().value() - 50.0).abs() < 1e-9);
        assert!((alloc.rate_of(1).unwrap().value() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn max_min_is_not_merely_proportional() {
        // Node 0 sends to 1 and 2; node 3 sends to 2 only. The ingress port of
        // node 2 is shared, but flow 0->1 can use the leftover egress of node
        // 0 beyond its share at node 2's port — the hallmark of max-min
        // fairness versus naive proportional splitting.
        let fabric = Fabric::uniform(4, MegabytesPerSec(100.0)).unwrap();
        let alloc = max_min_fair_share(&fabric, &flows(&[(0, 2), (3, 2), (0, 1)])).unwrap();
        let r02 = alloc.rate_of(0).unwrap().value();
        let r32 = alloc.rate_of(1).unwrap().value();
        let r01 = alloc.rate_of(2).unwrap().value();
        // Ingress of node 2 saturated and split evenly.
        assert!((r02 + r32 - 100.0).abs() < 1e-9);
        assert!((r02 - 50.0).abs() < 1e-9);
        // Flow 0->1 takes the rest of node 0's egress.
        assert!((r01 - 50.0).abs() < 1e-9);
    }

    #[test]
    fn switch_capacity_caps_total_rate() {
        let fabric = Fabric::builder(4)
            .uniform_ports(MegabytesPerSec(100.0))
            .switch_capacity(MegabytesPerSec(120.0))
            .build()
            .unwrap();
        let alloc = max_min_fair_share(&fabric, &flows(&[(0, 1), (2, 3)])).unwrap();
        assert!((alloc.total_rate().value() - 120.0).abs() < 1e-9);
        assert!((alloc.rate_of(0).unwrap().value() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn interference_reduces_effective_capacity() {
        let fabric = Fabric::builder(4)
            .uniform_ports(MegabytesPerSec(100.0))
            .interference(crate::interference::InterferenceModel::PerFlow { alpha: 0.1 })
            .build()
            .unwrap();
        // Two disjoint flows: factor = 1/(1+0.1) ≈ 0.909.
        let alloc = max_min_fair_share(&fabric, &flows(&[(0, 1), (2, 3)])).unwrap();
        assert!((alloc.rate_of(0).unwrap().value() - 100.0 / 1.1).abs() < 1e-6);
    }

    #[test]
    fn empty_input_is_empty_allocation() {
        let fabric = Fabric::gigabit(2).unwrap();
        let alloc = max_min_fair_share(&fabric, &[]).unwrap();
        assert!(alloc.rates().is_empty());
        assert_eq!(alloc.total_rate(), MegabytesPerSec(0.0));
    }

    #[test]
    fn local_flows_are_rejected() {
        let fabric = Fabric::gigabit(2).unwrap();
        let active = vec![(0usize, Flow::new(1, 1, Megabytes(5.0)))];
        assert!(max_min_fair_share(&fabric, &active).is_err());
    }

    #[test]
    fn unknown_nodes_are_rejected() {
        let fabric = Fabric::gigabit(2).unwrap();
        let active = vec![(0usize, Flow::new(0, 5, Megabytes(5.0)))];
        assert!(max_min_fair_share(&fabric, &active).is_err());
    }

    #[test]
    fn all_to_all_shuffle_shares_every_port_evenly() {
        // 4 nodes, every node sends to every other node: 12 flows. Each port
        // carries 3 flows in each direction, so each flow gets a third of a
        // port.
        let fabric = Fabric::uniform(4, MegabytesPerSec(90.0)).unwrap();
        let mut pairs = Vec::new();
        for s in 0..4 {
            for d in 0..4 {
                if s != d {
                    pairs.push((s, d));
                }
            }
        }
        let alloc = max_min_fair_share(&fabric, &flows(&pairs)).unwrap();
        for r in alloc.rates() {
            assert!((r.rate.value() - 30.0).abs() < 1e-9);
        }
    }
}
