//! The lint gate, run against this repository's own tree.
//!
//! These tests *are* the acceptance criteria for the lint subsystem:
//!
//! * the real workspace passes `check` with zero errors and zero ratchet
//!   growth (what CI enforces),
//! * injecting a `HashMap` import or a `partial_cmp(...).unwrap()` into
//!   `crates/dbmsim/src/serving.rs` fails the check, naming the rule, the
//!   file, and the line,
//! * the determinism and float-ordering rules hold at zero with an
//!   allowlist that names only the bench harness (the kernel thread-default
//!   site is waived inline, not allowlisted).

use eedc_lint::config::Config;
use eedc_lint::engine::{collect_workspace_files, run_check};
use eedc_lint::ratchet::Baseline;
use eedc_lint::rules;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate lives two levels below the workspace root")
        .to_path_buf()
}

fn load_real_tree() -> (Vec<(String, String)>, Config, Baseline) {
    let root = workspace_root();
    let files = collect_workspace_files(&root).expect("workspace scan");
    let config_src =
        std::fs::read_to_string(root.join("crates/lint/lint.toml")).expect("committed lint.toml");
    let config = Config::parse(&config_src, &rules::rule_names()).expect("valid lint.toml");
    let baseline_src = std::fs::read_to_string(root.join("crates/lint/baseline.json"))
        .expect("committed baseline.json");
    let baseline = Baseline::from_json(&baseline_src).expect("valid baseline.json");
    (files, config, baseline)
}

#[test]
fn workspace_passes_the_gate() {
    let (files, config, baseline) = load_real_tree();
    assert!(files.len() > 50, "workspace scan looks truncated");
    let report = run_check(&files, &config, &baseline, None);
    let rendered: Vec<String> = report.errors.iter().map(|v| v.render()).collect();
    assert!(
        !report.failed(),
        "the workspace must pass its own lint gate:\n{}",
        rendered.join("\n")
    );
    assert!(report.errors.is_empty(), "{rendered:?}");
}

#[test]
fn determinism_and_float_ordering_are_at_zero() {
    let (files, config, baseline) = load_real_tree();
    // The committed allowlist for determinism names exactly the bench
    // harness; no other file is exempted for any unratcheted rule.
    assert_eq!(
        config.rule(rules::DETERMINISM).allow,
        ["crates/bench/src/harness.rs"],
        "determinism allowlist must stay minimal"
    );
    assert!(config.rule(rules::FLOAT_ORDERING).allow.is_empty());
    for rule in [rules::DETERMINISM, rules::FLOAT_ORDERING] {
        let report = run_check(&files, &config, &baseline, Some(rule));
        assert!(
            report.errors.is_empty(),
            "{rule} must hold at zero: {:?}",
            report.errors
        );
    }
}

#[test]
fn panic_policy_is_ratcheted_not_zero() {
    let (files, config, baseline) = load_real_tree();
    assert!(config.rule(rules::PANIC_POLICY).ratchet);
    let report = run_check(&files, &config, &baseline, Some(rules::PANIC_POLICY));
    // Debt exists, is recorded, and has not grown.
    let total: usize = report
        .ratchet_counts
        .get(rules::PANIC_POLICY)
        .map(|files| files.values().sum())
        .unwrap_or(0);
    assert!(total > 0, "the ratchet should be tracking real debt");
    assert!(!report.failed(), "ratchet must not have grown");
    // eedc_core::json burned down to zero in this PR: it must not reappear.
    assert_eq!(
        report
            .ratchet_counts
            .get(rules::PANIC_POLICY)
            .and_then(|files| files.get("crates/core/src/json.rs")),
        None,
        "crates/core/src/json.rs must stay panic-free"
    );
}

/// Splice `line` into the serving module just after its `use` block, so the
/// injection lands in non-test library code.
fn inject_into_serving(files: &mut [(String, String)], line: &str) -> u32 {
    let serving = files
        .iter_mut()
        .find(|(path, _)| path == "crates/dbmsim/src/serving.rs")
        .expect("serving.rs present");
    let insert_at = serving
        .1
        .lines()
        .position(|l| l.starts_with("use "))
        .expect("serving.rs has use declarations");
    let mut lines: Vec<&str> = serving.1.lines().collect();
    lines.insert(insert_at, line);
    serving.1 = lines.join("\n");
    insert_at as u32 + 1
}

#[test]
fn injected_hashmap_import_fails_naming_rule_file_line() {
    let (mut files, config, baseline) = load_real_tree();
    let line = inject_into_serving(&mut files, "use std::collections::HashMap;");
    let report = run_check(&files, &config, &baseline, None);
    assert!(report.failed());
    let hit = report
        .errors
        .iter()
        .find(|v| v.rule == rules::DETERMINISM)
        .expect("determinism error expected");
    assert_eq!(hit.path, "crates/dbmsim/src/serving.rs");
    assert_eq!(hit.line, line);
    assert!(hit.message.contains("HashMap"), "{}", hit.message);
    // The rendered form carries rule + file + line for CI logs.
    let rendered = hit.render();
    assert!(
        rendered.contains("crates/dbmsim/src/serving.rs"),
        "{rendered}"
    );
    assert!(rendered.contains("[determinism]"), "{rendered}");
    assert!(rendered.contains(&format!(":{line}:")), "{rendered}");
}

#[test]
fn injected_partial_cmp_unwrap_fails_both_rules() {
    let (mut files, config, baseline) = load_real_tree();
    let line = inject_into_serving(
        &mut files,
        "fn worst(a: f64, b: f64) -> std::cmp::Ordering { a.partial_cmp(&b).unwrap() }",
    );
    let report = run_check(&files, &config, &baseline, None);
    assert!(report.failed());
    // float-ordering errors immediately…
    let float = report
        .errors
        .iter()
        .find(|v| v.rule == rules::FLOAT_ORDERING)
        .expect("float-ordering error expected");
    assert_eq!(float.path, "crates/dbmsim/src/serving.rs");
    assert_eq!(float.line, line);
    // …and the unwrap is ratchet *growth* for serving.rs, failing too.
    let grew = report
        .ratchet
        .iter()
        .find(|r| r.rule == rules::PANIC_POLICY && r.path == "crates/dbmsim/src/serving.rs")
        .expect("serving.rs ratchet row");
    assert!(grew.grew(), "unwrap must register as ratchet growth");
    assert_eq!(grew.current, grew.baseline + 1);
}

#[test]
fn injected_unsafe_without_safety_comment_fails() {
    let (mut files, config, baseline) = load_real_tree();
    let line = inject_into_serving(&mut files, "fn sneak(p: *const u8) -> u8 { unsafe { *p } }");
    let report = run_check(&files, &config, &baseline, None);
    let hit = report
        .errors
        .iter()
        .find(|v| v.rule == rules::UNSAFE_AUDIT)
        .expect("unsafe-audit error expected");
    assert_eq!(
        (hit.path.as_str(), hit.line),
        ("crates/dbmsim/src/serving.rs", line)
    );
}

#[test]
fn committed_baseline_is_byte_stable_under_rerecording() {
    // `baseline` must be idempotent on an unchanged tree: what from_counts
    // produces for the current tree renders byte-identically to the
    // committed file (sorted keys, trailing newline).
    let (files, config, _) = load_real_tree();
    let report = run_check(&files, &config, &Baseline::default(), None);
    let rerecorded = Baseline::from_counts(&report.ratchet_counts).to_json();
    let committed = std::fs::read_to_string(workspace_root().join("crates/lint/baseline.json"))
        .expect("committed baseline.json");
    assert_eq!(
        rerecorded, committed,
        "run `cargo run -p eedc-lint -- baseline`"
    );
}
