//! `eedc-lint` — the workspace's static-analysis pass.
//!
//! The repo's methodology rests on *reproducible* measurement: the bench
//! gate compares medians against committed baselines, and the serving
//! simulator promises bit-identical runs under a fixed seed. Those promises
//! were conventions; this crate makes them machine-checked contracts, the
//! same way the bench-regression gate made performance machine-checked.
//!
//! The tool is self-contained by necessity (no registry access, so no
//! `syn`): a hand-rolled [`lexer`] resolves raw strings, byte strings,
//! nested block comments, and char-vs-lifetime ambiguity into a token
//! stream; [`rules`] states the policy as token patterns; [`engine`] applies
//! inline waivers (`// lint:allow(<rule>): <reason>`), the committed
//! `lint.toml` allowlists ([`config`]), and `#[cfg(test)]` exemptions; and
//! [`ratchet`] compares rules with pre-existing debt against the committed
//! `baseline.json`, failing only on growth.
//!
//! ```sh
//! cargo run -p eedc-lint -- check            # the CI gate
//! cargo run -p eedc-lint -- check --json eedc-lint-report.json
//! cargo run -p eedc-lint -- check --filter determinism
//! cargo run -p eedc-lint -- baseline         # re-record ratchet counts
//! cargo run -p eedc-lint -- rules            # print the rule table
//! ```
//!
//! Checking a single file programmatically:
//!
//! ```
//! use eedc_lint::config::Config;
//! use eedc_lint::engine::analyze_file;
//!
//! let analysis = analyze_file(
//!     "crates/x/src/lib.rs",
//!     "let when = std::time::Instant::now();",
//!     &Config::default(),
//! );
//! assert_eq!(analysis.active.len(), 1);
//! assert_eq!(analysis.active[0].rule, "determinism");
//! assert!(analysis.active[0].render().contains("ambient clock"));
//! ```

pub mod config;
pub mod engine;
pub mod lexer;
pub mod ratchet;
pub mod rules;

pub use config::Config;
pub use engine::{analyze_file, collect_workspace_files, run_check, LintReport, Violation};
pub use ratchet::Baseline;
