//! The `eedc-lint` CLI: the workspace determinism / panic-policy /
//! float-ordering gate.
//!
//! ```sh
//! eedc-lint check [--json <path>] [--filter <rule>] [--root <dir>]
//! eedc-lint baseline [--root <dir>]
//! eedc-lint rules
//! ```
//!
//! * `check` — lint every `.rs` file under `<root>/crates`, apply waivers,
//!   allowlists (`crates/lint/lint.toml`), and the ratchet baseline
//!   (`crates/lint/baseline.json`); exit non-zero naming every violation.
//!   `--json` additionally writes the machine-readable report (CI uploads
//!   it as an artifact); `--filter` restricts reporting to one rule.
//! * `baseline` — re-record the ratcheted rules' per-file counts. Run this
//!   after burning violations down (never to absorb growth: review the
//!   diff it produces).
//! * `rules` — print the rule table.

use eedc_lint::config::Config;
use eedc_lint::engine::{collect_workspace_files, run_check, LintReport, RatchetRow};
use eedc_lint::ratchet::Baseline;
use eedc_lint::rules;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: eedc-lint <check|baseline|rules>\n\
                     \x20      check    [--json <path>] [--filter <rule>] [--root <dir>]\n\
                     \x20      baseline [--root <dir>]";

/// Workspace-relative location of the committed config.
const CONFIG_PATH: &str = "crates/lint/lint.toml";
/// Workspace-relative location of the committed ratchet baseline.
const BASELINE_PATH: &str = "crates/lint/baseline.json";

struct Args {
    command: Command,
    json: Option<PathBuf>,
    filter: Option<String>,
    root: PathBuf,
}

#[derive(PartialEq, Eq)]
enum Command {
    Check,
    Baseline,
    Rules,
}

/// `Ok(None)` is an explicit `--help`: print usage and succeed.
fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut iter = argv.iter();
    let command = match iter.next().map(String::as_str) {
        Some("check") => Command::Check,
        Some("baseline") => Command::Baseline,
        Some("rules") => Command::Rules,
        Some("--help" | "-h") | None => return Ok(None),
        Some(other) => return Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    let mut args = Args {
        command,
        json: None,
        filter: None,
        root: PathBuf::from("."),
    };
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--json" => args.json = Some(PathBuf::from(value("--json")?)),
            "--filter" => {
                let rule = value("--filter")?;
                if rules::rule_by_name(&rule).is_none() {
                    return Err(format!(
                        "--filter: unknown rule '{rule}' (rules: {})",
                        rules::rule_names().join(", ")
                    ));
                }
                args.filter = Some(rule);
            }
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("eedc-lint: {message}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("eedc-lint: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &Args) -> Result<ExitCode, String> {
    if args.command == Command::Rules {
        print_rules();
        return Ok(ExitCode::SUCCESS);
    }

    let config = load_config(&args.root)?;
    let files = collect_workspace_files(&args.root)?;

    if args.command == Command::Baseline {
        let report = run_check(&files, &config, &Baseline::default(), None);
        let baseline = Baseline::from_counts(&report.ratchet_counts);
        let path = args.root.join(BASELINE_PATH);
        std::fs::write(&path, baseline.to_json())
            .map_err(|e| format!("failed to write {}: {e}", path.display()))?;
        let total: usize = report
            .ratchet_counts
            .values()
            .flat_map(|files| files.values())
            .sum();
        println!(
            "eedc-lint: recorded {} ({} ratcheted violations across {} rules)",
            path.display(),
            total,
            report.ratchet_counts.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let baseline_path = args.root.join(BASELINE_PATH);
    let baseline_src = std::fs::read_to_string(&baseline_path).map_err(|e| {
        format!(
            "failed to read {} ({e}); run `eedc-lint baseline` once to create it",
            baseline_path.display()
        )
    })?;
    let baseline = Baseline::from_json(&baseline_src)?;
    let report = run_check(&files, &config, &baseline, args.filter.as_deref());

    if let Some(json_path) = &args.json {
        std::fs::write(json_path, report.to_json().to_json_pretty())
            .map_err(|e| format!("failed to write {}: {e}", json_path.display()))?;
    }
    print_report(&report);
    if report.failed() {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join(CONFIG_PATH);
    let src = std::fs::read_to_string(&path)
        .map_err(|e| format!("failed to read {}: {e}", path.display()))?;
    Config::parse(&src, &rules::rule_names())
}

fn print_rules() {
    println!("rule                scope    test-exempt  invariant");
    for rule in rules::RULES {
        let scope = match rule.scope {
            rules::Scope::Library => "library",
            rules::Scope::All => "all",
        };
        println!(
            "{:<19} {:<8} {:<12} {}",
            rule.name,
            scope,
            if rule.skip_test_code { "yes" } else { "no" },
            rule.summary
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
}

fn print_report(report: &LintReport) {
    for violation in &report.errors {
        println!("{}", violation.render());
    }
    let grown: Vec<&RatchetRow> = report.ratchet.iter().filter(|r| r.grew()).collect();
    for row in &grown {
        println!(
            "{}: [{}] ratchet grew {} -> {} (baseline {}); fix the new sites or \
             waive them with a reason",
            row.path, row.rule, row.baseline, row.current, BASELINE_PATH
        );
    }
    let improved: Vec<&RatchetRow> = report.ratchet.iter().filter(|r| r.improved()).collect();
    if !improved.is_empty() {
        let freed: usize = improved.iter().map(|r| r.baseline - r.current).sum();
        println!(
            "note: {} ratcheted violations burned down in {} files — run \
             `cargo run -p eedc-lint -- baseline` to lock the improvement in",
            freed,
            improved.len()
        );
    }
    for (rule, files) in &report.ratchet_counts {
        let total: usize = files.values().sum();
        let file_count = files.values().filter(|&&c| c > 0).count();
        println!("{rule} (ratcheted): {total} sites across {file_count} files");
    }
    if !report.waived.is_empty() {
        println!("waivers in effect: {}", report.waived.len());
    }
    if report.failed() {
        println!(
            "eedc-lint: FAILED — {} errors, {} ratchet growths across {} files",
            report.errors.len(),
            grown.len(),
            report.files_scanned
        );
    } else {
        println!(
            "eedc-lint: ok — {} files, {} errors",
            report.files_scanned,
            report.errors.len()
        );
    }
}
