//! The committed lint configuration: a minimal TOML-subset reader.
//!
//! `crates/lint/lint.toml` declares, per rule, the *path allowlist* (files
//! where the rule does not run at all — reserved for files whose purpose is
//! the thing the rule forbids, like the bench harness timing with
//! `Instant::now`) and whether the rule is *ratcheted* (violations compared
//! against the committed baseline instead of denied outright — see
//! [`ratchet`](crate::ratchet)).
//!
//! The accepted grammar is the slice of TOML the config actually needs:
//!
//! ```toml
//! # comment
//! [rule-name]
//! allow = [
//!     "crates/bench/src/harness.rs",
//! ]
//! ratchet = true
//! ```
//!
//! Anything outside that shape is a hard error with a line number — a lint
//! whose own config can silently rot would be a poor hygiene tool.

use std::collections::BTreeMap;

/// Per-rule configuration from `lint.toml`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleConfig {
    /// Workspace-relative file paths where the rule is skipped entirely.
    pub allow: Vec<String>,
    /// Whether violations ratchet against the committed baseline rather
    /// than failing outright.
    pub ratchet: bool,
}

/// The whole parsed configuration, keyed by rule name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// Rule name → its settings. Rules absent from the file get defaults.
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Config {
    /// Settings for `rule` (defaults when the config has no section for it).
    pub fn rule(&self, rule: &str) -> RuleConfig {
        self.rules.get(rule).cloned().unwrap_or_default()
    }

    /// Whether `path` is allowlisted for `rule`.
    pub fn is_allowed(&self, rule: &str, path: &str) -> bool {
        self.rules
            .get(rule)
            .is_some_and(|r| r.allow.iter().any(|a| a == path))
    }

    /// Parse the TOML subset described in the module docs.
    ///
    /// `known_rules` guards against typo'd section names: a section that
    /// names no real rule would silently allowlist nothing.
    pub fn parse(src: &str, known_rules: &[&str]) -> Result<Config, String> {
        let mut config = Config::default();
        let mut section: Option<String> = None;
        let mut lines = src.lines().enumerate();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim();
                if !known_rules.contains(&name) {
                    return Err(format!(
                        "lint.toml:{lineno}: unknown rule section '[{name}]' (rules: {})",
                        known_rules.join(", ")
                    ));
                }
                config.rules.entry(name.to_string()).or_default();
                section = Some(name.to_string());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "lint.toml:{lineno}: expected 'key = value', got '{line}'"
                ));
            };
            let Some(section) = &section else {
                return Err(format!(
                    "lint.toml:{lineno}: '{}' outside any [rule] section",
                    key.trim()
                ));
            };
            let mut value = value.trim().to_string();
            // Multi-line arrays: keep consuming lines until the ']'.
            if value.starts_with('[') && !value.ends_with(']') {
                for (_, more) in lines.by_ref() {
                    let more = strip_comment(more).trim().to_string();
                    value.push(' ');
                    value.push_str(&more);
                    if more.ends_with(']') {
                        break;
                    }
                }
                if !value.ends_with(']') {
                    return Err(format!("lint.toml:{lineno}: unterminated array"));
                }
            }
            let Some(entry) = config.rules.get_mut(section) else {
                return Err(format!("lint.toml:{lineno}: section state lost"));
            };
            match key.trim() {
                "allow" => entry.allow = parse_string_array(&value, lineno)?,
                "ratchet" => {
                    entry.ratchet = match value.as_str() {
                        "true" => true,
                        "false" => false,
                        other => {
                            return Err(format!(
                                "lint.toml:{lineno}: ratchet must be true/false, got '{other}'"
                            ));
                        }
                    };
                }
                other => {
                    return Err(format!(
                        "lint.toml:{lineno}: unknown key '{other}' (expected allow / ratchet)"
                    ));
                }
            }
        }
        Ok(config)
    }
}

/// Drop a `#`-to-end-of-line comment, honouring `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// `[ "a", "b", ]` (trailing comma tolerated) → the string items.
fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("lint.toml:{lineno}: allow must be an array of strings"))?;
    let mut items = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let item = part
            .strip_prefix('"')
            .and_then(|p| p.strip_suffix('"'))
            .ok_or_else(|| {
                format!("lint.toml:{lineno}: array items must be double-quoted, got '{part}'")
            })?;
        items.push(item.to_string());
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["determinism", "panic-policy"];

    #[test]
    fn parses_sections_arrays_and_flags() {
        let src = r#"
# top comment
[determinism]
allow = [
    "crates/bench/src/harness.rs",  # timing is its purpose
    "crates/other.rs",
]

[panic-policy]
ratchet = true
allow = []
"#;
        let config = Config::parse(src, RULES).unwrap();
        assert!(config.is_allowed("determinism", "crates/bench/src/harness.rs"));
        assert!(config.is_allowed("determinism", "crates/other.rs"));
        assert!(!config.is_allowed("determinism", "crates/elsewhere.rs"));
        assert!(config.rule("panic-policy").ratchet);
        assert!(!config.rule("determinism").ratchet);
        // Rules with no section fall back to defaults.
        assert_eq!(config.rule("float-ordering"), RuleConfig::default());
    }

    #[test]
    fn single_line_array_and_inline_comment() {
        let src = "[determinism]\nallow = [\"a.rs\", \"b.rs\"] # tail\n";
        let config = Config::parse(src, RULES).unwrap();
        assert_eq!(config.rule("determinism").allow, ["a.rs", "b.rs"]);
    }

    #[test]
    fn hash_inside_quotes_is_not_a_comment() {
        let src = "[determinism]\nallow = [\"weird#name.rs\"]\n";
        let config = Config::parse(src, RULES).unwrap();
        assert_eq!(config.rule("determinism").allow, ["weird#name.rs"]);
    }

    #[test]
    fn rejects_malformed_config() {
        for (src, needle) in [
            ("[typo-rule]\n", "unknown rule section"),
            ("allow = []\n", "outside any"),
            ("[determinism]\nallow = \"not-array\"\n", "array"),
            ("[determinism]\nratchet = maybe\n", "true/false"),
            ("[determinism]\nbogus = 1\n", "unknown key"),
            ("[determinism]\njust words\n", "key = value"),
        ] {
            let err = Config::parse(src, RULES).unwrap_err();
            assert!(err.contains(needle), "{src:?}: {err}");
            // Errors carry a line number.
            assert!(err.contains("lint.toml:"), "{err}");
        }
    }
}
