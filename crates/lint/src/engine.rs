//! The rule engine: runs every rule over every file, applies waivers,
//! allowlists, and `#[cfg(test)]` exemptions, and folds ratcheted rules
//! against the committed baseline.
//!
//! Flow per file (see `docs/ARCHITECTURE.md` § "Static analysis"):
//!
//! ```text
//! source ─lex─▶ tokens ─┬─▶ #[cfg(test)] line ranges ──┐
//!                       ├─▶ waivers (// lint:allow)    ├─▶ findings ─▶ waive /
//!                       └─▶ rule matchers ─────────────┘    allowlist / ratchet
//! ```
//!
//! A finding survives as an *error* unless (a) its file is on the rule's
//! `lint.toml` allowlist, (b) a well-formed waiver for the rule sits on the
//! same or the preceding line, or (c) the rule is ratcheted and the file's
//! violation count has not grown past the committed baseline. Waivers that
//! suppress nothing are themselves errors (`waiver-hygiene`), so the escape
//! hatches cannot rot.

use crate::config::Config;
use crate::lexer::{lex, Token, TokenKind};
use crate::ratchet::Baseline;
use crate::rules::{self, FileView, Scope, WAIVER_HYGIENE};
use eedc_core::json::JsonValue;
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// How a file is classified for rule scoping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileCategory {
    /// Shipped library source: `src/**` excluding `src/bin/**`.
    Library,
    /// Integration tests, benches, examples, and binaries.
    Support,
}

/// Classify a workspace-relative path (forward slashes).
pub fn classify(path: &str) -> FileCategory {
    if path.contains("/src/") && !path.contains("/src/bin/") {
        FileCategory::Library
    } else {
        FileCategory::Support
    }
}

/// One confirmed policy violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule name.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong and how to fix it.
    pub message: String,
}

impl Violation {
    /// `path:line: [rule] message` — the single-line report format.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// An inline waiver comment: `// lint:allow(<rule>): <reason>`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Waiver {
    rule: String,
    line: u32,
    /// `Some(problem)` when the waiver is malformed (and cannot suppress).
    problem: Option<String>,
}

/// Parse waivers out of plain `//` comments (doc comments don't count).
fn parse_waivers(tokens: &[Token]) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for tok in tokens {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let Some(body) = tok.text.strip_prefix("//") else {
            continue;
        };
        if body.starts_with('/') || body.starts_with('!') {
            continue; // doc comment
        }
        let body = body.trim_start();
        let Some(rest) = body.strip_prefix("lint:allow(") else {
            continue;
        };
        let Some((rule, after)) = rest.split_once(')') else {
            waivers.push(Waiver {
                rule: String::new(),
                line: tok.line,
                problem: Some("malformed waiver: missing ')'".to_string()),
            });
            continue;
        };
        let rule = rule.trim().to_string();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        let problem = if rules::rule_by_name(&rule).is_none() {
            Some(format!("waiver names unknown rule '{rule}'"))
        } else if reason.is_empty() {
            Some(format!(
                "waiver for '{rule}' has no reason; write `lint:allow({rule}): <why>`"
            ))
        } else {
            None
        };
        waivers.push(Waiver {
            rule,
            line: tok.line,
            problem,
        });
    }
    waivers
}

/// Line ranges covered by `#[cfg(test)]` items (attribute line through the
/// item's closing brace or terminating semicolon). `cfg(all(test, …))` and
/// friends count: any `cfg` attribute mentioning the `test` ident.
fn test_line_ranges(tokens: &[Token], code: &[usize]) -> Vec<(u32, u32)> {
    let tok = |ci: usize| code.get(ci).map(|&i| &tokens[i]);
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !(tok(i).is_some_and(|t| t.is_punct('#')) && tok(i + 1).is_some_and(|t| t.is_punct('[')))
        {
            i += 1;
            continue;
        }
        let start_line = tok(i).map_or(0, |t| t.line);
        let (attr, after) = attribute_body(tokens, code, i + 2);
        let is_cfg_test = attr.first().is_some_and(|t| t.is_ident("cfg"))
            && attr.iter().any(|t| t.is_ident("test"));
        if !is_cfg_test {
            i = after;
            continue;
        }
        // Skip any further attributes between #[cfg(test)] and the item.
        let mut j = after;
        while tok(j).is_some_and(|t| t.is_punct('#')) && tok(j + 1).is_some_and(|t| t.is_punct('['))
        {
            j = attribute_body(tokens, code, j + 2).1;
        }
        // The item extends to its matching close brace, or to a `;` for
        // brace-less items (`#[cfg(test)] use …;`).
        let mut depth = 0usize;
        let mut entered = false;
        let mut end_line = start_line;
        while let Some(t) = tok(j) {
            end_line = t.end_line();
            if t.is_punct('{') {
                depth += 1;
                entered = true;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                if entered && depth == 0 {
                    j += 1;
                    break;
                }
            } else if t.is_punct(';') && !entered {
                j += 1;
                break;
            }
            j += 1;
        }
        ranges.push((start_line, end_line));
        i = j;
    }
    ranges
}

/// Collect the tokens inside `#[ … ]` starting at `start` (just past the
/// `[`); returns them and the code index just past the closing `]`.
fn attribute_body<'a>(
    tokens: &'a [Token],
    code: &[usize],
    start: usize,
) -> (Vec<&'a Token>, usize) {
    let mut depth = 1usize;
    let mut body = Vec::new();
    let mut j = start;
    while let Some(&idx) = code.get(j) {
        let t = &tokens[idx];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (body, j + 1);
            }
        }
        body.push(t);
        j += 1;
    }
    (body, j)
}

/// Per-file analysis outcome.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Violations that survived waivers and allowlists (ratcheting is
    /// applied later, across files).
    pub active: Vec<Violation>,
    /// Violations suppressed by a well-formed waiver (reported for
    /// transparency, never errors).
    pub waived: Vec<Violation>,
}

/// Run every rule over one file. `config` supplies allowlists; waivers come
/// from the source itself.
pub fn analyze_file(path: &str, src: &str, config: &Config) -> FileAnalysis {
    let tokens = lex(src);
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .map(|(i, _)| i)
        .collect();
    let test_ranges = test_line_ranges(&tokens, &code);
    let in_test = |line: u32| test_ranges.iter().any(|&(lo, hi)| lo <= line && line <= hi);
    let waivers = parse_waivers(&tokens);
    let mut waiver_used = vec![false; waivers.len()];
    let category = classify(path);
    let view = FileView {
        tokens: &tokens,
        code: &code,
    };

    let mut analysis = FileAnalysis::default();
    for rule in rules::RULES {
        if rule.scope == Scope::Library && category != FileCategory::Library {
            continue;
        }
        if config.is_allowed(rule.name, path) {
            continue;
        }
        for finding in rules::check(rule, &view) {
            if rule.skip_test_code && in_test(finding.line) {
                continue;
            }
            let violation = Violation {
                rule: rule.name,
                path: path.to_string(),
                line: finding.line,
                message: finding.message,
            };
            let waiver = waivers.iter().position(|w| {
                w.problem.is_none()
                    && w.rule == rule.name
                    && (w.line == finding.line || w.line + 1 == finding.line)
            });
            match waiver {
                Some(w) => {
                    waiver_used[w] = true;
                    analysis.waived.push(violation);
                }
                None => analysis.active.push(violation),
            }
        }
    }

    // Waiver hygiene: malformed waivers and waivers that suppressed nothing
    // are errors themselves — the escape hatch must not rot.
    if !config.is_allowed(WAIVER_HYGIENE, path) {
        for (waiver, used) in waivers.iter().zip(&waiver_used) {
            let message = match (&waiver.problem, used) {
                (Some(problem), _) => problem.clone(),
                (None, false) => format!(
                    "stale waiver for '{}': it suppresses nothing on this or the next \
                     line; remove it",
                    waiver.rule
                ),
                (None, true) => continue,
            };
            analysis.active.push(Violation {
                rule: WAIVER_HYGIENE,
                path: path.to_string(),
                line: waiver.line,
                message,
            });
        }
    }
    analysis
}

/// One per-file row of a ratcheted rule's comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatchetRow {
    /// Rule name.
    pub rule: String,
    /// Workspace-relative file path.
    pub path: String,
    /// Committed violation count.
    pub baseline: usize,
    /// Current violation count.
    pub current: usize,
}

impl RatchetRow {
    /// Growth is the only failure: equal holds the line, lower burns down.
    pub fn grew(&self) -> bool {
        self.current > self.baseline
    }

    /// Whether the count dropped below the baseline (re-record to lock in).
    pub fn improved(&self) -> bool {
        self.current < self.baseline
    }
}

/// Aggregated outcome of a whole-workspace check.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Non-ratcheted violations — each one fails the gate.
    pub errors: Vec<Violation>,
    /// Per-file ratchet comparisons (rows where either side is non-zero).
    pub ratchet: Vec<RatchetRow>,
    /// Waived violations, for the JSON report.
    pub waived: Vec<Violation>,
    /// Current counts of every ratcheted rule (input for `baseline`).
    pub ratchet_counts: BTreeMap<String, BTreeMap<String, usize>>,
}

impl LintReport {
    /// Whether the gate fails: any error, or any ratchet growth.
    pub fn failed(&self) -> bool {
        !self.errors.is_empty() || self.ratchet.iter().any(RatchetRow::grew)
    }

    /// Render the machine-readable report (uploaded as a CI artifact).
    pub fn to_json(&self) -> JsonValue {
        let violation_json = |v: &Violation| {
            let mut obj = JsonValue::object();
            obj.set("rule", v.rule)
                .set("path", v.path.as_str())
                .set("line", v.line as usize)
                .set("message", v.message.as_str());
            obj
        };
        let mut report = JsonValue::object();
        report.set("schema", 1usize);
        report.set("files_scanned", self.files_scanned);
        let mut errors = JsonValue::array();
        for v in &self.errors {
            errors.push(violation_json(v));
        }
        report.set("errors", errors);
        let mut waived = JsonValue::array();
        for v in &self.waived {
            waived.push(violation_json(v));
        }
        report.set("waived", waived);
        let mut ratchet = JsonValue::array();
        for row in &self.ratchet {
            let mut obj = JsonValue::object();
            obj.set("rule", row.rule.as_str())
                .set("path", row.path.as_str())
                .set("baseline", row.baseline)
                .set("current", row.current)
                .set("grew", row.grew());
            ratchet.push(obj);
        }
        report.set("ratchet", ratchet);
        report.set("failed", self.failed());
        report
    }
}

/// Run the whole check over in-memory `(path, source)` pairs.
///
/// `filter` restricts which rules *report* (all rules still run, so
/// waiver-hygiene stays accurate under filtering).
pub fn run_check(
    files: &[(String, String)],
    config: &Config,
    baseline: &Baseline,
    filter: Option<&str>,
) -> LintReport {
    let mut report = LintReport {
        files_scanned: files.len(),
        ..LintReport::default()
    };
    let ratcheted: Vec<&str> = rules::RULES
        .iter()
        .map(|r| r.name)
        .filter(|name| config.rule(name).ratchet)
        .collect();
    let mut counts: BTreeMap<String, BTreeMap<String, usize>> = ratcheted
        .iter()
        .map(|&name| (name.to_string(), BTreeMap::new()))
        .collect();

    for (path, src) in files {
        let analysis = analyze_file(path, src, config);
        report.waived.extend(analysis.waived);
        for violation in analysis.active {
            if ratcheted.contains(&violation.rule) {
                if let Some(per_file) = counts.get_mut(violation.rule) {
                    *per_file.entry(violation.path.clone()).or_insert(0) += 1;
                }
            } else if filter.is_none_or(|f| f == violation.rule) {
                report.errors.push(violation);
            }
        }
    }
    report
        .errors
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    for (rule, per_file) in &counts {
        if filter.is_some_and(|f| f != rule) {
            continue;
        }
        let mut paths: Vec<&String> = per_file.keys().collect();
        if let Some(base_files) = baseline.rules.get(rule) {
            paths.extend(base_files.keys().filter(|p| !per_file.contains_key(*p)));
        }
        paths.sort();
        for path in paths {
            let current = per_file.get(path).copied().unwrap_or(0);
            let base = baseline.count(rule, path);
            if current == 0 && base == 0 {
                continue;
            }
            report.ratchet.push(RatchetRow {
                rule: rule.clone(),
                path: path.clone(),
                baseline: base,
                current,
            });
        }
    }
    report.ratchet_counts = counts;
    report
}

/// Collect every `.rs` file under `<root>/crates`, as sorted
/// workspace-relative `(path, contents)` pairs. `target/` dirs are skipped;
/// `vendor/` sits outside `crates/` and is never visited.
pub fn collect_workspace_files(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::new();
    walk(&root.join("crates"), &mut |path| {
        let rel = path
            .strip_prefix(root)
            .map_err(|_| format!("{} escaped the workspace root", path.display()))?;
        let rel = rel
            .to_str()
            .ok_or_else(|| format!("non-UTF-8 path {}", path.display()))?
            .replace('\\', "/");
        let contents =
            fs::read_to_string(path).map_err(|e| format!("failed to read {rel}: {e}"))?;
        files.push((rel, contents));
        Ok(())
    })?;
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, visit: &mut dyn FnMut(&Path) -> Result<(), String>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("failed to read {}: {e}", dir.display()))?;
    let mut entries: Vec<_> = entries
        .collect::<Result<_, _>>()
        .map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(&path, visit)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            visit(&path)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{DETERMINISM, FLOAT_ORDERING, PANIC_POLICY};

    fn lib(src: &str) -> FileAnalysis {
        analyze_file("crates/x/src/lib.rs", src, &Config::default())
    }

    #[test]
    fn classify_library_vs_support() {
        assert_eq!(classify("crates/core/src/json.rs"), FileCategory::Library);
        assert_eq!(
            classify("crates/pstore/src/op/kernel.rs"),
            FileCategory::Library
        );
        assert_eq!(
            classify("crates/bench/src/bin/bench_suite.rs"),
            FileCategory::Support
        );
        assert_eq!(
            classify("crates/pstore/tests/kernel_properties.rs"),
            FileCategory::Support
        );
        assert_eq!(
            classify("crates/eedc/examples/quickstart.rs"),
            FileCategory::Support
        );
        assert_eq!(
            classify("crates/eedc/benches/design_space.rs"),
            FileCategory::Support
        );
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "pub fn f() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { x.unwrap(); let m = HashMap::new(); }\n\
                   }\n";
        assert!(lib(src).active.is_empty());
        // The same code outside the test module fires.
        let src = "pub fn f() { x.unwrap(); }";
        let analysis = lib(src);
        assert_eq!(analysis.active.len(), 1);
        assert_eq!(analysis.active[0].rule, PANIC_POLICY);
    }

    #[test]
    fn cfg_all_test_and_braceless_items_are_exempt() {
        let src = "#[cfg(all(test, feature = \"x\"))]\n\
                   fn helper() { y.expect(\"msg\"); }\n\
                   #[cfg(test)]\n\
                   use std::collections::HashMap;\n\
                   pub fn real() {}\n";
        assert!(lib(src).active.is_empty());
    }

    #[test]
    fn test_region_does_not_swallow_following_code() {
        let src = "#[cfg(test)]\n\
                   mod tests { fn t() {} }\n\
                   pub fn f() { x.unwrap(); }\n";
        let analysis = lib(src);
        assert_eq!(analysis.active.len(), 1);
        assert_eq!(analysis.active[0].line, 3);
    }

    #[test]
    fn waiver_on_preceding_or_same_line_applies() {
        let src = "// lint:allow(determinism): fixed iteration asserted below\n\
                   use std::collections::HashMap;\n\
                   let t = SystemTime::now(); // lint:allow(determinism): test rig only\n";
        let analysis = lib(src);
        assert!(analysis.active.is_empty(), "{:?}", analysis.active);
        assert_eq!(analysis.waived.len(), 2);
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_apply() {
        let src = "// lint:allow(panic-policy): wrong rule\n\
                   use std::collections::HashMap;\n";
        let analysis = lib(src);
        // The HashMap still fires, and the waiver is stale: two errors.
        let rules: Vec<&str> = analysis.active.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&DETERMINISM));
        assert!(rules.contains(&WAIVER_HYGIENE));
    }

    #[test]
    fn stale_malformed_and_unknown_waivers_are_errors() {
        let src = "// lint:allow(determinism): nothing here to suppress\n\
                   pub fn fine() {}\n\
                   // lint:allow(determinism)\n\
                   use std::collections::HashSet;\n\
                   // lint:allow(no-such-rule): whatever\n";
        let analysis = lib(src);
        let hygiene: Vec<&Violation> = analysis
            .active
            .iter()
            .filter(|v| v.rule == WAIVER_HYGIENE)
            .collect();
        assert_eq!(hygiene.len(), 3, "{hygiene:?}");
        assert!(hygiene[0].message.contains("stale"));
        assert!(hygiene[1].message.contains("no reason"));
        assert!(hygiene[2].message.contains("unknown rule"));
        // The reason-less waiver did not suppress the HashSet.
        assert!(analysis.active.iter().any(|v| v.rule == DETERMINISM));
    }

    #[test]
    fn allowlist_skips_rule_for_file() {
        let config = Config::parse(
            "[determinism]\nallow = [\"crates/x/src/lib.rs\"]\n",
            &rules::rule_names(),
        )
        .unwrap();
        let src = "let t = Instant::now();\nx.unwrap();\n";
        let analysis = analyze_file("crates/x/src/lib.rs", src, &config);
        let rule_names: Vec<&str> = analysis.active.iter().map(|v| v.rule).collect();
        assert!(!rule_names.contains(&DETERMINISM), "{rule_names:?}");
        assert!(rule_names.contains(&PANIC_POLICY));
        // Another file is not allowlisted.
        let other = analyze_file("crates/y/src/lib.rs", src, &config);
        assert!(other.active.iter().any(|v| v.rule == DETERMINISM));
    }

    #[test]
    fn support_files_skip_library_rules() {
        let src = "x.unwrap(); let t = Instant::now(); a.partial_cmp(&b)";
        let analysis = analyze_file("crates/x/tests/it.rs", src, &Config::default());
        assert!(analysis.active.is_empty(), "{:?}", analysis.active);
        // unsafe-audit still applies everywhere.
        let analysis = analyze_file("crates/x/tests/it.rs", "unsafe { f() }", &Config::default());
        assert_eq!(analysis.active.len(), 1);
    }

    #[test]
    fn ratchet_passes_on_equal_fails_on_growth() {
        let config =
            Config::parse("[panic-policy]\nratchet = true\n", &rules::rule_names()).unwrap();
        let files = vec![(
            "crates/x/src/lib.rs".to_string(),
            "fn f() { a.unwrap(); b.unwrap(); }".to_string(),
        )];
        let mut baseline = Baseline::default();
        baseline.set_count(PANIC_POLICY, "crates/x/src/lib.rs", 2);
        let report = run_check(&files, &config, &baseline, None);
        assert!(!report.failed(), "equal counts must hold the line");
        assert_eq!(report.ratchet.len(), 1);
        assert!(!report.ratchet[0].grew());

        baseline.set_count(PANIC_POLICY, "crates/x/src/lib.rs", 1);
        let report = run_check(&files, &config, &baseline, None);
        assert!(report.failed(), "+1 over baseline must fail");
        assert!(report.ratchet[0].grew());

        baseline.set_count(PANIC_POLICY, "crates/x/src/lib.rs", 3);
        let report = run_check(&files, &config, &baseline, None);
        assert!(!report.failed());
        assert!(report.ratchet[0].improved());
    }

    #[test]
    fn ratchet_burned_down_file_disappears_from_rows_only_at_zero_baseline() {
        let config =
            Config::parse("[panic-policy]\nratchet = true\n", &rules::rule_names()).unwrap();
        let files = vec![("crates/x/src/lib.rs".to_string(), "fn f() {}".to_string())];
        let mut baseline = Baseline::default();
        baseline.set_count(PANIC_POLICY, "crates/x/src/lib.rs", 4);
        let report = run_check(&files, &config, &baseline, None);
        // Still listed (baseline 4, current 0) so `baseline` re-records it away.
        assert_eq!(report.ratchet.len(), 1);
        assert!(report.ratchet[0].improved());
        assert!(!report.failed());
    }

    #[test]
    fn unratcheted_violations_are_errors_and_sorted() {
        let files = vec![
            (
                "crates/b/src/lib.rs".to_string(),
                "let x = Instant::now();".to_string(),
            ),
            (
                "crates/a/src/lib.rs".to_string(),
                "v.sort_by(|a, b| a.partial_cmp(b).unwrap());".to_string(),
            ),
        ];
        let report = run_check(&files, &Config::default(), &Baseline::default(), None);
        assert!(report.failed());
        // Sorted by path; the partial_cmp file carries float-ordering AND
        // panic-policy (unratcheted by default config here).
        assert_eq!(report.errors[0].path, "crates/a/src/lib.rs");
        assert!(report.errors.iter().any(|v| v.rule == FLOAT_ORDERING));
        let rendered = report.errors[0].render();
        assert!(rendered.contains("crates/a/src/lib.rs:1: ["), "{rendered}");
    }

    #[test]
    fn filter_restricts_reporting_but_not_waiver_accounting() {
        let files = vec![(
            "crates/a/src/lib.rs".to_string(),
            "// lint:allow(panic-policy): invariant documented here\n\
             x.unwrap();\n\
             let t = Instant::now();\n"
                .to_string(),
        )];
        let report = run_check(
            &files,
            &Config::default(),
            &Baseline::default(),
            Some(DETERMINISM),
        );
        // Only the determinism error reports; the used panic-policy waiver
        // is not suddenly stale.
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].rule, DETERMINISM);
    }

    #[test]
    fn report_json_shape() {
        let files = vec![(
            "crates/a/src/lib.rs".to_string(),
            "let t = Instant::now();".to_string(),
        )];
        let report = run_check(&files, &Config::default(), &Baseline::default(), None);
        let json = report.to_json();
        assert_eq!(json.usize_field("schema").unwrap(), 1);
        assert_eq!(json.usize_field("files_scanned").unwrap(), 1);
        assert!(json.bool_field("failed").unwrap());
        let errors = json.array_field("errors").unwrap();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].str_field("rule").unwrap(), DETERMINISM);
        assert_eq!(errors[0].usize_field("line").unwrap(), 1);
        // The JSON report round-trips through the core parser.
        let reparsed = JsonValue::parse(&json.to_json_pretty()).unwrap();
        assert_eq!(reparsed, json);
    }
}
