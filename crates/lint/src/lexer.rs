//! A hand-rolled Rust lexer — the foundation the rule engine matches on.
//!
//! The build environment has no registry access, so `syn` is not an option;
//! and regexes over raw source text misfire on exactly the constructs Rust
//! is rich in: `"a // url"` is a string, not a comment; `'a` is a lifetime
//! while `'a'` is a char; `r#"…"#` swallows quotes; `/* /* */ */` nests.
//! This lexer resolves all of those into a flat [`Token`] stream with line
//! numbers, which is the *right* level for the policy rules in
//! [`rules`](crate::rules): identifier-accurate (no substring matches) and
//! immune to occurrences inside strings, comments, or doc text.
//!
//! The lexer is deliberately lossy where lint rules do not care: compound
//! operators arrive as single-character [`TokenKind::Punct`] tokens, numeric
//! literals are not validated, and a malformed file never makes the lexer
//! fail — it produces a best-effort stream so the lint can still report on
//! the rest of the file.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `unsafe`, `fn`, …).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// A char or byte-char literal (`'x'`, `'\u{8}'`, `b'"'`).
    CharLit,
    /// Any string literal: cooked, raw, byte, or C (`"…"`, `r#"…"#`, `b"…"`).
    StrLit,
    /// A numeric literal (`42`, `0x1F`, `1.5e3` — possibly split at signs).
    NumLit,
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// A `//` comment, including doc comments (`///`, `//!`); text kept.
    LineComment,
    /// A `/* … */` comment (nesting handled); text kept, may span lines.
    BlockComment,
}

/// One lexed token: kind, verbatim text, and the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// The token's source text, verbatim (comments keep their `//` / `/*`).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Token {
    /// Whether this token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Whether this token is a punctuation character equal to `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Whether this token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// The 1-based line the token *ends* on (differs from [`Token::line`]
    /// only for multi-line tokens: block comments, raw/multi-line strings).
    pub fn end_line(&self) -> u32 {
        self.line + self.text.matches('\n').count() as u32
    }
}

/// Lex Rust source into a flat token stream. Never fails: unterminated
/// constructs are closed at end of input.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consume one char, tracking line numbers.
    fn bump(&mut self, out: &mut String) {
        if let Some(c) = self.chars.get(self.pos).copied() {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
            out.push(c);
        }
    }

    fn run(mut self) -> Vec<Token> {
        let mut tokens = Vec::new();
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                let mut sink = String::new();
                self.bump(&mut sink);
                continue;
            }
            let line = self.line;
            let (kind, text) = self.token(c);
            tokens.push(Token { kind, text, line });
        }
        tokens
    }

    fn token(&mut self, c: char) -> (TokenKind, String) {
        let mut text = String::new();
        if c == '/' && self.peek(1) == Some('/') {
            while matches!(self.peek(0), Some(ch) if ch != '\n') {
                self.bump(&mut text);
            }
            return (TokenKind::LineComment, text);
        }
        if c == '/' && self.peek(1) == Some('*') {
            self.block_comment(&mut text);
            return (TokenKind::BlockComment, text);
        }
        if c == '"' {
            self.cooked_string(&mut text);
            return (TokenKind::StrLit, text);
        }
        if c == '\'' {
            return self.lifetime_or_char();
        }
        if is_ident_start(c) {
            return self.ident_or_prefixed_literal();
        }
        if c.is_ascii_digit() {
            self.number(&mut text);
            return (TokenKind::NumLit, text);
        }
        self.bump(&mut text);
        (TokenKind::Punct, text)
    }

    /// `/* … */` with nesting; unterminated comments close at end of input.
    fn block_comment(&mut self, text: &mut String) {
        self.bump(text); // '/'
        self.bump(text); // '*'
        let mut depth = 1usize;
        while depth > 0 && self.peek(0).is_some() {
            if self.peek(0) == Some('/') && self.peek(1) == Some('*') {
                depth += 1;
                self.bump(text);
                self.bump(text);
            } else if self.peek(0) == Some('*') && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump(text);
                self.bump(text);
            } else {
                self.bump(text);
            }
        }
    }

    /// `"…"` with `\"` / `\\` escapes; literal newlines are legal inside.
    fn cooked_string(&mut self, text: &mut String) {
        self.bump(text); // opening '"'
        loop {
            match self.peek(0) {
                None => return,
                Some('\\') => {
                    self.bump(text);
                    self.bump(text);
                }
                Some('"') => {
                    self.bump(text);
                    return;
                }
                Some(_) => self.bump(text),
            }
        }
    }

    /// After a `'`: decide lifetime vs char literal.
    ///
    /// `'\…'` is always a char; `'x'` (closing quote two ahead) is a char —
    /// this is what keeps `'a'` a literal while `<'a>` stays a lifetime;
    /// otherwise an identifier start begins a lifetime (`'static`, `'_`).
    fn lifetime_or_char(&mut self) -> (TokenKind, String) {
        let mut text = String::new();
        match self.peek(1) {
            Some('\\') => {
                self.char_literal(&mut text);
                (TokenKind::CharLit, text)
            }
            Some(_) if self.peek(2) == Some('\'') => {
                self.char_literal(&mut text);
                (TokenKind::CharLit, text)
            }
            Some(n) if is_ident_start(n) => {
                self.bump(&mut text); // '\''
                while matches!(self.peek(0), Some(ch) if is_ident_continue(ch)) {
                    self.bump(&mut text);
                }
                (TokenKind::Lifetime, text)
            }
            _ => {
                self.bump(&mut text);
                (TokenKind::Punct, text)
            }
        }
    }

    /// `'…'` body after the decision is made: escapes skip two chars, the
    /// next bare `'` closes.
    fn char_literal(&mut self, text: &mut String) {
        self.bump(text); // opening '\''
        loop {
            match self.peek(0) {
                None => return,
                Some('\\') => {
                    self.bump(text);
                    self.bump(text);
                }
                Some('\'') => {
                    self.bump(text);
                    return;
                }
                Some(_) => self.bump(text),
            }
        }
    }

    /// An identifier — unless it is one of Rust's literal prefixes (`r`,
    /// `b`, `br`, `c`, `cr`) immediately followed by the literal it opens.
    fn ident_or_prefixed_literal(&mut self) -> (TokenKind, String) {
        let mut text = String::new();
        while matches!(self.peek(0), Some(ch) if is_ident_continue(ch)) {
            self.bump(&mut text);
        }
        match text.as_str() {
            // Byte-char literal: b'"' — must not be read as ident + lifetime.
            "b" if self.peek(0) == Some('\'') => {
                self.char_literal(&mut text);
                (TokenKind::CharLit, text)
            }
            // Cooked byte / C strings share the escape rules of `"…"`.
            "b" | "c" if self.peek(0) == Some('"') => {
                self.cooked_string(&mut text);
                (TokenKind::StrLit, text)
            }
            "r" | "br" | "cr" if self.raw_string_follows() => {
                self.raw_string(&mut text);
                (TokenKind::StrLit, text)
            }
            // Plain identifier. (`r#ident` raw identifiers fall out here as
            // Ident("r") + Punct('#') + Ident — fine for rule matching.)
            _ => (TokenKind::Ident, text),
        }
    }

    /// Lookahead only: `#`* followed by `"` means a raw string starts here.
    fn raw_string_follows(&self) -> bool {
        let mut ahead = 0;
        while self.peek(ahead) == Some('#') {
            ahead += 1;
        }
        self.peek(ahead) == Some('"')
    }

    /// `r#…#"…"#…#`: no escapes; closes at `"` followed by the same number
    /// of `#` as the opener.
    fn raw_string(&mut self, text: &mut String) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            self.bump(text);
            hashes += 1;
        }
        self.bump(text); // opening '"'
        loop {
            match self.peek(0) {
                None => return,
                Some('"') if (1..=hashes).all(|i| self.peek(i) == Some('#')) => {
                    for _ in 0..=hashes {
                        self.bump(text);
                    }
                    return;
                }
                Some(_) => self.bump(text),
            }
        }
    }

    /// Numbers: digits, `_`, hex/suffix letters; `.` only when a digit
    /// follows, so ranges (`0..10`) and method calls (`1.max(2)`) stay
    /// separate tokens. `1e-5` splits at the sign — harmless for linting.
    fn number(&mut self, text: &mut String) {
        self.bump(text);
        loop {
            match self.peek(0) {
                Some(ch) if ch.is_ascii_alphanumeric() || ch == '_' => self.bump(text),
                Some('.') if matches!(self.peek(1), Some(d) if d.is_ascii_digit()) => {
                    self.bump(text)
                }
                _ => return,
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn basic_stream_with_lines() {
        let toks = lex("let x = 1;\nfoo.bar()");
        assert_eq!(toks[0].text, "let");
        assert_eq!(toks[0].line, 1);
        let foo = toks.iter().find(|t| t.text == "foo").unwrap();
        assert_eq!(foo.line, 2);
        assert_eq!(foo.kind, TokenKind::Ident);
    }

    #[test]
    fn comment_inside_string_is_not_a_comment() {
        let toks = kinds(r#"let url = "https://example.com"; // real comment"#);
        let strings: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::StrLit).collect();
        assert_eq!(strings.len(), 1);
        assert!(strings[0].1.contains("//"));
        let comments: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokenKind::LineComment)
            .collect();
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].1, "// real comment");
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let toks = kinds(r####"let j = r#"{"k": "v // not a comment"}"# ; x"####);
        let s = toks.iter().find(|t| t.0 == TokenKind::StrLit).unwrap();
        assert!(s.1.starts_with("r#\""));
        assert!(s.1.ends_with("\"#"));
        // The trailing identifier survives — the raw string closed correctly.
        assert_eq!(
            idents(r####"let j = r#"{"k": "v"}"# ; x"####),
            ["let", "j", "x"]
        );
        // Multi-hash raw strings only close on the matching hash count.
        let toks = kinds("r##\"inner \"# still inside\"## after");
        assert_eq!(toks[0].0, TokenKind::StrLit);
        assert!(toks[0].1.contains("still inside"));
        assert_eq!(toks[1].1, "after");
    }

    #[test]
    fn byte_and_c_string_prefixes() {
        let toks = kinds(r##"b"bytes" c"cstr" br#"raw bytes"# unwrap"##);
        assert_eq!(toks[0].0, TokenKind::StrLit);
        assert_eq!(toks[1].0, TokenKind::StrLit);
        assert_eq!(toks[2].0, TokenKind::StrLit);
        assert_eq!(toks[3], (TokenKind::Ident, "unwrap".to_string()));
    }

    #[test]
    fn byte_char_with_quote_does_not_derail() {
        // b'"' then b' ' — the embedded quote and space must stay inside the
        // char literals, or everything after would be mis-lexed as a string.
        let toks = kinds(r#"m(b'"', b' ', b'\t'); after"#);
        let chars: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::CharLit).collect();
        assert_eq!(chars.len(), 3);
        assert!(toks.iter().any(|t| t.1 == "after"));
        assert!(!toks.iter().any(|t| t.0 == TokenKind::StrLit));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = kinds(r"fn f<'a>(x: &'a str, l: 'outer) -> char { 'x' }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokenKind::Lifetime)
            .map(|t| t.1.clone())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a", "'outer"]);
        assert!(toks.contains(&(TokenKind::CharLit, "'x'".to_string())));
        // Escaped char literals, including multi-char escapes.
        let toks = kinds(r"'\u{8}' '\n' '\'' '\\' '_' '_,");
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokenKind::CharLit)
            .map(|t| t.1.clone())
            .collect();
        assert_eq!(chars, [r"'\u{8}'", r"'\n'", r"'\''", r"'\\'", "'_'"]);
        // `'_` before a comma is the anonymous lifetime, not a char.
        assert!(toks.contains(&(TokenKind::Lifetime, "'_".to_string())));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("before /* outer /* inner */ still comment */ after");
        assert_eq!(toks[0], (TokenKind::Ident, "before".to_string()));
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert!(toks[1].1.contains("still comment"));
        assert_eq!(toks[2], (TokenKind::Ident, "after".to_string()));
    }

    #[test]
    fn multi_line_tokens_track_end_line() {
        let toks = lex("/* a\nb\nc */ x");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].end_line(), 3);
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        assert_eq!(idents("for i in 0..10 { v.push(1.5); 1.max(2) }").len(), 6);
        let toks = kinds("0..10");
        assert_eq!(toks[0], (TokenKind::NumLit, "0".to_string()));
        assert_eq!(toks[1].0, TokenKind::Punct);
        assert_eq!(toks[2].0, TokenKind::Punct);
        assert_eq!(toks[3], (TokenKind::NumLit, "10".to_string()));
        let toks = kinds("1.5e3 0x1F 1_000");
        assert!(toks.iter().all(|t| t.0 == TokenKind::NumLit));
    }

    #[test]
    fn unterminated_constructs_do_not_hang() {
        for src in ["\"open", "/* open", "r#\"open", "'\\", "b'"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "{src:?}");
        }
    }

    #[test]
    fn path_tokens_split_into_punct_pairs() {
        let toks = kinds("Instant::now()");
        assert_eq!(toks[0], (TokenKind::Ident, "Instant".to_string()));
        assert!(toks[1].0 == TokenKind::Punct && toks[1].1 == ":");
        assert!(toks[2].0 == TokenKind::Punct && toks[2].1 == ":");
        assert_eq!(toks[3], (TokenKind::Ident, "now".to_string()));
    }
}
