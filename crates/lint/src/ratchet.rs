//! The ratchet: committed per-file violation counts for rules with
//! pre-existing debt.
//!
//! A rule like `panic-policy` has real existing violations; denying them
//! outright would block every PR until a mass rewrite. Instead the counts
//! are committed to `crates/lint/baseline.json` and the gate fails only on
//! *growth* — equal counts hold the line, lower counts burn debt down
//! (re-record with `eedc-lint baseline` to lock the improvement in). This
//! is the same posture as the PR 5 bench gate: the committed file is the
//! contract, the tool only compares against it.
//!
//! The file is plain JSON, written and parsed with the workspace's own
//! [`eedc_core::json`] writer/reader (the vendored `serde` is a no-op, so
//! no derive-based serialization exists to use):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "rules": {
//!     "panic-policy": { "crates/core/src/advisor.rs": 1, ... }
//!   }
//! }
//! ```
//!
//! Keys are sorted (BTreeMap order) so re-recording produces minimal diffs.

use eedc_core::json::JsonValue;
use std::collections::BTreeMap;

/// Schema version stamped into the baseline file.
pub const BASELINE_SCHEMA: usize = 1;

/// Committed violation counts: rule → file → count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Per-rule, per-file counts.
    pub rules: BTreeMap<String, BTreeMap<String, usize>>,
}

impl Baseline {
    /// The committed count for `rule` in `path` (0 when unlisted — new
    /// files start with no debt allowance).
    pub fn count(&self, rule: &str, path: &str) -> usize {
        self.rules
            .get(rule)
            .and_then(|files| files.get(path))
            .copied()
            .unwrap_or(0)
    }

    /// Set one count (used by `baseline` recording and tests).
    pub fn set_count(&mut self, rule: &str, path: &str, count: usize) {
        self.rules
            .entry(rule.to_string())
            .or_default()
            .insert(path.to_string(), count);
    }

    /// Build a baseline from freshly measured counts, dropping zero entries
    /// so burned-down files disappear from the committed file.
    pub fn from_counts(counts: &BTreeMap<String, BTreeMap<String, usize>>) -> Baseline {
        let mut baseline = Baseline::default();
        for (rule, files) in counts {
            let files: BTreeMap<String, usize> = files
                .iter()
                .filter(|(_, &count)| count > 0)
                .map(|(path, &count)| (path.clone(), count))
                .collect();
            baseline.rules.insert(rule.clone(), files);
        }
        baseline
    }

    /// Render to the committed JSON form (pretty, sorted, trailing newline).
    pub fn to_json(&self) -> String {
        let mut root = JsonValue::object();
        root.set("schema", BASELINE_SCHEMA);
        let mut rules = JsonValue::object();
        for (rule, files) in &self.rules {
            let mut obj = JsonValue::object();
            for (path, &count) in files {
                obj.set(path.as_str(), count);
            }
            rules.set(rule.as_str(), obj);
        }
        root.set("rules", rules);
        let mut out = root.to_json_pretty();
        out.push('\n');
        out
    }

    /// Parse the committed JSON form.
    pub fn from_json(src: &str) -> Result<Baseline, String> {
        let root = JsonValue::parse(src).map_err(|e| format!("baseline: {e}"))?;
        let schema = root
            .usize_field("schema")
            .map_err(|e| format!("baseline: {e}"))?;
        if schema != BASELINE_SCHEMA {
            return Err(format!(
                "baseline: schema {schema} (this tool reads {BASELINE_SCHEMA}); \
                 re-record with `eedc-lint baseline`"
            ));
        }
        let mut baseline = Baseline::default();
        let rules = root
            .field("rules")
            .ok()
            .and_then(JsonValue::as_object)
            .ok_or_else(|| "baseline: missing 'rules' object".to_string())?;
        for (rule, files) in rules {
            let files = files
                .as_object()
                .ok_or_else(|| format!("baseline: rule '{rule}' is not an object"))?;
            for (path, count) in files {
                let count = count
                    .as_f64()
                    .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                    .ok_or_else(|| {
                        format!("baseline: count for '{path}' is not a non-negative integer")
                    })?;
                baseline.set_count(rule, path, count as usize);
            }
        }
        Ok(baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_core_json() {
        let mut baseline = Baseline::default();
        baseline.set_count("panic-policy", "crates/b/src/lib.rs", 3);
        baseline.set_count("panic-policy", "crates/a/src/lib.rs", 7);
        let json = baseline.to_json();
        // Sorted keys: crates/a before crates/b.
        assert!(json.find("crates/a").unwrap() < json.find("crates/b").unwrap());
        assert!(json.ends_with('\n'));
        let back = Baseline::from_json(&json).unwrap();
        assert_eq!(back, baseline);
        assert_eq!(back.count("panic-policy", "crates/a/src/lib.rs"), 7);
        assert_eq!(back.count("panic-policy", "crates/none.rs"), 0);
        assert_eq!(back.count("other-rule", "crates/a/src/lib.rs"), 0);
    }

    #[test]
    fn from_counts_drops_zero_entries() {
        let mut counts: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        counts
            .entry("panic-policy".to_string())
            .or_default()
            .extend([("a.rs".to_string(), 0), ("b.rs".to_string(), 2)]);
        let baseline = Baseline::from_counts(&counts);
        assert_eq!(baseline.count("panic-policy", "b.rs"), 2);
        assert!(!baseline.to_json().contains("a.rs"));
    }

    #[test]
    fn rejects_malformed_baselines() {
        for (src, needle) in [
            ("{}", "schema"),
            ("{\"schema\": 9, \"rules\": {}}", "schema 9"),
            ("{\"schema\": 1}", "rules"),
            ("{\"schema\": 1, \"rules\": {\"r\": 3}}", "not an object"),
            (
                "{\"schema\": 1, \"rules\": {\"r\": {\"f.rs\": -1}}}",
                "non-negative",
            ),
            (
                "{\"schema\": 1, \"rules\": {\"r\": {\"f.rs\": 1.5}}}",
                "non-negative",
            ),
            ("not json", "JSON"),
        ] {
            let err = Baseline::from_json(src).unwrap_err();
            assert!(err.contains(needle), "{src:?}: {err}");
        }
    }
}
