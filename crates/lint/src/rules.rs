//! The policy rules: what the workspace promises, stated as token patterns.
//!
//! Every rule here defends an invariant the measurement methodology depends
//! on (see `docs/ARCHITECTURE.md` § "Static analysis"):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `determinism` | simulation and estimator outputs are a pure function of inputs + seed |
//! | `panic-policy` | library code degrades to `Err`, not `panic!` (ratcheted burn-down) |
//! | `float-ordering` | `f64` orderings are total (`total_cmp`), never NaN-dependent |
//! | `unsafe-audit` | every `unsafe` carries a `// SAFETY:` justification |
//! | `waiver-hygiene` | inline waivers that suppress nothing are themselves errors |
//!
//! Rules match on the [`lexer`](crate::lexer) token stream, so occurrences
//! inside strings, comments, and doc text never fire, and identifier
//! matches are exact (`unwrap_or` is not `unwrap`).

use crate::lexer::{Token, TokenKind};

/// Where a rule applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Library source only: `src/**` excluding `src/bin/**`. Integration
    /// tests, benches, examples, and binaries are exempt.
    Library,
    /// Every `.rs` file in the workspace's crates.
    All,
}

/// A rule's static description; the matching logic lives in [`check`].
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// The rule's name — also its waiver / config / baseline key.
    pub name: &'static str,
    /// One-line statement of the enforced invariant (for `rules` output).
    pub summary: &'static str,
    /// Which files the rule runs on.
    pub scope: Scope,
    /// Whether code inside `#[cfg(test)]` items is exempt.
    pub skip_test_code: bool,
}

/// Name of the determinism rule.
pub const DETERMINISM: &str = "determinism";
/// Name of the panic-policy rule.
pub const PANIC_POLICY: &str = "panic-policy";
/// Name of the float-ordering rule.
pub const FLOAT_ORDERING: &str = "float-ordering";
/// Name of the unsafe-audit rule.
pub const UNSAFE_AUDIT: &str = "unsafe-audit";
/// Name of the waiver-hygiene rule (synthesized by the engine, not matched
/// here — stale waivers are only known once every other rule has run).
pub const WAIVER_HYGIENE: &str = "waiver-hygiene";

/// All rules, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        name: DETERMINISM,
        summary: "no ambient clocks, hash-order iteration, or unseeded randomness \
                  in library code",
        scope: Scope::Library,
        skip_test_code: true,
    },
    Rule {
        name: PANIC_POLICY,
        summary: "no unwrap()/expect()/panic! in non-test library code (ratcheted)",
        scope: Scope::Library,
        skip_test_code: true,
    },
    Rule {
        name: FLOAT_ORDERING,
        summary: "float comparisons use total_cmp, never partial_cmp chains",
        scope: Scope::Library,
        skip_test_code: true,
    },
    Rule {
        name: UNSAFE_AUDIT,
        summary: "every `unsafe` carries a `// SAFETY:` comment",
        scope: Scope::All,
        skip_test_code: false,
    },
    Rule {
        name: WAIVER_HYGIENE,
        summary: "waivers must be well-formed, name a real rule, and suppress \
                  something",
        scope: Scope::All,
        skip_test_code: false,
    },
];

/// Look up a rule by name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// The names of all rules, for config validation and usage text.
pub fn rule_names() -> Vec<&'static str> {
    RULES.iter().map(|r| r.name).collect()
}

/// One raw rule match: the line it fired on and what to tell the author.
/// Waivers, allowlists, and ratchets are applied later by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// 1-based source line.
    pub line: u32,
    /// Human-readable statement of the violation and the remedy.
    pub message: String,
}

/// Everything a rule matcher needs about one file.
pub struct FileView<'a> {
    /// All tokens, comments included, in source order.
    pub tokens: &'a [Token],
    /// Indices into `tokens` of the non-comment tokens, in order.
    pub code: &'a [usize],
}

impl FileView<'_> {
    fn code_token(&self, code_idx: usize) -> Option<&Token> {
        self.code.get(code_idx).map(|&i| &self.tokens[i])
    }
}

/// Run one rule's matcher. `WAIVER_HYGIENE` has no matcher here (the engine
/// synthesizes its findings) and yields nothing.
pub fn check(rule: &Rule, view: &FileView<'_>) -> Vec<Finding> {
    match rule.name {
        DETERMINISM => check_determinism(view),
        PANIC_POLICY => check_panic_policy(view),
        FLOAT_ORDERING => check_float_ordering(view),
        UNSAFE_AUDIT => check_unsafe_audit(view),
        _ => Vec::new(),
    }
}

/// Ambient nondeterminism: wall clocks, hash-order collections, unseeded
/// RNGs, machine-sized parallelism. Each makes a simulation or estimator
/// output depend on something other than its inputs and seed.
fn check_determinism(view: &FileView<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, &tok_idx) in view.code.iter().enumerate() {
        let tok = &view.tokens[tok_idx];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let complaint = match tok.text.as_str() {
            "HashMap" | "HashSet" => Some(format!(
                "`{}` iteration order is nondeterministic; use BTreeMap/BTreeSet \
                 or an explicitly ordered structure",
                tok.text
            )),
            "SystemTime" => {
                Some("`SystemTime` is an ambient wall clock; take time as an input".to_string())
            }
            "thread_rng" => Some(
                "`thread_rng` is ambient randomness; thread a seeded RNG through \
                 the simulation or RunOptions"
                    .to_string(),
            ),
            "available_parallelism" => Some(
                "`available_parallelism` makes behaviour machine-dependent; take \
                 the thread count as a parameter"
                    .to_string(),
            ),
            "Instant" => {
                // Only the ambient read `Instant::now` is deterministic poison;
                // passing an Instant *value* around is fine.
                let is_now = view.code_token(i + 1).is_some_and(|t| t.is_punct(':'))
                    && view.code_token(i + 2).is_some_and(|t| t.is_punct(':'))
                    && view.code_token(i + 3).is_some_and(|t| t.is_ident("now"));
                is_now.then(|| {
                    "`Instant::now` is an ambient clock read; simulated time must come \
                     from the kernel's clock"
                        .to_string()
                })
            }
            _ => None,
        };
        if let Some(message) = complaint {
            findings.push(Finding {
                line: tok.line,
                message,
            });
        }
    }
    findings
}

/// `.unwrap()` / `.expect(…)` / `panic!(…)` in library code. Ratcheted via
/// the committed baseline: existing sites burn down PR by PR, new ones are
/// growth and fail the gate. `assert!`/`debug_assert!` are deliberately
/// allowed — invariant checks are policy, error handling by panic is not.
fn check_panic_policy(view: &FileView<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, &tok_idx) in view.code.iter().enumerate() {
        let tok = &view.tokens[tok_idx];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let next_is = |c: char| view.code_token(i + 1).is_some_and(|t| t.is_punct(c));
        let message = match tok.text.as_str() {
            "unwrap" if next_is('(') => {
                "`.unwrap()` in library code; return Err (or waive with the invariant that holds)"
            }
            "expect" if next_is('(') => {
                "`.expect()` in library code; return Err (or waive with the invariant that holds)"
            }
            "panic" if next_is('!') => {
                "`panic!` in library code; return Err (or waive with the invariant that holds)"
            }
            _ => continue,
        };
        findings.push(Finding {
            line: tok.line,
            message: message.to_string(),
        });
    }
    findings
}

/// Any *use* of `partial_cmp` (a `fn partial_cmp` definition header is the
/// one exemption: a `PartialOrd` impl delegating to `Ord::cmp`). NaN makes
/// `partial_cmp` return `None`, and `unwrap_or(Equal)` fallbacks silently
/// corrupt orderings — `f64::total_cmp` is total and deterministic.
fn check_float_ordering(view: &FileView<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, &tok_idx) in view.code.iter().enumerate() {
        let tok = &view.tokens[tok_idx];
        if !tok.is_ident("partial_cmp") {
            continue;
        }
        let defined_here = i
            .checked_sub(1)
            .and_then(|p| view.code_token(p))
            .is_some_and(|t| t.is_ident("fn"));
        if !defined_here {
            findings.push(Finding {
                line: tok.line,
                message: "`partial_cmp` on floats is NaN-partial; use `f64::total_cmp` \
                          (or waive stating why NaN cannot reach this ordering)"
                    .to_string(),
            });
        }
    }
    findings
}

/// Every `unsafe` token must have a comment containing `SAFETY:` ending at
/// most [`SAFETY_COMMENT_REACH`] lines above it (same line allowed).
fn check_unsafe_audit(view: &FileView<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for &tok_idx in view.code {
        let tok = &view.tokens[tok_idx];
        if !tok.is_ident("unsafe") {
            continue;
        }
        let justified = view.tokens.iter().any(|t| {
            t.is_comment()
                && t.text.contains("SAFETY:")
                && t.end_line() + SAFETY_COMMENT_REACH >= tok.line
                && t.end_line() <= tok.line
        });
        if !justified {
            findings.push(Finding {
                line: tok.line,
                message: "`unsafe` without a `// SAFETY:` comment in the preceding \
                          lines; state why the contract holds"
                    .to_string(),
            });
        }
    }
    findings
}

/// How many lines above an `unsafe` token a `SAFETY:` comment may end.
pub const SAFETY_COMMENT_REACH: u32 = 3;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(rule_name: &str, src: &str) -> Vec<Finding> {
        let tokens = lex(src);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let view = FileView {
            tokens: &tokens,
            code: &code,
        };
        let rule = rule_by_name(rule_name).expect("known rule");
        check(rule, &view)
    }

    #[test]
    fn determinism_flags_each_construct() {
        let src = "use std::collections::HashMap;\n\
                   let t = Instant::now();\n\
                   let r = thread_rng();\n\
                   let n = std::thread::available_parallelism();\n\
                   let s = SystemTime::now();\n\
                   let h: HashSet<u8> = HashSet::new();";
        let findings = run(DETERMINISM, src);
        let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, [1, 2, 3, 4, 5, 6, 6]);
    }

    #[test]
    fn determinism_allows_instant_values_and_strings() {
        // An Instant *parameter* is fine; only the ambient `::now` read fires.
        assert!(run(
            DETERMINISM,
            "fn f(start: Instant) -> u64 { start.elapsed() }"
        )
        .is_empty());
        assert!(run(DETERMINISM, "let s = \"HashMap Instant::now\"; // HashMap").is_empty());
        // Qualified path form fires too.
        assert_eq!(run(DETERMINISM, "std::time::Instant::now()").len(), 1);
    }

    #[test]
    fn panic_policy_flags_calls_not_lookalikes() {
        let findings = run(
            PANIC_POLICY,
            "x.unwrap();\ny.expect(\"m\");\npanic!(\"boom\");",
        );
        assert_eq!(findings.len(), 3);
        // unwrap_or / expect_byte / panic paths are different identifiers.
        assert!(run(
            PANIC_POLICY,
            "x.unwrap_or(0); p.expect_byte(b'\"'); std::panic::catch_unwind(f); #[should_panic]"
        )
        .is_empty());
    }

    #[test]
    fn float_ordering_flags_uses_not_definitions() {
        assert_eq!(run(FLOAT_ORDERING, "a.partial_cmp(&b).unwrap()").len(), 1);
        assert_eq!(
            run(
                FLOAT_ORDERING,
                "v.sort_by(|a, b| a.partial_cmp(b).expect(\"finite\"))"
            )
            .len(),
            1
        );
        // The PartialOrd impl header delegating to Ord is the sanctioned shape.
        assert!(run(
            FLOAT_ORDERING,
            "fn partial_cmp(&self, other: &Self) -> Option<Ordering> { Some(self.cmp(other)) }"
        )
        .is_empty());
        assert!(run(FLOAT_ORDERING, "v.sort_by(f64::total_cmp)").is_empty());
    }

    #[test]
    fn unsafe_audit_requires_nearby_safety_comment() {
        assert_eq!(run(UNSAFE_AUDIT, "unsafe { ptr.read() }").len(), 1);
        assert!(run(
            UNSAFE_AUDIT,
            "// SAFETY: index checked against len above\nunsafe { ptr.read() }"
        )
        .is_empty());
        // A SAFETY comment too far above does not count.
        assert_eq!(
            run(
                UNSAFE_AUDIT,
                "// SAFETY: stale\n\n\n\n\nunsafe { ptr.read() }"
            )
            .len(),
            1
        );
        // Block comments count via their end line.
        assert!(run(
            UNSAFE_AUDIT,
            "/* SAFETY: the buffer\n   outlives the call */\nunsafe { ptr.read() }"
        )
        .is_empty());
    }
}
